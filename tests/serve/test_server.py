"""The TCP gateway: frame protocol round-trips, errors, session reaping."""

from __future__ import annotations

import asyncio
import pathlib

import pytest

from repro.backends.simfs_backend import SimBackend
from repro.errors import SionUsageError
from repro.fs.simfs import SimFS
from repro.serve import GatewayClient, GatewayServer, ReadGateway
from repro.simmpi import run_spmd
from repro.sion import paropen, serial
from repro.sion.mapping import ReadPartition

NTASKS = 12
PATH = "/scratch/srv.sion"


def _payload(rank: int) -> bytes:
    return bytes((rank * 17 + i) % 256 for i in range(30 + rank * 5))


@pytest.fixture
def backend():
    fs = SimFS(blocksize_override=512)
    fs.mkdir("/scratch")
    backend = SimBackend(fs)

    def program(comm):
        f = paropen(PATH, "w", comm, chunksize=256, backend=backend)
        f.fwrite(_payload(comm.rank))
        f.parclose()

    run_spmd(NTASKS, program, engine="threads")
    return backend


def _expected(backend):
    with serial.open(PATH, "r", backend=backend) as sf:
        return {r: sf.read_task(r) for r in range(NTASKS)}


def _run_with_server(backend, coro_fn):
    """Start a server on an OS port, run ``coro_fn(client)``, tear down."""

    async def runner():
        server = GatewayServer(ReadGateway(backend=backend, cache_bytes=1 << 20))
        await server.start()
        client = await GatewayClient.connect("127.0.0.1", server.port)
        try:
            return await coro_fn(client, server)
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(runner())


def test_roundtrip_sessions_and_stateless_reads(backend):
    expected = _expected(backend)

    async def scenario(client, server):
        assert await client.ping()
        part = ReadPartition.balanced(NTASKS, 3)
        for r in range(3):
            sid = await client.open_session(PATH, readers=3, reader=r)
            data = await client.read_all(sid)
            assert data == b"".join(expected[w] for w in part.writers_of(r))
            assert await client.session_eof(sid)
            await client.close_session(sid)
        # rank session with chunked reads
        sid = await client.open_session(PATH, rank=4)
        out = b""
        while True:
            piece = await client.read(sid, 7)
            if not piece:
                break
            out += piece
        assert out == expected[4]
        await client.close_session(sid)
        # stateless ops
        assert await client.read_task(PATH, 2) == expected[2]
        assert await client.read_range(PATH, 2, 3, 8) == expected[2][3:11]
        stats = await client.stats()
        assert stats["sessions_opened"] == 4
        assert stats["cache"]["lookups"] > 0

    _run_with_server(backend, scenario)


def test_errors_cross_the_wire_as_exceptions(backend):
    async def scenario(client, server):
        with pytest.raises(SionUsageError, match="out of range"):
            await client.open_session(PATH, rank=NTASKS)
        with pytest.raises(SionUsageError, match="unknown session"):
            await client.read(12345, 4)
        with pytest.raises(SionUsageError, match="unknown op"):
            await client._call({"op": "explode"})
        # The connection survives errors: a valid op still works.
        assert await client.ping()

    _run_with_server(backend, scenario)


def test_dead_connection_reaps_its_sessions(backend):
    async def runner():
        gw = ReadGateway(backend=backend, cache_bytes=1 << 20)
        server = GatewayServer(gw)
        await server.start()
        client = await GatewayClient.connect("127.0.0.1", server.port)
        await client.open_session(PATH, rank=1)
        await client.open_session(PATH, rank=2)
        assert gw.snapshot()["sessions_active"] == 2
        await client.close()  # drop without closing sessions
        for _ in range(100):  # let the server notice the EOF
            await asyncio.sleep(0.01)
            if gw.snapshot()["sessions_active"] == 0:
                break
        assert gw.snapshot()["sessions_active"] == 0
        await server.stop()

    asyncio.run(runner())


def test_graceful_shutdown_drains_in_flight_request(backend):
    expected = _expected(backend)

    async def runner():
        gw = ReadGateway(backend=backend, cache_bytes=1 << 20)
        server = GatewayServer(gw)
        await server.start()

        # Make read_task hold until released, so a request is provably
        # in flight when the drain starts.
        entered = asyncio.Event()
        release = asyncio.Event()
        real_read_task = gw.read_task

        async def slow_read_task(path, rank):
            entered.set()
            await release.wait()
            return await real_read_task(path, rank)

        gw.read_task = slow_read_task

        busy = await GatewayClient.connect("127.0.0.1", server.port)
        idle = await GatewayClient.connect("127.0.0.1", server.port)
        pending = asyncio.ensure_future(busy.read_task(PATH, 3))
        await entered.wait()

        server.request_shutdown()
        drained = asyncio.ensure_future(server.serve_until_shutdown())
        await asyncio.sleep(0.05)
        assert not drained.done()  # still waiting on the in-flight reply
        release.set()

        # The in-flight request completes with its full payload...
        assert await pending == expected[3]
        await drained  # ...and the drain finishes once it is answered.

        # Connections were folded server-side; new requests fail.
        with pytest.raises(SionUsageError, match="closed the connection"):
            await idle.ping()
        # The listener is gone: no new connections.
        with pytest.raises(OSError):
            await GatewayClient.connect("127.0.0.1", server.port)
        await busy.close()
        await idle.close()

    asyncio.run(runner())


def test_request_shutdown_is_idempotent_and_instant_when_idle(backend):
    async def runner():
        server = GatewayServer(ReadGateway(backend=backend))
        await server.start()
        server.request_shutdown()
        server.request_shutdown()  # second call is a no-op
        await asyncio.wait_for(server.serve_until_shutdown(), timeout=5)

    asyncio.run(runner())


def test_sigterm_triggers_graceful_drain(backend):
    import os
    import signal

    async def runner():
        gw = ReadGateway(backend=backend, cache_bytes=1 << 20)
        server = GatewayServer(gw)
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.request_shutdown)
        try:
            client = await GatewayClient.connect("127.0.0.1", server.port)
            assert await client.read_task(PATH, 1) == _expected(backend)[1]
            serving = asyncio.ensure_future(server.serve_until_shutdown())
            await asyncio.sleep(0.02)
            assert not serving.done()
            os.kill(os.getpid(), signal.SIGTERM)  # what systemd sends
            await asyncio.wait_for(serving, timeout=5)
            await client.close()
        finally:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)

    asyncio.run(runner())


def test_cli_serves_and_drains_on_sigterm(tmp_path):
    """End to end through ``python -m repro.serve``: real process, real signal."""
    import os
    import re
    import signal
    import subprocess
    import sys

    from repro.backends.localfs import LocalBackend

    backend = LocalBackend(blocksize_override=512)
    path = f"{tmp_path}/cli.sion"

    def program(comm):
        f = paropen(path, "w", comm, chunksize=256, backend=backend)
        f.fwrite(_payload(comm.rank))
        f.parclose()

    run_spmd(4, program, engine="threads")

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", path, "--port", "0"],
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=str(pathlib.Path(__file__).parents[2]),
    )
    try:
        for line in proc.stderr:
            m = re.search(r"serving on [\d.]+:(\d+)", line)
            if m:
                port = int(m.group(1))
                break
        else:
            raise AssertionError("server never reported its port")

        async def read_one():
            client = await GatewayClient.connect("127.0.0.1", port)
            try:
                return await client.read_task(path, 2)
            finally:
                await client.close()

        assert asyncio.run(read_one()) == _payload(2)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=10) == 0
        assert "drained" in proc.stderr.read()
    finally:
        proc.stderr.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_many_clients_share_one_cache(backend):
    expected = _expected(backend)

    async def runner():
        gw = ReadGateway(backend=backend, cache_bytes=1 << 20)
        server = GatewayServer(gw)
        await server.start()

        async def one_client(rank):
            client = await GatewayClient.connect("127.0.0.1", server.port)
            try:
                return rank, await client.read_task(PATH, rank)
            finally:
                await client.close()

        results = await asyncio.gather(*(one_client(r) for r in range(NTASKS)))
        for rank, data in results:
            assert data == expected[rank]
        assert gw.snapshot()["containers_opened"] == 1
        await server.stop()

    asyncio.run(runner())
