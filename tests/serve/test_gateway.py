"""The read gateway against the serial view: sessions, ranges, freshness."""

from __future__ import annotations

import asyncio

import pytest

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.errors import SionUsageError
from repro.fs.simfs import SimFS
from repro.serve import ReadGateway
from repro.simmpi import run_spmd
from repro.sion import paropen, serial
from repro.sion.mapping import ReadPartition

NTASKS = 24
PATH = "/scratch/srv.sion"


def _payload(rank: int) -> bytes:
    return bytes((rank * 13 + i) % 256 for i in range(40 + rank * 7))


def _sealed_backend(nfiles=2, compress=False, payload=_payload):
    fs = SimFS(blocksize_override=512)
    fs.mkdir("/scratch")
    backend = CountingBackend(SimBackend(fs))

    def program(comm):
        f = paropen(
            PATH, "w", comm, chunksize=256, nfiles=nfiles,
            backend=backend, compress=compress,
        )
        f.fwrite(payload(comm.rank))
        f.parclose()

    run_spmd(NTASKS, program, engine="threads")
    return backend


@pytest.fixture
def backend():
    return _sealed_backend()


def _expected(backend):
    with serial.open(PATH, "r", backend=backend) as sf:
        return {r: sf.read_task(r) for r in range(NTASKS)}


def test_partitioned_sessions_match_serial_view(backend):
    expected = _expected(backend)
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)
    readers = 5
    part = ReadPartition.balanced(NTASKS, readers)

    async def drive():
        for r in range(readers):
            sid = await gw.open_session(PATH, readers=readers, reader=r)
            data = await gw.read_all(sid)
            assert data == b"".join(expected[w] for w in part.writers_of(r))
            assert await gw.session_eof(sid)
            await gw.close_session(sid)

    asyncio.run(drive())
    snap = gw.snapshot()
    assert snap["sessions_opened"] == readers
    assert snap["sessions_active"] == 0
    assert snap["containers_opened"] == 1


def test_single_rank_session_chunked_reads(backend):
    expected = _expected(backend)
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def drive():
        sid = await gw.open_session(PATH, rank=7)
        out = b""
        while not await gw.session_eof(sid):
            piece = await gw.read(sid, 9)
            if not piece:
                break
            out += piece
        assert out == expected[7]
        await gw.close_session(sid)

    asyncio.run(drive())


def test_stateless_range_and_task_reads(backend):
    expected = _expected(backend)
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def drive():
        assert await gw.read_task(PATH, 3) == expected[3]
        assert await gw.read_range(PATH, 3, 0, 10) == expected[3][:10]
        assert await gw.read_range(PATH, 3, 17, 9) == expected[3][17:26]
        # Past-EOF and zero-length ranges are empty, not errors.
        assert await gw.read_range(PATH, 3, len(expected[3]), 4) == b""
        assert await gw.read_range(PATH, 3, 2, 0) == b""
        # A range crossing a chunk boundary (chunksize 256).
        whole = expected[NTASKS - 1]
        assert await gw.read_range(PATH, NTASKS - 1, 0, len(whole)) == whole

    asyncio.run(drive())


def test_concurrent_sessions_interleave(backend):
    expected = _expected(backend)
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def one(rank):
        sid = await gw.open_session(PATH, rank=rank)
        out = b""
        while True:
            piece = await gw.read(sid, 5)
            if not piece:
                break
            out += piece
        await gw.close_session(sid)
        return rank, out

    async def drive():
        results = await asyncio.gather(*(one(r) for r in range(NTASKS)))
        for rank, data in results:
            assert data == expected[rank]

    asyncio.run(drive())
    assert gw.snapshot()["sessions_peak"] == NTASKS


def test_warm_reads_bypass_the_backend(backend):
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def sweep():
        for r in range(NTASKS):
            await gw.read_task(PATH, r)

    asyncio.run(sweep())
    before = backend.stats.snapshot()["data_read_calls"]
    asyncio.run(sweep())
    after = backend.stats.snapshot()["data_read_calls"]
    assert after - before == 0  # everything from cache
    cache = gw.cache.snapshot()
    assert cache["hit_rate"] >= 0.5
    assert cache["bytes_served"] > 0


def test_reseal_detection_drops_stale_generation(backend):
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def read3():
        return await gw.read_task(PATH, 3)

    old = asyncio.run(read3())
    gen1 = gw.open_container(PATH).generation

    # Re-seal the container with different content (metadata changes:
    # different byte counts per stream).
    def program(comm):
        f = paropen(PATH, "w", comm, chunksize=256, nfiles=2, backend=backend)
        f.fwrite(b"NEW-%03d" % comm.rank)
        f.parclose()

    run_spmd(NTASKS, program, engine="threads")
    fresh = asyncio.run(read3())
    assert fresh == b"NEW-003"
    assert fresh != old
    handle = gw.open_container(PATH)
    assert handle.generation != gen1
    snap = gw.snapshot()
    assert snap["reseals_detected"] == 1
    assert gw.cache.snapshot()["invalidations"] > 0


def test_refresh_forces_new_generation(backend):
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)
    gen1 = gw.open_container(PATH).generation
    assert gw.open_container(PATH).generation == gen1  # fast-path reuse
    assert gw.refresh(PATH).generation != gen1


def test_compressed_container_sessions():
    backend = _sealed_backend(compress=True)
    expected = _expected(backend)
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def drive():
        part = ReadPartition.balanced(NTASKS, 4)
        for r in range(4):
            sid = await gw.open_session(PATH, readers=4, reader=r)
            data = await gw.read_all(sid)
            assert data == b"".join(expected[w] for w in part.writers_of(r))
            await gw.close_session(sid)
        assert await gw.read_task(PATH, 5) == expected[5]
        with pytest.raises(SionUsageError):
            await gw.read_range(PATH, 5, 0, 4)

    asyncio.run(drive())


def test_session_argument_validation(backend):
    gw = ReadGateway(backend=backend)

    async def drive():
        with pytest.raises(SionUsageError):
            await gw.open_session(PATH)  # neither shape
        with pytest.raises(SionUsageError):
            await gw.open_session(PATH, rank=1, readers=2, reader=0)  # both
        with pytest.raises(SionUsageError):
            await gw.open_session(PATH, readers=4)  # half a shape
        with pytest.raises(SionUsageError):
            await gw.open_session(PATH, rank=NTASKS)  # out of range
        with pytest.raises(SionUsageError):
            await gw.open_session(PATH, readers=4, reader=4)
        with pytest.raises(SionUsageError):
            await gw.read(999, 4)  # unknown session
        sid = await gw.open_session(PATH, rank=0)
        await gw.close_session(sid)
        with pytest.raises(SionUsageError):
            await gw.close_session(sid)  # already closed

    asyncio.run(drive())


def test_gateway_close_retires_everything(backend):
    gw = ReadGateway(backend=backend, cache_bytes=1 << 20, cache_block=512)

    async def drive():
        await gw.open_session(PATH, rank=0)

    asyncio.run(drive())
    gw.close()
    snap = gw.snapshot()
    assert snap["containers"] == {}
    assert snap["sessions_active"] == 0
    assert gw.cache.entry_count == 0
