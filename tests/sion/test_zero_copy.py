"""The vectored data plane's two promises, proven with the counting backend.

1. A chunk-spanning ``fwrite`` of N fragments crosses the backend
   boundary exactly once (one ``scatter_write``), not N times.
2. A ``memoryview``/buffer payload reaches the backend with zero
   intermediate ``bytes()`` materializations — every fragment the store
   receives still lives inside the caller's buffer.
"""

import numpy as np

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.fs.simfs import SimFS
from repro.simmpi.comm import make_world
from repro.sion import paropen, serial
from repro.sion.buffering import CoalescingWriter

BLK = 512
CHUNK = 2 * BLK


def counting_backend():
    return CountingBackend(SimBackend(SimFS(blocksize_override=BLK)))


def payload_of(n):
    return bytearray((i * 7 + 3) % 256 for i in range(n))


class TestSerialPath:
    def test_spanning_fwrite_is_one_backend_call(self):
        backend = counting_backend()
        payload = payload_of(CHUNK * 4 + 100)  # 5 fragments
        with serial.open(
            "/s.sion", "w", chunksizes=[CHUNK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            backend.track_source(payload)
            before = backend.snapshot()
            f.fwrite(memoryview(payload))
            after = backend.snapshot()
        assert after["data_write_calls"] - before["data_write_calls"] == 1
        assert after["fragments_written"] - before["fragments_written"] == 5
        assert after["copied_fragments"] - before["copied_fragments"] == 0
        assert after["seeks"] - before["seeks"] == 0
        with serial.open("/s.sion", "r", backend=backend) as f:
            assert f.read_task(0) == bytes(payload)

    def test_ansi_write_is_one_positioned_call(self):
        backend = counting_backend()
        payload = payload_of(CHUNK // 2)
        with serial.open(
            "/a.sion", "w", chunksizes=[CHUNK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            backend.track_source(payload)
            before = backend.snapshot()
            f.write(payload)  # plain bytearray payload: still zero-copy
            after = backend.snapshot()
        assert after["data_write_calls"] - before["data_write_calls"] == 1
        assert after["copied_fragments"] - before["copied_fragments"] == 0
        assert after["seeks"] - before["seeks"] == 0

    def test_spanning_fread_is_one_backend_call(self):
        backend = counting_backend()
        payload = payload_of(CHUNK * 3 + 17)
        with serial.open(
            "/r.sion", "w", chunksizes=[CHUNK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            f.fwrite(payload)
        with serial.open("/r.sion", "r", backend=backend) as f:
            f.seek(0, 0, 0)
            before = backend.snapshot()
            data = f.fread(len(payload))
            after = backend.snapshot()
        assert data == bytes(payload)
        assert after["data_read_calls"] - before["data_read_calls"] == 1
        assert after["seeks"] - before["seeks"] == 0

    def test_ndarray_payload_is_zero_copy(self):
        backend = counting_backend()
        arr = np.arange(CHUNK * 2 + 64, dtype=np.uint8)
        with serial.open(
            "/n.sion", "w", chunksizes=[CHUNK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            backend.track_source(arr)
            before = backend.snapshot()
            f.fwrite(arr)
            after = backend.snapshot()
        assert after["data_write_calls"] - before["data_write_calls"] == 1
        assert after["copied_fragments"] - before["copied_fragments"] == 0
        with serial.open("/n.sion", "r", backend=backend) as f:
            assert f.read_task(0) == arr.tobytes()


class TestParallelPath:
    def test_taskstream_fwrite_is_one_backend_call(self):
        backend = counting_backend()
        (comm,) = make_world(1)
        payload = payload_of(CHUNK * 3 + 11)
        f = paropen(
            "/p.sion", "w", comm, chunksize=CHUNK, fsblksize=BLK, backend=backend
        )
        backend.track_source(payload)
        before = backend.snapshot()
        f.fwrite(memoryview(payload))
        after = backend.snapshot()
        f.parclose()
        assert after["data_write_calls"] - before["data_write_calls"] == 1
        assert after["fragments_written"] - before["fragments_written"] == 4
        assert after["copied_fragments"] - before["copied_fragments"] == 0
        assert after["seeks"] - before["seeks"] == 0

    def test_shadow_headers_join_the_fragment_list(self):
        """With shadow on, completed-block headers ride the same call."""
        backend = counting_backend()
        (comm,) = make_world(1)
        f = paropen(
            "/sh.sion", "w", comm, chunksize=CHUNK, fsblksize=BLK,
            backend=backend, shadow=True,
        )
        cap = f.chunksize  # capacity net of the shadow header
        payload = payload_of(cap * 3 + 5)  # spans 4 blocks -> 3 headers
        before = backend.snapshot()
        f.fwrite(payload)
        after = backend.snapshot()
        f.parclose()
        assert after["data_write_calls"] - before["data_write_calls"] == 1
        assert after["fragments_written"] - before["fragments_written"] == 4 + 3
        (comm,) = make_world(1)
        g = paropen("/sh.sion", "r", comm, backend=backend)
        assert g.read_all() == bytes(payload)
        g.parclose()

    def test_parallel_read_all_is_one_gather(self):
        backend = counting_backend()
        (comm,) = make_world(1)
        payload = payload_of(CHUNK * 2 + 9)
        f = paropen(
            "/pr.sion", "w", comm, chunksize=CHUNK, fsblksize=BLK, backend=backend
        )
        f.fwrite(payload)
        f.parclose()
        (comm,) = make_world(1)
        g = paropen("/pr.sion", "r", comm, backend=backend)
        before = backend.snapshot()
        data = g.read_all()
        after = backend.snapshot()
        g.parclose()
        assert data == bytes(payload)
        assert after["data_read_calls"] - before["data_read_calls"] == 1


class _FailingWrites:
    """Raw-file decorator whose vectored writes always fail."""

    def __init__(self, inner):
        self._inner = inner

    def scatter_write(self, fragments):
        raise OSError(28, "No space left on device")

    def pwritev(self, offset, views):
        raise OSError(28, "No space left on device")

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestFailureConsistency:
    def test_failed_serial_fwrite_records_no_phantom_bytes(self):
        """ENOSPC mid-fwrite: metablock 2 must not claim unwritten data."""
        sim = SimBackend(SimFS(blocksize_override=BLK))
        f = serial.open(
            "/fail.sion", "w", chunksizes=[CHUNK], fsblksize=BLK, backend=sim
        )
        f._files[0].raw = _FailingWrites(f._files[0].raw)
        f.seek(0, 0, 0)
        try:
            f.fwrite(payload_of(CHUNK * 3))
        except OSError:
            pass
        else:  # pragma: no cover - the fake backend always raises
            raise AssertionError("expected the vectored write to fail")
        f.close()  # still writes metablock 2 from what was recorded
        with serial.open("/fail.sion", "r", backend=sim) as g:
            assert g.get_locations().total_bytes(0) == 0

    def test_failed_taskstream_fwrite_keeps_accounting_clean(self):
        backend = counting_backend()
        (comm,) = make_world(1)
        f = paropen(
            "/ft.sion", "w", comm, chunksize=CHUNK, fsblksize=BLK, backend=backend
        )
        ok = payload_of(CHUNK // 2)
        f.fwrite(ok)
        f._stream.raw = _FailingWrites(f._stream.raw)
        try:
            f.fwrite(payload_of(CHUNK * 3))
        except OSError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected the vectored write to fail")
        # The cursor and block accounting still describe only the good write.
        assert f.tell_logical() == len(ok)
        f._stream.raw = f._stream.raw._inner
        f.parclose()
        with serial.open("/ft.sion", "r", backend=backend) as g:
            assert g.read_task(0) == bytes(ok)

    def test_truncated_file_read_is_distinguishable_from_eof(self):
        """A short gather advances the cursor only past real bytes."""
        from repro.sion.layout import ChunkLayout
        from repro.sion.readwrite import TaskStream

        sim = SimBackend(SimFS(blocksize_override=BLK))
        layout = ChunkLayout(BLK, [CHUNK], 0)
        payload = payload_of(2 * CHUNK)
        with sim.open("/trunc.bin", "w+b") as w:
            w.pwrite(0, payload)
            w.truncate(CHUNK + CHUNK // 2)  # cut half the second chunk
        raw = sim.open("/trunc.bin", "rb")
        stream = TaskStream(raw, layout, 0, "r", blocksizes=[CHUNK, CHUNK])
        data = stream.fread(2 * CHUNK)
        assert data == bytes(payload[: CHUNK + CHUNK // 2])
        assert not stream.feof()  # metadata claims more than the file holds
        assert stream.tell_logical() == CHUNK + CHUNK // 2
        raw.close()


class TestCoalescedPath:
    def test_each_flush_is_one_backend_call(self):
        backend = counting_backend()
        with serial.open(
            "/c.sion", "w", chunksizes=[BLK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            w = CoalescingWriter(f, buffer_size=4 * BLK)
            before = backend.snapshot()
            for i in range(12):  # 12 x 512 B -> 3 flushes of 4 chunks each
                w.write(payload_of(BLK))
            w.close()
            after = backend.snapshot()
            assert w.flushes == 3
        assert after["data_write_calls"] - before["data_write_calls"] == 3
        assert after["fragments_written"] - before["fragments_written"] == 12

    def test_large_write_bypass_is_zero_copy(self):
        backend = counting_backend()
        with serial.open(
            "/cb.sion", "w", chunksizes=[BLK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            w = CoalescingWriter(f, buffer_size=BLK)
            big = payload_of(6 * BLK)
            backend.track_source(big)
            before = backend.snapshot()
            w.write(memoryview(big))
            after = backend.snapshot()
            w.close()
        assert after["data_write_calls"] - before["data_write_calls"] == 1
        assert after["copied_fragments"] - before["copied_fragments"] == 0

    def test_staging_buffer_survives_flush_views(self):
        """Flush hands out views of the bytearray, then resizes it: the
        release discipline must leave no exported buffers behind."""
        backend = counting_backend()
        with serial.open(
            "/cv.sion", "w", chunksizes=[BLK], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            w = CoalescingWriter(f, buffer_size=BLK)
            for i in range(7):
                w.write(payload_of(200))  # misaligned records straddle flushes
            w.close()
            assert w.pending == 0
        with serial.open("/cv.sion", "r", backend=backend) as f:
            assert f.read_task(0) == bytes(payload_of(200) * 7)
