"""Serial access: global view, task-local view, serial write (Listings 3-5)."""

import pytest

from repro.errors import SionUsageError
from repro.sion import paropen, serial
from repro.sion import open_rank
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n):
    return bytes((rank * 13 + i) % 256 for i in range(n))


def _make_multifile(path, backend, ntasks=4, nfiles=2, size=1300, chunksize=TEST_BLKSIZE):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=chunksize, nfiles=nfiles, backend=backend)
        f.fwrite(_payload(comm.rank, size))
        f.parclose()

    run_spmd(ntasks, task)


class TestGlobalView:
    def test_get_locations(self, any_backend):
        backend, base = any_backend
        path = f"{base}/loc.sion"
        _make_multifile(path, backend, ntasks=4, nfiles=2, size=1300)
        with serial.open(path, "r", backend=backend) as sf:
            loc = sf.get_locations()
        assert loc.ntasks == 4
        assert loc.nfiles == 2
        assert loc.fsblksize == TEST_BLKSIZE
        assert loc.chunksizes == [TEST_BLKSIZE] * 4
        # 1300 bytes over 512-byte chunks -> 3 blocks of 512/512/276.
        assert loc.nblocks == [3] * 4
        assert all(sum(b) == 1300 for b in loc.blocksizes)
        assert loc.total_bytes() == 4 * 1300
        assert loc.total_bytes(2) == 1300
        assert loc.file_of_task == [0, 0, 1, 1]

    def test_total_bytes_validates_rank(self, any_backend):
        backend, base = any_backend
        path = f"{base}/tb.sion"
        _make_multifile(path, backend)
        with serial.open(path, "r", backend=backend) as sf:
            with pytest.raises(SionUsageError):
                sf.get_locations().total_bytes(99)

    def test_read_task_returns_full_stream(self, any_backend):
        backend, base = any_backend
        path = f"{base}/rt.sion"
        _make_multifile(path, backend, ntasks=3, size=900)
        with serial.open(path, "r", backend=backend) as sf:
            for r in range(3):
                assert sf.read_task(r) == _payload(r, 900)

    def test_seek_and_chunkwise_read(self, any_backend):
        backend, base = any_backend
        path = f"{base}/seek.sion"
        _make_multifile(path, backend, ntasks=2, size=1300)
        with serial.open(path, "r", backend=backend) as sf:
            sf.seek(rank=1, block=1, pos=10)
            expected = _payload(1, 1300)[TEST_BLKSIZE + 10 :]
            got = sf.fread(len(expected) + 50)
            assert got == expected

    def test_seek_validation(self, any_backend):
        backend, base = any_backend
        path = f"{base}/sv.sion"
        _make_multifile(path, backend, ntasks=2, size=100)
        with serial.open(path, "r", backend=backend) as sf:
            with pytest.raises(SionUsageError):
                sf.seek(rank=9)
            with pytest.raises(SionUsageError):
                sf.seek(0, block=5)
            with pytest.raises(SionUsageError):
                sf.seek(0, block=0, pos=10**9)

    def test_read_within_chunk_and_feof(self, any_backend):
        backend, base = any_backend
        path = f"{base}/chunkread.sion"
        _make_multifile(path, backend, ntasks=2, size=700)
        with serial.open(path, "r", backend=backend) as sf:
            sf.seek(0)
            assert sf.bytes_avail_in_chunk() == TEST_BLKSIZE
            first = sf.read(TEST_BLKSIZE)
            assert sf.bytes_avail_in_chunk() == 700 - TEST_BLKSIZE
            rest = sf.read(10**6)
            assert sf.feof()
            assert first + rest == _payload(0, 700)

    def test_write_ops_rejected_in_read_mode(self, any_backend):
        backend, base = any_backend
        path = f"{base}/ro.sion"
        _make_multifile(path, backend)
        with serial.open(path, "r", backend=backend) as sf:
            with pytest.raises(SionUsageError):
                sf.write(b"x")
            with pytest.raises(SionUsageError):
                sf.ensure_free_space(1)

    def test_closed_file_rejects_everything(self, any_backend):
        backend, base = any_backend
        path = f"{base}/closed.sion"
        _make_multifile(path, backend)
        sf = serial.open(path, "r", backend=backend)
        sf.close()
        sf.close()  # idempotent
        with pytest.raises(SionUsageError):
            sf.get_locations()

    def test_invalid_mode(self, any_backend):
        backend, base = any_backend
        with pytest.raises(SionUsageError):
            serial.open(f"{base}/x.sion", "a", backend=backend)


class TestSerialWrite:
    def test_listing3_pattern(self, any_backend):
        """seek + ensure_free_space + write, then read back in parallel."""
        backend, base = any_backend
        path = f"{base}/sw.sion"
        sizes = [700, 300, 1200]
        sf = serial.open(
            path, "w", chunksizes=[TEST_BLKSIZE] * 3, fsblksize=TEST_BLKSIZE,
            backend=backend,
        )
        for rank, n in enumerate(sizes):
            sf.seek(rank, 0, 0)
            sf.fwrite(_payload(rank, n))
        sf.close()

        def rtask(comm):
            f = paropen(path, "r", comm, backend=backend)
            data = f.read_all()
            f.parclose()
            return data

        out = run_spmd(3, rtask)
        assert all(out[r] == _payload(r, sizes[r]) for r in range(3))

    def test_ensure_free_space_advances_block(self, any_backend):
        backend, base = any_backend
        path = f"{base}/efs.sion"
        sf = serial.open(
            path, "w", chunksizes=[100], fsblksize=TEST_BLKSIZE, backend=backend
        )
        sf.seek(0, 0, 0)
        sf.write(b"x" * 500)
        grew = sf.ensure_free_space(100)
        assert grew
        sf.write(b"y" * 100)
        sf.close()
        with serial.open(path, "r", backend=backend) as back:
            assert back.read_task(0) == b"x" * 500 + b"y" * 100
            assert back.get_locations().nblocks == [2]

    def test_plain_write_overflow_rejected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/ofl.sion"
        sf = serial.open(
            path, "w", chunksizes=[10], fsblksize=TEST_BLKSIZE, backend=backend
        )
        with pytest.raises(SionUsageError):
            sf.write(b"z" * (TEST_BLKSIZE + 1))
        sf.close()

    def test_requires_chunksizes(self, any_backend):
        backend, base = any_backend
        with pytest.raises(SionUsageError):
            serial.open(f"{base}/x.sion", "w", backend=backend)

    def test_multifile_serial_write(self, any_backend):
        backend, base = any_backend
        path = f"{base}/swm.sion"
        sf = serial.open(
            path, "w", chunksizes=[64] * 4, nfiles=2, fsblksize=TEST_BLKSIZE,
            backend=backend,
        )
        for rank in range(4):
            sf.seek(rank)
            sf.write(_payload(rank, 60))
        sf.close()
        with serial.open(path, "r", backend=backend) as back:
            assert back.nfiles == 2
            for rank in range(4):
                assert back.read_task(rank) == _payload(rank, 60)

    def test_sparse_task_left_empty(self, any_backend):
        backend, base = any_backend
        path = f"{base}/sparse.sion"
        sf = serial.open(
            path, "w", chunksizes=[64] * 3, fsblksize=TEST_BLKSIZE, backend=backend
        )
        sf.seek(2)
        sf.write(b"only-two")
        sf.close()
        with serial.open(path, "r", backend=backend) as back:
            assert back.read_task(0) == b""
            assert back.read_task(1) == b""
            assert back.read_task(2) == b"only-two"


class TestRankView:
    def test_open_rank_reads_single_task(self, any_backend):
        backend, base = any_backend
        path = f"{base}/rank.sion"
        _make_multifile(path, backend, ntasks=5, nfiles=2, size=800)
        for r in (0, 2, 4):
            with open_rank(path, r, backend=backend) as rf:
                assert rf.read_all() == _payload(r, 800)

    def test_open_rank_streaming_api(self, any_backend):
        backend, base = any_backend
        path = f"{base}/rankstream.sion"
        _make_multifile(path, backend, ntasks=2, size=1200)
        with open_rank(path, 1, backend=backend) as rf:
            parts = []
            while not rf.feof():
                avail = rf.bytes_avail_in_chunk()
                parts.append(rf.read(avail))
            assert b"".join(parts) == _payload(1, 1200)

    def test_open_rank_fread(self, any_backend):
        backend, base = any_backend
        path = f"{base}/rankfread.sion"
        _make_multifile(path, backend, ntasks=2, size=1200)
        with open_rank(path, 0, backend=backend) as rf:
            a = rf.fread(700)
            b = rf.fread(9999)
            assert a + b == _payload(0, 1200)

    def test_open_rank_out_of_range(self, any_backend):
        backend, base = any_backend
        path = f"{base}/rankoor.sion"
        _make_multifile(path, backend, ntasks=2)
        with pytest.raises(SionUsageError):
            open_rank(path, 7, backend=backend)

    def test_closed_rank_file_rejects_reads(self, any_backend):
        backend, base = any_backend
        path = f"{base}/rankclosed.sion"
        _make_multifile(path, backend, ntasks=2)
        rf = open_rank(path, 0, backend=backend)
        rf.close()
        with pytest.raises(SionUsageError):
            rf.read_all()
