"""The OpenSpec/AccessPlan pipeline: validation, planning, replay guards.

Every entry point funnels through one validated spec, so contradictory
option combinations must fail identically everywhere — loudly, with
:class:`SionUsageError`, before any file is touched.
"""

import pytest

from repro.errors import SionUsageError, SpmdWorkerError
from repro.sion import paropen, serial
from repro.sion.hybrid import paropen_hybrid
from repro.sion.openspec import (
    AccessPlan,
    OpenSpec,
    ReplayGuardedFile,
    compile_plan,
    unwrap_raw,
)
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


# ---------------------------------------------------------------------------
# Contradictory option pairs, one test per pair.


def test_rejects_collectsize_and_collectors_together():
    with pytest.raises(SionUsageError, match="not both"):
        OpenSpec(path="/x", mode="w", chunksize=64, collectsize=4, collectors=2)


def test_rejects_chunksize_and_chunksizes_together():
    with pytest.raises(SionUsageError, match="not both"):
        OpenSpec(path="/x", mode="w", chunksize=64, chunksizes=(64, 64))


def test_rejects_read_with_chunksize():
    with pytest.raises(SionUsageError, match="chunksize contradicts read mode"):
        OpenSpec(path="/x", mode="r", chunksize=64)


def test_rejects_read_with_chunksizes():
    with pytest.raises(SionUsageError, match="chunksizes contradicts read mode"):
        OpenSpec(path="/x", mode="r", chunksizes=(64,))


def test_rejects_read_with_fsblksize():
    with pytest.raises(SionUsageError, match="fsblksize contradicts read mode"):
        OpenSpec(path="/x", mode="r", fsblksize=512)


def test_rejects_read_with_nfiles():
    with pytest.raises(SionUsageError, match="nfiles contradicts read mode"):
        OpenSpec(path="/x", mode="r", nfiles=2)


def test_rejects_read_with_mapping():
    with pytest.raises(SionUsageError, match="mapping contradicts read mode"):
        OpenSpec(path="/x", mode="r", mapping="roundrobin")


def test_rejects_read_with_compress():
    with pytest.raises(SionUsageError, match="compress contradicts read mode"):
        OpenSpec(path="/x", mode="r", compress=True)


def test_rejects_read_with_shadow():
    with pytest.raises(SionUsageError, match="shadow contradicts read mode"):
        OpenSpec(path="/x", mode="r", shadow=True)


def test_rejects_write_with_partitioned():
    with pytest.raises(SionUsageError, match="read mode only"):
        OpenSpec(path="/x", mode="w", chunksize=64, partitioned=True)


def test_rejects_write_without_chunk_geometry():
    with pytest.raises(SionUsageError, match="non-negative chunksize"):
        OpenSpec(path="/x", mode="w")


def test_rejects_negative_chunksize():
    with pytest.raises(SionUsageError, match="non-negative chunksize"):
        OpenSpec(path="/x", mode="w", chunksize=-1)


def test_rejects_bad_mode():
    with pytest.raises(SionUsageError, match="mode must be"):
        OpenSpec(path="/x", mode="a")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"collectsize": 0},
        {"collectors": 0},
        {"nfiles": 0},
        {"fsblksize": 0},
    ],
)
def test_rejects_nonpositive_counts(kwargs):
    with pytest.raises(SionUsageError):
        OpenSpec(path="/x", mode="w", chunksize=64, **kwargs)


# ---------------------------------------------------------------------------
# The same contradictions through the legacy entry points.


def test_paropen_rejects_collectsize_and_collectors(sim_backend):
    def task(comm):
        paropen(
            "/scratch/c.sion", "w", comm, chunksize=64,
            backend=sim_backend, collectsize=2, collectors=2,
        )

    with pytest.raises(SpmdWorkerError) as exc:
        run_spmd(2, task)
    assert any(
        isinstance(e, SionUsageError) for e in exc.value.failures.values()
    )


def test_paropen_rejects_read_with_explicit_nfiles(sim_backend):
    def wtask(comm):
        f = paropen("/scratch/n.sion", "w", comm, chunksize=64, backend=sim_backend)
        f.fwrite(b"x")
        f.parclose()

    run_spmd(2, wtask)

    def rtask(comm):
        paropen("/scratch/n.sion", "r", comm, nfiles=2, backend=sim_backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, rtask)


def test_paropen_read_defaults_are_normalized_away(sim_backend):
    """The legacy defaults (nfiles=1, mapping='blocked') stay accepted."""

    def wtask(comm):
        f = paropen("/scratch/d.sion", "w", comm, chunksize=64, backend=sim_backend)
        f.fwrite(bytes([comm.rank]) * 10)
        f.parclose()

    run_spmd(2, wtask)

    def rtask(comm):
        f = paropen(
            "/scratch/d.sion", "r", comm, nfiles=1, mapping="blocked",
            backend=sim_backend,
        )
        data = f.read_all()
        f.parclose()
        return data

    out = run_spmd(2, rtask)
    assert out == [bytes([0]) * 10, bytes([1]) * 10]


def test_serial_open_rejects_contradictions(sim_backend):
    with pytest.raises(SionUsageError, match="per-task chunk sizes"):
        serial.open("/scratch/s.sion", "w", backend=sim_backend)
    with pytest.raises(SionUsageError, match="mode must be"):
        serial.open("/scratch/s.sion", "x", backend=sim_backend)


def test_hybrid_rejects_contradictions_before_any_open(sim_backend):
    def task(comm):
        paropen_hybrid(
            "/scratch/h.sion", "w", comm, nthreads=2, chunksize=64,
            backend=sim_backend, collectsize=2, collectors=2,
        )

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, task)
    # Validation fired before thread 0's multifile was created.
    assert not sim_backend.exists("/scratch/h.sion.t00")


# ---------------------------------------------------------------------------
# Plan compilation.


def test_compile_write_plan_exposes_duties(sim_backend):
    def task(comm):
        spec = OpenSpec.for_paropen(
            path="/scratch/p.sion", mode="w", chunksize=100, nfiles=2,
        )
        plan = compile_plan(spec, comm, sim_backend)
        return (
            plan.filenum,
            plan.lrank,
            plan.my_path,
            plan.lcom.rank == 0,  # metablock duty: per-file master
            plan.layout.capacity(plan.lrank),
        )

    out = run_spmd(4, task)
    assert [o[0] for o in out] == [0, 0, 1, 1]
    assert [o[1] for o in out] == [0, 1, 0, 1]
    assert out[0][2] == "/scratch/p.sion"
    assert out[2][2] == "/scratch/p.sion.000001"
    assert [o[3] for o in out] == [True, False, True, False]
    assert all(o[4] >= 100 for o in out)


def test_compile_partitioned_read_plan_assignments(sim_backend):
    def wtask(comm):
        f = paropen(
            "/scratch/q.sion", "w", comm, chunksize=64, nfiles=2,
            backend=sim_backend,
        )
        f.fwrite(bytes([comm.rank]) * 8)
        f.parclose()

    run_spmd(6, wtask)

    def rtask(comm):
        spec = OpenSpec.for_paropen(
            path="/scratch/q.sion", mode="r", partitioned=True
        )
        plan = compile_plan(spec, comm, sim_backend)
        assert isinstance(plan, AccessPlan)
        return [(a.grank, a.filenum, a.lrank) for a in plan.assignments]

    out = run_spmd(2, rtask)
    # Balanced contiguous slices over 6 writers in 2 files of 3.
    assert out[0] == [(0, 0, 0), (1, 0, 1), (2, 0, 2)]
    assert out[1] == [(3, 1, 0), (4, 1, 1), (5, 1, 2)]


# ---------------------------------------------------------------------------
# Replay guards.


def test_unwrap_raw_returns_inner_handle(sim_backend):
    class _Comm:
        def exec_once(self, fn):
            return fn()

    with sim_backend.open("/scratch/g.bin", "w+b") as raw:
        guarded = ReplayGuardedFile(raw, _Comm())
        assert unwrap_raw(guarded) is raw
        assert unwrap_raw(raw) is raw
        assert guarded.unguarded is raw
        assert guarded.pwrite(0, b"abcd") == 4
        assert guarded.pread(0, 4) == b"abcd"


def test_direct_mode_counts_identical_across_engines():
    """The exec_once satellite: no replay inflation in direct mode."""
    from repro.backends.instrument import CountingBackend
    from repro.backends.simfs_backend import SimBackend
    from repro.fs.simfs import SimFS

    counts = {}
    for engine in ("threads", "bulk"):
        backend = CountingBackend(SimBackend(SimFS(blocksize_override=TEST_BLKSIZE)))
        n = 8

        def wtask(comm):
            f = paropen(
                "/e.sion", "w", comm, chunksize=TEST_BLKSIZE, backend=backend
            )
            f.fwrite(bytes([comm.rank]) * 700)  # spans two chunks
            f.parclose()

        run_spmd(n, wtask, engine=engine)

        def rtask(comm):
            f = paropen("/e.sion", "r", comm, backend=backend)
            data = f.read_all()
            f.parclose()
            return len(data)

        assert run_spmd(n, rtask, engine=engine) == [700] * n
        snap = backend.snapshot()
        counts[engine] = (
            snap["data_write_calls"],
            snap["data_read_calls"],
            snap["opens"],
        )
        # One scatter_write per task + the 3 metadata writes.
        assert snap["data_write_calls"] == n + 3
        # One gather_read per task + probe (4) + per-file metadata (8).
        assert snap["data_read_calls"] == n + 12
    assert counts["threads"] == counts["bulk"]
