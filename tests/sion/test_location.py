"""get_current_location / tell_logical introspection."""

from repro.sion import paropen
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def test_location_tracks_writes(any_backend):
    backend, base = any_backend
    path = f"{base}/loc.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        locs = [f.get_current_location()]
        f.fwrite(b"x" * 100)
        locs.append(f.get_current_location())
        f.fwrite(b"y" * TEST_BLKSIZE)  # crosses into block 1
        locs.append(f.get_current_location())
        told = f.tell_logical()
        f.parclose()
        return locs, told

    out = run_spmd(2, task)
    for locs, told in out:
        assert locs[0] == (0, 0)
        assert locs[1] == (0, 100)
        assert locs[2] == (1, 100)  # 512 bytes wrapped into the next chunk
        assert told == 100 + TEST_BLKSIZE


def test_location_tracks_reads(any_backend):
    backend, base = any_backend
    path = f"{base}/locr.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        f.fwrite(b"z" * 800)
        f.parclose()

    run_spmd(2, wtask)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        a = f.get_current_location()
        f.fread(600)
        b = f.get_current_location()
        t = f.tell_logical()
        f.parclose()
        return a, b, t

    for a, b, t in run_spmd(2, rtask):
        assert a == (0, 0)
        assert b == (1, 600 - TEST_BLKSIZE)
        assert t == 600


def test_rank_view_location(any_backend):
    backend, base = any_backend
    path = f"{base}/locrank.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        f.fwrite(bytes([comm.rank]) * 700)
        f.parclose()

    run_spmd(2, wtask)
    from repro.sion import open_rank

    with open_rank(path, 1, backend=backend) as rf:
        assert rf.get_current_location() == (0, 0)
        rf.fread(550)
        block, pos = rf.get_current_location()
        assert (block, pos) == (1, 550 - TEST_BLKSIZE)
        assert rf.tell_logical() == 550
