"""Vectorized metadata plane == scalar reference, byte for byte.

ISSUE 3 replaced the per-task Python loops of the metadata plane
(:class:`ChunkLayout` geometry, metablock 1/2 array codecs, the mapping
table) with whole-array operations.  These property tests pin the
refactor: for any input, the ndarray paths must reproduce the scalar
reference implementations exactly — same integers, same encoded bytes.
"""

import io
import struct

from hypothesis import given, settings, strategies as st

from repro.sion.constants import MAPPING_CUSTOM
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import (
    ChunkLayout,
    _VECTOR_MIN_TASKS,
    scalar_chunk_geometry,
)
from repro.sion.mapping import TaskMapping

# Sizes beyond the vector threshold exercise the ndarray path; tiny and
# adversarially huge values exercise the scalar fallback.
_sizes = st.integers(min_value=0, max_value=1 << 45)
_fsblk = st.sampled_from([1, 512, 4096, 65536, 2 << 20])


class TestChunkGeometry:
    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(_sizes, min_size=1, max_size=2 * _VECTOR_MIN_TASKS),
        fsblk=_fsblk,
    )
    def test_layout_matches_scalar_reference(self, chunks, fsblk):
        lay = ChunkLayout(fsblk, chunks, metablock1_size=123)
        aligned, prefix, capacity = scalar_chunk_geometry(chunks, fsblk)
        assert lay.aligned_sizes == aligned
        assert lay.chunk_prefix == prefix
        assert lay.block_capacity == capacity

    @settings(max_examples=10, deadline=None)
    @given(chunks=st.lists(st.integers(2**62, 2**68), min_size=1, max_size=80))
    def test_huge_values_fall_back_to_exact_big_ints(self, chunks):
        # Values past the int64-safe bound must not wrap: the scalar
        # big-int path takes over and stays exact.
        lay = ChunkLayout(4096, chunks, metablock1_size=0)
        aligned, prefix, capacity = scalar_chunk_geometry(chunks, 4096)
        assert lay.aligned_sizes == aligned
        assert lay.chunk_prefix == prefix
        assert lay.block_capacity == capacity


def _scalar_mb1_encode(mb1: Metablock1) -> bytes:
    """The pre-vectorization encoder, kept verbatim as a reference."""
    from repro.sion.constants import FORMAT_VERSION, MAGIC_MB1

    head = struct.pack(
        "<8sIIQIIIIQQ",
        MAGIC_MB1,
        FORMAT_VERSION,
        mb1.flags,
        mb1.fsblksize,
        mb1.ntasks_local,
        mb1.nfiles,
        mb1.filenum,
        mb1.ntasks_global,
        mb1.start_of_data,
        mb1.metablock2_offset,
    )
    parts = [head]
    parts.append(struct.pack(f"<{mb1.ntasks_local}Q", *mb1.globalranks))
    parts.append(struct.pack(f"<{mb1.ntasks_local}Q", *mb1.chunksizes))
    parts.append(struct.pack("<I", mb1.mapping_kind))
    if mb1.mapping_kind == MAPPING_CUSTOM and mb1.filenum == 0:
        flat = [v for pair in mb1.mapping_table for v in pair]
        parts.append(struct.pack(f"<{2 * mb1.ntasks_global}I", *flat))
    return b"".join(parts)


def _scalar_mb2_encode(mb2: Metablock2) -> bytes:
    """The pre-vectorization encoder, kept verbatim as a reference."""
    import zlib

    from repro.sion.constants import MAGIC_MB2

    parts = [struct.pack("<8sI", MAGIC_MB2, mb2.ntasks_local)]
    nblocks = [len(b) for b in mb2.blocksizes]
    parts.append(struct.pack(f"<{mb2.ntasks_local}I", *nblocks))
    parts.extend(
        struct.pack(f"<{len(blocks)}Q", *blocks) for blocks in mb2.blocksizes
    )
    payload = b"".join(parts)
    return payload + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)


class TestMetablock1Bytes:
    @settings(max_examples=30, deadline=None)
    @given(
        ntasks=st.integers(1, 200),
        fsblk=_fsblk,
        data=st.data(),
    )
    def test_encode_matches_struct_reference(self, ntasks, fsblk, data):
        chunks = data.draw(
            st.lists(
                st.integers(0, 1 << 45), min_size=ntasks, max_size=ntasks
            )
        )
        mb1 = Metablock1(
            fsblksize=fsblk,
            ntasks_local=ntasks,
            nfiles=1,
            filenum=0,
            ntasks_global=ntasks,
            start_of_data=fsblk,
            metablock2_offset=0,
            globalranks=list(range(ntasks)),
            chunksizes=chunks,
        )
        raw = mb1.encode()
        assert raw == _scalar_mb1_encode(mb1)
        back = Metablock1.decode_from(io.BytesIO(raw))
        assert back == mb1

    @settings(max_examples=20, deadline=None)
    @given(ntasks=st.integers(1, 150), nfiles=st.integers(1, 7), seed=st.randoms())
    def test_custom_mapping_table_bytes_and_roundtrip(self, ntasks, nfiles, seed):
        nfiles = min(nfiles, ntasks)
        file_of = [seed.randrange(nfiles) for _ in range(ntasks)]
        for f in range(nfiles):  # every file non-empty
            file_of[seed.randrange(ntasks)] = f if f < ntasks else 0
        try:
            tmap = TaskMapping.custom(file_of)
        except Exception:
            return  # a file ended up empty; not this test's concern
        members = tmap.tasks_of_file(0)
        mb1 = Metablock1(
            fsblksize=4096,
            ntasks_local=len(members),
            nfiles=tmap.nfiles,
            filenum=0,
            ntasks_global=ntasks,
            start_of_data=4096,
            metablock2_offset=0,
            globalranks=members,
            chunksizes=[1024] * len(members),
            mapping_kind=MAPPING_CUSTOM,
            mapping_table=tmap.table_pairs(),
        )
        raw = mb1.encode()
        assert raw == _scalar_mb1_encode(mb1)
        back = Metablock1.decode_from(io.BytesIO(raw))
        assert back.mapping_table == tmap.table_pairs()


class TestMetablock2Bytes:
    @settings(max_examples=40, deadline=None)
    @given(
        blocksizes=st.lists(
            st.lists(st.integers(0, 1 << 50), min_size=0, max_size=6),
            min_size=1,
            max_size=120,
        )
    )
    def test_encode_matches_struct_reference_and_roundtrips(self, blocksizes):
        mb2 = Metablock2(blocksizes=blocksizes)
        raw = mb2.encode()
        assert raw == _scalar_mb2_encode(mb2)
        buf = io.BytesIO(b"\x00" * 64 + raw)
        back = Metablock2.decode_from(buf, 64)
        assert back.blocksizes == blocksizes


class TestMappingEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ntasks=st.integers(1, 400), nfiles=st.integers(1, 32))
    def test_blocked_matches_scalar_reference(self, ntasks, nfiles):
        if nfiles > ntasks:
            return
        m = TaskMapping.blocked(ntasks, nfiles)
        # Scalar reference: walk files front-loaded, assigning in order.
        base, extra = divmod(ntasks, nfiles)
        expect = []
        for f in range(nfiles):
            expect.extend((f, lr) for lr in range(base + (1 if f < extra else 0)))
        assert m.table_pairs() == expect

    @settings(max_examples=40, deadline=None)
    @given(ntasks=st.integers(1, 400), nfiles=st.integers(1, 32))
    def test_roundrobin_matches_scalar_reference(self, ntasks, nfiles):
        if nfiles > ntasks:
            return
        m = TaskMapping.roundrobin(ntasks, nfiles)
        counters = [0] * nfiles
        expect = []
        for r in range(ntasks):
            f = r % nfiles
            expect.append((f, counters[f]))
            counters[f] += 1
        assert m.table_pairs() == expect

    @settings(max_examples=40, deadline=None)
    @given(
        file_of=st.lists(st.integers(0, 5), min_size=1, max_size=300),
    )
    def test_custom_matches_scalar_reference(self, file_of):
        # Compact the file ids so every file is used (valid input).
        used = sorted(set(file_of))
        remap = {f: i for i, f in enumerate(used)}
        file_of = [remap[f] for f in file_of]
        m = TaskMapping.custom(file_of)
        counters = [0] * (max(file_of) + 1)
        expect = []
        for f in file_of:
            expect.append((f, counters[f]))
            counters[f] += 1
        assert m.table_pairs() == expect
        assert m.ntasks == len(file_of)
