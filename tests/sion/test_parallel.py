"""Collective parallel write/read of multifiles (paper Listings 1-2)."""

import pytest

from repro.errors import (
    SionChunkOverflowError,
    SionUsageError,
    SpmdWorkerError,
)
from repro.sion import paropen
from repro.sion.mapping import physical_path
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n):
    return bytes((rank * 31 + i) % 256 for i in range(n))


def _write(path, backend, ntasks, sizes, chunksize=1024, nfiles=1, **kw):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=chunksize, nfiles=nfiles,
                    backend=backend, **kw)
        f.fwrite(_payload(comm.rank, sizes[comm.rank]))
        f.parclose()

    run_spmd(ntasks, task)


def _read_all(path, backend, ntasks):
    def task(comm):
        f = paropen(path, "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    return run_spmd(ntasks, task)


@pytest.mark.parametrize("ntasks,nfiles", [(1, 1), (2, 1), (4, 2), (7, 3), (8, 8)])
def test_roundtrip_shapes(any_backend, ntasks, nfiles):
    backend, base = any_backend
    path = f"{base}/rt.sion"
    sizes = [100 + 37 * r for r in range(ntasks)]
    _write(path, backend, ntasks, sizes, nfiles=nfiles)
    out = _read_all(path, backend, ntasks)
    for r in range(ntasks):
        assert out[r] == _payload(r, sizes[r])


def test_physical_files_created(any_backend):
    backend, base = any_backend
    path = f"{base}/phys.sion"
    _write(path, backend, 6, [10] * 6, nfiles=3)
    for f in range(3):
        assert backend.exists(physical_path(path, f))
    assert not backend.exists(physical_path(path, 3))


def test_multi_block_growth(any_backend):
    backend, base = any_backend
    path = f"{base}/grow.sion"
    # Chunk 512 (one test block); 2500 bytes per task -> 5 blocks.
    _write(path, backend, 3, [2500] * 3, chunksize=TEST_BLKSIZE)
    out = _read_all(path, backend, 3)
    assert all(out[r] == _payload(r, 2500) for r in range(3))


def test_per_task_chunk_sizes(any_backend):
    backend, base = any_backend
    path = f"{base}/varchunk.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=100 * (comm.rank + 1), backend=backend)
        f.fwrite(_payload(comm.rank, 5000))
        f.parclose()

    run_spmd(4, task)
    out = _read_all(path, backend, 4)
    assert all(out[r] == _payload(r, 5000) for r in range(4))


def test_ensure_free_space_then_plain_write(any_backend):
    backend, base = any_backend
    path = f"{base}/ansi.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        grew = []
        for _ in range(5):
            data = _payload(comm.rank, 400)
            grew.append(f.ensure_free_space(len(data)))
            f.write(data)
        f.parclose()
        return grew

    grew = run_spmd(2, task)
    # 512-byte chunks, 400-byte writes: every write after the first grows.
    assert grew[0] == [False, True, True, True, True]
    out = _read_all(path, backend, 2)
    assert all(out[r] == _payload(r, 400) * 5 for r in range(2))


def test_plain_write_overflow_raises(any_backend):
    backend, base = any_backend
    path = f"{base}/overflow.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        f.write(b"x" * (TEST_BLKSIZE + 1))

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, task)
    assert any(
        isinstance(e, SionChunkOverflowError) for e in exc_info.value.failures.values()
    )


def test_ensure_free_space_larger_than_chunk_raises(any_backend):
    backend, base = any_backend
    path = f"{base}/toolarge.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=100, backend=backend)
        f.ensure_free_space(10**6)

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, task)


def test_bytes_left_and_avail(any_backend):
    backend, base = any_backend
    path = f"{base}/avail.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        assert f.bytes_left_in_chunk() == TEST_BLKSIZE
        f.write(b"ab")
        assert f.bytes_left_in_chunk() == TEST_BLKSIZE - 2
        f.parclose()

    run_spmd(2, wtask)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        avail = f.bytes_avail_in_chunk()
        first = f.read(1)
        rest_avail = f.bytes_avail_in_chunk()
        rest = f.read(100)
        eof = f.feof()
        f.parclose()
        return avail, first, rest_avail, rest, eof

    out = run_spmd(2, rtask)
    for avail, first, rest_avail, rest, eof in out:
        assert avail == 2
        assert first == b"a"
        assert rest_avail == 1
        assert rest == b"b"
        assert eof


def test_feof_loop_reads_everything(any_backend):
    """The paper's Listing 2 read loop."""
    backend, base = any_backend
    path = f"{base}/listing2.sion"
    _write(path, backend, 3, [1700] * 3, chunksize=TEST_BLKSIZE)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        parts = []
        while not f.feof():
            btoread = f.bytes_avail_in_chunk()
            parts.append(f.read(btoread))
        f.parclose()
        return b"".join(parts)

    out = run_spmd(3, rtask)
    assert all(out[r] == _payload(r, 1700) for r in range(3))


def test_fread_crosses_chunks(any_backend):
    backend, base = any_backend
    path = f"{base}/fread.sion"
    _write(path, backend, 2, [1500] * 2, chunksize=TEST_BLKSIZE)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        head = f.fread(1000)  # crosses the 512-byte chunk boundary
        tail = f.fread(10**6)
        assert f.feof()
        f.parclose()
        return head + tail

    out = run_spmd(2, rtask)
    assert all(out[r] == _payload(r, 1500) for r in range(2))


def test_task_writing_nothing(any_backend):
    backend, base = any_backend
    path = f"{base}/empty.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=100, backend=backend)
        if comm.rank != 1:
            f.fwrite(_payload(comm.rank, 50))
        f.parclose()

    run_spmd(3, wtask)
    out = _read_all(path, backend, 3)
    assert out[0] == _payload(0, 50)
    assert out[1] == b""
    assert out[2] == _payload(2, 50)


def test_zero_byte_multifile(any_backend):
    backend, base = any_backend
    path = f"{base}/allempty.sion"

    def wtask(comm):
        paropen(path, "w", comm, chunksize=64, backend=backend).parclose()

    run_spmd(4, wtask)
    assert _read_all(path, backend, 4) == [b""] * 4


def test_mode_mismatch_operations_raise(any_backend):
    backend, base = any_backend
    path = f"{base}/modes.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=64, backend=backend)
        errors = []
        for op in (lambda: f.fread(1), lambda: f.feof(), lambda: f.bytes_avail_in_chunk()):
            try:
                op()
            except SionUsageError:
                errors.append(True)
        f.parclose()
        try:
            f.fwrite(b"late")
        except SionUsageError:
            errors.append(True)
        return errors

    out = run_spmd(2, task)
    assert all(e == [True, True, True, True] for e in out)


def test_write_requires_chunksize(any_backend):
    backend, base = any_backend

    def task(comm):
        paropen(f"{base}/x.sion", "w", comm, backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, task)


def test_invalid_mode_rejected(any_backend):
    backend, base = any_backend

    def task(comm):
        paropen(f"{base}/x.sion", "a", comm, chunksize=10, backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(1, task)


def test_read_with_wrong_world_size_raises(any_backend):
    backend, base = any_backend
    path = f"{base}/wrongsize.sion"
    _write(path, backend, 4, [10] * 4)

    def rtask(comm):
        paropen(path, "r", comm, backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(3, rtask)


def test_context_manager_closes_collectively(any_backend):
    backend, base = any_backend
    path = f"{base}/ctx.sion"

    def task(comm):
        with paropen(path, "w", comm, chunksize=64, backend=backend) as f:
            f.fwrite(b"ctx")
        return True

    assert run_spmd(2, task) == [True, True]
    assert _read_all(path, backend, 2) == [b"ctx", b"ctx"]


def test_double_close_raises(any_backend):
    backend, base = any_backend
    path = f"{base}/dbl.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=64, backend=backend)
        f.parclose()
        f.parclose()

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, task)


def test_roundrobin_mapping_roundtrip(any_backend):
    backend, base = any_backend
    path = f"{base}/rr.sion"
    sizes = [64 * (r + 1) for r in range(6)]

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=256, nfiles=3,
                    mapping="roundrobin", backend=backend)
        f.fwrite(_payload(comm.rank, sizes[comm.rank]))
        f.parclose()
        return f.filenum

    filenums = run_spmd(6, wtask)
    assert filenums == [0, 1, 2, 0, 1, 2]
    out = _read_all(path, backend, 6)
    assert all(out[r] == _payload(r, sizes[r]) for r in range(6))


def test_custom_mapping_roundtrip(any_backend):
    backend, base = any_backend
    path = f"{base}/custom.sion"
    file_of_task = [1, 1, 0, 0]

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=128, nfiles=2,
                    mapping=file_of_task, backend=backend)
        f.fwrite(_payload(comm.rank, 99))
        f.parclose()
        return f.filenum

    assert run_spmd(4, wtask) == file_of_task
    out = _read_all(path, backend, 4)
    assert all(out[r] == _payload(r, 99) for r in range(4))


def test_explicit_fsblksize_recorded(any_backend):
    backend, base = any_backend
    path = f"{base}/blk.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=100, fsblksize=256, backend=backend)
        f.fwrite(b"z" * 300)
        f.parclose()
        return f.fsblksize, f.chunksize

    out = run_spmd(2, wtask)
    # Capacity = chunk rounded up to the configured 256-byte granularity.
    assert out == [(256, 256), (256, 256)]


def test_handle_introspection(any_backend):
    backend, base = any_backend
    path = f"{base}/intro.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=100, nfiles=2, backend=backend)
        info = (f.filenum, f.local_rank, f.closed)
        f.parclose()
        return (*info, f.closed)

    out = run_spmd(4, wtask)
    assert out == [(0, 0, False, True), (0, 1, False, True),
                   (1, 0, False, True), (1, 1, False, True)]
