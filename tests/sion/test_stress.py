"""Scale and randomized-property stress for the parallel layer."""

from hypothesis import given, settings, strategies as st

from repro.backends.simfs_backend import SimBackend
from repro.fs.simfs import SimFS
from repro.sion import paropen, serial
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _fresh_backend():
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/scratch")
    return SimBackend(fs)


def test_128_rank_roundtrip():
    backend = _fresh_backend()
    path = "/scratch/big.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=256, nfiles=8, backend=backend)
        f.fwrite(bytes([comm.rank % 256]) * (100 + comm.rank))
        f.parclose()

    run_spmd(128, task)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    out = run_spmd(128, rtask)
    for r in range(128):
        assert out[r] == bytes([r % 256]) * (100 + r)


def test_many_sequential_multifiles_per_world():
    backend = _fresh_backend()

    def task(comm):
        total = 0
        for gen in range(20):
            path = f"/scratch/gen{gen}.sion"
            f = paropen(path, "w", comm, chunksize=128, backend=backend)
            f.fwrite(f"{gen}:{comm.rank}".encode())
            f.parclose()
            total += 1
        return total

    assert run_spmd(4, task) == [20] * 4
    with serial.open("/scratch/gen19.sion", "r", backend=backend) as sf:
        assert sf.read_task(3) == b"19:3"


def test_interleaved_write_phases_many_blocks():
    """Hundreds of tiny ensure_free_space cycles build a deep block chain."""
    backend = _fresh_backend()
    path = "/scratch/deep.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        for i in range(200):
            piece = bytes([(comm.rank + i) % 256]) * 37
            f.ensure_free_space(len(piece))
            f.write(piece)
        f.parclose()

    run_spmd(4, task)
    with serial.open(path, "r", backend=backend) as sf:
        loc = sf.get_locations()
        assert max(loc.nblocks) >= 200 * 37 // TEST_BLKSIZE
        for r in range(4):
            expected = b"".join(bytes([(r + i) % 256]) * 37 for i in range(200))
            assert sf.read_task(r) == expected


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 3000), min_size=1, max_size=10),
    nfiles=st.integers(1, 4),
    chunksize=st.sampled_from([64, 200, 512, 1500]),
)
def test_roundtrip_property_random_shapes(sizes, nfiles, chunksize):
    """Any (sizes, nfiles, chunksize) combination must roundtrip exactly."""
    backend = _fresh_backend()
    path = "/scratch/prop.sion"
    ntasks = len(sizes)
    nfiles = min(nfiles, ntasks)

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=chunksize, nfiles=nfiles,
                    backend=backend)
        f.fwrite(bytes((comm.rank + i) % 256 for i in range(sizes[comm.rank])))
        f.parclose()

    run_spmd(ntasks, wtask)
    with serial.open(path, "r", backend=backend) as sf:
        loc = sf.get_locations()
        assert loc.total_bytes() == sum(sizes)
        for r in range(ntasks):
            expected = bytes((r + i) % 256 for i in range(sizes[r]))
            assert sf.read_task(r) == expected


@settings(max_examples=15, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.booleans(), st.integers(1, 400)), min_size=1, max_size=20
    )
)
def test_mixed_write_fwrite_property(writes):
    """Interleaving guarded plain writes and fwrites preserves the stream."""
    backend = _fresh_backend()
    path = "/scratch/mixed.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        expected = bytearray()
        for j, (use_plain, n) in enumerate(writes):
            data = bytes([(comm.rank * 7 + j) % 256]) * n
            if use_plain:
                f.ensure_free_space(len(data))
                f.write(data)
            else:
                f.fwrite(data)
            expected.extend(data)
        f.parclose()
        return bytes(expected)

    expected = run_spmd(2, task)
    with serial.open(path, "r", backend=backend) as sf:
        for r in range(2):
            assert sf.read_task(r) == expected[r]
