"""Collector-rank aggregation (ISSUE 4): byte-identical, fewer writers.

The contract under test:

* collective-mode multifiles are **byte-identical** to direct-mode files
  for arbitrary write schedules (hypothesis-verified), on both SPMD
  engines, across nfiles x collectsize shapes;
* backend data calls scale with the number of collectors, not tasks;
* the serial tools (``serial.open``, ``open_rank``, dump/cat/verify)
  read collector-written files **without any changes** — the aggregation
  is invisible outside the open file handle.
"""

from __future__ import annotations

import io

from hypothesis import given, settings, strategies as st
import pytest

from repro.backends.instrument import CountingBackend
from repro.backends.simfs_backend import SimBackend
from repro.errors import SionUsageError, SpmdWorkerError
from repro.fs.simfs import SimFS
from repro.simmpi import run_spmd
from repro.sion import SionCollectiveFile, paropen, resolve_collectsize, serial
from repro.sion.mapping import physical_path
from repro.utils.cat import cat_rank
from repro.utils.dump import dump_multifile
from repro.utils.verify import verify_multifile

BLK = 512
ENGINES = ("threads", "bulk")


def _backend():
    fs = SimFS(blocksize_override=BLK)
    fs.mkdir("/s")
    return SimBackend(fs)


def _payload(rank: int, n: int) -> bytes:
    return bytes((rank * 31 + i) % 256 for i in range(n))


def _physical_bytes(backend, path: str, nfiles: int) -> list[bytes]:
    out = []
    for fn in range(nfiles):
        p = physical_path(path, fn)
        with backend.open(p, "rb") as f:
            out.append(f.read(backend.file_size(p)))
    return out


def _write(backend, ntasks, schedules, *, engine="threads", collectsize=None,
           nfiles=1, chunksize=BLK, path="/s/c.sion", **kw):
    """Each rank fwrite()s its schedule's pieces in order."""

    def task(comm):
        f = paropen(path, "w", comm, chunksize=chunksize, nfiles=nfiles,
                    backend=backend, collectsize=collectsize, **kw)
        pos = 0
        for size in schedules[comm.rank]:
            f.fwrite(_payload(comm.rank, pos + size)[pos:])
            pos += size
        f.parclose()

    run_spmd(ntasks, task, engine=engine)


def _read_all(backend, ntasks, *, engine="threads", collectsize=None,
              path="/s/c.sion"):
    def task(comm):
        f = paropen(path, "r", comm, backend=backend, collectsize=collectsize)
        data = f.read_all()
        f.parclose()
        return data

    return run_spmd(ntasks, task, engine=engine)


# --------------------------------------------------------------------------
# Conformance matrix: engines x nfiles x collectsize.


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("ntasks,nfiles,collectsize", [
    (1, 1, 1),      # degenerate: every task its own collector
    (4, 1, 2),
    (6, 2, 2),
    (7, 3, 3),      # uneven groups and uneven files
    (8, 1, 8),      # one collector for the whole file
    (8, 2, 64),     # collectsize larger than the file: clamps to one group
])
def test_conformance_matrix_byte_identical(engine, ntasks, nfiles, collectsize):
    sizes = [100 + 137 * r for r in range(ntasks)]  # multi-block for most
    schedules = [[s] for s in sizes]
    direct = _backend()
    _write(direct, ntasks, schedules, engine=engine, nfiles=nfiles)
    coll = _backend()
    _write(coll, ntasks, schedules, engine=engine, nfiles=nfiles,
           collectsize=collectsize)
    assert _physical_bytes(direct, "/s/c.sion", nfiles) == _physical_bytes(
        coll, "/s/c.sion", nfiles
    )
    # Collective read-back of a collective-written file round-trips.
    out = _read_all(coll, ntasks, engine=engine, collectsize=collectsize)
    assert out == [_payload(r, sizes[r]) for r in range(ntasks)]


@pytest.mark.parametrize("engine", ENGINES)
def test_cross_mode_readback(engine):
    # Direct-written files read collectively and vice versa.
    sizes = [700 + 43 * r for r in range(5)]
    schedules = [[s] for s in sizes]
    expected = [_payload(r, sizes[r]) for r in range(5)]
    a = _backend()
    _write(a, 5, schedules, engine=engine)  # direct write
    assert _read_all(a, 5, engine=engine, collectsize=2) == expected
    b = _backend()
    _write(b, 5, schedules, engine=engine, collectsize=3)  # collective write
    assert _read_all(b, 5, engine=engine) == expected


@pytest.mark.parametrize("feature", ["shadow", "compress"])
def test_shadow_and_compress_ride_along(feature):
    kw = {feature: True}
    schedules = [[800, 800, 900]] * 4
    direct = _backend()
    _write(direct, 4, schedules, **kw)
    coll = _backend()
    _write(coll, 4, schedules, collectsize=2, **kw)
    assert _physical_bytes(direct, "/s/c.sion", 1) == _physical_bytes(
        coll, "/s/c.sion", 1
    )
    out = _read_all(coll, 4, collectsize=2)
    assert out == [_payload(r, 2500) for r in range(4)]


# --------------------------------------------------------------------------
# Hypothesis: arbitrary write schedules are byte-identical to direct mode.


@settings(max_examples=25, deadline=None)
@given(
    schedules=st.lists(
        st.lists(st.integers(min_value=0, max_value=1300), min_size=0, max_size=4),
        min_size=2,
        max_size=6,
    ),
    nfiles=st.integers(min_value=1, max_value=3),
    collectsize=st.integers(min_value=1, max_value=7),
    chunksize=st.sampled_from([128, 500, 512]),
)
def test_arbitrary_schedules_byte_identical(schedules, nfiles, collectsize, chunksize):
    ntasks = len(schedules)
    nfiles = min(nfiles, ntasks)
    direct = _backend()
    _write(direct, ntasks, schedules, nfiles=nfiles, chunksize=chunksize)
    coll = _backend()
    _write(coll, ntasks, schedules, nfiles=nfiles, chunksize=chunksize,
           collectsize=collectsize)
    assert _physical_bytes(direct, "/s/c.sion", nfiles) == _physical_bytes(
        coll, "/s/c.sion", nfiles
    )
    expected = [_payload(r, sum(s)) for r, s in enumerate(schedules)]
    assert _read_all(coll, ntasks, collectsize=collectsize) == expected


# --------------------------------------------------------------------------
# Aggregation facts: calls scale with collectors; handle surface.


def test_backend_calls_scale_with_collectors():
    ntasks, collectsize = 12, 4  # -> 3 collectors
    backend = CountingBackend(_backend())
    schedules = [[64]] * ntasks
    _write(backend, ntasks, schedules, collectsize=collectsize)
    calls = dict(backend.stats.calls)
    assert calls["scatter_write"] == 3  # one wave per collector
    assert backend.snapshot()["data_write_calls"] == 3 + 3  # + mb1/mb2/patch
    assert backend.snapshot()["opens"] == 3 + 1  # collectors + mb1 create
    before = backend.snapshot()
    _read_all(backend, ntasks, collectsize=collectsize)
    assert dict(backend.stats.calls)["gather_read"] == 3  # one prefetch each
    # Collector handles + the world probe + the file master's metadata load.
    assert backend.snapshot()["opens"] - before["opens"] == 3 + 2


def test_handle_surface_and_flush_collective():
    backend = CountingBackend(_backend())

    def task(comm):
        f = paropen("/s/w.sion", "w", comm, chunksize=BLK, backend=backend,
                    collectors=2)
        assert isinstance(f, SionCollectiveFile)
        f.fwrite(_payload(comm.rank, 300))
        f.flush_collective()  # explicit early wave
        comm.barrier()  # both collectors' waves done before sampling
        waves_after_flush = backend.stats.calls.get("scatter_write", 0)
        f.fwrite(_payload(comm.rank, 600)[300:])
        f.parclose()
        return (f.collectsize, f.is_collector, f.collector_lrank,
                waves_after_flush)

    out = run_spmd(4, task)
    assert [o[0] for o in out] == [2, 2, 2, 2]
    assert [o[1] for o in out] == [True, False, True, False]
    assert [o[2] for o in out] == [0, 0, 2, 2]
    assert all(o[3] == 2 for o in out)  # both collectors flushed early
    # Two waves per collector in total.
    assert backend.stats.calls["scatter_write"] == 4
    assert _read_all(backend, 4, path="/s/w.sion") == [
        _payload(r, 600) for r in range(4)
    ]


def test_senders_never_touch_the_store():
    class ExplodingBackend(CountingBackend):
        def __init__(self, inner, allowed):
            super().__init__(inner)
            self.allowed = allowed

        def open(self, path, mode):
            import threading

            name = threading.current_thread().name
            if name.startswith("spmd-rank-") and name not in self.allowed:
                raise AssertionError(f"sender {name} opened the store")
            return super().open(path, mode)

    # collectsize 4 over 4 tasks -> only rank 0 may open (thread engine
    # names worker threads spmd-rank-N).
    backend = ExplodingBackend(_backend(), {"spmd-rank-0"})
    _write(backend, 4, [[256]] * 4, collectsize=4)
    assert backend.snapshot()["opens"] == 2  # mb1 create + collector handle


# --------------------------------------------------------------------------
# Serial tools need no changes: prove it on a collector-written file.


def test_serial_tools_read_collective_files_unchanged():
    backend = _backend()
    sizes = [900, 0, 1400, 333]
    _write(backend, 4, [[s] for s in sizes], collectsize=3, nfiles=2)

    # Global view: locations account exactly the written bytes.
    with serial.open("/s/c.sion", "r", backend=backend) as sf:
        loc = sf.get_locations()
        assert loc.total_bytes() == sum(sizes)
        for r, size in enumerate(sizes):
            assert loc.total_bytes(r) == size

    # Task-local view via open_rank (what cat uses).
    sink = io.BytesIO()
    assert cat_rank("/s/c.sion", 2, out=sink, backend=backend) == 1400
    assert sink.getvalue() == _payload(2, 1400)

    # Dump and verify run clean.
    summary = dump_multifile("/s/c.sion", backend=backend)
    assert summary.ntasks == 4 and summary.nfiles == 2
    assert summary.total_bytes == sum(sizes)
    report = verify_multifile("/s/c.sion", backend=backend)
    assert report.ok, report.errors


# --------------------------------------------------------------------------
# Parameter validation.


def test_collectsize_and_collectors_are_exclusive():
    assert resolve_collectsize(None, None, 8) is None
    assert resolve_collectsize(4, None, 8) == 4
    assert resolve_collectsize(None, 2, 8) == 4
    assert resolve_collectsize(None, 3, 8) == 3  # ceil(8/3)
    assert resolve_collectsize(None, 100, 8) == 1  # clamped to ntasks
    with pytest.raises(SionUsageError, match="not both"):
        resolve_collectsize(2, 2, 8)
    with pytest.raises(SionUsageError, match=">= 1"):
        resolve_collectsize(0, None, 8)
    with pytest.raises(SionUsageError, match=">= 1"):
        resolve_collectsize(None, 0, 8)


def test_bad_collectsize_fails_the_open():
    backend = _backend()

    def task(comm):
        paropen("/s/x.sion", "w", comm, chunksize=BLK, backend=backend,
                collectsize=0)

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, task)


def test_sender_stream_refuses_direct_io():
    backend = _backend()

    def task(comm):
        f = paropen("/s/x.sion", "w", comm, chunksize=BLK, backend=backend,
                    collectsize=2)
        f.fwrite(b"ok")
        f.parclose()
        with pytest.raises(SionUsageError, match="closed"):
            f.fwrite(b"late")
        return True

    assert run_spmd(2, task) == [True, True]
