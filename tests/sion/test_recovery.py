"""Crash recovery via per-chunk shadow headers (paper §6 roadmap)."""

import pytest

from repro.errors import SionMetadataLostError
from repro.sion import open_rank, paropen, recover_multifile, serial
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n):
    return bytes((rank * 7 + i) % 256 for i in range(n))


def _crash_write(path, backend, ntasks, size, nfiles=1, shadow=True, flush=True):
    """Write without the collective close, simulating a dying application."""

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=nfiles,
                    shadow=shadow, backend=backend)
        f.fwrite(_payload(comm.rank, size))
        if flush:
            f.flush_shadow()
        f._raw.close()  # the process dies here; no parclose

    run_spmd(ntasks, task)


def test_recover_single_file(any_backend):
    backend, base = any_backend
    path = f"{base}/c1.sion"
    _crash_write(path, backend, 3, 1300)
    report = recover_multifile(path, backend=backend)
    assert report.files_recovered == 1
    assert report.tasks_recovered == 3
    assert report.bytes_recovered == 3 * 1300
    with serial.open(path, "r", backend=backend) as sf:
        for r in range(3):
            assert sf.read_task(r) == _payload(r, 1300)


def test_recover_multiple_physical_files(any_backend):
    backend, base = any_backend
    path = f"{base}/c2.sion"
    _crash_write(path, backend, 4, 900, nfiles=2)
    report = recover_multifile(path, backend=backend)
    assert report.nfiles == 2
    assert report.files_recovered == 2
    with serial.open(path, "r", backend=backend) as sf:
        for r in range(4):
            assert sf.read_task(r) == _payload(r, 900)


def test_unflushed_tail_lost_but_finalized_blocks_survive(any_backend):
    """Without a final flush, only block-boundary shadows exist."""
    backend, base = any_backend
    path = f"{base}/c3.sion"
    # Shadow chunks hold 512-32=480 usable bytes.  1300 bytes = 2 full
    # chunks (flushed at block advance) + 340 in the third (never
    # flushed -> lost).
    usable = TEST_BLKSIZE - 32
    _crash_write(path, backend, 2, 1300, flush=False)
    recover_multifile(path, backend=backend)
    with serial.open(path, "r", backend=backend) as sf:
        for r in range(2):
            data = sf.read_task(r)
            assert data == _payload(r, 1300)[: 2 * usable]


def test_no_shadow_headers_is_unrecoverable(any_backend):
    backend, base = any_backend
    path = f"{base}/c4.sion"
    _crash_write(path, backend, 2, 100, shadow=False, flush=False)
    with pytest.raises(SionMetadataLostError):
        recover_multifile(path, backend=backend)


def test_intact_file_left_alone(any_backend):
    backend, base = any_backend
    path = f"{base}/c5.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, shadow=True, backend=backend)
        f.fwrite(_payload(comm.rank, 700))
        f.parclose()

    run_spmd(2, task)
    report = recover_multifile(path, backend=backend)
    assert report.files_intact == 1
    assert report.files_recovered == 0


def test_force_rebuild_matches_clean_close(any_backend):
    backend, base = any_backend
    path = f"{base}/c6.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, shadow=True, backend=backend)
        f.fwrite(_payload(comm.rank, 1100))
        f.parclose()

    run_spmd(2, task)
    before = serial.open(path, "r", backend=backend)
    loc_before = before.get_locations()
    before.close()
    report = recover_multifile(path, backend=backend, force=True)
    assert report.files_recovered == 1
    after = serial.open(path, "r", backend=backend)
    loc_after = after.get_locations()
    after.close()
    assert loc_before.blocksizes == loc_after.blocksizes


def test_recovered_file_readable_by_rank_view(any_backend):
    backend, base = any_backend
    path = f"{base}/c7.sion"
    _crash_write(path, backend, 3, 2000)
    recover_multifile(path, backend=backend)
    with open_rank(path, 1, backend=backend) as rf:
        assert rf.read_all() == _payload(1, 2000)


def test_partial_writers_recovered_individually(any_backend):
    """Tasks that wrote different amounts each recover their own extent."""
    backend, base = any_backend
    path = f"{base}/c8.sion"
    sizes = [100, 1500, 0]

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, shadow=True, backend=backend)
        if sizes[comm.rank]:
            f.fwrite(_payload(comm.rank, sizes[comm.rank]))
        f.flush_shadow()
        f._raw.close()

    run_spmd(3, task)
    recover_multifile(path, backend=backend)
    with serial.open(path, "r", backend=backend) as sf:
        for r, n in enumerate(sizes):
            assert sf.read_task(r) == _payload(r, n)


def test_shadow_reduces_usable_capacity(any_backend):
    backend, base = any_backend
    path = f"{base}/c9.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, shadow=True, backend=backend)
        cap = f.chunksize
        f.parclose()
        return cap

    caps = run_spmd(2, task)
    assert all(c == TEST_BLKSIZE - 32 for c in caps)


def test_recovery_report_details(any_backend):
    backend, base = any_backend
    path = f"{base}/c10.sion"
    _crash_write(path, backend, 2, 600)
    report = recover_multifile(path, backend=backend)
    assert report.details
    assert any("rebuilt" in line for line in report.details)
