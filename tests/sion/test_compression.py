"""Transparent zlib compression (paper §6 roadmap feature)."""

import pytest

from repro.errors import SionUsageError
from repro.sion import open_rank, paropen, serial
from repro.sion.compression import ZlibReader, ZlibWriter
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _compressible(rank, n):
    return (f"rank-{rank}-".encode() * (n // 8 + 1))[:n]


class TestCodecs:
    def test_writer_reader_roundtrip(self):
        w = ZlibWriter()
        r = ZlibReader()
        pieces = [b"alpha " * 100, b"beta " * 50, b"gamma"]
        for p in pieces:
            r.feed(w.compress(p))
        r.feed(w.finish())
        r.source_exhausted()
        assert r.take(r.available()) == b"".join(pieces)
        assert r.exhausted

    def test_sync_flush_makes_pieces_immediately_readable(self):
        w = ZlibWriter()
        r = ZlibReader()
        r.feed(w.compress(b"immediately visible"))
        assert r.take(100) == b"immediately visible"

    def test_compression_actually_shrinks(self):
        w = ZlibWriter()
        out = w.compress(b"z" * 100000)
        assert len(out) < 1000
        assert w.ratio < 0.05

    def test_finish_idempotent_and_final(self):
        w = ZlibWriter()
        w.compress(b"x")
        assert w.finish() != b"" or True
        assert w.finish() == b""
        with pytest.raises(SionUsageError):
            w.compress(b"more")

    def test_invalid_level(self):
        with pytest.raises(SionUsageError):
            ZlibWriter(level=11)

    def test_reader_take_validation(self):
        r = ZlibReader()
        with pytest.raises(SionUsageError):
            r.take(-1)


class TestParallelCompressed:
    def _write(self, path, backend, ntasks, size):
        def task(comm):
            f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, compress=True,
                        backend=backend)
            f.fwrite(_compressible(comm.rank, size))
            f.parclose()

        run_spmd(ntasks, task)

    def test_parallel_roundtrip(self, any_backend):
        backend, base = any_backend
        path = f"{base}/z.sion"
        self._write(path, backend, 3, 5000)

        def rtask(comm):
            f = paropen(path, "r", comm, backend=backend)
            data = f.read_all()
            f.parclose()
            return data

        out = run_spmd(3, rtask)
        assert all(out[r] == _compressible(r, 5000) for r in range(3))

    def test_fread_partial_decompressed(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zpart.sion"
        self._write(path, backend, 2, 3000)

        def rtask(comm):
            f = paropen(path, "r", comm, backend=backend)
            a = f.fread(100)
            b = f.fread(10**6)
            eof = f.feof()
            f.parclose()
            return a, b, eof

        out = run_spmd(2, rtask)
        for r, (a, b, eof) in enumerate(out):
            assert a == _compressible(r, 3000)[:100]
            assert a + b == _compressible(r, 3000)
            assert eof

    def test_on_disk_smaller_than_logical(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zsize.sion"
        self._write(path, backend, 2, 100000)
        with serial.open(path, "r", backend=backend) as sf:
            loc = sf.get_locations()
            assert loc.compressed
            assert loc.total_bytes() < 2 * 100000 / 10

    def test_raw_ops_rejected_under_compression(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zraw.sion"

        def task(comm):
            f = paropen(path, "w", comm, chunksize=256, compress=True, backend=backend)
            caught = []
            for op in (lambda: f.write(b"x"), lambda: f.ensure_free_space(1)):
                try:
                    op()
                except SionUsageError:
                    caught.append(True)
            f.fwrite(b"fine")
            f.parclose()
            return caught

        assert run_spmd(2, task) == [[True, True]] * 2

    def test_serial_read_task_decompresses(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zserial.sion"
        self._write(path, backend, 3, 4000)
        with serial.open(path, "r", backend=backend) as sf:
            for r in range(3):
                assert sf.read_task(r) == _compressible(r, 4000)

    def test_serial_raw_read_rejected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zserialraw.sion"
        self._write(path, backend, 2, 100)
        with serial.open(path, "r", backend=backend) as sf:
            with pytest.raises(SionUsageError):
                sf.read(10)
            with pytest.raises(SionUsageError):
                sf.fread(10)

    def test_open_rank_decompresses(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zrank.sion"
        self._write(path, backend, 3, 2500)
        with open_rank(path, 2, backend=backend) as rf:
            assert rf.fread(500) == _compressible(2, 2500)[:500]
            assert rf.read_all() == _compressible(2, 2500)[500:]
        with open_rank(path, 1, backend=backend) as rf:
            with pytest.raises(SionUsageError):
                rf.read(5)

    def test_incompressible_data_still_roundtrips(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zrand.sion"
        import random

        rng = random.Random(7)
        payloads = [bytes(rng.randrange(256) for _ in range(2000)) for _ in range(2)]

        def task(comm):
            f = paropen(path, "w", comm, chunksize=256, compress=True, backend=backend)
            f.fwrite(payloads[comm.rank])
            f.parclose()

        run_spmd(2, task)

        def rtask(comm):
            f = paropen(path, "r", comm, backend=backend)
            out = f.read_all()
            f.parclose()
            return out

        assert run_spmd(2, rtask) == payloads

    def test_empty_compressed_stream(self, any_backend):
        backend, base = any_backend
        path = f"{base}/zempty.sion"

        def task(comm):
            paropen(path, "w", comm, chunksize=64, compress=True, backend=backend).parclose()

        run_spmd(2, task)
        with open_rank(path, 0, backend=backend) as rf:
            assert rf.read_all() == b""
            assert rf.feof()
