"""Hybrid MPI+threads support: per-thread multifiles (paper §6)."""

import threading

import pytest

from repro.errors import SionUsageError, SpmdWorkerError
from repro.sion.hybrid import open_rank_thread, paropen_hybrid, thread_multifile_path
from repro.sion.mapping import physical_path
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _payload(rank, tid, n=600):
    return bytes((rank * 17 + tid * 5 + i) % 256 for i in range(n))


def test_thread_path_naming():
    assert thread_multifile_path("/d/trace.sion", 0) == "/d/trace.sion.t00"
    assert thread_multifile_path("/d/trace.sion", 3) == "/d/trace.sion.t03"
    with pytest.raises(SionUsageError):
        thread_multifile_path("x", -1)


def test_one_multifile_per_thread_not_per_task(any_backend):
    """The paper's point: 4 threads -> at most 4 multifiles, at any scale."""
    backend, base = any_backend
    path = f"{base}/hy.sion"
    nthreads = 4

    def task(comm):
        h = paropen_hybrid(path, "w", comm, nthreads, chunksize=TEST_BLKSIZE,
                           backend=backend)
        for t in range(nthreads):
            h.stream(t).fwrite(_payload(comm.rank, t))
        h.parclose()

    run_spmd(8, task)  # 8 ranks x 4 threads = 32 logical files
    for t in range(nthreads):
        assert backend.exists(thread_multifile_path(path, t))
    # ... and nothing else: exactly 4 physical files.
    assert not backend.exists(physical_path(thread_multifile_path(path, 0), 1))


def test_roundtrip_all_rank_thread_pairs(any_backend):
    backend, base = any_backend
    path = f"{base}/hy2.sion"
    nthreads = 3

    def wtask(comm):
        with paropen_hybrid(path, "w", comm, nthreads, chunksize=TEST_BLKSIZE,
                            backend=backend) as h:
            for t in range(nthreads):
                h.stream(t).fwrite(_payload(comm.rank, t))

    run_spmd(4, wtask)
    for rank in range(4):
        for t in range(nthreads):
            with open_rank_thread(path, rank, t, backend=backend) as rf:
                assert rf.read_all() == _payload(rank, t)


def test_streams_driven_by_real_concurrent_threads(any_backend):
    """Each handle owns its cursor: true thread-parallel writes are safe."""
    backend, base = any_backend
    path = f"{base}/hy3.sion"
    nthreads = 4

    def task(comm):
        h = paropen_hybrid(path, "w", comm, nthreads, chunksize=TEST_BLKSIZE,
                           backend=backend)

        def worker(t):
            for _ in range(5):
                h.stream(t).fwrite(_payload(comm.rank, t, 200))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(nthreads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        h.parclose()

    run_spmd(3, task)
    for rank in range(3):
        for t in range(nthreads):
            with open_rank_thread(path, rank, t, backend=backend) as rf:
                assert rf.read_all() == _payload(rank, t, 200) * 5


def test_parallel_read_mode(any_backend):
    backend, base = any_backend
    path = f"{base}/hy4.sion"

    def wtask(comm):
        with paropen_hybrid(path, "w", comm, 2, chunksize=256, backend=backend) as h:
            for t in range(2):
                h.stream(t).fwrite(_payload(comm.rank, t, 100))

    run_spmd(2, wtask)

    def rtask(comm):
        with paropen_hybrid(path, "r", comm, 2, backend=backend) as h:
            return [h.stream(t).read_all() for t in range(2)]

    out = run_spmd(2, rtask)
    for rank in range(2):
        assert out[rank] == [_payload(rank, t, 100) for t in range(2)]


def test_per_thread_chunk_sizes(any_backend):
    backend, base = any_backend
    path = f"{base}/hy5.sion"

    def task(comm):
        h = paropen_hybrid(path, "w", comm, 2, chunksize=[128, 4096],
                           backend=backend)
        caps = [h.stream(t).chunksize for t in range(2)]
        h.parclose()
        return caps

    caps = run_spmd(2, task)
    # 128 rounds up to one 512-byte test block; 4096 is 8 blocks.
    assert caps == [[512, 4096], [512, 4096]]


def test_validation(any_backend):
    backend, base = any_backend

    def no_threads(comm):
        paropen_hybrid(f"{base}/x", "w", comm, 0, chunksize=64, backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(1, no_threads)

    def no_chunksize(comm):
        paropen_hybrid(f"{base}/x", "w", comm, 2, backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(1, no_chunksize)

    def wrong_sizes(comm):
        paropen_hybrid(f"{base}/x", "w", comm, 3, chunksize=[1, 2], backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(1, wrong_sizes)


def test_stream_bounds_and_close(any_backend):
    backend, base = any_backend
    path = f"{base}/hy6.sion"

    def task(comm):
        h = paropen_hybrid(path, "w", comm, 2, chunksize=64, backend=backend)
        caught = []
        try:
            h.stream(5)
        except SionUsageError:
            caught.append("oob")
        h.parclose()
        try:
            h.stream(0)
        except SionUsageError:
            caught.append("closed")
        try:
            h.parclose()
        except SionUsageError:
            caught.append("double-close")
        return caught

    out = run_spmd(2, task)
    assert all(c == ["oob", "closed", "double-close"] for c in out)
