"""Cross-mode interoperability: every writer's output is every reader's input."""

from repro.sion import open_rank, paropen, serial
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n):
    return bytes((rank * 101 + i) % 256 for i in range(n))


def test_parallel_write_serial_read(any_backend):
    backend, base = any_backend
    path = f"{base}/pw_sr.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=2, backend=backend)
        f.fwrite(_payload(comm.rank, 1000))
        f.parclose()

    run_spmd(4, wtask)
    with serial.open(path, "r", backend=backend) as sf:
        for r in range(4):
            assert sf.read_task(r) == _payload(r, 1000)


def test_serial_write_parallel_read(any_backend):
    backend, base = any_backend
    path = f"{base}/sw_pr.sion"
    sf = serial.open(
        path, "w", chunksizes=[256, 512, 128], fsblksize=TEST_BLKSIZE, backend=backend
    )
    for r in range(3):
        sf.seek(r)
        sf.fwrite(_payload(r, 1000))
    sf.close()

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    out = run_spmd(3, rtask)
    assert all(out[r] == _payload(r, 1000) for r in range(3))


def test_serial_write_rank_read(any_backend):
    backend, base = any_backend
    path = f"{base}/sw_rr.sion"
    sf = serial.open(
        path, "w", chunksizes=[64] * 4, nfiles=2, fsblksize=TEST_BLKSIZE, backend=backend
    )
    for r in range(4):
        sf.seek(r)
        sf.write(_payload(r, 40))
    sf.close()
    for r in range(4):
        with open_rank(path, r, backend=backend) as rf:
            assert rf.read_all() == _payload(r, 40)


def test_parallel_rewrite_then_read(any_backend):
    """Re-creating a multifile at the same path replaces it cleanly."""
    backend, base = any_backend
    path = f"{base}/rewrite.sion"

    for generation in range(2):
        def wtask(comm, gen=generation):
            f = paropen(path, "w", comm, chunksize=128, backend=backend)
            f.fwrite(f"gen{gen}-rank{comm.rank}".encode())
            f.parclose()

        run_spmd(2, wtask)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    out = run_spmd(2, rtask)
    assert out == [b"gen1-rank0", b"gen1-rank1"]


def test_all_access_modes_agree(any_backend):
    """Parallel read, global view, and rank view must see identical bytes."""
    backend, base = any_backend
    path = f"{base}/agree.sion"
    sizes = [0, 700, 1300, 64]

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=3, backend=backend)
        f.fwrite(_payload(comm.rank, sizes[comm.rank]))
        f.parclose()

    run_spmd(4, wtask)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    via_parallel = run_spmd(4, rtask)
    with serial.open(path, "r", backend=backend) as sf:
        via_global = [sf.read_task(r) for r in range(4)]
    via_rank = []
    for r in range(4):
        with open_rank(path, r, backend=backend) as rf:
            via_rank.append(rf.read_all())
    assert via_parallel == via_global == via_rank
    assert [len(d) for d in via_parallel] == sizes


def test_write_on_sim_read_on_sim_clock_advances(sim_backend):
    """Virtual time must accumulate across the whole write/read cycle."""
    backend = sim_backend
    path = "/scratch/clock.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        f.fwrite(b"t" * 2000)
        f.parclose()

    run_spmd(2, wtask)
    t_after_write = backend.fs.clock
    assert backend.fs.op_counts["create"] == 1  # one physical file, not two

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        f.read_all()
        f.parclose()

    run_spmd(2, rtask)
    assert backend.fs.clock >= t_after_write
