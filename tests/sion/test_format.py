"""Metablock binary format: roundtrips, corruption detection."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SionFormatError
from repro.sion.constants import MAPPING_BLOCKED, MAPPING_CUSTOM, SHADOW_HEADER_SIZE
from repro.sion.format import Metablock1, Metablock2, ShadowHeader


class MemFile:
    """Minimal RawFile over a BytesIO for format-level tests."""

    def __init__(self, data=b""):
        self._b = io.BytesIO(data)

    def seek(self, offset, whence=0):
        return self._b.seek(offset, whence)

    def tell(self):
        return self._b.tell()

    def read(self, n=-1):
        return self._b.read(n)

    def write(self, data):
        return self._b.write(data)

    def getvalue(self):
        return self._b.getvalue()


def _mb1(**kw):
    defaults = dict(
        fsblksize=4096,
        ntasks_local=3,
        nfiles=2,
        filenum=0,
        ntasks_global=6,
        start_of_data=4096,
        metablock2_offset=0,
        globalranks=[0, 2, 4],
        chunksizes=[100, 200, 300],
        flags=0,
        mapping_kind=MAPPING_BLOCKED,
    )
    defaults.update(kw)
    return Metablock1(**defaults)


class TestMetablock1:
    def test_roundtrip(self):
        mb1 = _mb1()
        f = MemFile(mb1.encode())
        back = Metablock1.decode_from(f)
        assert back == mb1

    def test_encoded_size_matches(self):
        mb1 = _mb1()
        assert len(mb1.encode()) == mb1.encoded_size

    def test_custom_mapping_table_roundtrip(self):
        table = [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        mb1 = _mb1(mapping_kind=MAPPING_CUSTOM, mapping_table=table)
        back = Metablock1.decode_from(MemFile(mb1.encode()))
        assert back.mapping_table == table

    def test_custom_mapping_only_in_file_zero(self):
        mb1 = _mb1(
            filenum=1,
            mapping_kind=MAPPING_CUSTOM,
            globalranks=[1, 3, 5],
        )
        assert mb1.encoded_size < _mb1(
            mapping_kind=MAPPING_CUSTOM,
            mapping_table=[(0, 0)] * 6,
        ).encoded_size

    def test_bad_magic_rejected(self):
        raw = bytearray(_mb1().encode())
        raw[:4] = b"XXXX"
        with pytest.raises(SionFormatError, match="magic"):
            Metablock1.decode_from(MemFile(bytes(raw)))

    def test_truncated_header_rejected(self):
        with pytest.raises(SionFormatError):
            Metablock1.decode_from(MemFile(b"short"))

    def test_truncated_arrays_rejected(self):
        raw = _mb1().encode()[:-8]
        with pytest.raises(SionFormatError, match="truncated"):
            Metablock1.decode_from(MemFile(raw))

    def test_validation_catches_mismatched_lengths(self):
        with pytest.raises(SionFormatError):
            _mb1(globalranks=[0]).encode()
        with pytest.raises(SionFormatError):
            _mb1(chunksizes=[1]).encode()

    def test_validation_catches_bad_filenum(self):
        with pytest.raises(SionFormatError):
            _mb1(filenum=5).encode()

    def test_validation_catches_negative_chunks(self):
        with pytest.raises(SionFormatError):
            _mb1(chunksizes=[-1, 0, 0]).encode()

    def test_patch_metablock2_offset_in_place(self):
        mb1 = _mb1()
        f = MemFile(mb1.encode())
        mb1.patch_metablock2_offset(f, 123456)
        back = Metablock1.decode_from(f)
        assert back.metablock2_offset == 123456
        # Nothing else changed.
        assert back.chunksizes == mb1.chunksizes

    @settings(max_examples=40, deadline=None)
    @given(
        ntasks=st.integers(1, 40),
        fsblk=st.sampled_from([512, 4096, 1 << 21]),
        flags=st.integers(0, 3),
    )
    def test_roundtrip_property(self, ntasks, fsblk, flags):
        mb1 = Metablock1(
            fsblksize=fsblk,
            ntasks_local=ntasks,
            nfiles=1,
            filenum=0,
            ntasks_global=ntasks,
            start_of_data=fsblk,
            metablock2_offset=0,
            globalranks=list(range(ntasks)),
            chunksizes=[i * 7 for i in range(ntasks)],
            flags=flags,
        )
        back = Metablock1.decode_from(MemFile(mb1.encode()))
        assert back == mb1


class TestMetablock2:
    def test_roundtrip(self):
        mb2 = Metablock2(blocksizes=[[10, 20], [5], [0, 0, 7]])
        f = MemFile(b"\0" * 16 + mb2.encode())
        back = Metablock2.decode_from(f, 16)
        assert back.blocksizes == mb2.blocksizes
        assert back.maxblocks == 3

    def test_offset_zero_means_never_closed(self):
        f = MemFile(b"\0" * 100)
        with pytest.raises(SionFormatError, match="never closed"):
            Metablock2.decode_from(f, 0)

    def test_crc_detects_corruption(self):
        mb2 = Metablock2(blocksizes=[[100]])
        raw = bytearray(mb2.encode())
        raw[16] ^= 0xFF  # flip a bit inside the block-size payload
        with pytest.raises(SionFormatError, match="CRC"):
            Metablock2.decode_from(MemFile(b"\0" * 8 + bytes(raw)), 8)

    def test_truncation_detected(self):
        mb2 = Metablock2(blocksizes=[[100, 200]])
        raw = mb2.encode()[:-6]
        with pytest.raises(SionFormatError):
            Metablock2.decode_from(MemFile(b"\0" * 8 + raw), 8)

    def test_bad_magic(self):
        with pytest.raises(SionFormatError, match="magic"):
            Metablock2.decode_from(MemFile(b"\0" * 8 + b"NOTMAGIC" + b"\0" * 64), 8)

    def test_negative_sizes_rejected(self):
        with pytest.raises(SionFormatError):
            Metablock2(blocksizes=[[-5]]).encode()

    def test_empty_tasks_allowed(self):
        mb2 = Metablock2(blocksizes=[])
        back = Metablock2.decode_from(MemFile(b"\0" * 8 + mb2.encode()), 8)
        assert back.blocksizes == []
        assert back.maxblocks == 0

    @settings(max_examples=40, deadline=None)
    @given(
        blocksizes=st.lists(
            st.lists(st.integers(0, 2**40), min_size=1, max_size=5),
            min_size=1,
            max_size=20,
        )
    )
    def test_roundtrip_property(self, blocksizes):
        mb2 = Metablock2(blocksizes=blocksizes)
        back = Metablock2.decode_from(MemFile(b"\0" * 8 + mb2.encode()), 8)
        assert back.blocksizes == blocksizes


class TestShadowHeader:
    def test_roundtrip(self):
        hdr = ShadowHeader(ltask=7, block=3, written=123456789)
        raw = hdr.encode()
        assert len(raw) == SHADOW_HEADER_SIZE
        back = ShadowHeader.decode(raw)
        assert back == hdr

    def test_garbage_returns_none(self):
        assert ShadowHeader.decode(b"\0" * SHADOW_HEADER_SIZE) is None
        assert ShadowHeader.decode(b"short") is None

    def test_bitflip_returns_none(self):
        raw = bytearray(ShadowHeader(1, 2, 3).encode())
        raw[12] ^= 0x01
        assert ShadowHeader.decode(bytes(raw)) is None

    def test_decode_ignores_trailing_bytes(self):
        raw = ShadowHeader(0, 0, 42).encode() + b"PAYLOAD"
        back = ShadowHeader.decode(raw)
        assert back is not None and back.written == 42
