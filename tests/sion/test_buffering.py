"""Write coalescing: byte-identical output, fewer stream calls."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SionUsageError
from repro.sion import open_rank, paropen
from repro.sion.buffering import CoalescingWriter, CountingStream
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


class MemStream:
    """Minimal fwrite sink for unit tests."""

    def __init__(self):
        self.data = bytearray()
        self.calls = 0

    def fwrite(self, data):
        self.calls += 1
        self.data.extend(data)
        return len(data)


def test_small_writes_coalesce():
    sink = MemStream()
    w = CoalescingWriter(sink, buffer_size=100)
    for i in range(30):
        w.write(bytes([i]) * 10)  # 300 bytes in 10-byte dribbles
    w.close()
    assert bytes(sink.data) == b"".join(bytes([i]) * 10 for i in range(30))
    assert sink.calls == 3  # 300 bytes / 100-byte buffer


def test_large_write_bypasses_buffer():
    sink = MemStream()
    w = CoalescingWriter(sink, buffer_size=64)
    w.write(b"z" * 1000)
    assert sink.calls == 1
    assert w.pending == 0
    w.close()
    assert bytes(sink.data) == b"z" * 1000


def test_mixed_sizes_preserve_order():
    sink = MemStream()
    w = CoalescingWriter(sink, buffer_size=32)
    w.write(b"a" * 10)
    w.write(b"b" * 100)  # buffered path (buffer non-empty)
    w.write(b"c" * 5)
    w.close()
    assert bytes(sink.data) == b"a" * 10 + b"b" * 100 + b"c" * 5


def test_flush_pushes_partial_tail():
    sink = MemStream()
    w = CoalescingWriter(sink, buffer_size=100)
    w.write(b"x" * 30)
    assert w.pending == 30
    w.flush()
    assert w.pending == 0
    assert bytes(sink.data) == b"x" * 30


def test_close_is_idempotent_and_final():
    sink = MemStream()
    w = CoalescingWriter(sink, buffer_size=10)
    w.write(b"ab")
    w.close()
    w.close()
    with pytest.raises(SionUsageError):
        w.write(b"more")


def test_context_manager():
    sink = MemStream()
    with CoalescingWriter(sink, buffer_size=10) as w:
        w.write(b"ctx")
    assert bytes(sink.data) == b"ctx"


def test_invalid_buffer_size():
    with pytest.raises(SionUsageError):
        CoalescingWriter(MemStream(), buffer_size=0)


def test_counting_stream_delegates():
    sink = MemStream()
    counted = CountingStream(sink)
    counted.fwrite(b"12345")
    assert counted.calls == 1 and counted.bytes == 5
    assert bytes(sink.data) == b"12345"


def test_reduces_calls_on_real_multifile(any_backend):
    """End to end: 1000 tiny records, two orders fewer stream calls."""
    backend, base = any_backend
    path = f"{base}/coal.sion"
    record = b"event-record-0123456789"  # 23 bytes

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        counted = CountingStream(f)
        with CoalescingWriter(counted, buffer_size=4096) as w:
            for _ in range(1000):
                w.write(record)
        f.parclose()
        return counted.calls

    calls = run_spmd(2, task)
    assert all(c <= 6 for c in calls)  # 23 KB / 4 KB buffer
    for rank in range(2):
        with open_rank(path, rank, backend=backend) as rf:
            assert rf.read_all() == record * 1000


@settings(max_examples=40, deadline=None)
@given(
    pieces=st.lists(st.binary(max_size=300), max_size=40),
    bufsize=st.integers(1, 256),
)
def test_equivalence_property(pieces, bufsize):
    """Coalesced output is byte-identical to direct writes."""
    direct = MemStream()
    for p in pieces:
        direct.fwrite(p)

    coalesced = MemStream()
    with CoalescingWriter(coalesced, buffer_size=bufsize) as w:
        for p in pieces:
            w.write(p)

    assert bytes(direct.data) == bytes(coalesced.data)
    # Every flush carries bufsize bytes except possibly the last one and
    # oversized bypass writes, so the call count is bounded by the data.
    total = sum(len(p) for p in pieces)
    assert coalesced.calls <= total // bufsize + len(pieces) + 1
