"""Property suite: bytes on disk are identical across every write path.

For random payload/chunk/buffer-size combinations, the physical multifile
must be byte-for-byte identical whether the payload went down as one
``fwrite``, as arbitrary ``fwrite`` pieces, as chunk-fitting ANSI
``write``s guarded by ``ensure_free_space``, or through the
:class:`CoalescingWriter` — and regardless of the payload's input type
(``bytes``, ``bytearray``, ``memoryview``, NumPy array).  The compressed
path cannot be compared physically, so it must round-trip the identical
logical stream.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backends.simfs_backend import SimBackend
from repro.fs.simfs import SimFS
from repro.simmpi.comm import make_world
from repro.sion import paropen, serial
from repro.sion.buffering import CoalescingWriter

BLK = 512


def _backend():
    return SimBackend(SimFS(blocksize_override=BLK))


def _disk_bytes(backend, path="/m.sion"):
    with backend.open(path, "rb") as f:
        return f.read()


def _write_multifile(variant, payload, chunksize, buffer_size, pieces):
    """Write ``payload`` via one code path; returns the physical bytes."""
    backend = _backend()
    with serial.open(
        "/m.sion", "w", chunksizes=[chunksize], fsblksize=BLK, backend=backend
    ) as f:
        f.seek(0, 0, 0)
        if variant == "fwrite-whole":
            f.fwrite(payload)
        elif variant == "fwrite-pieces":
            done = 0
            view = memoryview(payload)
            for cut in pieces:
                f.fwrite(view[done : done + cut])
                done += cut
            f.fwrite(view[done:])
        elif variant == "ansi-write":
            # Chunk-fitting pieces written the Listing-1 way: this mirrors
            # fwrite's placement exactly, so physical bytes must match.
            view = memoryview(payload)
            done = 0
            # Usable capacity is the aligned chunk size (min one FS block).
            capacity = max(-(-chunksize // BLK) * BLK, BLK)
            pos = 0
            while done < len(view):
                take = min(len(view) - done, capacity - pos)
                if take == 0:
                    f.ensure_free_space(min(capacity, len(view) - done))
                    pos = 0
                    continue
                f.write(view[done : done + take])
                pos += take
                done += take
        elif variant == "coalesced":
            w = CoalescingWriter(f, buffer_size=buffer_size)
            done = 0
            view = memoryview(payload)
            for cut in pieces:
                w.write(view[done : done + cut])
                done += cut
            w.write(view[done:])
            w.close()
        else:  # pragma: no cover - defensive
            raise AssertionError(variant)
    return _disk_bytes(backend), backend


payloads = st.binary(min_size=0, max_size=4000)
chunksizes = st.integers(min_value=1, max_value=1400)
buffer_sizes = st.integers(min_value=1, max_value=1200)
piece_lists = st.lists(st.integers(min_value=0, max_value=700), max_size=8)


def _clip_pieces(pieces, total):
    out, acc = [], 0
    for p in pieces:
        if acc + p > total:
            break
        out.append(p)
        acc += p
    return out


@settings(max_examples=40, deadline=None)
@given(
    payload=payloads,
    chunksize=chunksizes,
    buffer_size=buffer_sizes,
    pieces=piece_lists,
)
def test_disk_bytes_identical_across_write_paths(
    payload, chunksize, buffer_size, pieces
):
    pieces = _clip_pieces(pieces, len(payload))
    reference, ref_backend = _write_multifile(
        "fwrite-whole", payload, chunksize, buffer_size, pieces
    )
    for variant in ("fwrite-pieces", "ansi-write", "coalesced"):
        got, _ = _write_multifile(variant, payload, chunksize, buffer_size, pieces)
        assert got == reference, f"{variant} diverged from fwrite-whole"
    # And the logical stream reads back intact.
    with serial.open("/m.sion", "r", backend=ref_backend) as f:
        assert f.read_task(0) == payload


@settings(max_examples=25, deadline=None)
@given(payload=payloads, chunksize=chunksizes)
def test_disk_bytes_identical_across_input_types(payload, chunksize):
    variants = [
        payload,
        bytearray(payload),
        memoryview(payload),
        memoryview(bytearray(payload)),
        np.frombuffer(payload, dtype=np.uint8),
    ]
    outputs = []
    for data in variants:
        backend = _backend()
        with serial.open(
            "/m.sion", "w", chunksizes=[chunksize], fsblksize=BLK, backend=backend
        ) as f:
            f.seek(0, 0, 0)
            f.fwrite(data)
        outputs.append(_disk_bytes(backend))
    assert all(o == outputs[0] for o in outputs)


@settings(max_examples=25, deadline=None)
@given(
    payload=payloads,
    chunksize=st.integers(min_value=64, max_value=1400),
    pieces=piece_lists,
)
def test_compressed_path_roundtrips_the_logical_stream(payload, chunksize, pieces):
    pieces = _clip_pieces(pieces, len(payload))
    backend = _backend()
    (comm,) = make_world(1)
    f = paropen(
        "/z.sion", "w", comm, chunksize=chunksize, fsblksize=BLK,
        backend=backend, compress=True,
    )
    done = 0
    view = memoryview(payload)
    for cut in pieces:
        f.fwrite(view[done : done + cut])
        done += cut
    f.fwrite(view[done:])
    f.parclose()
    with serial.open("/z.sion", "r", backend=backend) as g:
        assert g.read_task(0) == payload
    (comm,) = make_world(1)
    h = paropen("/z.sion", "r", comm, backend=backend)
    assert h.read_all() == payload
    h.parclose()


@settings(max_examples=20, deadline=None)
@given(
    payload=st.binary(min_size=0, max_size=2000),
    chunksize=st.integers(min_value=1, max_value=900),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_noncontiguous_ndarray_payload(payload, chunksize, seed):
    """A strided array flattens once at the entry boundary, correctly."""
    arr = np.frombuffer(payload + b"\0", dtype=np.uint8)
    strided = arr[:: 1 + seed % 3]
    backend = _backend()
    with serial.open(
        "/nc.sion", "w", chunksizes=[chunksize], fsblksize=BLK, backend=backend
    ) as f:
        f.seek(0, 0, 0)
        f.fwrite(strided)
    with serial.open("/nc.sion", "r", backend=backend) as f:
        assert f.read_task(0) == strided.tobytes()
