"""Fault plans fired through the SION layer: engines × open paths.

The contract under test: a scripted fault surfaces as a clean
:class:`SpmdWorkerError` carrying :class:`FaultInjectedError` for exactly
the targeted rank (never a hang, never a mangled traceback), identically
under the ``threads`` and ``bulk`` engines (and ``proc``, over the real
FS), and across the direct, collective, serial, and partitioned open
paths.  The silent faults (dropped metablock 2, corrupted shadow header)
leave damage that ``recover_multifile`` repairs — run on the *clean*
inner backend, since an armed plan would swallow recovery's own
metablock-2 write just as faithfully.
"""

from __future__ import annotations

import pytest

from repro.backends import FaultInjectingBackend, FaultPlan
from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend
from repro.errors import FaultInjectedError, SpmdWorkerError
from repro.fs.simfs import SimFS
from repro.sion import paropen, recover_multifile, serial
from repro.simmpi import run_spmd
from repro.utils.verify import verify_multifile
from tests.conftest import TEST_BLKSIZE

ENGINES = ("threads", "bulk")


def _payload(rank: int, n: int) -> bytes:
    return bytes((rank * 13 + i) % 256 for i in range(n))


def _faulty(plan: FaultPlan) -> FaultInjectingBackend:
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/scratch")
    return FaultInjectingBackend(SimBackend(fs), plan)


def _write_task(path, be, size=700, **kw):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=256, shadow=True,
                    backend=be.for_rank(comm.rank), **kw)
        f.fwrite(_payload(comm.rank, size))
        f.parclose()

    return task


# -- kill_rank across engines and open paths ---------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_rank_direct_path(engine):
    be = _faulty(FaultPlan().kill_rank(2, after_bytes=100))
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(4, _write_task("/scratch/k.sion", be), engine=engine)
    assert isinstance(exc_info.value.failures[2], FaultInjectedError)


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_rank_collective_path(engine):
    # Only collectors do physical I/O in collective mode: target rank 0,
    # the collector of the first group.
    be = _faulty(FaultPlan().kill_rank(0, after_bytes=100))
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(
            4,
            _write_task("/scratch/kc.sion", be, collectsize=2),
            engine=engine,
        )
    assert isinstance(exc_info.value.failures[0], FaultInjectedError)


def test_kill_rank_proc_engine(tmp_path):
    """The wrapped LocalBackend pickles; the plan fires in a real child."""
    be = FaultInjectingBackend(
        LocalBackend(blocksize_override=TEST_BLKSIZE),
        FaultPlan().kill_rank(1, after_bytes=10),
    )
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(
            3, _write_task(str(tmp_path / "kp.sion"), be), engine="proc"
        )
    assert isinstance(exc_info.value.failures[1], FaultInjectedError)


def test_kill_rank_serial_path():
    """Serial opens are single-process: the fault surfaces directly."""
    be = _faulty(FaultPlan().kill_rank(0, after_bytes=0))
    run_spmd(2, _write_task("/scratch/s.sion", FaultInjectingBackend(be.inner)))
    with pytest.raises(FaultInjectedError):
        serial.open("/scratch/s.sion", "r", backend=be.for_rank(0))


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_rank_partitioned_read_path(engine):
    """Read-side traffic charges the budget too: a reader rank dies."""
    be = _faulty(FaultPlan().kill_rank(1, after_bytes=64))
    # Write the container cleanly through an empty plan.
    run_spmd(4, _write_task("/scratch/p.sion", FaultInjectingBackend(be.inner)))

    def read_task(comm):
        f = paropen("/scratch/p.sion", "r", comm, partitioned=True,
                    backend=be.for_rank(comm.rank))
        data = f.read_all()
        f.parclose()
        return data

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, read_task, engine=engine)
    assert isinstance(exc_info.value.failures[1], FaultInjectedError)


# -- tear_scatter ------------------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_tear_scatter_direct_path(engine):
    be = _faulty(
        FaultPlan().tear_scatter("/scratch/t.sion", keep_fragments=1, rank=1)
    )
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, _write_task("/scratch/t.sion", be), engine=engine)
    assert isinstance(exc_info.value.failures[1], FaultInjectedError)


@pytest.mark.parametrize("engine", ENGINES)
def test_tear_scatter_collective_path(engine):
    """A collection wave's vectored write tears on the collector."""
    be = _faulty(FaultPlan().tear_scatter("/scratch/tc.sion"))
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(
            4,
            _write_task("/scratch/tc.sion", be, collectsize=2),
            engine=engine,
        )
    assert any(
        isinstance(e, FaultInjectedError)
        for e in exc_info.value.failures.values()
    )


# -- silent faults + recovery ------------------------------------------------


def test_drop_metablock2_then_shadow_recovery():
    """The write 'succeeds'; the damage shows at verify; recovery repairs.

    Recovery and readback run on the clean inner backend — through the
    armed plan they would be swallowed exactly like the original close.
    """
    path = "/scratch/d.sion"
    be = _faulty(FaultPlan().drop_metablock2(path))
    run_spmd(4, _write_task(path, be))  # no exception: the fault is silent
    assert not verify_multifile(path, backend=be.inner).ok
    report = recover_multifile(path, backend=be.inner)
    assert report.files_recovered == 1
    assert report.bytes_recovered == 4 * 700
    with serial.open(path, "r", backend=be.inner) as sf:
        for r in range(4):
            assert sf.read_task(r) == _payload(r, 700)


def test_corrupt_chunk_header_shortens_recovered_chain():
    """A torn chain loses exactly the blocks at and after the damage.

    With shadow headers each 512-byte chunk holds 480 payload bytes, so
    a 700-byte stream is blocks of 480 + 220: garbling (ltask=1,
    block=1) costs task 1 its 220-byte tail and nothing else.
    """
    path = "/scratch/c.sion"
    be = _faulty(
        FaultPlan()
        .corrupt_chunk_header(path, ltask=1, block=1)
        .drop_metablock2(path)
    )
    run_spmd(4, _write_task(path, be))
    report = recover_multifile(path, backend=be.inner)
    assert report.bytes_recovered == 4 * 700 - 220
    with serial.open(path, "r", backend=be.inner) as sf:
        assert sf.read_task(1) == _payload(1, 700)[:480]
        assert sf.read_task(2) == _payload(2, 700)


def test_recovery_through_armed_plan_swallows_its_own_repair():
    """Documented sharp edge: recover on ``be.inner``, not the wrapper."""
    path = "/scratch/a.sion"
    be = _faulty(FaultPlan().drop_metablock2(path))
    run_spmd(2, _write_task(path, be))
    recover_multifile(path, backend=be)  # repair swallowed again
    assert not verify_multifile(path, backend=be.inner).ok
    recover_multifile(path, backend=be.inner)
    assert verify_multifile(path, backend=be.inner).ok


# -- cross-engine determinism ------------------------------------------------


def test_same_plan_same_failing_ranks_across_engines():
    observed = {}
    for engine in ENGINES:
        be = _faulty(FaultPlan().kill_rank(3, after_bytes=256))
        with pytest.raises(SpmdWorkerError) as exc_info:
            run_spmd(
                5, _write_task("/scratch/x.sion", be), engine=engine
            )
        observed[engine] = {
            r
            for r, e in exc_info.value.failures.items()
            if isinstance(e, FaultInjectedError)
        }
    assert observed["threads"] == observed["bulk"] == {3}
