"""Task-to-file mappings: bijectivity, ordering, reconstruction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SionUsageError
from repro.sion.constants import MAPPING_BLOCKED, MAPPING_CUSTOM, MAPPING_ROUNDROBIN
from repro.sion.mapping import TaskMapping, physical_path


class TestBlocked:
    def test_even_split(self):
        m = TaskMapping.blocked(6, 2)
        assert [m.file_of(r) for r in range(6)] == [0, 0, 0, 1, 1, 1]
        assert [m.local_rank(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_uneven_split_front_loaded(self):
        m = TaskMapping.blocked(7, 3)
        sizes = [m.ntasks_of_file(f) for f in range(3)]
        assert sizes == [3, 2, 2]

    def test_tasks_of_file_ordered_by_local_rank(self):
        m = TaskMapping.blocked(8, 2)
        assert m.tasks_of_file(0) == [0, 1, 2, 3]
        assert m.tasks_of_file(1) == [4, 5, 6, 7]


class TestRoundRobin:
    def test_interleaves(self):
        m = TaskMapping.roundrobin(6, 2)
        assert [m.file_of(r) for r in range(6)] == [0, 1, 0, 1, 0, 1]
        assert m.tasks_of_file(0) == [0, 2, 4]

    def test_local_ranks_sequential_per_file(self):
        m = TaskMapping.roundrobin(7, 3)
        for f in range(3):
            members = m.tasks_of_file(f)
            assert [m.local_rank(r) for r in members] == list(range(len(members)))


class TestCustom:
    def test_explicit_assignment(self):
        m = TaskMapping.custom([1, 0, 1, 0])
        assert m.nfiles == 2
        assert m.tasks_of_file(0) == [1, 3]
        assert m.tasks_of_file(1) == [0, 2]

    def test_empty_file_rejected(self):
        with pytest.raises(SionUsageError, match="empty"):
            TaskMapping.custom([0, 0, 2])

    def test_negative_rejected(self):
        with pytest.raises(SionUsageError):
            TaskMapping.custom([-1, 0])

    def test_no_tasks_rejected(self):
        with pytest.raises(SionUsageError):
            TaskMapping.custom([])


class TestFactory:
    def test_by_name(self):
        assert TaskMapping.create(4, 2, "blocked").kind == MAPPING_BLOCKED
        assert TaskMapping.create(4, 2, "roundrobin").kind == MAPPING_ROUNDROBIN

    def test_by_list(self):
        m = TaskMapping.create(4, 2, [0, 0, 1, 1])
        assert m.kind == MAPPING_CUSTOM

    def test_list_shape_mismatch(self):
        with pytest.raises(SionUsageError):
            TaskMapping.create(4, 3, [0, 0, 1, 1])

    def test_unknown_name(self):
        with pytest.raises(SionUsageError):
            TaskMapping.create(4, 2, "hashed")

    def test_more_files_than_tasks_rejected(self):
        with pytest.raises(SionUsageError):
            TaskMapping.blocked(2, 3)

    def test_zero_counts_rejected(self):
        with pytest.raises(SionUsageError):
            TaskMapping.blocked(0, 1)
        with pytest.raises(SionUsageError):
            TaskMapping.blocked(1, 0)


class TestReconstruction:
    def test_standard_kinds_need_no_table(self):
        for ctor, code in (
            (TaskMapping.blocked, MAPPING_BLOCKED),
            (TaskMapping.roundrobin, MAPPING_ROUNDROBIN),
        ):
            m = ctor(10, 3)
            back = TaskMapping.from_kind_code(10, 3, code)
            assert back == m

    def test_custom_requires_table(self):
        m = TaskMapping.custom([0, 1, 0])
        back = TaskMapping.from_kind_code(3, 2, MAPPING_CUSTOM, list(m.table))
        assert back == m
        with pytest.raises(SionUsageError):
            TaskMapping.from_kind_code(3, 2, MAPPING_CUSTOM)

    def test_unknown_code(self):
        with pytest.raises(SionUsageError):
            TaskMapping.from_kind_code(1, 1, 99)


class TestPhysicalPath:
    def test_file_zero_keeps_name(self):
        assert physical_path("/d/out.sion", 0) == "/d/out.sion"

    def test_siblings_get_suffix(self):
        assert physical_path("/d/out.sion", 3) == "/d/out.sion.000003"

    def test_negative_rejected(self):
        with pytest.raises(SionUsageError):
            physical_path("x", -1)


@settings(max_examples=60, deadline=None)
@given(
    ntasks=st.integers(1, 200),
    nfiles=st.integers(1, 50),
    kind=st.sampled_from(["blocked", "roundrobin"]),
)
def test_mapping_is_a_bijection(ntasks, nfiles, kind):
    nfiles = min(nfiles, ntasks)
    m = TaskMapping.create(ntasks, nfiles, kind)
    seen = set()
    for r in range(ntasks):
        key = (m.file_of(r), m.local_rank(r))
        assert key not in seen, "two tasks mapped to the same slot"
        seen.add(key)
    # Every file non-empty, local ranks contiguous from zero.
    total = 0
    for f in range(nfiles):
        members = m.tasks_of_file(f)
        assert members, "no file may be empty"
        assert [m.local_rank(r) for r in members] == list(range(len(members)))
        total += len(members)
    assert total == ntasks
