"""Formatted-text layer over task streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SionUsageError
from repro.sion import open_rank, paropen
from repro.sion.text import TextReader, TextWriter
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _write_lines(path, backend, lines_per_rank, **paropen_kw):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend,
                    **paropen_kw)
        w = TextWriter(f)
        for line in lines_per_rank(comm.rank):
            w.write_line(line)
        f.parclose()
        return w.lines_written

    return run_spmd(3, task)


def test_lines_roundtrip(any_backend):
    backend, base = any_backend
    path = f"{base}/log.sion"

    def lines(rank):
        return [f"rank {rank} line {i}" for i in range(50)]

    counts = _write_lines(path, backend, lines)
    assert counts == [50, 50, 50]
    for rank in range(3):
        with open_rank(path, rank, backend=backend) as rf:
            assert TextReader(rf).read_lines() == lines(rank)


def test_lines_crossing_chunk_boundaries(any_backend):
    """A single long line spans several 512-byte chunks and reassembles."""
    backend, base = any_backend
    path = f"{base}/long.sion"
    long_line = "x" * 2000

    def lines(rank):
        return [f"head-{rank}", long_line, f"tail-{rank}"]

    _write_lines(path, backend, lines)
    with open_rank(path, 1, backend=backend) as rf:
        assert TextReader(rf).read_lines() == ["head-1", long_line, "tail-1"]


def test_printf_formatting(any_backend):
    backend, base = any_backend
    path = f"{base}/fmt.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        w = TextWriter(f)
        w.printf("step={} energy={:.3f}", 7, -1.23456)
        w.printf("rank={rank}", rank=comm.rank)
        f.parclose()

    run_spmd(2, task)
    with open_rank(path, 1, backend=backend) as rf:
        assert TextReader(rf).read_lines() == ["step=7 energy=-1.235", "rank=1"]


def test_iteration_protocol(any_backend):
    backend, base = any_backend
    path = f"{base}/iter.sion"
    _write_lines(path, backend, lambda r: [f"{r}:{i}" for i in range(10)])
    with open_rank(path, 0, backend=backend) as rf:
        assert [ln for ln in TextReader(rf)] == [f"0:{i}" for i in range(10)]


def test_unterminated_tail_returned_as_line(any_backend):
    backend, base = any_backend
    path = f"{base}/tail.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        w = TextWriter(f)
        w.write_line("complete")
        w.write_text("unterminated fragment")
        f.parclose()

    run_spmd(1, task)
    with open_rank(path, 0, backend=backend) as rf:
        assert TextReader(rf).read_lines() == ["complete", "unterminated fragment"]


def test_unicode_content(any_backend):
    backend, base = any_backend
    path = f"{base}/uni.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        TextWriter(f).write_line("Jülich — μ=3.14 ≠ π")
        f.parclose()

    run_spmd(1, task)
    with open_rank(path, 0, backend=backend) as rf:
        assert TextReader(rf).read_line() == "Jülich — μ=3.14 ≠ π"


def test_custom_newline(any_backend):
    backend, base = any_backend
    path = f"{base}/crlf.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        w = TextWriter(f, newline="\r\n")
        w.write_line("one")
        w.write_line("two")
        f.parclose()

    run_spmd(1, task)
    with open_rank(path, 0, backend=backend) as rf:
        assert TextReader(rf, newline="\r\n").read_lines() == ["one", "two"]


def test_compressed_text(any_backend):
    """Text layer composes with transparent compression."""
    backend, base = any_backend
    path = f"{base}/ztext.sion"
    _write_lines(path, backend, lambda r: [f"{r} {i}" for i in range(30)],
                 compress=True)
    with open_rank(path, 2, backend=backend) as rf:
        assert TextReader(rf).read_lines() == [f"2 {i}" for i in range(30)]


def test_embedded_newline_rejected_in_write_line():
    class FakeStream:
        def fwrite(self, data):
            return len(data)

    w = TextWriter(FakeStream())
    with pytest.raises(SionUsageError):
        w.write_line("two\nlines")


def test_empty_newline_rejected():
    class FakeStream:
        pass

    with pytest.raises(SionUsageError):
        TextWriter(FakeStream(), newline="")
    with pytest.raises(SionUsageError):
        TextReader(FakeStream(), newline="")


@settings(max_examples=25, deadline=None)
@given(
    lines=st.lists(
        st.text(
            alphabet=st.characters(blacklist_characters="\n\r", blacklist_categories=("Cs",)),
            max_size=80,
        ),
        max_size=30,
    )
)
def test_roundtrip_property(lines):
    import tempfile

    from repro.backends.localfs import LocalBackend

    backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
    path = tempfile.mktemp(suffix=".sion")

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        w = TextWriter(f)
        for line in lines:
            w.write_line(line)
        f.parclose()

    run_spmd(1, task)
    with open_rank(path, 0, backend=backend) as rf:
        assert TextReader(rf).read_lines() == list(lines)
