"""Failure injection: damaged sets must fail loudly and precisely."""

import pytest

from repro.errors import (
    SionFormatError,
    SionUsageError,
    SpmdWorkerError,
)
from repro.sion import open_rank, paropen, serial
from repro.sion.mapping import physical_path
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _make(path, backend, ntasks=4, nfiles=2):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=nfiles,
                    backend=backend)
        f.fwrite(bytes([comm.rank]) * 700)
        f.parclose()

    run_spmd(ntasks, task)


def test_missing_sibling_fails_parallel_read(any_backend):
    backend, base = any_backend
    path = f"{base}/m.sion"
    _make(path, backend, nfiles=2)
    backend.unlink(physical_path(path, 1))

    def rtask(comm):
        paropen(path, "r", comm, backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(4, rtask)


def test_missing_sibling_fails_serial_open(any_backend):
    backend, base = any_backend
    path = f"{base}/m2.sion"
    _make(path, backend, nfiles=3)
    backend.unlink(physical_path(path, 2))
    with pytest.raises(Exception):
        serial.open(path, "r", backend=backend)


def test_garbage_file_rejected_with_format_error(any_backend):
    backend, base = any_backend
    path = f"{base}/garbage.sion"
    with backend.open(path, "wb") as f:
        f.write(b"this is not a multifile" * 10)
    with pytest.raises(SionFormatError):
        serial.open(path, "r", backend=backend)


def test_empty_file_rejected(any_backend):
    backend, base = any_backend
    path = f"{base}/empty.sion"
    with backend.open(path, "wb") as f:
        f.write(b"")
    with pytest.raises(SionFormatError, match="too short"):
        serial.open(path, "r", backend=backend)


def test_truncated_metablock2_rejected(any_backend):
    backend, base = any_backend
    path = f"{base}/trunc.sion"
    _make(path, backend, nfiles=1)
    with backend.open(path, "r+b") as f:
        f.truncate(backend.file_size(path) - 4)
    with pytest.raises(SionFormatError):
        serial.open(path, "r", backend=backend)


def test_unclosed_multifile_names_the_problem(any_backend):
    backend, base = any_backend
    path = f"{base}/unclosed.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        f.fwrite(b"x" * 100)
        f._raw.close()  # crash before parclose

    run_spmd(2, task)
    with pytest.raises(SionFormatError, match="never closed"):
        serial.open(path, "r", backend=backend)


def test_corrupted_chunk_data_does_not_break_metadata(any_backend):
    """Data damage is the user's problem; metadata stays readable."""
    backend, base = any_backend
    path = f"{base}/flip.sion"
    _make(path, backend, nfiles=1)
    with serial.open(path, "r", backend=backend) as sf:
        loc = sf.get_locations()
    # Flip bytes inside task 0's chunk.
    with backend.open(path, "r+b") as f:
        f.seek(loc.fsblksize + 5)
        f.write(b"\xde\xad")
    with serial.open(path, "r", backend=backend) as sf:
        assert sf.get_locations().nblocks == loc.nblocks
        data = sf.read_task(0)
        assert len(data) == 700  # length intact, content (rightly) changed


def test_rank_file_survives_other_files_damage(any_backend):
    """Task-local view of file 0 must not require reading file 1."""
    backend, base = any_backend
    path = f"{base}/partial.sion"
    _make(path, backend, ntasks=4, nfiles=2)
    # Destroy physical file 1 (ranks 2,3); ranks 0,1 live in file 0.
    with backend.open(physical_path(path, 1), "wb") as f:
        f.write(b"gone")
    with open_rank(path, 0, backend=backend) as rf:
        assert rf.read_all() == bytes([0]) * 700
    with pytest.raises(SionFormatError):
        open_rank(path, 3, backend=backend)


def test_partial_rank_failure_during_write_aborts_cleanly(any_backend):
    backend, base = any_backend
    path = f"{base}/die.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        if comm.rank == 1:
            raise RuntimeError("rank 1 dies mid-write")
        f.fwrite(b"y" * 100)
        f.parclose()

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, task)
    assert 1 in exc_info.value.failures


def test_reading_write_handle_and_vice_versa(any_backend):
    backend, base = any_backend
    path = f"{base}/modes2.sion"
    _make(path, backend, ntasks=2, nfiles=1)

    def rtask(comm):
        f = paropen(path, "r", comm, backend=backend)
        caught = []
        for op in (lambda: f.fwrite(b"x"), lambda: f.ensure_free_space(1),
                   lambda: f.flush_shadow()):
            try:
                op()
            except SionUsageError:
                caught.append(True)
        f.parclose()
        return caught

    assert run_spmd(2, rtask) == [[True, True, True]] * 2


def test_interleaved_different_multifiles(any_backend):
    """Two multifiles open at once per task don't interfere."""
    backend, base = any_backend
    p1, p2 = f"{base}/a.sion", f"{base}/b.sion"

    def task(comm):
        fa = paropen(p1, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        fb = paropen(p2, "w", comm, chunksize=TEST_BLKSIZE, backend=backend)
        for i in range(10):
            fa.fwrite(b"A" * 50)
            fb.fwrite(b"B" * 70)
        fa.parclose()
        fb.parclose()

    run_spmd(3, task)
    with serial.open(p1, "r", backend=backend) as sf:
        assert sf.read_task(1) == b"A" * 500
    with serial.open(p2, "r", backend=backend) as sf:
        assert sf.read_task(2) == b"B" * 700
