"""Re-partitioned reads: m readers over an n-writer multifile.

The container promise of the paper: metadata lives in the file, not in
the job, so *any* number of consumers can come back later.  These tests
pin the byte-level contract — concatenating the m readers' logical
streams in reader order reproduces the n writer streams in writer order,
for every divisor-and-ragged m in 1..n (m=1 is the serial scan, m=n the
matched-world read), across engines x mappings x nfiles, in direct and
collective-prefetch mode, with compression and shadow headers riding
along.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.simfs_backend import SimBackend
from repro.errors import SionUsageError
from repro.fs.simfs import SimFS
from repro.sion import paropen, serial
from repro.sion.mapping import ReadPartition
from repro.simmpi import run_spmd
from tests.conftest import TEST_BLKSIZE


def _payload(rank: int, n: int) -> bytes:
    return bytes((rank * 31 + i) % 256 for i in range(n))


def _backend():
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/s")
    return SimBackend(fs)


def _write(backend, ntasks, sizes, *, chunksize=128, nfiles=1,
           mapping="blocked", engine="threads", path="/s/m.sion", **kw):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=chunksize, nfiles=nfiles,
                    mapping=mapping, backend=backend, **kw)
        f.fwrite(_payload(comm.rank, sizes[comm.rank]))
        f.parclose()

    run_spmd(ntasks, task, engine=engine)


def _read_partitioned(backend, nreaders, *, engine="threads",
                      path="/s/m.sion", collectsize=None):
    def task(comm):
        f = paropen(path, "r", comm, backend=backend, partitioned=True,
                    collectsize=collectsize)
        data = f.read_all()
        assert f.feof()
        f.parclose()
        return data

    return run_spmd(nreaders, task, engine=engine)


# ---------------------------------------------------------------------------
# ReadPartition arithmetic.


def test_balanced_partition_is_contiguous_and_complete():
    p = ReadPartition.balanced(10, 3)
    assert p.counts == (4, 3, 3)
    assert p.starts == (0, 4, 7)
    covered = [w for r in range(3) for w in p.writers_of(r)]
    assert covered == list(range(10))
    for w in range(10):
        assert w in p.writers_of(p.reader_of(w))


def test_partition_more_readers_than_writers_leaves_empty_slices():
    p = ReadPartition.balanced(2, 5)
    assert p.counts == (1, 1, 0, 0, 0)
    assert list(p.writers_of(4)) == []
    assert p.reader_of(1) == 1


def test_partition_rejects_nonpositive_shapes():
    with pytest.raises(SionUsageError):
        ReadPartition.balanced(0, 1)
    with pytest.raises(SionUsageError):
        ReadPartition.balanced(4, 0)
    with pytest.raises(SionUsageError):
        ReadPartition.balanced(4, 2).writers_of(2)
    with pytest.raises(SionUsageError):
        ReadPartition.balanced(4, 2).reader_of(4)


# ---------------------------------------------------------------------------
# The full small-world matrix: engines x mappings x nfiles x every m.


@pytest.mark.parametrize("engine", ["threads", "bulk"])
@pytest.mark.parametrize("mapping,nfiles", [
    ("blocked", 1), ("blocked", 2), ("roundrobin", 3),
])
def test_every_reader_count_roundtrips(engine, mapping, nfiles):
    backend = _backend()
    n = 6
    sizes = [100 + 37 * r for r in range(n)]
    _write(backend, n, sizes, nfiles=nfiles, mapping=mapping, engine=engine)
    expected = b"".join(_payload(r, sizes[r]) for r in range(n))
    for m in list(range(1, n + 1)) + [n + 2]:  # divisors, ragged, m > n
        out = _read_partitioned(backend, m, engine=engine)
        assert b"".join(out) == expected, (engine, mapping, nfiles, m)
        # Each reader's slice is exactly its writers' concatenation.
        part = ReadPartition.balanced(n, m)
        for r in range(m):
            exp = b"".join(_payload(w, sizes[w]) for w in part.writers_of(r))
            assert out[r] == exp


def test_m_equals_one_matches_serial_scan():
    backend = _backend()
    n = 5
    sizes = [200 + 11 * r for r in range(n)]
    _write(backend, n, sizes, nfiles=2)
    [single] = _read_partitioned(backend, 1)
    with serial.open("/s/m.sion", "r", backend=backend) as sf:
        serial_concat = b"".join(sf.read_task(r) for r in range(n))
    assert single == serial_concat


def test_m_equals_n_matches_matched_world_read():
    backend = _backend()
    n = 4
    sizes = [300] * n
    _write(backend, n, sizes)

    def matched(comm):
        f = paropen("/s/m.sion", "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    assert _read_partitioned(backend, n) == run_spmd(n, matched)


def test_custom_mapping_partitioned_roundtrip():
    backend = _backend()
    n = 5
    sizes = [64 + 9 * r for r in range(n)]
    _write(backend, n, sizes, nfiles=2, mapping=[1, 0, 1, 0, 1])
    expected = b"".join(_payload(r, sizes[r]) for r in range(n))
    for m in (1, 2, 3, 5):
        assert b"".join(_read_partitioned(backend, m)) == expected


# ---------------------------------------------------------------------------
# The hypothesis property: arbitrary write schedules, every reader count.


@settings(max_examples=20, deadline=None)
@given(
    data=st.data(),
    n=st.integers(min_value=1, max_value=6),
    chunksize=st.integers(min_value=0, max_value=600),
    nfiles=st.integers(min_value=1, max_value=3),
    mapping_kind=st.sampled_from(["blocked", "roundrobin"]),
    engine=st.sampled_from(["threads", "bulk"]),
)
def test_roundtrip_property_every_reader_count(
    data, n, chunksize, nfiles, mapping_kind, engine
):
    """Bytes written by n tasks read back by every m in 1..n, exactly."""
    nfiles = min(nfiles, n)
    sizes = [data.draw(st.integers(0, 1500), label=f"size[{r}]") for r in range(n)]
    backend = _backend()
    _write(
        backend, n, sizes, chunksize=chunksize, nfiles=nfiles,
        mapping=mapping_kind, engine=engine,
    )
    for m in range(1, n + 1):
        out = _read_partitioned(backend, m, engine=engine)
        part = ReadPartition.balanced(n, m)
        for r in range(m):
            expected = b"".join(
                _payload(w, sizes[w]) for w in part.writers_of(r)
            )
            assert out[r] == expected, (m, r)


# ---------------------------------------------------------------------------
# Collective-prefetch partitioned reads.


@pytest.mark.parametrize("engine", ["threads", "bulk"])
@pytest.mark.parametrize("collectsize", [1, 2, 4])
def test_collective_prefetch_partitioned_roundtrip(engine, collectsize):
    backend = _backend()
    n = 8
    sizes = [150 + 13 * r for r in range(n)]
    _write(backend, n, sizes, nfiles=2, engine=engine)
    expected = b"".join(_payload(r, sizes[r]) for r in range(n))
    for m in (1, 3, 4, 8):
        out = _read_partitioned(
            backend, m, engine=engine, collectsize=collectsize
        )
        assert b"".join(out) == expected, (engine, collectsize, m)


def test_collective_prefetch_serves_reads_from_memory(sim_backend):
    """After the prefetch wave, senders' freads never touch the store."""
    from repro.backends.instrument import CountingBackend

    backend = CountingBackend(sim_backend)
    n, m = 6, 3
    sizes = [400] * n
    _write(backend, n, sizes, path="/scratch/pf.sion")
    before = backend.snapshot()["data_read_calls"]

    def task(comm):
        f = paropen("/scratch/pf.sion", "r", comm, backend=backend,
                    partitioned=True, collectsize=3)
        out = []
        while not f.feof():
            out.append(f.fread(97))  # many small reads, all memory-served
        f.parclose()
        return b"".join(out)

    out = run_spmd(m, task)
    assert b"".join(out) == b"".join(_payload(r, 400) for r in range(n))
    reads = backend.snapshot()["data_read_calls"] - before
    # ceil(3/3) = 1 collector; one gather_read per touched physical file
    # plus the metadata loads (probe 4 + 8 per file) — independent of the
    # number of freads above.
    assert reads == 1 + 12


# ---------------------------------------------------------------------------
# Compression / shadow riding along.


@pytest.mark.parametrize("kw", [
    {"compress": True},
    {"shadow": True},
    {"compress": True, "shadow": True},
])
def test_partitioned_read_with_flags(kw):
    backend = _backend()
    n = 5
    sizes = [900 + 50 * r for r in range(n)]
    _write(backend, n, sizes, chunksize=256, **kw)
    expected = b"".join(_payload(r, sizes[r]) for r in range(n))
    for m in (1, 2, 5):
        assert b"".join(_read_partitioned(backend, m)) == expected


def test_partitioned_fread_piecewise_with_compression():
    backend = _backend()
    n = 4
    sizes = [500] * n
    _write(backend, n, sizes, chunksize=256, compress=True)
    expected = b"".join(_payload(r, 500) for r in range(n))

    def task(comm):
        f = paropen("/s/m.sion", "r", comm, backend=backend, partitioned=True)
        parts = []
        while not f.feof():
            parts.append(f.fread(333))
        f.parclose()
        return b"".join(parts)

    assert b"".join(run_spmd(2, task)) == expected


# ---------------------------------------------------------------------------
# O(m) physical reads: the data-plane claim.


def test_partitioned_read_calls_scale_with_readers(sim_backend):
    from repro.backends.instrument import CountingBackend

    backend = CountingBackend(sim_backend)
    n = 32
    _write(backend, n, [64] * n, path="/scratch/om.sion")
    for m in (2, 4, 8):
        before = backend.snapshot()["data_read_calls"]
        out = _read_partitioned(backend, m, path="/scratch/om.sion")
        assert b"".join(out) == b"".join(_payload(r, 64) for r in range(n))
        reads = backend.snapshot()["data_read_calls"] - before
        # One vectored gather_read per reader (single physical file) plus
        # the fixed metadata loads: probe (4) + mb1/mb2 decode (8).
        assert reads == m + 12, (m, reads)


# ---------------------------------------------------------------------------
# Failure shape: shortfalls are distinguishable from EOF.


def test_partition_stream_shortfall_stops_consuming():
    """A short read consumes only what arrived; later streams untouched."""
    from repro.backends.base import RawFile
    from repro.sion.layout import ChunkLayout
    from repro.sion.readwrite import PartitionStream, TaskStream

    class ShortStore(RawFile):
        """Positioned reads over a buffer shorter than the layout."""

        def __init__(self, data: bytes) -> None:
            self._data = data

        def pread(self, offset: int, n: int) -> bytes:
            return self._data[offset : offset + n]

        # Unused surface.
        def seek(self, offset, whence=0):
            raise NotImplementedError

        def tell(self):
            raise NotImplementedError

        def read(self, n=-1):
            raise NotImplementedError

        def write(self, data):
            raise NotImplementedError

        def write_zeros(self, n):
            raise NotImplementedError

        def truncate(self, size):
            raise NotImplementedError

        def flush(self):
            pass

        def close(self):
            pass

    layout = ChunkLayout(64, [64, 64], 0)
    # Stream 0's chunk is complete; stream 1's chunk is half missing.
    store = ShortStore(bytes(range(64)) + bytes(range(64, 96)))
    s0 = TaskStream(store, layout, 0, "r", blocksizes=[64])
    s1 = TaskStream(store, layout, 1, "r", blocksizes=[64])
    mux = PartitionStream([s0, s1])
    got = mux.fread(200)
    assert got == bytes(range(96))
    assert not mux.feof()  # shortfall, not a clean end of slice
    assert mux.fread(100) == b""  # nothing more arrives
    assert not mux.feof()
    assert mux.tell_logical() == 96
