"""Buddy-replica checkpointing: mirror writes, survive whole-file loss.

``paropen(..., buddy=True)`` mirrors every chunk write of physical file
``f`` into a replica hosted on the *partner* stem
(``physical_path(base, (f+1) % nfiles) + ".buddy"``), so losing one stem
entirely never takes both copies.  These tests pin the replication
contract (replica byte-identical to its primary by construction), the
recovery contract (a lost or torn primary rebuilt byte-identically from
its buddy, on both the threads and bulk engines), and the tooling
surface (``assess_loss`` / ``sionverify --inject lose-file=K``).
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend
from repro.errors import SionUsageError
from repro.fs.simfs import SimFS
from repro.sion import (
    BUDDY_SUFFIX,
    buddy_path,
    paropen,
    recover_multifile,
    serial,
)
from repro.sion.mapping import physical_path
from repro.simmpi import run_spmd
from repro.utils.cli import main_verify
from repro.utils.verify import assess_loss, verify_multifile
from tests.conftest import TEST_BLKSIZE

ENGINES = ("threads", "bulk")


def _payload(rank: int, n: int) -> bytes:
    return bytes((rank * 17 + i) % 256 for i in range(n))


def _backend():
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/scratch")
    return SimBackend(fs)


def _write_buddy(be, path, ntasks, *, nfiles=2, size=700, engine="threads",
                 collectsize=None, shadow=True):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=256, nfiles=nfiles,
                    shadow=shadow, buddy=True, collectsize=collectsize,
                    backend=be)
        f.fwrite(_payload(comm.rank, size))
        f.parclose()

    run_spmd(ntasks, task, engine=engine)


def _file_bytes(be, path: str) -> bytes:
    f = be.open(path, "rb")
    try:
        return f.pread(0, be.file_size(path))
    finally:
        f.close()


def _hashes(be, base: str, nfiles: int) -> dict[int, str]:
    return {
        k: hashlib.sha256(_file_bytes(be, physical_path(base, k))).hexdigest()
        for k in range(nfiles)
    }


def _check_readback(be, path, ntasks, size=700):
    with serial.open(path, "r", backend=be) as sf:
        for r in range(ntasks):
            assert sf.read_task(r) == _payload(r, size)


# -- placement and replication ----------------------------------------------


def test_buddy_path_lives_on_partner_stem():
    assert buddy_path("/s/out.sion", 0, 2) == (
        physical_path("/s/out.sion", 1) + BUDDY_SUFFIX
    )
    # The last file's replica wraps around to stem 0 (geometry bootstrap).
    assert buddy_path("/s/out.sion", 1, 2) == "/s/out.sion" + BUDDY_SUFFIX
    # nfiles=1 degenerates to a sibling of the only file.
    assert buddy_path("/s/out.sion", 0, 1) == "/s/out.sion" + BUDDY_SUFFIX


def test_replicas_byte_identical_after_write():
    be = _backend()
    path = "/scratch/b.sion"
    _write_buddy(be, path, 6, nfiles=2)
    for k in range(2):
        primary = _file_bytes(be, physical_path(path, k))
        replica = _file_bytes(be, buddy_path(path, k, 2))
        assert primary == replica


def test_buddy_rejected_in_read_mode():
    be = _backend()
    path = "/scratch/r.sion"
    _write_buddy(be, path, 2, nfiles=1)

    def task(comm):
        paropen(path, "r", comm, buddy=True, backend=be)

    with pytest.raises(Exception) as exc_info:
        run_spmd(2, task)
    failures = getattr(exc_info.value, "failures", {})
    assert any(isinstance(e, SionUsageError) for e in failures.values()) or (
        isinstance(exc_info.value, SionUsageError)
    )


# -- whole-file loss recovery ------------------------------------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_lose_one_file_recover_byte_identical(engine):
    be = _backend()
    path = "/scratch/l.sion"
    _write_buddy(be, path, 6, nfiles=2, engine=engine)
    before = _hashes(be, path, 2)
    be.unlink(physical_path(path, 1))

    report = recover_multifile(path, backend=be)
    assert report.files_rebuilt_from_buddy == 1
    assert report.files_recovered == 1
    assert report.bytes_recovered == 3 * 700  # logical bytes of 3 tasks

    assert _hashes(be, path, 2) == before
    assert verify_multifile(path, backend=be, deep=True).ok
    _check_readback(be, path, 6)


def test_lose_file_zero_bootstraps_geometry_from_buddy():
    """File 0 holds the authoritative geometry; its loss must still boot."""
    be = _backend()
    path = "/scratch/z.sion"
    _write_buddy(be, path, 4, nfiles=2)
    before = _hashes(be, path, 2)
    be.unlink(path)  # physical file 0 IS the base path

    report = recover_multifile(path, backend=be)
    assert report.files_rebuilt_from_buddy == 1
    assert _hashes(be, path, 2) == before
    _check_readback(be, path, 4)


def test_nfiles_one_degenerate_buddy():
    be = _backend()
    path = "/scratch/one.sion"
    _write_buddy(be, path, 3, nfiles=1)
    before = _hashes(be, path, 1)
    be.unlink(path)
    report = recover_multifile(path, backend=be)
    assert report.files_rebuilt_from_buddy == 1
    assert _hashes(be, path, 1) == before
    _check_readback(be, path, 3)


def test_collective_buddy_mirrors_and_recovers():
    be = _backend()
    path = "/scratch/cb.sion"
    _write_buddy(be, path, 4, nfiles=2, collectsize=2)
    for k in range(2):
        assert _file_bytes(be, physical_path(path, k)) == _file_bytes(
            be, buddy_path(path, k, 2)
        )
    before = _hashes(be, path, 2)
    be.unlink(physical_path(path, 1))
    recover_multifile(path, backend=be)
    assert _hashes(be, path, 2) == before
    _check_readback(be, path, 4)


def test_torn_metablock2_prefers_buddy_over_shadow_rebuild():
    """A torn primary with an intact replica restores byte-identically.

    The shadow rebuild would lose unflushed tails; the buddy copy cannot
    — the decision table prefers it whenever the replica fully decodes.
    """
    from repro.backends import FaultInjectingBackend, FaultPlan

    inner = _backend()
    path = "/scratch/torn.sion"
    be = FaultInjectingBackend(inner, FaultPlan().drop_metablock2(path))
    _write_buddy(be, path, 4, nfiles=2)

    report = recover_multifile(path, backend=inner)
    assert report.files_rebuilt_from_buddy == 1
    # Byte-identical to the replica, hence to the unfaulted primary.
    assert _file_bytes(inner, path) == _file_bytes(inner, buddy_path(path, 0, 2))
    assert verify_multifile(path, backend=inner, deep=True).ok
    _check_readback(inner, path, 4)


# -- tooling: assess_loss / sionverify --inject ------------------------------


def test_assess_loss_reports_survivable_and_not():
    be = _backend()
    path = "/scratch/al.sion"
    _write_buddy(be, path, 4, nfiles=2)
    assert assess_loss(path, 0, backend=be).ok
    assert assess_loss(path, 1, backend=be).ok
    assert not assess_loss(path, 2, backend=be).ok  # out of range

    be.unlink(buddy_path(path, 1, 2))
    assert not assess_loss(path, 1, backend=be).ok  # replica gone
    assert assess_loss(path, 0, backend=be).ok      # other file unaffected


def test_assess_loss_requires_buddy_flag():
    be = _backend()
    path = "/scratch/nb.sion"

    def task(comm):
        f = paropen(path, "w", comm, chunksize=256, backend=be)
        f.fwrite(b"x" * 100)
        f.parclose()

    run_spmd(2, task)
    assert not assess_loss(path, 0, backend=be).ok


def test_sionverify_inject_cli(tmp_path):
    be = LocalBackend(blocksize_override=TEST_BLKSIZE)
    path = str(tmp_path / "cli.sion")
    _write_buddy(be, path, 4, nfiles=2)

    assert main_verify(["--inject", "lose-file=1", path]) == 0
    assert main_verify(["--inject", "bogus", path]) == 1
    be.unlink(buddy_path(path, 1, 2))
    assert main_verify(["--inject", "lose-file=1", path]) == 2


# -- the resilience property -------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    data=st.data(),
    ntasks=st.integers(min_value=2, max_value=6),
    nfiles=st.integers(min_value=1, max_value=3),
    engine=st.sampled_from(ENGINES),
    collectsize=st.sampled_from([None, 1, 2]),
    size=st.integers(min_value=1, max_value=900),
)
def test_any_single_file_loss_recovers_byte_identically(
    data, ntasks, nfiles, engine, collectsize, size
):
    """∀ plans killing ≤1 physical file under buddy mode: recovery is exact.

    For every geometry (engine × nfiles × collectsize × payload size) and
    every choice of victim file, deleting that file and recovering yields
    a physical set byte-identical to the unfaulted write.
    """
    nfiles = min(nfiles, ntasks)
    lost = data.draw(st.integers(min_value=0, max_value=nfiles - 1))
    be = _backend()
    path = "/scratch/prop.sion"
    _write_buddy(be, path, ntasks, nfiles=nfiles, size=size,
                 engine=engine, collectsize=collectsize)
    before = _hashes(be, path, nfiles)

    be.unlink(physical_path(path, lost))
    report = recover_multifile(path, backend=be)

    assert report.files_rebuilt_from_buddy == 1
    assert _hashes(be, path, nfiles) == before
    _check_readback(be, path, ntasks, size=size)
