"""Chunk layout arithmetic: alignment, non-overlap, inverse mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SionUsageError
from repro.sion.layout import ChunkLayout, align_up


class TestAlignUp:
    def test_basic(self):
        assert align_up(0, 512) == 0
        assert align_up(1, 512) == 512
        assert align_up(512, 512) == 512
        assert align_up(513, 512) == 1024

    def test_invalid(self):
        with pytest.raises(SionUsageError):
            align_up(1, 0)
        with pytest.raises(SionUsageError):
            align_up(-1, 512)

    @settings(max_examples=50, deadline=None)
    @given(v=st.integers(0, 10**12), g=st.integers(1, 10**6))
    def test_properties(self, v, g):
        a = align_up(v, g)
        assert a >= v
        assert a % g == 0
        assert a - v < g


def _layout(chunks, blk=512, mb1=100):
    return ChunkLayout(fsblksize=blk, chunksizes=chunks, metablock1_size=mb1)


class TestChunkLayout:
    def test_aligned_sizes_rounded_up_with_min_one_block(self):
        lay = _layout([0, 1, 512, 513])
        assert lay.aligned_sizes == [512, 512, 512, 1024]

    def test_start_of_data_after_metablock(self):
        lay = _layout([100], blk=512, mb1=1000)
        assert lay.start_of_data == 1024

    def test_capacity_is_aligned_size(self):
        lay = _layout([100, 600])
        assert lay.capacity(0) == 512
        assert lay.capacity(1) == 1024

    def test_chunk_starts_first_block(self):
        lay = _layout([100, 100, 100])
        assert lay.chunk_start(0, 0) == lay.start_of_data
        assert lay.chunk_start(1, 0) == lay.start_of_data + 512
        assert lay.chunk_start(2, 0) == lay.start_of_data + 1024

    def test_block_stride_is_total_capacity(self):
        lay = _layout([100, 600])
        assert lay.block_capacity == 512 + 1024
        assert lay.chunk_start(0, 1) - lay.chunk_start(0, 0) == lay.block_capacity

    def test_chunk_end_and_end_of_blocks(self):
        lay = _layout([100, 100])
        assert lay.chunk_end(1, 0) == lay.chunk_start(1, 0) + 512
        assert lay.end_of_blocks(3) == lay.start_of_data + 3 * lay.block_capacity

    def test_validation(self):
        with pytest.raises(SionUsageError):
            _layout([100], blk=0)
        with pytest.raises(SionUsageError):
            _layout([-1])
        with pytest.raises(SionUsageError):
            ChunkLayout(512, [1], -1)
        lay = _layout([100])
        with pytest.raises(SionUsageError):
            lay.chunk_start(1, 0)
        with pytest.raises(SionUsageError):
            lay.chunk_start(0, -1)
        with pytest.raises(SionUsageError):
            lay.end_of_blocks(-1)

    def test_locate_inverse_of_chunk_start(self):
        lay = _layout([100, 900, 300])
        for task in range(3):
            for block in range(3):
                for pos in (0, 1, lay.capacity(task) - 1):
                    off = lay.chunk_start(task, block) + pos
                    assert lay.locate(off) == (task, block, pos)

    def test_locate_outside_data_returns_none(self):
        lay = _layout([100])
        assert lay.locate(0) is None
        assert lay.locate(lay.start_of_data - 1) is None

    def test_is_aligned_true_at_native_granularity(self):
        lay = _layout([100, 700], blk=512)
        assert lay.is_aligned(512)
        assert lay.is_aligned(256)  # finer granularity still aligned

    def test_is_aligned_false_when_configured_smaller(self):
        # Configured at 512 but the "real" FS block is 2048: chunk
        # boundaries now fall inside real blocks (Table 1's scenario).
        lay = _layout([100, 100, 100], blk=512, mb1=0)
        assert not lay.is_aligned(2048)

    def test_from_metablock1_uses_stored_start(self):
        from repro.sion.format import Metablock1

        mb1 = Metablock1(
            fsblksize=512,
            ntasks_local=2,
            nfiles=1,
            filenum=0,
            ntasks_global=2,
            start_of_data=99999 * 512,
            metablock2_offset=0,
            globalranks=[0, 1],
            chunksizes=[10, 20],
        )
        lay = ChunkLayout.from_metablock1(mb1)
        assert lay.start_of_data == 99999 * 512


@settings(max_examples=60, deadline=None)
@given(
    chunks=st.lists(st.integers(0, 10000), min_size=1, max_size=30),
    blk=st.sampled_from([256, 512, 4096]),
    nblocks=st.integers(1, 4),
)
def test_chunks_never_overlap_and_stay_aligned(chunks, blk, nblocks):
    """The core layout invariants behind the no-false-sharing claim."""
    lay = ChunkLayout(blk, chunks, metablock1_size=123)
    intervals = []
    for b in range(nblocks):
        for t in range(len(chunks)):
            s, e = lay.chunk_start(t, b), lay.chunk_end(t, b)
            assert s % blk == 0, "chunk start must sit on an FS block boundary"
            assert (e - s) % blk == 0, "allocation must be whole blocks"
            assert e - s >= max(chunks[t], 1)
            intervals.append((s, e))
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2, "chunk allocations must be disjoint"
