"""Thermostat integration in the simulation driver."""

import pytest

from repro.apps.mp2c import SimulationConfig, run_simulation
from repro.simmpi import run_spmd


def test_thermostat_holds_target_temperature(any_backend):
    backend, base = any_backend
    cfg = SimulationConfig(
        particles_per_task=400,
        nsteps=6,
        thermostat_every=1,
        target_temperature=0.5,
    )
    results = run_spmd(4, run_simulation, cfg, backend=backend)
    for r in results:
        assert r.diagnostics["temperature"] == pytest.approx(0.5, rel=1e-9)


def test_thermostat_preserves_momentum_conservation(any_backend):
    backend, base = any_backend
    cfg = SimulationConfig(
        particles_per_task=300,
        nsteps=5,
        thermostat_every=2,
        target_temperature=2.0,
    )
    results = run_spmd(4, run_simulation, cfg, backend=backend)
    assert max(r.momentum_drift for r in results) < 1e-8


def test_thermostat_off_leaves_temperature_free(any_backend):
    backend, base = any_backend
    cfg = SimulationConfig(particles_per_task=300, nsteps=3, thermostat_every=0)
    results = run_spmd(4, run_simulation, cfg, backend=backend)
    temps = [r.diagnostics["temperature"] for r in results]
    # Without a thermostat the local temperatures fluctuate around 1.0
    # (initial Maxwellian) but are not pinned exactly.
    assert all(0.5 < t < 2.0 for t in temps)
    assert any(abs(t - 1.0) > 1e-6 for t in temps)
