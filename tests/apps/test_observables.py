"""Physical observables and the thermostat."""

import numpy as np
import pytest

from repro.apps.mp2c.observables import (
    com_velocity,
    maxwell_boltzmann_speed_pdf,
    maxwellian_deviation,
    mean_squared_displacement,
    rescale_to_temperature,
    speed_histogram,
    temperature,
)
from repro.apps.mp2c.particles import ParticleState
from repro.apps.mp2c.srd import srd_step
from repro.errors import ReproError


def _state(n=2000, temp=1.0, seed=0):
    return ParticleState.random(n, (16.0, 16.0, 16.0), temperature=temp, seed=seed)


class TestTemperature:
    def test_matches_generation_temperature(self):
        for target in (0.5, 1.0, 2.0):
            s = _state(5000, temp=target, seed=3)
            assert temperature(s) == pytest.approx(target, rel=0.1)

    def test_com_motion_excluded(self):
        s = _state(1000, temp=1.0)
        boosted = ParticleState(s.ids, s.pos, s.vel + np.array([10.0, 0.0, 0.0]))
        assert temperature(boosted) == pytest.approx(temperature(s))
        assert com_velocity(boosted)[0] == pytest.approx(10.0)

    def test_empty_state(self):
        e = ParticleState.empty()
        assert temperature(e) == 0.0
        assert np.allclose(com_velocity(e), 0.0)


class TestThermostat:
    def test_rescales_exactly(self):
        s = _state(500, temp=2.0, seed=1)
        out = rescale_to_temperature(s, 0.75)
        assert temperature(out) == pytest.approx(0.75, rel=1e-12)

    def test_preserves_momentum(self):
        s = _state(500, temp=1.5, seed=2)
        boosted = ParticleState(s.ids, s.pos, s.vel + np.array([1.0, -2.0, 0.5]))
        out = rescale_to_temperature(boosted, 3.0)
        assert np.allclose(out.momentum, boosted.momentum, atol=1e-9)

    def test_zero_temperature_freezes_thermal_motion(self):
        s = _state(100, temp=1.0, seed=3)
        out = rescale_to_temperature(s, 0.0)
        assert temperature(out) == pytest.approx(0.0, abs=1e-24)

    def test_cold_state_unchanged(self):
        frozen = ParticleState(
            np.arange(4), np.random.default_rng(0).random((4, 3)), np.zeros((4, 3))
        )
        out = rescale_to_temperature(frozen, 1.0)
        assert np.array_equal(out.vel, frozen.vel)

    def test_negative_target_rejected(self):
        with pytest.raises(ReproError):
            rescale_to_temperature(_state(10), -1.0)


class TestMSD:
    def test_static_particles_zero(self):
        s = _state(100)
        assert mean_squared_displacement(s, s) == 0.0

    def test_uniform_shift(self):
        s = _state(100)
        moved = ParticleState(s.ids, s.pos + np.array([3.0, 4.0, 0.0]), s.vel)
        assert mean_squared_displacement(s, moved) == pytest.approx(25.0)

    def test_order_independent(self):
        s = _state(50, seed=5)
        perm = np.random.default_rng(1).permutation(50)
        shuffled = ParticleState(s.ids[perm], s.pos[perm] + 1.0, s.vel[perm])
        assert mean_squared_displacement(s, shuffled) == pytest.approx(3.0)

    def test_mismatched_snapshots_rejected(self):
        with pytest.raises(ReproError):
            mean_squared_displacement(_state(10), _state(20))
        a = _state(10, seed=1)
        b = ParticleState(a.ids + 100, a.pos, a.vel)
        with pytest.raises(ReproError):
            mean_squared_displacement(a, b)

    def test_ballistic_growth_under_streaming(self):
        from repro.apps.mp2c.srd import stream

        s = _state(500, temp=1.0, seed=7)
        msd1 = mean_squared_displacement(s, stream(s, 1.0))
        msd2 = mean_squared_displacement(s, stream(s, 2.0))
        assert msd2 == pytest.approx(4.0 * msd1, rel=1e-9)  # ~ t^2 ballistic


class TestMaxwellian:
    def test_pdf_normalized(self):
        v = np.linspace(0, 12, 4000)
        pdf = maxwell_boltzmann_speed_pdf(v, temp=1.7)
        integral = float(((pdf[1:] + pdf[:-1]) / 2 * np.diff(v)).sum())
        assert integral == pytest.approx(1.0, rel=1e-3)

    def test_histogram_matches_pdf_for_gaussian_velocities(self):
        s = _state(40000, temp=1.0, seed=9)
        assert maxwellian_deviation(s) < 0.1

    def test_non_thermal_distribution_deviates(self):
        n = 4000
        vel = np.ones((n, 3))  # everyone identical: far from Maxwellian
        vel[: n // 2] *= -1.0
        s = ParticleState(np.arange(n), np.zeros((n, 3)), vel)
        assert maxwellian_deviation(s) > 0.5

    def test_srd_preserves_thermal_distribution(self):
        """Collisions keep an equilibrated solvent Maxwellian."""
        s = _state(20000, temp=1.0, seed=11)
        cur = s
        rng = np.random.default_rng(0)
        for _ in range(3):
            cur = srd_step(cur, dt=0.1, cell_size=1.0, rng=rng)
        assert maxwellian_deviation(cur) < 0.15
        assert temperature(cur) == pytest.approx(temperature(s), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ReproError):
            maxwell_boltzmann_speed_pdf(np.array([1.0]), temp=0.0)
        with pytest.raises(ReproError):
            speed_histogram(_state(10), bins=0)
