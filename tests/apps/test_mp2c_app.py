"""MP2C driver and checkpoint/restart across all three I/O methods."""

import pytest

from repro.apps.mp2c import (
    SimulationConfig,
    read_restart,
    run_simulation,
    write_restart,
)
from repro.apps.mp2c.decomposition import DomainDecomposition
from repro.apps.mp2c.particles import ParticleState, equal_states
from repro.errors import SpmdWorkerError
from repro.simmpi import run_spmd


def _collect(results):
    return ParticleState.concatenate([r if isinstance(r, ParticleState) else r.state for r in results])


class TestDriver:
    def test_conservation_over_run(self, any_backend):
        backend, base = any_backend
        cfg = SimulationConfig(particles_per_task=150, nsteps=5)
        results = run_spmd(8, run_simulation, cfg, backend=backend)
        assert max(r.momentum_drift for r in results) < 1e-9
        assert sum(r.state.n for r in results) == 8 * 150
        assert all(r.steps_run == 5 for r in results)

    def test_checkpoints_written_on_schedule(self, any_backend):
        backend, base = any_backend
        cfg = SimulationConfig(
            particles_per_task=50,
            nsteps=6,
            checkpoint_every=2,
            checkpoint_path=f"{base}/drv.sion",
        )
        results = run_spmd(4, run_simulation, cfg, backend=backend)
        assert all(r.checkpoints_written == 3 for r in results)
        for step in (2, 4, 6):
            assert backend.exists(f"{base}/drv.sion.step{step:06d}")

    def test_md_coupling_keeps_conservation(self, any_backend):
        backend, base = any_backend
        cfg = SimulationConfig(particles_per_task=100, nsteps=4, md_chains=3)
        results = run_spmd(4, run_simulation, cfg, backend=backend)
        assert max(r.momentum_drift for r in results) < 1e-8

    def test_grid_reported(self, any_backend):
        backend, base = any_backend
        cfg = SimulationConfig(particles_per_task=10, nsteps=1)
        results = run_spmd(8, run_simulation, cfg, backend=backend)
        assert results[0].diagnostics["grid"] == (2, 2, 2)

    def test_single_task_run(self, any_backend):
        backend, base = any_backend
        cfg = SimulationConfig(particles_per_task=64, nsteps=3)
        (res,) = run_spmd(1, run_simulation, cfg, backend=backend)
        assert res.state.n == 64


@pytest.mark.parametrize("method", ["sion", "tasklocal", "singlefile"])
class TestCheckpoint:
    def test_roundtrip_preserves_state(self, any_backend, method):
        backend, base = any_backend
        path = f"{base}/ck_{method}"
        box = (8.0, 8.0, 8.0)

        def wtask(comm):
            state = ParticleState.random(
                80, box, seed=comm.rank, id_offset=comm.rank * 80
            )
            write_restart(comm, path, state, method=method, backend=backend)
            return state

        written = run_spmd(4, wtask)

        def rtask(comm):
            return read_restart(comm, path, method=method, backend=backend)

        restored = run_spmd(4, rtask)
        assert equal_states(
            ParticleState.concatenate(list(written)),
            ParticleState.concatenate(list(restored)),
        )

    def test_roundtrip_with_migration(self, any_backend, method):
        backend, base = any_backend
        path = f"{base}/ckm_{method}"
        box = (8.0, 8.0, 8.0)

        def wtask(comm):
            state = ParticleState.random(
                40, box, seed=comm.rank + 5, id_offset=comm.rank * 40
            )
            write_restart(comm, path, state, method=method, backend=backend)
            return state

        written = run_spmd(8, wtask)

        def rtask(comm):
            decomp = DomainDecomposition.for_tasks(comm.size, box)
            state = read_restart(comm, path, method=method, backend=backend,
                                 decomp=decomp)
            owners = decomp.owner_of(state.pos)
            return state, bool((owners == comm.rank).all())

        out = run_spmd(8, rtask)
        assert all(ok for _, ok in out)
        assert equal_states(
            ParticleState.concatenate(list(written)).sorted_by_id(),
            ParticleState.concatenate([s for s, _ in out]).sorted_by_id(),
        )


def test_unknown_method_rejected(any_backend):
    backend, base = any_backend

    def task(comm):
        write_restart(comm, f"{base}/x", ParticleState.empty(), method="nfs",
                      backend=backend)

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, task)


def test_sion_checkpoint_single_physical_file(sim_backend):
    """Fig. 6's configuration: 1000 logical files -> one physical file."""
    backend = sim_backend

    def task(comm):
        state = ParticleState.random(10, (4.0, 4.0, 4.0), seed=comm.rank,
                                     id_offset=comm.rank * 10)
        write_restart(comm, "/scratch/one.sion", state, method="sion",
                      backend=backend)

    run_spmd(16, task)
    assert backend.fs.op_counts["create"] == 1
    names = backend.fs.listdir("/scratch")
    assert names == ["one.sion"]
