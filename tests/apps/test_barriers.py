"""Wait-at-Barrier analysis."""

import pytest

from repro.apps.scalasca.analyzer import analyze_barriers
from repro.apps.scalasca.events import EventKind
from repro.apps.scalasca.smg2000 import SMG2000Config, generate_smg2000_trace, is_imbalanced
from repro.apps.scalasca.tracer import TraceExperiment, Tracer
from repro.simmpi import run_spmd


def _pipeline(backend, base, ntasks, imbalance, iterations=3):
    cfg = SMG2000Config(ntasks=ntasks, iterations=iterations, imbalance=imbalance)
    path = f"{base}/bar_{imbalance}.sion"

    def task(comm):
        exp = TraceExperiment(comm, path, method="sion", backend=backend)
        exp.activate()
        generate_smg2000_trace(comm.rank, cfg, exp.tracer)
        exp.finalize()
        return analyze_barriers(comm, path, method="sion", backend=backend)

    return run_spmd(ntasks, task)


def test_tracer_records_barrier_events():
    t = Tracer(0)
    t.advance(1.0)
    t.barrier_enter(barrier_id=7)
    t.barrier_exit(barrier_id=7)
    kinds = [e.kind for e in t.events]
    assert kinds == [EventKind.BARRIER_ENTER, EventKind.BARRIER_EXIT]
    assert t.events[0].ref == 7
    assert t.events[0].timestamp == 1.0


def test_instances_counted_per_iteration(any_backend):
    backend, base = any_backend
    results = _pipeline(backend, base, 8, imbalance=0.0, iterations=4)
    assert results[0].n_instances == 4


def test_balanced_run_has_no_barrier_waits(any_backend):
    backend, base = any_backend
    results = _pipeline(backend, base, 8, imbalance=0.0)
    assert results[0].total_wait_time == pytest.approx(0.0, abs=1e-12)


def test_imbalance_makes_fast_ranks_wait(any_backend):
    backend, base = any_backend
    results = _pipeline(backend, base, 8, imbalance=0.8)
    r = results[0]
    assert r.total_wait_time > 0
    cfg = SMG2000Config(ntasks=8, iterations=3, imbalance=0.8)
    slow = [i for i in range(8) if is_imbalanced(i, cfg)]
    fast = [i for i in range(8) if not is_imbalanced(i, cfg)]
    # The slowest ranks wait least (they arrive last).
    assert min(r.wait_per_task[i] for i in fast) >= max(
        r.wait_per_task[i] for i in slow
    ) - 1e-12


def test_result_identical_on_all_ranks(any_backend):
    backend, base = any_backend
    results = _pipeline(backend, base, 4, imbalance=0.5)
    for r in results[1:]:
        assert r.wait_per_task == results[0].wait_per_task
        assert r.instance_waits == results[0].instance_waits


def test_mean_wait(any_backend):
    backend, base = any_backend
    r = _pipeline(backend, base, 4, imbalance=0.5)[0]
    assert r.mean_wait_per_task == pytest.approx(r.total_wait_time / 4)


def test_instance_waits_sum_to_total(any_backend):
    backend, base = any_backend
    r = _pipeline(backend, base, 8, imbalance=0.6)[0]
    assert sum(r.instance_waits) == pytest.approx(r.total_wait_time)
