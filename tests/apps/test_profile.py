"""Region profiling: nesting arithmetic and cross-rank severities."""

import pytest

from repro.apps.scalasca.events import Event, EventKind
from repro.apps.scalasca.profile import profile_events, profile_traces
from repro.apps.scalasca.smg2000 import (
    REGION_MAIN,
    REGION_RELAX,
    SMG2000Config,
    generate_smg2000_trace,
    is_imbalanced,
)
from repro.apps.scalasca.tracer import TraceExperiment
from repro.errors import ReproError
from repro.simmpi import run_spmd


def _enter(region, ts):
    return Event(EventKind.ENTER, region, timestamp=ts)


def _exit(region, ts):
    return Event(EventKind.EXIT, region, timestamp=ts)


class TestProfileEvents:
    def test_flat_region(self):
        stats = profile_events([_enter(1, 0.0), _exit(1, 2.5)])
        assert stats[1].visits == 1
        assert stats[1].inclusive == pytest.approx(2.5)
        assert stats[1].exclusive == pytest.approx(2.5)

    def test_nested_child_subtracted_from_parent(self):
        events = [
            _enter(1, 0.0),
            _enter(2, 1.0),
            _exit(2, 3.0),
            _exit(1, 4.0),
        ]
        stats = profile_events(events)
        assert stats[1].inclusive == pytest.approx(4.0)
        assert stats[1].exclusive == pytest.approx(2.0)
        assert stats[2].exclusive == pytest.approx(2.0)

    def test_multiple_visits_accumulate(self):
        events = []
        for i in range(3):
            events += [_enter(7, float(i)), _exit(7, i + 0.25)]
        stats = profile_events(events)
        assert stats[7].visits == 3
        assert stats[7].inclusive == pytest.approx(0.75)

    def test_recursive_same_region(self):
        events = [_enter(1, 0.0), _enter(1, 1.0), _exit(1, 2.0), _exit(1, 3.0)]
        stats = profile_events(events)
        assert stats[1].visits == 2
        # Inner visit: 1s inclusive.  Outer: 3s inclusive, 2s exclusive
        # (inner subtracted).  Exclusive totals 3s — all of it is genuinely
        # spent inside region 1, so no time is lost to recursion.
        assert stats[1].inclusive == pytest.approx(4.0)
        assert stats[1].exclusive == pytest.approx(3.0)

    def test_sends_recvs_ignored(self):
        events = [
            _enter(1, 0.0),
            Event(EventKind.SEND, 3, timestamp=0.5),
            Event(EventKind.RECV, 3, timestamp=0.7),
            _exit(1, 1.0),
        ]
        stats = profile_events(events)
        assert list(stats) == [1]

    def test_exit_without_enter_rejected(self):
        with pytest.raises(ReproError, match="without a matching ENTER"):
            profile_events([_exit(1, 1.0)])

    def test_mismatched_nesting_rejected(self):
        with pytest.raises(ReproError, match="nesting violated"):
            profile_events([_enter(1, 0.0), _exit(2, 1.0)])

    def test_unclosed_region_rejected(self):
        with pytest.raises(ReproError, match="unclosed"):
            profile_events([_enter(1, 0.0)])

    def test_empty_trace(self):
        assert profile_events([]) == {}


class TestProfileTraces:
    def _run(self, backend, base, imbalance):
        cfg = SMG2000Config(ntasks=8, iterations=2, imbalance=imbalance)
        path = f"{base}/prof_{imbalance}.sion"

        def task(comm):
            exp = TraceExperiment(comm, path, method="sion", backend=backend)
            exp.activate()
            generate_smg2000_trace(comm.rank, cfg, exp.tracer)
            exp.finalize()
            return profile_traces(comm, path, method="sion", backend=backend)

        return run_spmd(8, task)

    def test_severities_identical_on_all_ranks(self, any_backend):
        backend, base = any_backend
        results = self._run(backend, base, imbalance=0.5)
        first = results[0]
        for r in results[1:]:
            assert r.regions.keys() == first.regions.keys()
            for k in first.regions:
                assert r.regions[k].sum_exclusive == pytest.approx(
                    first.regions[k].sum_exclusive
                )

    def test_balanced_run_has_unit_imbalance_in_relax(self, any_backend):
        backend, base = any_backend
        result = self._run(backend, base, imbalance=0.0)[0]
        relax = result.regions[REGION_RELAX]
        assert relax.imbalance == pytest.approx(1.0)

    def test_injected_imbalance_shows_in_relax_region(self, any_backend):
        backend, base = any_backend
        result = self._run(backend, base, imbalance=0.8)[0]
        relax = result.regions[REGION_RELAX]
        assert relax.imbalance > 1.3
        worst = result.most_imbalanced()
        assert worst is not None and worst.region == REGION_RELAX

    def test_main_region_covers_everything(self, any_backend):
        backend, base = any_backend
        result = self._run(backend, base, imbalance=0.3)[0]
        assert REGION_MAIN in result.regions
        assert result.regions[REGION_MAIN].total_visits == 8  # one per rank

    def test_relax_visits_counted(self, any_backend):
        backend, base = any_backend
        result = self._run(backend, base, imbalance=0.0)[0]
        cfg_iter, cfg_levels = 2, 3
        assert result.regions[REGION_RELAX].total_visits == 8 * cfg_iter * cfg_levels

    def test_profile_consistent_with_imbalance_marking(self, any_backend):
        """Ranks marked slow must own the max exclusive RELAX time."""
        backend, base = any_backend
        cfg = SMG2000Config(ntasks=8, iterations=2, imbalance=0.8)
        path = f"{base}/prof_mark.sion"

        def task(comm):
            exp = TraceExperiment(comm, path, method="sion", backend=backend)
            exp.activate()
            generate_smg2000_trace(comm.rank, cfg, exp.tracer)
            exp.finalize()
            from repro.apps.scalasca.profile import profile_events
            from repro.apps.scalasca.tracer import read_trace

            events = read_trace(path, comm.rank, method="sion", backend=backend)
            mine = profile_events(events)[REGION_RELAX].exclusive
            return mine, is_imbalanced(comm.rank, cfg)

        out = run_spmd(8, task)
        slow_times = [t for t, slow in out if slow]
        fast_times = [t for t, slow in out if not slow]
        assert min(slow_times) > max(fast_times)
