"""Particle state and the 52-byte restart record."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mp2c.particles import (
    RECORD_BYTES,
    ParticleState,
    equal_states,
)
from repro.errors import ReproError


def test_record_size_is_papers_52_bytes():
    assert RECORD_BYTES == 52
    s = ParticleState.random(10, (4.0, 4.0, 4.0), seed=1)
    assert len(s.to_records()) == 10 * 52


def test_records_roundtrip_exactly():
    s = ParticleState.random(100, (8.0, 8.0, 8.0), seed=3)
    back = ParticleState.from_records(s.to_records())
    assert equal_states(s, back)
    assert np.array_equal(s.pos, back.pos)  # bitwise, not approximate


def test_bad_record_length_rejected():
    with pytest.raises(ReproError):
        ParticleState.from_records(b"\0" * 53)


def test_random_state_has_zero_net_momentum():
    s = ParticleState.random(1000, (10.0, 10.0, 10.0), seed=5)
    assert np.abs(s.momentum).max() < 1e-10


def test_random_positions_inside_box():
    box = (3.0, 5.0, 7.0)
    s = ParticleState.random(500, box, seed=2)
    assert (s.pos >= 0).all()
    assert (s.pos <= np.asarray(box)).all()


def test_id_offset_makes_global_ids_unique():
    a = ParticleState.random(10, (1.0, 1.0, 1.0), seed=1, id_offset=0)
    b = ParticleState.random(10, (1.0, 1.0, 1.0), seed=2, id_offset=10)
    merged = ParticleState.concatenate([a, b])
    assert len(set(merged.ids.tolist())) == 20


def test_empty_state():
    e = ParticleState.empty()
    assert e.n == 0
    assert e.to_records() == b""
    assert equal_states(e, ParticleState.from_records(b""))


def test_select_and_concatenate_partition():
    s = ParticleState.random(60, (4.0, 4.0, 4.0), seed=9)
    mask = s.pos[:, 0] < 2.0
    left, right = s.select(mask), s.select(~mask)
    assert left.n + right.n == 60
    assert equal_states(s, ParticleState.concatenate([left, right]))


def test_select_returns_copies():
    s = ParticleState.random(5, (1.0, 1.0, 1.0), seed=4)
    sub = s.select(np.ones(5, dtype=bool))
    sub.pos[:] = 0.0
    assert not np.array_equal(s.pos, sub.pos)


def test_inconsistent_arrays_rejected():
    with pytest.raises(ReproError):
        ParticleState(np.arange(3), np.zeros((2, 3)), np.zeros((3, 3)))


def test_kinetic_energy_nonnegative():
    s = ParticleState.random(100, (4.0, 4.0, 4.0), temperature=2.0, seed=6)
    assert s.kinetic_energy > 0
    assert ParticleState.empty().kinetic_energy == 0.0


def test_equal_states_order_insensitive():
    s = ParticleState.random(20, (2.0, 2.0, 2.0), seed=8)
    perm = np.random.default_rng(0).permutation(20)
    shuffled = ParticleState(s.ids[perm], s.pos[perm], s.vel[perm])
    assert equal_states(s, shuffled)


def test_equal_states_detects_differences():
    s = ParticleState.random(20, (2.0, 2.0, 2.0), seed=8)
    other = ParticleState(s.ids, s.pos.copy(), s.vel.copy())
    other.vel[3, 1] += 1e-12
    assert not equal_states(s, other)
    assert not equal_states(s, ParticleState.empty())


@settings(max_examples=30, deadline=None)
@given(n=st.integers(0, 200), seed=st.integers(0, 1000))
def test_record_roundtrip_property(n, seed):
    s = ParticleState.random(n, (16.0, 16.0, 16.0), seed=seed)
    raw = s.to_records()
    assert len(raw) == n * RECORD_BYTES
    assert equal_states(s, ParticleState.from_records(raw))
