"""Physics invariants of the SRD and MD kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mp2c.md import BondedSystem, total_energy, velocity_verlet
from repro.apps.mp2c.particles import ParticleState
from repro.apps.mp2c.srd import _rotation_matrices, collide, srd_step, stream
from repro.errors import ReproError


def _state(n=200, seed=0, box=8.0):
    return ParticleState.random(n, (box, box, box), seed=seed)


class TestStream:
    def test_ballistic_motion(self):
        s = _state(10)
        out = stream(s, dt=0.5)
        assert np.allclose(out.pos, s.pos + 0.5 * s.vel)
        assert np.array_equal(out.vel, s.vel)

    def test_zero_dt_is_identity(self):
        s = _state(10)
        out = stream(s, 0.0)
        assert np.array_equal(out.pos, s.pos)

    def test_negative_dt_rejected(self):
        with pytest.raises(ReproError):
            stream(_state(1), -0.1)


class TestRotations:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10000), angle=st.floats(0.1, 3.0))
    def test_matrices_are_orthogonal(self, seed, angle):
        rng = np.random.default_rng(seed)
        axes = rng.normal(size=(5, 3))
        axes /= np.linalg.norm(axes, axis=1, keepdims=True)
        mats = _rotation_matrices(axes, angle)
        for m in mats:
            assert np.allclose(m @ m.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(m) == pytest.approx(1.0)

    def test_rotation_fixes_axis(self):
        axes = np.array([[0.0, 0.0, 1.0]])
        (m,) = _rotation_matrices(axes, 1.2)
        assert np.allclose(m @ axes[0], axes[0])


class TestCollide:
    def test_momentum_conserved_exactly(self):
        s = _state(500, seed=3)
        before = s.momentum.copy()
        out = collide(s, cell_size=1.0, rng=np.random.default_rng(1))
        assert np.allclose(out.momentum, before, atol=1e-10)

    def test_kinetic_energy_conserved(self):
        s = _state(500, seed=4)
        out = collide(s, cell_size=1.0, rng=np.random.default_rng(2))
        assert out.kinetic_energy == pytest.approx(s.kinetic_energy, rel=1e-12)

    def test_positions_untouched(self):
        s = _state(100, seed=5)
        out = collide(s, cell_size=1.0, rng=np.random.default_rng(3))
        assert np.array_equal(out.pos, s.pos)

    def test_per_cell_momentum_conserved(self):
        s = _state(400, seed=6)
        rng = np.random.default_rng(4)
        out = collide(s, cell_size=2.0, rng=rng)
        cells = np.floor(s.pos / 2.0).astype(int)
        keys = [tuple(c) for c in cells]
        for key in set(keys):
            mask = np.array([k == key for k in keys])
            assert np.allclose(
                out.vel[mask].sum(axis=0), s.vel[mask].sum(axis=0), atol=1e-10
            )

    def test_velocities_actually_change(self):
        s = _state(300, seed=7)
        out = collide(s, cell_size=4.0, rng=np.random.default_rng(5))
        assert not np.allclose(out.vel, s.vel)

    def test_empty_state_ok(self):
        e = ParticleState.empty()
        assert collide(e, 1.0, rng=np.random.default_rng(0)).n == 0

    def test_grid_shift_changes_grouping(self):
        s = _state(300, seed=8)
        a = collide(s, 1.0, rng=np.random.default_rng(9), shift=np.zeros(3))
        b = collide(s, 1.0, rng=np.random.default_rng(9), shift=np.full(3, 0.5))
        assert not np.allclose(a.vel, b.vel)

    def test_bad_cell_size(self):
        with pytest.raises(ReproError):
            collide(_state(1), 0.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), n=st.integers(1, 300))
    def test_conservation_property(self, seed, n):
        s = _state(n, seed=seed)
        out = srd_step(s, dt=0.1, cell_size=1.0, rng=np.random.default_rng(seed))
        assert np.allclose(out.momentum, s.momentum, atol=1e-9)
        assert out.kinetic_energy == pytest.approx(s.kinetic_energy, rel=1e-9)


class TestMD:
    def test_chain_topology(self):
        sys2 = BondedSystem.chains(2, 4)
        assert sys2.bonds.shape == (6, 2)
        assert (sys2.bonds[:3] == [[0, 1], [1, 2], [2, 3]]).all()
        assert (sys2.bonds[3:] == [[4, 5], [5, 6], [6, 7]]).all()

    def test_forces_obey_newtons_third_law(self):
        sys1 = BondedSystem.chains(3, 5, k=7.0)
        pos = np.random.default_rng(1).uniform(0, 3, size=(15, 3))
        f = sys1.forces(pos)
        assert np.allclose(f.sum(axis=0), 0.0, atol=1e-12)

    def test_force_direction_restores_rest_length(self):
        sys1 = BondedSystem(bonds=np.array([[0, 1]]), k=1.0, r0=1.0)
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])  # stretched
        f = sys1.forces(pos)
        assert f[0, 0] > 0 and f[1, 0] < 0  # pulled together
        pos_close = np.array([[0.0, 0.0, 0.0], [0.5, 0.0, 0.0]])  # compressed
        f2 = sys1.forces(pos_close)
        assert f2[0, 0] < 0 and f2[1, 0] > 0  # pushed apart

    def test_energy_at_rest_length_is_zero(self):
        sys1 = BondedSystem(bonds=np.array([[0, 1]]), k=3.0, r0=1.5)
        pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
        assert sys1.potential_energy(pos) == pytest.approx(0.0)
        assert np.allclose(sys1.forces(pos), 0.0)

    def test_verlet_conserves_momentum(self):
        sysb = BondedSystem.chains(2, 6)
        s = _state(12, seed=10, box=3.0)
        out = velocity_verlet(s, sysb, dt=0.01, nsteps=100)
        assert np.allclose(out.momentum, s.momentum, atol=1e-10)

    def test_verlet_energy_bounded(self):
        """Symplectic integration: energy oscillates but does not drift."""
        sysb = BondedSystem.chains(1, 8, k=5.0)
        s = _state(8, seed=11, box=2.0)
        e0 = total_energy(s, sysb)
        cur = s
        energies = []
        for _ in range(20):
            cur = velocity_verlet(cur, sysb, dt=0.005, nsteps=10)
            energies.append(total_energy(cur, sysb))
        assert max(abs(e - e0) for e in energies) < 0.05 * max(abs(e0), 1.0)

    def test_no_bonds_free_flight(self):
        sysb = BondedSystem(bonds=np.empty((0, 2), dtype=int))
        s = _state(5, seed=12)
        out = velocity_verlet(s, sysb, dt=0.1, nsteps=3)
        assert np.allclose(out.pos, s.pos + 0.3 * s.vel)

    def test_validation(self):
        with pytest.raises(ReproError):
            BondedSystem(bonds=np.zeros((2, 3)))
        with pytest.raises(ReproError):
            BondedSystem.chains(-1, 2)
        sysb = BondedSystem.chains(1, 2)
        with pytest.raises(ReproError):
            velocity_verlet(_state(2), sysb, dt=0.0)
