"""Scalasca-like tracing toolchain: events, tracer, workload, analyzer."""

import pytest

from repro.apps.scalasca.analyzer import analyze_local, analyze_traces
from repro.apps.scalasca.events import (
    Event,
    EventKind,
    RECORD_BYTES,
    decode_events,
    encode_events,
)
from repro.apps.scalasca.smg2000 import (
    SMG2000Config,
    generate_smg2000_trace,
    is_imbalanced,
    neighbours,
)
from repro.apps.scalasca.tracer import TraceExperiment, Tracer, read_trace
from repro.errors import ReproError, SionUsageError
from repro.simmpi import run_spmd


class TestEvents:
    def test_record_roundtrip(self):
        e = Event(EventKind.SEND, ref=7, tag=3, nbytes=4096, timestamp=1.25)
        assert Event.decode(e.encode()) == e

    def test_stream_roundtrip(self):
        events = [
            Event(EventKind.ENTER, 1, timestamp=0.0),
            Event(EventKind.SEND, 2, tag=9, nbytes=100, timestamp=0.5),
            Event(EventKind.RECV, 2, tag=9, nbytes=100, timestamp=0.75),
            Event(EventKind.EXIT, 1, timestamp=1.0),
        ]
        raw = encode_events(events)
        assert len(raw) == 4 * RECORD_BYTES
        assert decode_events(raw) == events

    def test_bad_lengths_rejected(self):
        with pytest.raises(ReproError):
            Event.decode(b"short")
        with pytest.raises(ReproError):
            decode_events(b"\0" * (RECORD_BYTES + 1))

    def test_unknown_kind_rejected(self):
        raw = bytearray(Event(EventKind.ENTER, 0).encode())
        raw[0] = 99
        with pytest.raises(ReproError):
            Event.decode(bytes(raw))


class TestTracer:
    def test_clock_and_events(self):
        t = Tracer(0)
        t.enter(1)
        t.advance(0.5)
        t.send(3, tag=1, nbytes=64)
        t.advance(0.25)
        t.exit(1)
        assert t.now == 0.75
        kinds = [e.kind for e in t.events]
        assert kinds == [EventKind.ENTER, EventKind.SEND, EventKind.EXIT]
        assert t.events[1].timestamp == 0.5

    def test_clock_cannot_reverse(self):
        t = Tracer(0)
        with pytest.raises(SionUsageError):
            t.advance(-1.0)

    def test_buffer_capacity_drops_excess(self):
        t = Tracer(0, capacity=3 * RECORD_BYTES)
        for i in range(5):
            t.enter(i)
        assert t.n_events == 3
        assert t.dropped == 2

    def test_buffer_bytes_decode(self):
        t = Tracer(0)
        t.enter(4)
        t.exit(4)
        assert decode_events(t.buffer_bytes()) == t.events


class TestSMG2000:
    def test_neighbours_on_cube(self):
        grid = (2, 2, 2)
        n = neighbours(0, grid)
        assert n == sorted(set(n))
        assert 0 not in n
        assert all(0 <= x < 8 for x in n)

    def test_neighbours_degenerate_grid(self):
        assert neighbours(0, (1, 1, 1)) == []
        assert neighbours(0, (2, 1, 1)) == [1]

    def test_imbalanced_set_deterministic(self):
        cfg = SMG2000Config(ntasks=16, imbalance=0.5, seed=3)
        marks = [is_imbalanced(r, cfg) for r in range(16)]
        assert marks == [is_imbalanced(r, cfg) for r in range(16)]
        assert any(marks) and not all(marks)

    def test_no_imbalance_means_no_marks(self):
        cfg = SMG2000Config(ntasks=8, imbalance=0.0)
        assert not any(is_imbalanced(r, cfg) for r in range(8))

    def test_trace_shape(self):
        cfg = SMG2000Config(ntasks=8, iterations=2, levels=2)
        t = Tracer(0)
        generate_smg2000_trace(0, cfg, t)
        kinds = [e.kind for e in t.events]
        assert kinds.count(EventKind.ENTER) == kinds.count(EventKind.EXIT)
        nbrs = len(neighbours(0, (2, 2, 2)))
        assert kinds.count(EventKind.SEND) == 2 * 2 * nbrs
        assert kinds.count(EventKind.RECV) == 2 * 2 * nbrs

    def test_timestamps_nondecreasing(self):
        cfg = SMG2000Config(ntasks=8, iterations=3, imbalance=0.4)
        t = Tracer(2)
        generate_smg2000_trace(2, cfg, t)
        ts = [e.timestamp for e in t.events]
        assert all(a <= b + 1e-12 for a, b in zip(ts, ts[1:]))

    def test_config_validation(self):
        with pytest.raises(ReproError):
            SMG2000Config(ntasks=0)
        with pytest.raises(ReproError):
            SMG2000Config(ntasks=1, imbalance=-1)
        with pytest.raises(ReproError):
            SMG2000Config(ntasks=1, imbalanced_fraction=2.0)


@pytest.mark.parametrize("method", ["sion", "tasklocal"])
class TestTraceExperiment:
    def test_write_then_read_back(self, any_backend, method):
        backend, base = any_backend
        path = f"{base}/exp_{method}"
        cfg = SMG2000Config(ntasks=4, iterations=2)

        def task(comm):
            exp = TraceExperiment(comm, path, method=method, backend=backend)
            exp.activate()
            generate_smg2000_trace(comm.rank, cfg, exp.tracer)
            stats = exp.finalize()
            return exp.tracer.events, stats

        out = run_spmd(4, task)
        for rank, (events, stats) in enumerate(out):
            assert stats.uncompressed_bytes == len(events) * RECORD_BYTES
            assert stats.compression_ratio < 1.0  # traces compress well
            assert read_trace(path, rank, method=method, backend=backend) == events

    def test_lifecycle_enforced(self, any_backend, method):
        backend, base = any_backend
        path = f"{base}/life_{method}"

        def task(comm):
            exp = TraceExperiment(comm, path, method=method, backend=backend)
            caught = []
            try:
                exp.finalize()
            except SionUsageError:
                caught.append("finalize-before-activate")
            exp.activate()
            try:
                exp.activate()
            except SionUsageError:
                caught.append("double-activate")
            exp.finalize()
            try:
                exp.finalize()
            except SionUsageError:
                caught.append("double-finalize")
            return caught

        out = run_spmd(2, task)
        assert all(
            c == ["finalize-before-activate", "double-activate", "double-finalize"]
            for c in out
        )


class TestAnalyzer:
    def _run_pipeline(self, backend, base, ntasks, imbalance, method="sion"):
        cfg = SMG2000Config(ntasks=ntasks, iterations=3, imbalance=imbalance)
        path = f"{base}/ana_{method}_{imbalance}"

        def task(comm):
            exp = TraceExperiment(comm, path, method=method, backend=backend,
                                  nfiles=2 if method == "sion" else 1)
            exp.activate()
            generate_smg2000_trace(comm.rank, cfg, exp.tracer)
            exp.finalize()
            return analyze_traces(comm, path, method=method, backend=backend)

        return run_spmd(ntasks, task)

    def test_balanced_run_has_no_wait_states(self, any_backend):
        backend, base = any_backend
        results = self._run_pipeline(backend, base, 8, imbalance=0.0)
        assert results[0].total_wait_time == pytest.approx(0.0, abs=1e-12)
        assert results[0].n_wait_states == 0

    def test_imbalance_produces_late_senders(self, any_backend):
        backend, base = any_backend
        results = self._run_pipeline(backend, base, 8, imbalance=0.6)
        r = results[0]
        assert r.total_wait_time > 0
        assert r.n_wait_states > 0
        assert r.max_wait_time >= max(w.wait_time for w in r.worst_states) - 1e-12
        # Wait states blame imbalanced senders.
        cfg = SMG2000Config(ntasks=8, iterations=3, imbalance=0.6)
        assert all(is_imbalanced(w.sender, cfg) for w in r.worst_states)

    def test_result_identical_on_all_ranks(self, any_backend):
        backend, base = any_backend
        results = self._run_pipeline(backend, base, 4, imbalance=0.5)
        assert all(r.total_wait_time == results[0].total_wait_time for r in results)
        assert all(r.wait_per_task == results[0].wait_per_task for r in results)

    def test_more_imbalance_more_waiting(self, any_backend):
        backend, base = any_backend
        mild = self._run_pipeline(backend, base, 8, imbalance=0.2)[0]
        severe = self._run_pipeline(backend, base, 8, imbalance=0.9)[0]
        assert severe.total_wait_time > mild.total_wait_time

    def test_tasklocal_traces_analyzable_too(self, any_backend):
        backend, base = any_backend
        results = self._run_pipeline(backend, base, 4, imbalance=0.5,
                                     method="tasklocal")
        assert results[0].total_wait_time > 0

    def test_analyze_local_detects_missing_sends(self):
        events = [Event(EventKind.RECV, ref=1, tag=0, timestamp=1.0)]
        with pytest.raises(ReproError, match="matching sends"):
            analyze_local(0, events, {})

    def test_analyze_local_detects_tag_mismatch(self):
        events = [Event(EventKind.RECV, ref=1, tag=0, timestamp=1.0)]
        with pytest.raises(ReproError, match="tag mismatch"):
            analyze_local(0, events, {1: [(9, 0.5)]})

    def test_mean_wait(self, any_backend):
        backend, base = any_backend
        r = self._run_pipeline(backend, base, 4, imbalance=0.5)[0]
        assert r.mean_wait_per_task == pytest.approx(r.total_wait_time / 4)
