"""Domain decomposition: grid factorization, ownership, migration."""

import numpy as np
import pytest

from repro.apps.mp2c.decomposition import DomainDecomposition, factor3, migrate
from repro.apps.mp2c.particles import ParticleState, equal_states
from repro.errors import ReproError
from repro.simmpi import run_spmd


class TestFactor3:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1, 1)), (8, (2, 2, 2)), (6, (3, 2, 1)), (64, (4, 4, 4)),
         (7, (7, 1, 1)), (12, (3, 2, 2)), (1000, (10, 10, 10))],
    )
    def test_known_factorizations(self, n, expected):
        assert factor3(n) == expected

    def test_product_always_matches(self):
        for n in range(1, 200):
            a, b, c = factor3(n)
            assert a * b * c == n
            assert a >= b >= c >= 1

    def test_invalid(self):
        with pytest.raises(ReproError):
            factor3(0)


class TestDecomposition:
    def test_coords_roundtrip(self):
        d = DomainDecomposition(box=(8.0, 8.0, 8.0), grid=(4, 2, 1))
        for r in range(8):
            x, y, z = d.coords_of(r)
            assert d.rank_of_coords(x, y, z) == r

    def test_bounds_tile_the_box(self):
        d = DomainDecomposition.for_tasks(8, (8.0, 6.0, 4.0))
        volumes = 0.0
        for r in range(8):
            lo, hi = d.bounds_of(r)
            assert (hi > lo).all()
            volumes += float(np.prod(hi - lo))
        assert volumes == pytest.approx(8.0 * 6.0 * 4.0)

    def test_owner_matches_bounds(self):
        d = DomainDecomposition.for_tasks(8, (4.0, 4.0, 4.0))
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 4.0, size=(200, 3))
        owners = d.owner_of(pos)
        for p, o in zip(pos, owners):
            lo, hi = d.bounds_of(int(o))
            assert (p >= lo - 1e-12).all() and (p <= hi + 1e-12).all()

    def test_owner_wraps_periodic_positions(self):
        d = DomainDecomposition.for_tasks(4, (4.0, 4.0, 4.0))
        inside = np.array([[1.0, 1.0, 1.0]])
        outside = inside + np.array([[4.0, -4.0, 8.0]])
        assert d.owner_of(inside) == d.owner_of(outside)

    def test_boundary_position_owned(self):
        d = DomainDecomposition.for_tasks(8, (4.0, 4.0, 4.0))
        edge = np.array([[4.0, 4.0, 4.0]])  # == box: wraps to origin cell
        assert 0 <= int(d.owner_of(edge)[0]) < 8

    def test_bad_rank(self):
        d = DomainDecomposition.for_tasks(4, (1.0, 1.0, 1.0))
        with pytest.raises(ReproError):
            d.coords_of(99)


class TestMigrate:
    def test_particles_end_up_with_their_owners(self):
        box = (8.0, 8.0, 8.0)

        def task(comm):
            d = DomainDecomposition.for_tasks(comm.size, box)
            state = ParticleState.random(
                50, box, seed=comm.rank, id_offset=comm.rank * 50
            )
            out = migrate(comm, d, state)
            owners = d.owner_of(out.pos)
            return (out.n, bool((owners == comm.rank).all()))

        results = run_spmd(8, task)
        assert sum(n for n, _ in results) == 8 * 50
        assert all(ok for _, ok in results)

    def test_migration_preserves_global_state(self):
        box = (4.0, 4.0, 4.0)

        def task(comm):
            d = DomainDecomposition.for_tasks(comm.size, box)
            state = ParticleState.random(
                30, box, seed=comm.rank + 7, id_offset=comm.rank * 30
            )
            before = comm.allgather(state)
            after = migrate(comm, d, state)
            return before if comm.rank == 0 else None, after

        results = run_spmd(4, task)
        before = ParticleState.concatenate(list(results[0][0]))
        # Positions may be wrapped; wrap the reference identically.
        d = DomainDecomposition.for_tasks(4, box)
        before = ParticleState(before.ids, d.wrap(before.pos), before.vel)
        after = ParticleState.concatenate([r[1] for r in results])
        assert equal_states(before, after)

    def test_size_mismatch_rejected(self):
        from repro.errors import SpmdWorkerError

        def task(comm):
            d = DomainDecomposition.for_tasks(comm.size + 1, (1.0, 1.0, 1.0))
            migrate(comm, d, ParticleState.empty())

        with pytest.raises(SpmdWorkerError):
            run_spmd(2, task)
