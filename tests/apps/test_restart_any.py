"""Restarting a SION checkpoint on a different task count."""

import pytest

from repro.apps.mp2c.checkpoint import read_restart_any, write_restart
from repro.apps.mp2c.decomposition import DomainDecomposition
from repro.apps.mp2c.particles import ParticleState, equal_states
from repro.simmpi import run_spmd

BOX = (8.0, 8.0, 8.0)


def _write_checkpoint(path, backend, ntasks, per_task=40):
    def task(comm):
        state = ParticleState.random(
            per_task, BOX, seed=comm.rank, id_offset=comm.rank * per_task
        )
        write_restart(comm, path, state, method="sion", backend=backend)
        return state

    return run_spmd(ntasks, task)


@pytest.mark.parametrize("readers", [1, 3, 4, 6, 8, 12])
def test_restart_on_any_task_count(any_backend, readers):
    backend, base = any_backend
    path = f"{base}/any{readers}.sion"
    written = _write_checkpoint(path, backend, ntasks=8)

    def rtask(comm):
        return read_restart_any(comm, path, backend=backend)

    restored = run_spmd(readers, rtask)
    assert equal_states(
        ParticleState.concatenate(list(written)),
        ParticleState.concatenate(list(restored)),
    )


def test_restart_with_redistribution(any_backend):
    backend, base = any_backend
    path = f"{base}/anyd.sion"
    written = _write_checkpoint(path, backend, ntasks=8)

    def rtask(comm):
        decomp = DomainDecomposition.for_tasks(comm.size, BOX)
        state = read_restart_any(comm, path, backend=backend, decomp=decomp)
        owners = decomp.owner_of(state.pos)
        return state, bool((owners == comm.rank).all())

    out = run_spmd(4, rtask)
    assert all(ok for _, ok in out)
    assert equal_states(
        ParticleState.concatenate(list(written)).sorted_by_id(),
        ParticleState.concatenate([s for s, _ in out]).sorted_by_id(),
    )


def test_slices_are_balanced(any_backend):
    backend, base = any_backend
    path = f"{base}/bal.sion"
    _write_checkpoint(path, backend, ntasks=10, per_task=10)

    def rtask(comm):
        return read_restart_any(comm, path, backend=backend).n

    counts = run_spmd(4, rtask)
    # 10 written ranks over 4 readers: 3,3,2,2 ranks -> 30,30,20,20 particles.
    assert counts == [30, 30, 20, 20]
    assert sum(counts) == 100
