"""Backend handles across process boundaries: pickle round trips.

The process SPMD engine ships backends and open handles into rank
processes by pickling (spawn) or inheritance (fork).  These tests pin
the portable-handle contract: ``LocalRawFile`` reopens by path with its
position restored and never re-truncates; ``LocalBackend`` and
``CountingBackend`` round-trip; ``SimBackend`` refuses loudly; and
``IOStats`` keeps its cross-process identity token so counter deltas
find their way home.
"""

import pickle

import pytest

from repro.backends.instrument import (
    CountingBackend,
    IOStats,
    apply_stats_deltas,
    snapshot_live_stats,
    stats_deltas,
)
from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_local_rawfile_roundtrip_preserves_position_and_bytes(tmp_path):
    path = tmp_path / "data.bin"
    f = LocalBackend().open(str(path), "w+")
    f.write(b"hello world")
    f.seek(5)

    clone = _roundtrip(f)
    # Independent descriptor, same file, same position — and crucially
    # the 'w' mode did NOT re-truncate on reopen.
    assert clone.tell() == 5
    assert clone.pread(0, 11) == b"hello world"
    clone.pwrite(0, b"HELLO")
    assert f.pread(0, 11) == b"HELLO world"
    f.close()
    clone.close()


def test_local_rawfile_readonly_mode_survives(tmp_path):
    path = tmp_path / "ro.bin"
    path.write_bytes(b"abcdef")
    f = LocalBackend().open(str(path), "r")
    f.seek(2)
    clone = _roundtrip(f)
    assert clone.tell() == 2
    assert clone.read(2) == b"cd"
    with pytest.raises(OSError):
        clone.write(b"x")  # reopened read-only, like the original
    f.close()
    clone.close()


def test_closed_rawfile_refuses_to_pickle(tmp_path):
    path = tmp_path / "x.bin"
    f = LocalBackend().open(str(path), "w")
    f.close()
    with pytest.raises(TypeError, match="closed"):
        pickle.dumps(f)


def test_local_backend_roundtrips_with_override():
    be = _roundtrip(LocalBackend(blocksize_override=4096))
    assert be.blocksize_override == 4096


def test_simbackend_is_in_process_only():
    with pytest.raises(TypeError, match="in-process-only"):
        pickle.dumps(SimBackend())


def test_counting_backend_keeps_stats_token(tmp_path):
    cb = CountingBackend(LocalBackend())
    clone = _roundtrip(cb)
    assert clone.stats.token == cb.stats.token
    # The clone's activity can be merged back into the original by token,
    # which is exactly what the proc engine does at join.
    f = clone.open(str(tmp_path / "y.bin"), "w+")
    f.write(b"12345678")
    f.close()
    assert cb.snapshot()["bytes_written"] == 0
    delta = stats_deltas(
        {cb.stats.token: cb.stats.raw_state()},
        {cb.stats.token: clone.stats.raw_state()},
    )
    apply_stats_deltas(delta)
    assert cb.snapshot()["bytes_written"] == 8
    assert cb.snapshot()["opens"] == 1


def test_stats_delta_roundtrip_is_exact():
    stats = IOStats()
    before = snapshot_live_stats()
    stats.count("pwrite", 3)
    stats.count_read_bytes(100, requests=2)
    stats.note_payloads([b"abcd"])
    deltas = dict(stats_deltas(before, snapshot_live_stats()))
    assert deltas[stats.token]["calls"] == {"pwrite": 3}
    assert deltas[stats.token]["bytes_read"] == 100
    assert deltas[stats.token]["fragments_read"] == 2
    assert deltas[stats.token]["bytes_written"] == 4
    assert deltas[stats.token]["fragments_written"] == 1


def test_stats_deltas_skip_idle_objects():
    idle = IOStats()
    before = snapshot_live_stats()
    assert all(token != idle.token for token, _ in stats_deltas(before, snapshot_live_stats()))
