"""Backend conformance: identical behaviour on real and simulated storage."""

import pytest

from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend


def _path(base_dir, name):
    return f"{base_dir.rstrip('/')}/{name}"


class TestConformance:
    """Runs against both backends via the parametrized fixture."""

    def test_roundtrip(self, any_backend):
        backend, base = any_backend
        p = _path(base, "f.bin")
        with backend.open(p, "wb") as f:
            f.write(b"hello world")
        assert backend.exists(p)
        with backend.open(p, "rb") as f:
            assert f.read() == b"hello world"
        assert backend.file_size(p) == 11

    def test_missing_file(self, any_backend):
        backend, base = any_backend
        assert not backend.exists(_path(base, "ghost"))
        with pytest.raises(Exception):
            backend.open(_path(base, "ghost"), "rb")

    def test_seek_tell_patch(self, any_backend):
        backend, base = any_backend
        p = _path(base, "s.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"0123456789")
            f.seek(4)
            assert f.tell() == 4
            f.write(b"XY")
            f.seek(0)
            assert f.read() == b"0123XY6789"

    def test_write_zeros_extends(self, any_backend):
        backend, base = any_backend
        p = _path(base, "z.bin")
        with backend.open(p, "wb") as f:
            f.write(b"a")
            f.write_zeros(100)
            f.write(b"b")
        assert backend.file_size(p) == 102
        with backend.open(p, "rb") as f:
            data = f.read()
        assert data[0:1] == b"a" and data[-1:] == b"b"
        assert data[1:-1] == b"\0" * 100

    def test_write_zeros_alone_sets_size(self, any_backend):
        backend, base = any_backend
        p = _path(base, "hole.bin")
        with backend.open(p, "wb") as f:
            f.write_zeros(4096)
        assert backend.file_size(p) == 4096

    def test_truncate(self, any_backend):
        backend, base = any_backend
        p = _path(base, "t.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"abcdef")
            f.truncate(3)
        assert backend.file_size(p) == 3

    def test_unlink(self, any_backend):
        backend, base = any_backend
        p = _path(base, "u.bin")
        with backend.open(p, "wb") as f:
            f.write(b"x")
        backend.unlink(p)
        assert not backend.exists(p)

    def test_stat_blocksize_positive(self, any_backend):
        backend, base = any_backend
        p = _path(base, "blk.bin")
        with backend.open(p, "wb") as f:
            f.write(b"x")
        assert backend.stat_blocksize(p) > 0
        # Probing a not-yet-existing path must also work (used at create).
        assert backend.stat_blocksize(_path(base, "new.bin")) > 0

    def test_two_handles_same_file(self, any_backend):
        """The parallel layer opens one handle per task on a shared file."""
        backend, base = any_backend
        p = _path(base, "multi.bin")
        with backend.open(p, "wb") as f:
            f.write_zeros(200)
        h1 = backend.open(p, "r+b")
        h2 = backend.open(p, "r+b")
        h1.seek(0)
        h1.write(b"AAA")
        h2.seek(100)
        h2.write(b"BBB")
        h1.close()
        h2.close()
        with backend.open(p, "rb") as f:
            data = f.read()
        assert data[0:3] == b"AAA" and data[100:103] == b"BBB"


class TestLocalSpecific:
    def test_blocksize_override(self, tmp_path):
        b = LocalBackend(blocksize_override=4096)
        assert b.stat_blocksize(str(tmp_path / "x")) == 4096
        with pytest.raises(ValueError):
            LocalBackend(blocksize_override=0)

    def test_statvfs_fallback(self, tmp_path):
        b = LocalBackend()
        assert b.stat_blocksize(str(tmp_path)) > 0

    def test_allocated_size_reported(self, tmp_path):
        b = LocalBackend()
        p = str(tmp_path / "f")
        with b.open(p, "wb") as f:
            f.write(b"x" * 8192)
        assert b.allocated_size(p) >= 0


class TestSimSpecific:
    def test_allocated_size_tracks_sparseness(self):
        backend = SimBackend()
        with backend.open("/f", "wb") as f:
            f.write_zeros(10**6)
            f.write(b"tail")
        assert backend.file_size("/f") == 10**6 + 4
        assert backend.allocated_size("/f") == 4

    def test_default_constructor_creates_fs(self):
        backend = SimBackend()
        with backend.open("/x", "wb") as f:
            f.write(b"1")
        assert backend.fs.exists("/x")
