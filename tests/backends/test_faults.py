"""FaultPlan / FaultInjectingBackend semantics against raw backends.

These tests exercise the fault layer in isolation (no SION traffic):
trigger exactness, budget accounting, blackout semantics, state sharing
across rank views, and pickling for the process engine.
"""

from __future__ import annotations

import pickle

import pytest

from repro.backends import FaultInjectingBackend, FaultPlan
from repro.backends.faults import (
    CORRUPT_CHUNK_HEADER,
    DROP_METABLOCK2,
    KILL_RANK,
    TEAR_SCATTER,
)
from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend
from repro.errors import FaultInjectedError
from repro.fs.simfs import SimFS
from repro.sion.constants import MAGIC_MB2
from repro.sion.format import ShadowHeader
from tests.conftest import TEST_BLKSIZE


def _faulty(plan=None):
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/scratch")
    return FaultInjectingBackend(SimBackend(fs), plan)


# -- plan construction -------------------------------------------------------


def test_plan_is_immutable_and_chainable():
    base = FaultPlan()
    chained = base.kill_rank(3, after_bytes=100).drop_metablock2("/x")
    assert base.faults == ()
    assert [f.kind for f in chained.faults] == [KILL_RANK, DROP_METABLOCK2]
    assert chained.of_kind(KILL_RANK)[0].rank == 3
    assert chained.of_kind(TEAR_SCATTER) == ()


def test_plan_rejects_negative_parameters():
    with pytest.raises(ValueError):
        FaultPlan().kill_rank(-1)
    with pytest.raises(ValueError):
        FaultPlan().kill_rank(0, after_bytes=-5)
    with pytest.raises(ValueError):
        FaultPlan().tear_scatter("/x", keep_fragments=-1)


def test_empty_plan_is_transparent():
    be = _faulty()
    with be.open("/scratch/a", "w+b") as f:
        f.write(b"hello")
        f.seek(0)
        assert f.read() == b"hello"
    assert be.exists("/scratch/a")
    assert be.file_size("/scratch/a") == 5


# -- kill_rank ---------------------------------------------------------------


def test_kill_rank_fires_only_for_attributed_rank():
    be = _faulty(FaultPlan().kill_rank(1, after_bytes=0))
    with be.open("/scratch/a", "w+b") as f:
        f.write(b"unattributed traffic never dies")
    v0 = be.for_rank(0)
    with v0.open("/scratch/b", "w+b") as f:
        f.write(b"rank 0 is not targeted")
    v1 = be.for_rank(1)
    f = v1.open("/scratch/c", "w+b")
    with pytest.raises(FaultInjectedError):
        f.write(b"x")
    f.close()


def test_kill_rank_budget_is_cumulative_and_bytes_never_move():
    be = _faulty(FaultPlan().kill_rank(0, after_bytes=10)).for_rank(0)
    f = be.open("/scratch/a", "w+b")
    f.write(b"12345")          # 5 of 10
    f.write(b"12345")          # 10 of 10 (exactly at budget: allowed)
    with pytest.raises(FaultInjectedError):
        f.write(b"!")          # 11th byte crosses
    f.close()
    # The crossing write moved nothing.
    assert be.file_size("/scratch/a") == 10


def test_kill_rank_charges_reads_too():
    be = _faulty(FaultPlan().kill_rank(0, after_bytes=8))
    with be.open("/scratch/a", "w+b") as f:
        f.write(b"0123456789abcdef")
    view = be.for_rank(0)
    f = view.open("/scratch/a", "rb")
    assert f.pread(0, 8) == b"01234567"
    with pytest.raises(FaultInjectedError):
        f.pread(8, 1)
    f.close()


def test_for_rank_views_share_trigger_state():
    be = _faulty(FaultPlan().kill_rank(2, after_bytes=6))
    a = be.for_rank(2)
    b = be.for_rank(2)
    fa = a.open("/scratch/a", "w+b")
    fb = b.open("/scratch/b", "w+b")
    fa.write(b"1234")           # 4 of 6, charged on the shared counter
    with pytest.raises(FaultInjectedError):
        fb.write(b"123")        # 7 of 6 via the sibling view
    fa.close()
    fb.close()


def test_kill_rank_determinism_same_plan_same_trigger_point():
    for _ in range(3):
        be = _faulty(FaultPlan().kill_rank(0, after_bytes=7)).for_rank(0)
        f = be.open("/scratch/a", "w+b")
        written = 0
        with pytest.raises(FaultInjectedError):
            for _ in range(100):
                f.write(b"abc")
                written += 3
        f.close()
        assert written == 6  # always dies on the third 3-byte write


# -- tear_scatter ------------------------------------------------------------


def test_tear_scatter_persists_only_kept_fragments():
    be = _faulty(FaultPlan().tear_scatter("/scratch/a", keep_fragments=2))
    f = be.open("/scratch/a", "w+b")
    with pytest.raises(FaultInjectedError):
        f.scatter_write([(0, b"AAAA"), (8, b"BBBB"), (16, b"CCCC")])
    f.close()
    g = be.open("/scratch/a", "rb")
    assert g.pread(0, 4) == b"AAAA"
    assert g.pread(8, 4) == b"BBBB"
    assert be.file_size("/scratch/a") == 12  # third fragment never landed
    g.close()


def test_tear_scatter_respects_rank_filter():
    plan = FaultPlan().tear_scatter("/scratch/a", keep_fragments=0, rank=1)
    be = _faulty(plan)
    f0 = be.for_rank(0).open("/scratch/a", "w+b")
    assert f0.scatter_write([(0, b"ok")]) == 2
    f0.close()
    f1 = be.for_rank(1).open("/scratch/a", "r+b")
    with pytest.raises(FaultInjectedError):
        f1.scatter_write([(4, b"no")])
    f1.close()


# -- drop_metablock2 ---------------------------------------------------------


def test_drop_metablock2_swallows_mb2_and_everything_after():
    be = _faulty(FaultPlan().drop_metablock2("/scratch/a"))
    f = be.open("/scratch/a", "w+b")
    f.write(b"payload!")
    assert f.write(MAGIC_MB2 + b"metadata") == len(MAGIC_MB2 + b"metadata")
    assert f.write(b"patched offset") == 14   # blackout: swallowed too
    f.flush()
    f.close()                                  # close still reaches the store
    assert be.file_size("/scratch/a") == 8     # only the payload landed


def test_drop_metablock2_is_path_keyed():
    be = _faulty(FaultPlan().drop_metablock2("/scratch/other"))
    with be.open("/scratch/a", "w+b") as f:
        f.write(MAGIC_MB2 + b"fine here")
    assert be.file_size("/scratch/a") == len(MAGIC_MB2) + 9


# -- corrupt_chunk_header ----------------------------------------------------


def test_corrupt_chunk_header_targets_one_block():
    plan = FaultPlan().corrupt_chunk_header("/scratch/a", ltask=1, block=2)
    be = _faulty(plan)
    hit = ShadowHeader(ltask=1, block=2, written=99).encode()
    miss = ShadowHeader(ltask=1, block=3, written=99).encode()
    f = be.open("/scratch/a", "w+b")
    f.pwrite(0, hit)
    f.pwrite(len(hit), miss)
    f.close()
    g = be.open("/scratch/a", "rb")
    assert ShadowHeader.decode(g.pread(0, len(hit))) is None
    survivor = ShadowHeader.decode(g.pread(len(hit), len(miss)))
    assert survivor is not None and survivor.block == 3
    g.close()
    assert plan.of_kind(CORRUPT_CHUNK_HEADER)[0].ltask == 1


def test_corrupt_chunk_header_leaves_plain_payloads_alone():
    be = _faulty(FaultPlan().corrupt_chunk_header("/scratch/a", 0, 0))
    with be.open("/scratch/a", "w+b") as f:
        f.pwrite(0, b"no shadow magic here, long enough to decode")
    g = be.open("/scratch/a", "rb")
    assert g.pread(0, 9) == b"no shadow"
    g.close()


# -- pickling (process engine) -----------------------------------------------


def test_faulting_local_backend_pickles_with_plan_intact(tmp_path):
    plan = FaultPlan().kill_rank(1, after_bytes=4)
    be = FaultInjectingBackend(
        LocalBackend(blocksize_override=TEST_BLKSIZE), plan
    )
    clone = pickle.loads(pickle.dumps(be))
    assert clone.plan == plan
    view = clone.for_rank(1)
    f = view.open(str(tmp_path / "a"), "w+b")
    with pytest.raises(FaultInjectedError):
        f.write(b"12345")
    f.close()


def test_faulting_sim_backend_refuses_to_pickle():
    be = _faulty(FaultPlan().kill_rank(0))
    with pytest.raises(TypeError):
        pickle.dumps(be)
