"""Vectored/positioned RawFile protocol: identical semantics on both backends."""

import numpy as np
import pytest

from repro.buffers import as_view


def _path(base, name):
    return f"{base.rstrip('/')}/{name}"


class TestAsView:
    def test_wraps_without_copy(self):
        for src in (b"abcdef", bytearray(b"abcdef"), np.arange(6, dtype=np.uint8)):
            view = as_view(src)
            assert view.obj is src
            assert view.nbytes == 6
        mv = memoryview(b"abcdef")
        assert as_view(mv) is mv

    def test_slices_keep_the_exporter(self):
        src = bytearray(b"0123456789")
        view = as_view(memoryview(src)[2:8])
        assert view.obj is src
        assert bytes(view) == b"234567"

    def test_casts_wide_dtypes(self):
        arr = np.arange(4, dtype=np.float64)
        view = as_view(arr)
        assert view.nbytes == 32
        assert view.obj is arr  # cast preserves the exporter

    def test_non_contiguous_copies_once(self):
        arr = np.arange(16, dtype=np.uint8)
        strided = arr[::2]
        view = as_view(strided)
        assert bytes(view) == strided.tobytes()
        assert view.obj is not strided  # flattened: the one entry-boundary copy

    def test_rejects_non_buffers(self):
        with pytest.raises(TypeError):
            as_view("not bytes")


class TestPositioned:
    def test_pwrite_pread_roundtrip(self, any_backend):
        backend, base = any_backend
        p = _path(base, "p.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"\0" * 32)
            f.seek(7)
            assert f.pwrite(4, b"XYZ") == 3
            assert f.tell() == 7  # file pointer untouched
            assert f.pread(4, 3) == b"XYZ"
            assert f.tell() == 7

    def test_pwrite_accepts_any_buffer(self, any_backend):
        backend, base = any_backend
        p = _path(base, "b.bin")
        with backend.open(p, "w+b") as f:
            f.pwrite(0, b"aa")
            f.pwrite(2, bytearray(b"bb"))
            f.pwrite(4, memoryview(b"cc"))
            f.pwrite(6, np.frombuffer(b"dd", dtype=np.uint8))
            assert f.pread(0, 8) == b"aabbccdd"

    def test_pread_past_eof_shortens(self, any_backend):
        backend, base = any_backend
        p = _path(base, "eof.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"12345")
            assert f.pread(3, 10) == b"45"
            assert f.pread(99, 4) == b""


class TestVectored:
    def test_pwritev_contiguous_gather(self, any_backend):
        backend, base = any_backend
        p = _path(base, "v.bin")
        with backend.open(p, "w+b") as f:
            n = f.pwritev(4, [b"ab", bytearray(b"cd"), memoryview(b"ef")])
            assert n == 6
            assert f.pread(0, 10) == b"\0\0\0\0abcdef"

    def test_pwritev_skips_empty_views(self, any_backend):
        backend, base = any_backend
        p = _path(base, "v0.bin")
        with backend.open(p, "w+b") as f:
            assert f.pwritev(0, [b"", b"xy", memoryview(b""), b"z"]) == 3
            assert f.pread(0, 3) == b"xyz"
            assert f.pwritev(3, []) == 0

    def test_preadv_scatter_read(self, any_backend):
        backend, base = any_backend
        p = _path(base, "r.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"0123456789")
            assert f.preadv(1, [3, 0, 4]) == [b"123", b"", b"4567"]

    def test_preadv_eof_trims_then_empties(self, any_backend):
        backend, base = any_backend
        p = _path(base, "re.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"abcdef")
            assert f.preadv(2, [3, 3, 3]) == [b"cde", b"f", b""]

    def test_scatter_write_disjoint_fragments(self, any_backend):
        backend, base = any_backend
        p = _path(base, "sc.bin")
        with backend.open(p, "w+b") as f:
            # Out of order, with a gap (hole) between 10 and 20.
            n = f.scatter_write([(20, b"TAIL"), (0, b"HEAD"), (4, bytearray(b"++"))])
            assert n == 10
            assert f.pread(0, 6) == b"HEAD++"
            assert f.pread(20, 4) == b"TAIL"
            assert f.pread(6, 14) == b"\0" * 14
        assert backend.file_size(p) == 24

    def test_scatter_write_merges_contiguous_runs(self, any_backend):
        backend, base = any_backend
        p = _path(base, "sm.bin")
        with backend.open(p, "w+b") as f:
            f.scatter_write([(0, b"ab"), (2, b"cd"), (4, b"ef"), (10, b"gh")])
            assert f.pread(0, 6) == b"abcdef"
            assert f.pread(10, 2) == b"gh"

    def test_gather_read_request_order(self, any_backend):
        backend, base = any_backend
        p = _path(base, "g.bin")
        with backend.open(p, "w+b") as f:
            f.write(b"0123456789")
            # Out-of-order, partly contiguous requests come back in order.
            assert f.gather_read([(6, 2), (0, 3), (3, 3)]) == [b"67", b"012", b"345"]
            assert f.gather_read([]) == []

    def test_roundtrip_scatter_gather(self, any_backend):
        backend, base = any_backend
        p = _path(base, "rt.bin")
        frags = [(i * 7, bytes([65 + i]) * 5) for i in range(8)]
        with backend.open(p, "w+b") as f:
            f.scatter_write(frags)
            got = f.gather_read([(off, len(d)) for off, d in frags])
        assert got == [d for _, d in frags]


class TestLocalVectoredNative:
    def test_pwritev_beyond_iov_max(self, local_backend, tmp_path):
        """More fragments than one writev can carry still land correctly."""
        p = str(tmp_path / "iov.bin")
        views = [bytes([i % 256]) for i in range(1500)]
        with local_backend.open(p, "w+b") as f:
            assert f.pwritev(0, views) == 1500
            data = f.pread(0, 1500)
        assert data == bytes(i % 256 for i in range(1500))

    def test_preadv_beyond_iov_max(self, local_backend, tmp_path):
        p = str(tmp_path / "iov2.bin")
        payload = bytes(range(256)) * 8
        with local_backend.open(p, "w+b") as f:
            f.write(payload)
            pieces = f.preadv(0, [1] * 2100)
        assert b"".join(pieces) == payload
        assert pieces[2047] == payload[-1:]
        assert pieces[2048] == b""  # past EOF

    def test_streaming_and_positioned_stay_coherent(self, local_backend, tmp_path):
        """Unbuffered handles: fd-level writes are visible to read() at once."""
        p = str(tmp_path / "coh.bin")
        with local_backend.open(p, "w+b") as f:
            f.write(b"stream")
            f.pwrite(6, b"+fd")
            f.seek(0)
            assert f.read(9) == b"stream+fd"
