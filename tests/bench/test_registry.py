"""Registry: registration, dedup, suites, tags, grids, lookup."""

import pytest

from repro.bench import Metric, Registry, Scenario, ScenarioOutput, iter_scenarios
from repro.bench.registry import _grid_points
from repro.errors import ReproError


def _noop(ctx):
    return ScenarioOutput(metrics={"cost": Metric(1.0)})


def test_register_and_get():
    reg = Registry()
    sc = reg.register(Scenario(name="a/b", fn=_noop))
    assert reg.get("a/b") is sc
    assert "a/b" in reg
    assert len(reg) == 1


def test_duplicate_registration_rejected():
    reg = Registry()
    reg.register(Scenario(name="a/b", fn=_noop))
    with pytest.raises(ReproError, match="already registered"):
        reg.register(Scenario(name="a/b", fn=_noop))


def test_unknown_scenario_error_names_close_matches():
    reg = Registry()
    reg.register(Scenario(name="fig3/filecreate", fn=_noop))
    with pytest.raises(ReproError, match="filecreate"):
        reg.get("filecreate")


def test_unknown_suite_rejected():
    with pytest.raises(ReproError, match="unknown suite"):
        Scenario(name="x", fn=_noop, suite="nightly")


def test_full_suite_includes_smoke():
    reg = Registry()
    reg.register(Scenario(name="s", fn=_noop, suite="smoke"))
    reg.register(Scenario(name="f", fn=_noop, suite="full"))
    assert [sc.name for sc in reg.iter(suite="smoke")] == ["s"]
    assert [sc.name for sc in reg.iter(suite="full")] == ["s", "f"]


def test_scale_suite_is_explicit_only():
    reg = Registry()
    reg.register(Scenario(name="s", fn=_noop, suite="smoke"))
    reg.register(Scenario(name="big", fn=_noop, suite="scale"))
    # scale scenarios run only when asked for: not in smoke, not in full.
    assert [sc.name for sc in reg.iter(suite="scale")] == ["big"]
    assert [sc.name for sc in reg.iter(suite="full")] == ["s"]
    assert [sc.name for sc in reg.iter(suite="smoke")] == ["s"]


def test_builtin_scale_scenarios_registered_with_ci_grid():
    scale = list(iter_scenarios(suite="scale"))
    names = {sc.name for sc in scale}
    for family in ("paropen-parclose", "serial-scan", "collectives"):
        for n in (4096, 16384, 65536, 262144):
            assert f"scale/{family}[ntasks={n}]" in names
    for w in (1, 2, 4):
        assert f"scale/taskbw[workers={w}]" in names
    for nightly in (
        "scale/paropen-parclose[ntasks=1048576]",
        "scale/contention-sweep[ntasks=1048576]",
    ):
        assert nightly in names
    ci = [sc.name for sc in iter_scenarios(suite="scale", tags=("ci-grid",))]
    grid = [n for n in ci if "ntasks=" in n and "contention" not in n]
    taskbw = [n for n in ci if "taskbw" in n]
    # Engine-exercising ci-grid points stay at 4k/16k; the contention sweep
    # is analytic (no SPMD run) so its 1M layout rides CI too.
    assert len(grid) == 6 and all("4096" in n or "16384" in n for n in grid)
    assert "scale/contention-sweep[ntasks=1048576]" in ci
    assert len(taskbw) == 3 and len(ci) == 10
    # The 1M engine cycle is nightly-only: tagged nightly-1m, not ci-grid.
    assert "scale/paropen-parclose[ntasks=1048576]" not in ci
    nightly_1m = [
        sc.name for sc in iter_scenarios(suite="scale", tags=("nightly-1m",))
    ]
    assert sorted(nightly_1m) == [
        "scale/contention-sweep[ntasks=1048576]",
        "scale/paropen-parclose[ntasks=1048576]",
    ]


def test_builtin_collective_scenarios_registered_with_ci_grid():
    coll = list(iter_scenarios(suite="collective"))
    names = {sc.name for sc in coll}
    for family in ("write-wave", "read-wave"):
        for n in (4096, 16384, 65536):
            assert f"collective/{family}[ntasks={n}]" in names
    assert "collective/direct-vs-collective[ntasks=4096]" in names
    assert "collective/nfiles-collectors-tradeoff[ntasks=4096]" in names
    # Explicit-only, like scale: never part of full or smoke.
    assert not any(sc.in_suite("full") for sc in coll)
    ci = [sc.name for sc in iter_scenarios(suite="collective", tags=("ci-grid",))]
    assert len(ci) == 6 and all("4096" in n or "16384" in n for n in ci)


def test_tag_and_pattern_filters():
    reg = Registry()
    reg.register(Scenario(name="fig3/a", fn=_noop, tags=("fig3", "jugene")))
    reg.register(Scenario(name="fig3/b", fn=_noop, tags=("fig3", "jaguar")))
    reg.register(Scenario(name="table1/x", fn=_noop, tags=("table1",)))
    assert [s.name for s in reg.iter(tags=("fig3",))] == ["fig3/a", "fig3/b"]
    assert [s.name for s in reg.iter(tags=("fig3", "jaguar"))] == ["fig3/b"]
    assert [s.name for s in reg.iter(pattern="table1/*")] == ["table1/x"]


def test_decorator_registers_with_params():
    reg = Registry()

    @reg.scenario("micro/x", suite="full", tags=("micro",), params={"n": 4})
    def fn(ctx):
        return {"n_cost": float(ctx.params["n"])}

    sc = reg.get("micro/x")
    assert sc.suite == "full" and sc.params == {"n": 4}
    out = sc.execute()
    assert out.metrics["n_cost"].value == 4.0


def test_grid_expansion():
    reg = Registry()

    @reg.scenario("sweep", grid={"system": ["jugene", "jaguar"], "nfiles": [1, 16]})
    def fn(ctx):
        return {"cost": 1.0}

    names = [sc.name for sc in reg.iter()]
    assert names == [
        "sweep[system=jugene,nfiles=1]",
        "sweep[system=jugene,nfiles=16]",
        "sweep[system=jaguar,nfiles=1]",
        "sweep[system=jaguar,nfiles=16]",
    ]
    assert reg.get("sweep[system=jaguar,nfiles=16]").params == {
        "system": "jaguar",
        "nfiles": 16,
    }


def test_grid_points_empty_axis_rejected():
    with pytest.raises(ReproError, match="no values"):
        _grid_points({"x": []})


def test_execute_rejects_bad_return():
    reg = Registry()
    reg.register(Scenario(name="bad", fn=lambda ctx: 42))
    with pytest.raises(ReproError, match="expected ScenarioOutput"):
        reg.get("bad").execute()


def test_context_profile_resolution():
    reg = Registry()

    @reg.scenario("p", profile="jugene")
    def fn(ctx):
        return {"cores": Metric(float(ctx.profile.total_cores), unit="", better="info")}

    assert reg.get("p").execute().metrics["cores"].value > 0


def test_context_profile_missing():
    reg = Registry()
    reg.register(Scenario(name="noprof", fn=lambda ctx: {"x": ctx.profile.total_cores}))
    with pytest.raises(ReproError, match="no machine profile"):
        reg.get("noprof").execute()


def test_failed_builtin_load_retries_with_real_error(monkeypatch):
    """A partial first load must not poison the retry with dup errors."""
    import importlib

    from repro.bench import registry as regmod

    monkeypatch.setattr(regmod, "_loaded", False)
    before = dict(regmod.DEFAULT_REGISTRY._scenarios)
    monkeypatch.setattr(regmod.DEFAULT_REGISTRY, "_scenarios", dict(before))

    real_import = importlib.import_module

    def partial_then_boom(name, *args, **kwargs):
        if name == "repro.bench.scenarios":
            regmod.DEFAULT_REGISTRY.register(Scenario(name="half/done", fn=_noop))
            raise ImportError("broken dependency")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(regmod.importlib, "import_module", partial_then_boom)
    for _ in range(2):  # the retry surfaces the real error, not a dup
        with pytest.raises(ImportError, match="broken dependency"):
            regmod.ensure_builtin_scenarios()
    assert "half/done" not in regmod.DEFAULT_REGISTRY
    assert not regmod._loaded


def test_builtin_scenarios_load_and_cover_the_paper():
    names = {sc.name for sc in iter_scenarios(suite="full")}
    # every figure/table family of the paper's evaluation is registered
    for prefix in ("fig3/", "fig4/", "fig5/", "fig6/", "table1/", "table2/"):
        assert any(n.startswith(prefix) for n in names), prefix
    smoke = list(iter_scenarios(suite="smoke"))
    assert all(sc.suite == "smoke" for sc in smoke)
    assert len(smoke) >= 15
