"""Result containers: schema validation and JSON round-trips."""

import json
import pathlib

import pytest

from repro.analysis.results import Series
from repro.bench import (
    SCHEMA_VERSION,
    BenchReport,
    Metric,
    ScenarioResult,
    series_metrics,
    validate_report,
)
from repro.bench.results import ScenarioOutput, coerce_metrics
from repro.errors import ReproError


def _report() -> BenchReport:
    rep = BenchReport(suite="smoke")
    rep.add(
        ScenarioResult(
            name="fig3/x",
            suite="smoke",
            tags=("fig3",),
            params={"ntasks": [1, 2]},
            metrics={
                "create_s": Metric(12.5),
                "bw": Metric(6000.0, unit="MB/s", better="higher"),
                "wall_s": Metric(0.1, better="info"),
            },
            wall_s=0.1,
        )
    )
    return rep


def test_metric_coercion_floats_become_seconds():
    metrics = coerce_metrics({"a": 1.5, "b": Metric(2.0, "MB/s", "higher")})
    assert metrics["a"] == Metric(1.5, "s", "lower")
    assert metrics["b"].better == "higher"


def test_scenario_output_coerces_metrics():
    out = ScenarioOutput(metrics={"x": 3.0})
    assert out.metrics["x"] == Metric(3.0)


def test_series_metrics_flattens_every_point():
    s = Series("f", "#tasks", "s", xs=[1024, 65536])
    s.add_curve("create", [1.0, 2.0])
    metrics = series_metrics(s)
    assert metrics["create[#tasks=1024]"].value == 1.0
    assert metrics["create[#tasks=65536]"].value == 2.0
    assert all(m.better == "lower" for m in metrics.values())


def test_series_metrics_keys_keep_full_precision():
    # ':g' would collapse both xs below to '1.04858e+06', silently merging
    # two gated points into one key.
    s = Series("f", "#tasks", "s", xs=[1048576, 1048580, 3.3])
    s.add_curve("create", [1.0, 2.0, 3.0])
    metrics = series_metrics(s)
    assert metrics["create[#tasks=1048576]"].value == 1.0
    assert metrics["create[#tasks=1048580]"].value == 2.0
    assert metrics["create[#tasks=3.3]"].value == 3.0


def test_series_metrics_per_curve_overrides():
    s = Series("f", "#tasks", "s", xs=[1024])
    s.add_curve("write", [6000.0])
    s.add_curve("speedup", [4.0])
    metrics = series_metrics(
        s, unit="MB/s", better="higher", overrides={"speedup": ("x", "info")}
    )
    assert metrics["write[#tasks=1024]"] == Metric(6000.0, "MB/s", "higher")
    assert metrics["speedup[#tasks=1024]"] == Metric(4.0, "x", "info")


def test_report_roundtrip_exact(tmp_path):
    rep = _report()
    path = rep.save(tmp_path / "nested" / "BENCH_smoke.json")  # parents created
    loaded = BenchReport.load(path)
    assert loaded.to_dict() == rep.to_dict()
    assert loaded.scenarios["fig3/x"].metrics["bw"].unit == "MB/s"
    assert loaded.schema_version == SCHEMA_VERSION


def test_validate_report_accepts_roundtrip():
    assert validate_report(_report().to_dict()) == []


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.pop("git_sha"), "missing keys"),
        (lambda d: d.update(schema_version=SCHEMA_VERSION + 1), "newer than supported"),
        (lambda d: d.update(suite=""), "non-empty"),
        (lambda d: d["scenarios"].update(bad=[]), "must be an object"),
        (
            lambda d: d["scenarios"]["fig3/x"]["metrics"].update(
                broken={"value": "high", "unit": "s", "better": "lower"}
            ),
            "value must be a number",
        ),
        (
            lambda d: d["scenarios"]["fig3/x"]["metrics"].update(
                broken={"value": 1.0, "unit": "s", "better": "sideways"}
            ),
            "better must be one of",
        ),
    ],
)
def test_validate_report_rejects(mutate, fragment):
    doc = _report().to_dict()
    mutate(doc)
    problems = validate_report(doc)
    assert problems and any(fragment in p for p in problems)


def test_validate_rejects_non_finite_metric_values():
    doc = _report().to_dict()
    doc["scenarios"]["fig3/x"]["metrics"]["create_s"]["value"] = float("nan")
    assert any("finite" in p for p in validate_report(doc))


def test_save_refuses_non_finite_metrics(tmp_path):
    rep = _report()
    rep.scenarios["fig3/x"].metrics["create_s"] = Metric(float("inf"))
    with pytest.raises(ReproError, match="refusing to save"):
        rep.save(tmp_path / "bad.json")


def test_from_dict_raises_on_invalid():
    doc = _report().to_dict()
    del doc["scenarios"]["fig3/x"]["metrics"]
    with pytest.raises(ReproError, match="invalid bench report"):
        BenchReport.from_dict(doc)


def test_load_rejects_missing_and_malformed(tmp_path):
    with pytest.raises(ReproError, match="no such result file"):
        BenchReport.load(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        BenchReport.load(bad)


def test_report_rejects_duplicate_scenario():
    rep = _report()
    with pytest.raises(ReproError, match="duplicate"):
        rep.add(rep.scenarios["fig3/x"])


def test_git_sha_explicit_cwd_and_fallback(tmp_path, monkeypatch):
    from repro.bench import results as resmod

    # an explicit non-repo cwd is respected, not silently redirected
    assert resmod.git_sha(cwd=tmp_path) == "unknown"
    # package dir outside any repo (site-packages install) falls back to
    # the process CWD, which here is a checkout
    monkeypatch.setattr(resmod, "__file__", str(tmp_path / "results.py"))
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    monkeypatch.chdir(repo_root)
    sha = resmod.git_sha()
    assert sha != "unknown" and len(sha) == 40


def test_saved_file_is_stable_json(tmp_path):
    path = _report().save(tmp_path / "r.json")
    doc = json.loads(path.read_text())
    assert list(doc) == [
        "schema_version",
        "suite",
        "created",
        "git_sha",
        "environment",
        "scenarios",
    ]
    assert doc["environment"]["python"]
