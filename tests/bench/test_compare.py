"""Comparator/gate: regressions fail, improvements pass, structure checked."""

import pytest

from repro.bench import BenchReport, Metric, ScenarioResult, compare_reports
from repro.bench.compare import _relative_change
from repro.errors import ReproError


def _report(metrics: dict[str, Metric], name: str = "s", error: str | None = None):
    rep = BenchReport(suite="smoke")
    rep.add(
        ScenarioResult(
            name=name,
            suite="smoke",
            tags=(),
            params={},
            metrics=metrics,
            wall_s=0.01,
            error=error,
        )
    )
    return rep


def test_identical_reports_pass():
    base = _report({"cost_s": Metric(10.0)})
    result = compare_reports(base, base, threshold=0.0)
    assert result.passed
    assert [d.status for d in result.deltas] == ["ok"]


def test_regression_on_lower_better_metric_fails():
    base = _report({"cost_s": Metric(10.0)})
    cand = _report({"cost_s": Metric(11.2)})  # +12%
    result = compare_reports(cand, base, threshold=0.10)
    assert not result.passed
    (delta,) = result.failures
    assert delta.status == "regression"
    assert delta.rel_change == pytest.approx(0.12)
    assert "cost_s" in result.format_report()


def test_improvement_passes_the_gate():
    base = _report({"cost_s": Metric(10.0)})
    cand = _report({"cost_s": Metric(7.0)})
    result = compare_reports(cand, base, threshold=0.10)
    assert result.passed
    assert [d.status for d in result.deltas] == ["improvement"]
    assert "improvements" in result.format_report()


def test_higher_better_metric_gates_on_drops():
    base = _report({"bw": Metric(6000.0, "MB/s", "higher")})
    worse = _report({"bw": Metric(5000.0, "MB/s", "higher")})
    better = _report({"bw": Metric(7000.0, "MB/s", "higher")})
    assert not compare_reports(worse, base, threshold=0.10).passed
    assert compare_reports(better, base, threshold=0.10).passed


def test_within_threshold_is_ok():
    base = _report({"cost_s": Metric(10.0)})
    cand = _report({"cost_s": Metric(10.4)})  # +4% < 5%
    result = compare_reports(cand, base)
    assert result.passed
    assert [d.status for d in result.deltas] == ["ok"]


def test_info_metrics_never_gate():
    base = _report({"wall_s": Metric(1.0, better="info")})
    cand = _report({"wall_s": Metric(50.0, better="info")})
    result = compare_reports(cand, base, threshold=0.0)
    assert result.passed
    assert result.deltas == []


def test_missing_scenario_fails():
    base = _report({"cost_s": Metric(1.0)}, name="gone")
    cand = BenchReport(suite="smoke")
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "missing-scenario"
    assert "absent from candidate" in result.failures[0].describe()


def test_missing_metric_fails():
    base = _report({"cost_s": Metric(1.0), "other_s": Metric(2.0)})
    cand = _report({"cost_s": Metric(1.0)})
    result = compare_reports(cand, base)
    assert not result.passed
    assert [d.status for d in result.failures] == ["missing-metric"]


def test_candidate_scenario_error_fails():
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({}, error="Traceback ...")
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "scenario-error"


def test_direction_mismatch_forces_baseline_refresh():
    # A code-side flip of a metric's direction must not gate with the
    # stale baseline sign (a regression would read as improvement).
    base = _report({"m": Metric(10.0, "s", "lower")})
    cand = _report({"m": Metric(5.0, "s", "higher")})
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "direction-mismatch"
    assert "refresh the baseline" in result.failures[0].describe()


def test_info_to_gated_promotion_forces_baseline_refresh():
    # Starting to gate a previously-info metric must not be silently
    # skipped just because the stale baseline still says 'info'.
    base = _report({"factor": Metric(2.5, "x", "info")})
    cand = _report({"factor": Metric(2.5, "x", "higher")})
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "direction-mismatch"


def test_errored_baseline_entry_cannot_vacuously_pass():
    base = _report({}, error="Traceback ...")
    cand = _report({"cost_s": Metric(1.0)})
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "baseline-error"
    assert "refresh the baseline" in result.failures[0].describe()


def test_candidate_only_errored_scenario_still_fails():
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({"cost_s": Metric(1.0)})
    cand.add(
        ScenarioResult(
            name="brand/broken", suite="smoke", tags=(), params={},
            metrics={}, wall_s=0.0, error="Traceback ...",
        )
    )
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "scenario-error"


def test_new_scenarios_and_metrics_reported_not_gated():
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({"cost_s": Metric(1.0), "extra_s": Metric(9.0)})
    cand.add(
        ScenarioResult(
            name="brand/new", suite="smoke", tags=(), params={},
            metrics={"x": Metric(1.0)}, wall_s=0.0,
        )
    )
    result = compare_reports(cand, base)
    assert result.passed
    assert sorted(d.status for d in result.deltas) == ["new", "new", "ok"]
    assert "not gated" in result.format_report()


def test_baseline_only_drops_candidate_only_entries():
    # The focused-baseline mode (smoke run vs. core_io.json in CI): every
    # scenario outside the baseline's slice is ignored, not "new" noise.
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({"cost_s": Metric(1.0), "extra_s": Metric(9.0)})
    cand.add(
        ScenarioResult(
            name="other/slice", suite="smoke", tags=(), params={},
            metrics={"x": Metric(1.0)}, wall_s=0.0,
        )
    )
    result = compare_reports(cand, base, baseline_only=True)
    assert result.passed
    assert [d.status for d in result.deltas] == ["ok"]


def test_baseline_only_ignores_candidate_only_errors():
    # A scenario gated by a *different* baseline may error without
    # failing this focused gate; its own gate still catches it.
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({"cost_s": Metric(1.0)})
    cand.add(
        ScenarioResult(
            name="other/broken", suite="smoke", tags=(), params={},
            metrics={}, wall_s=0.0, error="Traceback ...",
        )
    )
    assert compare_reports(cand, base, baseline_only=True).passed
    assert not compare_reports(cand, base).passed


def test_baseline_only_still_gates_shared_entries():
    base = _report({"cost_s": Metric(10.0)})
    cand = _report({"cost_s": Metric(20.0)})
    result = compare_reports(cand, base, threshold=0.10, baseline_only=True)
    assert not result.passed
    assert result.failures[0].status == "regression"
    # Structure failures inside the baseline slice still fail too.
    gone = BenchReport(suite="smoke")
    assert not compare_reports(gone, base, baseline_only=True).passed


def test_nan_candidate_gates_as_regression():
    base = _report({"cost_s": Metric(5.0)})
    cand = _report({"cost_s": Metric(float("nan"))})
    result = compare_reports(cand, base)
    assert not result.passed
    assert result.failures[0].status == "regression"


def test_infinite_candidate_is_never_an_improvement():
    # +inf on higher-better (and -inf on lower-better) would otherwise
    # read as a spectacular improvement; both must fail the gate.
    base = _report({"bw": Metric(6000.0, "MB/s", "higher")})
    cand = _report({"bw": Metric(float("inf"), "MB/s", "higher")})
    assert not compare_reports(cand, base).passed


def test_suite_mismatch_is_an_operator_error():
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({"cost_s": Metric(1.0)})
    cand.suite = "full"
    with pytest.raises(ReproError, match="suite mismatch"):
        compare_reports(cand, base)


def test_schema_version_mismatch_rejected():
    base = _report({"cost_s": Metric(1.0)})
    cand = _report({"cost_s": Metric(1.0)})
    cand.schema_version = base.schema_version + 1
    with pytest.raises(ReproError, match="schema version mismatch"):
        compare_reports(cand, base)


def test_relative_change_handles_zero_baseline():
    assert _relative_change(0.0, 0.0) == 0.0
    assert _relative_change(0.0, 1.0) == float("inf")
    base = _report({"cost_s": Metric(0.0)})
    cand = _report({"cost_s": Metric(0.001)})
    assert not compare_reports(cand, base).passed
