"""Runner and CLI: suite execution, JSON output, gate exit codes."""

import json

import pytest

from repro.bench import BenchReport, Metric, Registry, validate_report
from repro.bench.cli import main
from repro.bench.runner import run_suite
from repro.errors import ReproError

#: Cheap built-in scenarios (model-only, no event simulation) the CLI
#: tests can run end-to-end in milliseconds.
FAST_FILTER = "extrapolation/*"


def test_run_suite_with_private_registry_records_errors():
    reg = Registry()

    @reg.scenario("good")
    def good(ctx):
        return {"cost_s": 1.0}

    @reg.scenario("bad")
    def bad(ctx):
        raise ValueError("boom")

    report = run_suite(suite="smoke", registry=reg)
    assert report.scenarios["good"].error is None
    assert report.scenarios["good"].metrics["cost_s"].value == 1.0
    assert "wall_s" in report.scenarios["good"].metrics
    assert "boom" in report.scenarios["bad"].error
    assert [r.name for r in report.failed] == ["bad"]
    assert validate_report(report.to_dict()) == []


def test_run_suite_reserved_wall_s_metric_is_an_error():
    reg = Registry()

    @reg.scenario("clash")
    def clash(ctx):
        return {"wall_s": 3.0}

    report = run_suite(registry=reg)
    res = report.scenarios["clash"]
    assert "reserved metric" in res.error
    # the harness wall clock remains, ungated
    assert res.metrics["wall_s"].better == "info"


def test_run_suite_non_finite_metrics_become_scenario_errors(tmp_path):
    reg = Registry()

    @reg.scenario("nan-metric")
    def nan_metric(ctx):
        return {"cost_s": float("nan")}

    @reg.scenario("healthy")
    def healthy(ctx):
        return {"cost_s": 1.0}

    @reg.scenario("typo-direction")
    def typo_direction(ctx):
        return {"cost_s": Metric(1.0, better="high")}  # not a valid direction

    report = run_suite(registry=reg)
    assert "finite" in report.scenarios["nan-metric"].error
    assert "better must be one of" in report.scenarios["typo-direction"].error
    assert report.scenarios["healthy"].error is None
    # one bad scenario must not discard the whole run's output
    report.save(tmp_path / "r.json")
    assert BenchReport.load(tmp_path / "r.json").scenarios["healthy"].metrics


def test_run_suite_rejects_empty_selection():
    with pytest.raises(ReproError, match="no scenarios selected"):
        run_suite(suite="smoke", registry=Registry())


def test_run_suite_jsonable_params():
    reg = Registry()

    @reg.scenario("p", params={"counts": [1, 2], "obj": object()})
    def fn(ctx):
        return {"cost_s": 1.0}

    doc = run_suite(registry=reg).to_dict()
    params = doc["scenarios"]["p"]["params"]
    assert params["counts"] == [1, 2]
    assert isinstance(params["obj"], str)
    json.dumps(doc)  # fully serializable


def test_run_suite_param_overrides_only_where_declared():
    reg = Registry()

    @reg.scenario("spmd", params={"engine": "bulk", "n": 2})
    def spmd(ctx):
        return {"cost_s": 1.0 if ctx.params["engine"] == "threads" else 2.0}

    @reg.scenario("engineless", params={"n": 3})
    def engineless(ctx):
        assert "engine" not in ctx.params
        return {"cost_s": 1.0}

    report = run_suite(registry=reg, param_overrides={"engine": "threads"})
    # The override reached the scenario body and the recorded params.
    assert report.scenarios["spmd"].metrics["cost_s"].value == 1.0
    assert report.scenarios["spmd"].params["engine"] == "threads"
    assert report.scenarios["engineless"].error is None
    assert "engine" not in report.scenarios["engineless"].params


def test_cli_run_engine_override(tmp_path):
    out = tmp_path / "r.json"
    assert (
        main(
            [
                "run",
                "--suite",
                "scale",
                "--filter",
                "scale/taskbw[workers=1]",
                "--engine",
                "thread",  # alias: must land as the canonical name
                "-o",
                str(out),
                "-q",
            ]
        )
        == 0
    )
    report = BenchReport.load(out)
    assert report.scenarios["scale/taskbw[workers=1]"].params["engine"] == "threads"


def test_cli_run_rejects_unknown_engine(tmp_path, capsys):
    code = main(["run", "--engine", "nope", "-o", str(tmp_path / "x.json"), "-q"])
    assert code == 2
    assert "unknown SPMD engine" in capsys.readouterr().err


def test_cli_list_and_filter(capsys):
    assert main(["list", "--filter", FAST_FILTER]) == 0
    out = capsys.readouterr().out
    assert "extrapolation/create[system=jugene]" in out
    assert "fig3" not in out
    assert main(["list", "--filter", "no-such-scenario*"]) == 1
    # bracketed grid names select themselves despite fnmatch's [..] syntax
    assert main(["list", "--filter", "extrapolation/create[system=jugene]"]) == 0


def test_cli_list_json_empty_also_exits_nonzero(capsys):
    assert main(["list", "--json", "--filter", "no-such-scenario*"]) == 1
    assert json.loads(capsys.readouterr().out) == []


def test_cli_list_json(capsys):
    assert main(["list", "--json", "--tag", "model"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in rows} == {
        "extrapolation/create[system=jugene]",
        "extrapolation/create[system=jaguar]",
        "scale/contention-sweep[ntasks=1048576]",
    }


def test_cli_run_and_compare_roundtrip(tmp_path, capsys):
    out = tmp_path / "BENCH_smoke.json"
    assert main(["run", "--filter", FAST_FILTER, "-o", str(out), "-q"]) == 0
    report = BenchReport.load(out)
    assert len(report.scenarios) == 2
    assert validate_report(json.loads(out.read_text())) == []

    # identical candidate vs. baseline: gate passes
    assert main(["compare", str(out), str(out)]) == 0
    assert "PASS" in capsys.readouterr().out

    # inflate one simulated cost by 12%: gate fails at the 10% threshold
    doc = json.loads(out.read_text())
    name = "extrapolation/create[system=jugene]"
    metrics = doc["scenarios"][name]["metrics"]
    key = next(k for k in metrics if metrics[k]["better"] == "lower")
    metrics[key]["value"] *= 1.12
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps(doc))
    assert main(["compare", str(bad), str(out), "--threshold", "0.10"]) == 1
    assert "regression" in capsys.readouterr().out

    # an improvement of the same size passes
    metrics[key]["value"] /= 1.12**2
    bad.write_text(json.dumps(doc))
    assert main(["compare", str(bad), str(out), "--threshold", "0.10"]) == 0


def test_cli_compare_baseline_only(tmp_path, capsys):
    out = tmp_path / "r.json"
    assert main(["run", "--filter", FAST_FILTER, "-o", str(out), "-q"]) == 0
    # Focused baseline: drop one of the two scenarios.
    doc = json.loads(out.read_text())
    dropped = sorted(doc["scenarios"])[0]
    del doc["scenarios"][dropped]
    focused = tmp_path / "focused.json"
    focused.write_text(json.dumps(doc))
    capsys.readouterr()
    # Default mode flags the out-of-slice scenario as ungated "new" noise;
    # --baseline-only silences it (the CI wart this flag exists for).
    assert main(["compare", str(out), str(focused)]) == 0
    assert "new" in capsys.readouterr().out
    assert main(["compare", str(out), str(focused), "--baseline-only"]) == 0
    report_text = capsys.readouterr().out
    assert "PASS" in report_text
    assert dropped not in report_text


def test_cli_compare_json_output(tmp_path, capsys):
    out = tmp_path / "r.json"
    assert main(["run", "--filter", FAST_FILTER, "-o", str(out), "-q"]) == 0
    capsys.readouterr()
    assert main(["compare", str(out), str(out), "--json"]) == 0
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["passed"] is True
    assert verdict["failures"] == []


def test_cli_compare_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["compare", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 2
    assert "no such result file" in capsys.readouterr().err


def test_committed_smoke_baseline_is_schema_valid():
    import pathlib

    baseline = (
        pathlib.Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "baselines"
        / "smoke.json"
    )
    doc = json.loads(baseline.read_text())
    assert validate_report(doc) == []
    report = BenchReport.from_dict(doc)
    assert report.suite == "smoke"
    assert len(report.scenarios) >= 15
    # the baseline gates simulated costs, not wall clock
    gated = [
        m
        for sc in report.scenarios.values()
        for m in sc.metrics.values()
        if m.better != "info"
    ]
    assert len(gated) >= 100
    assert all(isinstance(m, Metric) for m in gated)
