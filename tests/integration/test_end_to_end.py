"""End-to-end scenarios crossing all layers of the stack."""

from repro.apps.mp2c import SimulationConfig, read_restart, run_simulation
from repro.apps.mp2c.particles import ParticleState, equal_states
from repro.apps.scalasca.analyzer import analyze_traces
from repro.apps.scalasca.smg2000 import SMG2000Config, generate_smg2000_trace
from repro.apps.scalasca.tracer import TraceExperiment
from repro.sion import open_rank, paropen, recover_multifile, serial
from repro.simmpi import run_spmd
from repro.utils.defrag import defragment
from repro.utils.dump import dump_multifile
from repro.utils.split import split_multifile
from tests.conftest import TEST_BLKSIZE


def test_full_multifile_lifecycle(any_backend):
    """Write in parallel; dump, split, defragment, re-read serially."""
    backend, base = any_backend
    path = f"{base}/life.sion"
    sizes = [1500, 10, 0, 800]

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=2, backend=backend)
        f.fwrite(bytes([comm.rank]) * sizes[comm.rank])
        f.parclose()

    run_spmd(4, wtask)

    summary = dump_multifile(path, backend=backend)
    assert summary.total_bytes == sum(sizes)
    assert summary.maxblocks == 3  # task 0 needed 3 chunks

    extracted = split_multifile(path, f"{base}/x_{{rank}}.dat", backend=backend)
    for r, p in enumerate(extracted):
        with backend.open(p, "rb") as f:
            assert f.read() == bytes([r]) * sizes[r]

    defragged = defragment(path, f"{base}/life_d.sion", backend=backend)
    d = dump_multifile(defragged, backend=backend)
    assert d.maxblocks == 1
    assert d.bytes_per_task == sizes

    # Defragmented multifile is readable by every access mode.
    with serial.open(defragged, "r", backend=backend) as sf:
        assert sf.read_task(0) == bytes([0]) * 1500
    with open_rank(defragged, 3, backend=backend) as rf:
        assert rf.read_all() == bytes([3]) * 800


def test_crash_recover_then_postprocess(any_backend):
    """A dying app's multifile is recovered and then fully usable."""
    backend, base = any_backend
    path = f"{base}/crashflow.sion"

    def wtask(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, shadow=True,
                    backend=backend)
        f.fwrite(bytes([comm.rank + 1]) * 1000)
        f.flush_shadow()
        f._raw.close()  # simulated crash before parclose

    run_spmd(3, wtask)

    report = recover_multifile(path, backend=backend)
    assert report.files_recovered == 1

    # Recovered file passes through the whole serial toolchain.
    out = defragment(path, f"{base}/crashflow_d.sion", backend=backend)
    with serial.open(out, "r", backend=backend) as sf:
        for r in range(3):
            assert sf.read_task(r) == bytes([r + 1]) * 1000


def test_simulation_checkpoint_restart_resume(any_backend):
    """Run MP2C, restart from its checkpoint, state identical."""
    backend, base = any_backend
    cfg = SimulationConfig(
        particles_per_task=60,
        nsteps=4,
        checkpoint_every=4,
        checkpoint_path=f"{base}/resume.sion",
        checkpoint_method="sion",
    )
    results = run_spmd(4, run_simulation, cfg, backend=backend)
    final = ParticleState.concatenate([r.state for r in results])

    def restart_task(comm):
        return read_restart(comm, f"{base}/resume.sion.step000004", "sion", backend)

    restored = run_spmd(4, restart_task)
    assert equal_states(final, ParticleState.concatenate(list(restored)))


def test_trace_to_analysis_pipeline_multifile(any_backend):
    """SMG2000-like tracing into 2 physical files, then wait-state search."""
    backend, base = any_backend
    cfg = SMG2000Config(ntasks=8, iterations=2, imbalance=0.5)
    path = f"{base}/pipeline.sion"

    def task(comm):
        exp = TraceExperiment(comm, path, method="sion", backend=backend, nfiles=2)
        exp.activate()
        generate_smg2000_trace(comm.rank, cfg, exp.tracer)
        stats = exp.finalize()
        result = analyze_traces(comm, path, method="sion", backend=backend)
        return stats, result

    out = run_spmd(8, task)
    stats = [s for s, _ in out]
    result = out[0][1]
    assert sum(s.written_bytes for s in stats) < sum(s.uncompressed_bytes for s in stats)
    assert result.total_wait_time > 0
    # The trace multifile is an ordinary multifile: tools work on it.
    summary = dump_multifile(path, backend=backend)
    assert summary.ntasks == 8
    assert summary.nfiles == 2
    assert summary.compressed is False  # app-level zlib, not transparent


def test_sim_backend_virtual_time_accounting(sim_backend):
    """The same code path on the simulator reports sensible virtual costs."""
    backend = sim_backend
    backend.fs.profile = None  # pure op counting

    def wtask(comm):
        f = paropen("/scratch/acct.sion", "w", comm, chunksize=TEST_BLKSIZE,
                    nfiles=2, backend=backend)
        f.fwrite(b"v" * 600)
        f.parclose()

    run_spmd(6, wtask)
    counts = backend.fs.op_counts
    assert counts["create"] == 2  # two physical files for six logical ones
    assert counts["write_bytes"] >= 6 * 600


def test_mixed_methods_same_simulation(any_backend):
    """Checkpoints via all three methods from one run hold identical state."""
    backend, base = any_backend

    def task(comm):
        state = ParticleState.random(
            25, (4.0, 4.0, 4.0), seed=comm.rank, id_offset=comm.rank * 25
        )
        from repro.apps.mp2c.checkpoint import write_restart

        for method in ("sion", "tasklocal", "singlefile"):
            write_restart(comm, f"{base}/mix_{method}", state, method=method,
                          backend=backend)
        return state

    written = run_spmd(4, task)

    def rtask(comm):
        return [
            read_restart(comm, f"{base}/mix_{m}", m, backend)
            for m in ("sion", "tasklocal", "singlefile")
        ]

    restored = run_spmd(4, rtask)
    reference = ParticleState.concatenate(list(written))
    for m_idx in range(3):
        got = ParticleState.concatenate([r[m_idx] for r in restored])
        assert equal_states(reference, got)
