"""Run the executable examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.fs.events
import repro.fs.flows

MODULES_WITH_DOCTESTS = [
    repro.fs.events,
    repro.fs.flows,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    failures, tried = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert tried > 0, f"{module.__name__} was expected to carry doctests"
    assert failures == 0


def test_cli_module_dispatch(tmp_path, capsys):
    """python -m repro.utils routes to the right tool."""
    from repro.backends.localfs import LocalBackend
    from repro.sion import paropen
    from repro.simmpi import run_spmd
    from repro.utils.__main__ import main

    backend = LocalBackend(blocksize_override=512)
    path = str(tmp_path / "m.sion")

    def task(comm):
        f = paropen(path, "w", comm, chunksize=512, backend=backend)
        f.fwrite(b"dispatch")
        f.parclose()

    run_spmd(2, task)
    # NOTE: the dispatched dump uses the real statvfs blocksize for display
    # only; the stored metadata governs.
    assert main(["dump", path]) == 0
    out = capsys.readouterr().out
    assert "tasks:       2" in out
    assert main(["verify", path]) == 0
    assert main([]) == 2
    assert main(["--help"]) == 0
    assert main(["not-a-tool"]) == 2
