"""docs/RESILIENCE.md code blocks are executable documentation.

Every fenced ``python`` block in the resilience story must run as-is
(the listings are written against the simulated FS, so nothing touches
the real disk).  A block that is intentionally a fragment opts out by
placing an HTML comment containing ``readme-test: skip`` on one of the
three lines directly above its opening fence.
"""

from __future__ import annotations

import pathlib

import pytest

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs" / "RESILIENCE.md"
SKIP_MARK = "readme-test: skip"


def _python_blocks() -> list[tuple[int, str, bool]]:
    """``(first_line, source, skipped)`` for each fenced python block."""
    lines = DOC.read_text(encoding="utf-8").splitlines()
    blocks = []
    i = 0
    while i < len(lines):
        if lines[i].strip() == "```python":
            skipped = any(
                SKIP_MARK in lines[j] for j in range(max(0, i - 3), i)
            )
            body = []
            i += 1
            first = i + 1  # 1-based line of the first statement
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            blocks.append((first, "\n".join(body), skipped))
        i += 1
    return blocks


_BLOCKS = _python_blocks()


def test_resilience_doc_has_runnable_examples():
    """The walkthroughs (kill-then-recover, lost-file) must stay runnable."""
    assert sum(1 for _, _, skipped in _BLOCKS if not skipped) >= 2


@pytest.mark.parametrize(
    "first_line,source,skipped",
    _BLOCKS,
    ids=[f"L{first}" for first, _, _ in _BLOCKS],
)
def test_resilience_block_executes(first_line, source, skipped):
    """Each non-fragment block compiles and runs without error."""
    code = compile(source, f"RESILIENCE.md:{first_line}", "exec")
    if skipped:
        return  # fragments must still be valid syntax, but are not run
    exec(code, {"__name__": "__resilience__"})
