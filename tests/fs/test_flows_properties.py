"""Property-based invariants of the max-min fair flow model."""

import math

from hypothesis import given, settings, strategies as st

from repro.fs.events import Engine
from repro.fs.flows import FlowScheduler, Resource

_sizes = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False), min_size=1, max_size=12
)


def _makespan(sizes, capacity, caps=None):
    disk = Resource("disk", capacity)
    eng = Engine()
    sched = FlowScheduler(eng)
    flows = []
    with sched.batch():
        for i, s in enumerate(sizes):
            cap = caps[i] if caps else math.inf
            flows.append(sched.submit(s, (disk,), rate_cap=cap))
    eng.run()
    assert sched.active_flows == 0
    return max(f.finish_time for f in flows), flows


@settings(max_examples=60, deadline=None)
@given(sizes=_sizes, capacity=st.floats(min_value=1.0, max_value=1000.0))
def test_work_conservation_single_resource(sizes, capacity):
    """One shared resource with uncapped flows: makespan == total/capacity."""
    makespan, _ = _makespan(sizes, capacity)
    assert makespan == sum(sizes) / capacity or abs(
        makespan - sum(sizes) / capacity
    ) <= 1e-6 * max(1.0, makespan)


@settings(max_examples=60, deadline=None)
@given(
    sizes=_sizes,
    capacity=st.floats(min_value=1.0, max_value=1000.0),
    cap=st.floats(min_value=0.5, max_value=100.0),
)
def test_makespan_lower_bounds(sizes, capacity, cap):
    """Makespan can never beat the capacity bound or any flow's cap bound."""
    makespan, flows = _makespan(sizes, capacity, caps=[cap] * len(sizes))
    total = sum(sizes)
    assert makespan >= total / capacity - 1e-9
    for f in flows:
        assert f.duration >= f.size_mb / cap - 1e-9


@settings(max_examples=40, deadline=None)
@given(sizes=_sizes, capacity=st.floats(min_value=1.0, max_value=100.0))
def test_completions_ordered_by_size(sizes, capacity):
    """Equal-priority flows on one resource finish in size order."""
    _, flows = _makespan(sizes, capacity)
    by_size = sorted(flows, key=lambda f: f.size_mb)
    finish = [f.finish_time for f in by_size]
    assert all(a <= b + 1e-9 for a, b in zip(finish, finish[1:]))


@settings(max_examples=40, deadline=None)
@given(sizes=_sizes, capacity=st.floats(min_value=1.0, max_value=100.0))
def test_adding_a_flow_never_speeds_anyone_up(sizes, capacity):
    base, _ = _makespan(sizes, capacity)
    more, _ = _makespan([*sizes, 10.0], capacity)
    assert more >= base - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    sizes=_sizes,
    weight=st.floats(min_value=0.1, max_value=1.0),
    capacity=st.floats(min_value=1.0, max_value=100.0),
)
def test_weighted_usage_scales_capacity(sizes, weight, capacity):
    """Charging weight w is the same as a resource with capacity/w."""
    disk1 = Resource("d", capacity)
    eng1 = Engine()
    s1 = FlowScheduler(eng1)
    with s1.batch():
        f1 = [s1.submit(s, ((disk1, weight),)) for s in sizes]
    eng1.run()

    disk2 = Resource("d", capacity / weight)
    eng2 = Engine()
    s2 = FlowScheduler(eng2)
    with s2.batch():
        f2 = [s2.submit(s, (disk2,)) for s in sizes]
    eng2.run()

    for a, b in zip(f1, f2):
        assert math.isclose(a.finish_time, b.finish_time, rel_tol=1e-9, abs_tol=1e-9)
