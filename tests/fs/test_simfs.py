"""In-memory simulated file system: sparse files, namespace, clock."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    InvalidOperationError,
    NotADirectorySimError,
)
from repro.fs.simfs import SimFS, SparseFile
from repro.fs.systems import jugene


class TestSparseFile:
    def test_write_read_roundtrip(self):
        f = SparseFile()
        f.write(0, b"hello")
        assert f.read(0, 5) == b"hello"
        assert f.size == 5

    def test_holes_read_as_zeros(self):
        f = SparseFile()
        f.write(10, b"x")
        assert f.read(0, 11) == b"\0" * 10 + b"x"
        assert f.allocated_bytes == 1

    def test_overlapping_writes_merge(self):
        f = SparseFile()
        f.write(0, b"aaaa")
        f.write(2, b"bbbb")
        assert f.read(0, 6) == b"aabbbb"
        assert len(f.extents()) == 1

    def test_adjacent_extents_coalesce(self):
        f = SparseFile()
        f.write(0, b"aa")
        f.write(4, b"cc")
        f.write(2, b"bb")
        assert f.extents() == [(0, 6)]

    def test_write_zeros_leaves_hole(self):
        f = SparseFile()
        f.write_zeros(0, 1000)
        assert f.size == 1000
        assert f.allocated_bytes == 0
        assert f.read(500, 4) == b"\0\0\0\0"

    def test_write_zeros_punches_through_data(self):
        f = SparseFile()
        f.write(0, b"abcdef")
        f.write_zeros(2, 2)
        assert f.read(0, 6) == b"ab\0\0ef"
        assert f.allocated_bytes == 4

    def test_truncate_shrinks_and_extends(self):
        f = SparseFile()
        f.write(0, b"abcdef")
        f.truncate(3)
        assert f.size == 3
        assert f.read(0, 10) == b"abc"
        f.truncate(5)
        assert f.read(0, 10) == b"abc\0\0"

    def test_read_past_end_truncated(self):
        f = SparseFile()
        f.write(0, b"ab")
        assert f.read(1, 100) == b"b"
        assert f.read(5, 10) == b""

    def test_negative_offsets_rejected(self):
        f = SparseFile()
        with pytest.raises(ValueError):
            f.write(-1, b"x")
        with pytest.raises(ValueError):
            f.read(-1, 1)
        with pytest.raises(ValueError):
            f.write_zeros(-1, 1)
        with pytest.raises(ValueError):
            f.truncate(-1)

    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["write", "zeros", "truncate"]),
                st.integers(0, 300),
                st.integers(0, 60),
            ),
            max_size=25,
        )
    )
    def test_matches_bytearray_reference(self, ops):
        """Sparse file behaves exactly like a flat zero-filled buffer."""
        f = SparseFile()
        ref = bytearray()

        def grow(n):
            if len(ref) < n:
                ref.extend(b"\0" * (n - len(ref)))

        for kind, off, ln in ops:
            if kind == "write":
                data = bytes((off + i) % 251 for i in range(ln))
                f.write(off, data)
                if ln:  # zero-length writes do not extend the file
                    grow(off + ln)
                    ref[off : off + ln] = data
            elif kind == "zeros":
                f.write_zeros(off, ln)
                if ln:
                    grow(off + ln)
                    ref[off : off + ln] = b"\0" * ln
            else:
                f.truncate(off)
                if off <= len(ref):
                    del ref[off:]
                else:
                    grow(off)
        assert f.size == len(ref)
        assert f.read(0, len(ref) + 10) == bytes(ref)
        # Extents are disjoint, ascending, and within the file.
        last_end = -1
        for s, ln in f.extents():
            assert s > last_end
            last_end = s + ln
        assert f.allocated_bytes <= max(f.size, 0)


class TestNamespace:
    def test_mkdir_and_listdir(self):
        fs = SimFS()
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        assert fs.listdir("/") == ["a"]
        assert fs.listdir("/a") == ["b"]

    def test_mkdir_parents(self):
        fs = SimFS()
        fs.mkdir("/x/y/z", parents=True)
        assert fs.exists("/x/y/z")

    def test_mkdir_existing_raises(self):
        fs = SimFS()
        fs.mkdir("/a")
        with pytest.raises(FileExistsSimError):
            fs.mkdir("/a")

    def test_mkdir_missing_parent_raises(self):
        fs = SimFS()
        with pytest.raises(FileNotFoundSimError):
            fs.mkdir("/no/such")

    def test_open_create_write_read(self):
        fs = SimFS()
        with fs.open("/f.bin", "wb") as f:
            f.write(b"data")
        with fs.open("/f.bin", "rb") as f:
            assert f.read() == b"data"

    def test_open_missing_read_raises(self):
        fs = SimFS()
        with pytest.raises(FileNotFoundSimError):
            fs.open("/nope", "rb")

    def test_open_truncates_on_w(self):
        fs = SimFS()
        with fs.open("/f", "wb") as f:
            f.write(b"long content")
        with fs.open("/f", "wb") as f:
            f.write(b"x")
        assert fs.stat("/f").st_size == 1

    def test_append_mode_positions_at_end(self):
        fs = SimFS()
        with fs.open("/f", "wb") as f:
            f.write(b"abc")
        with fs.open("/f", "ab") as f:
            f.write(b"def")
        with fs.open("/f", "rb") as f:
            assert f.read() == b"abcdef"

    def test_text_mode_rejected(self):
        fs = SimFS()
        with pytest.raises(InvalidOperationError):
            fs.open("/f", "w")

    def test_directory_is_not_openable(self):
        fs = SimFS()
        fs.mkdir("/d")
        with pytest.raises(InvalidOperationError):
            fs.open("/d", "rb")

    def test_unlink(self):
        fs = SimFS()
        with fs.open("/f", "wb") as f:
            f.write(b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")
        with pytest.raises(FileNotFoundSimError):
            fs.unlink("/f")

    def test_unlink_directory_rejected(self):
        fs = SimFS()
        fs.mkdir("/d")
        with pytest.raises(InvalidOperationError):
            fs.unlink("/d")

    def test_rename(self):
        fs = SimFS()
        with fs.open("/old", "wb") as f:
            f.write(b"v")
        fs.mkdir("/sub")
        fs.rename("/old", "/sub/new")
        assert not fs.exists("/old")
        with fs.open("/sub/new", "rb") as f:
            assert f.read() == b"v"

    def test_rename_onto_existing_raises(self):
        fs = SimFS()
        for p in ("/a", "/b"):
            with fs.open(p, "wb") as f:
                f.write(b"x")
        with pytest.raises(FileExistsSimError):
            fs.rename("/a", "/b")

    def test_file_component_used_as_dir_raises(self):
        fs = SimFS()
        with fs.open("/f", "wb") as f:
            f.write(b"x")
        with pytest.raises(NotADirectorySimError):
            fs.open("/f/child", "wb")

    def test_stat_blocksize_from_profile(self):
        fs = SimFS(profile=jugene())
        with fs.open("/f", "wb") as f:
            f.write(b"x")
        assert fs.stat("/f").st_blksize == 2 * (1 << 20)


class TestHandles:
    def test_seek_whences(self):
        fs = SimFS()
        f = fs.open("/f", "w+b")
        f.write(b"0123456789")
        assert f.seek(2) == 2
        assert f.seek(3, 1) == 5
        assert f.seek(-1, 2) == 9
        assert f.read(1) == b"9"

    def test_seek_negative_rejected(self):
        fs = SimFS()
        f = fs.open("/f", "wb")
        with pytest.raises(ValueError):
            f.seek(-1)

    def test_closed_handle_rejects_ops(self):
        fs = SimFS()
        f = fs.open("/f", "wb")
        f.close()
        assert f.closed
        with pytest.raises(InvalidOperationError):
            f.write(b"x")

    def test_read_on_writeonly_rejected(self):
        fs = SimFS()
        f = fs.open("/f", "wb")
        with pytest.raises(InvalidOperationError):
            f.read(1)

    def test_write_on_readonly_rejected(self):
        fs = SimFS()
        with fs.open("/f", "wb") as f:
            f.write(b"x")
        f = fs.open("/f", "rb")
        with pytest.raises(InvalidOperationError):
            f.write(b"y")

    def test_pread_pwrite_keep_position(self):
        fs = SimFS()
        f = fs.open("/f", "w+b")
        f.write(b"abcdef")
        f.seek(1)
        f.pwrite(3, b"XY")
        assert f.tell() == 1
        assert f.pread(0, 6) == b"abcXYf"
        assert f.tell() == 1

    def test_sparse_write_zeros_via_handle(self):
        fs = SimFS()
        f = fs.open("/f", "wb")
        f.write_zeros(10**6)
        f.write(b"end")
        f.close()
        st = fs.stat("/f")
        assert st.st_size == 10**6 + 3
        assert st.allocated_bytes == 3


class TestClock:
    def test_metadata_ops_advance_clock(self):
        fs = SimFS(profile=jugene())
        t0 = fs.clock
        with fs.open("/f", "wb") as f:
            f.write(b"x" * 1000)
        assert fs.clock > t0
        assert fs.op_counts["create"] == 1
        assert fs.op_counts["write_bytes"] == 1000

    def test_no_profile_means_free_metadata(self):
        fs = SimFS()
        with fs.open("/f", "wb") as f:
            f.write(b"x")
        assert fs.clock == 0.0

    def test_data_time_scales_with_bytes(self):
        fs = SimFS(profile=jugene())
        with fs.open("/a", "wb") as f:
            f.write(b"x" * 10**6)
        t_small = fs.clock
        fs2 = SimFS(profile=jugene())
        with fs2.open("/a", "wb") as f:
            f.write(b"x" * 10**7)
        assert fs2.clock > t_small

    def test_creating_n_files_costs_n_creates(self):
        fs = SimFS(profile=jugene())
        for i in range(10):
            fs.open(f"/f{i}", "wb").close()
        assert fs.op_counts["create"] == 10
