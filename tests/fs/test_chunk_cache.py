"""Cache correctness: the LRU chunk cache must be invisible to readers.

Three properties ISSUE 6 demands:

* any interleaving of positioned/vectored reads through the cache is
  byte-identical to uncached reads of the same file (hypothesis-driven);
* eviction under budget pressure keeps the byte accounting exact and
  never breaks correctness;
* generation invalidation — a re-sealed file never serves stale chunks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends.caching import CachingRawFile
from repro.backends.simfs_backend import SimBackend
from repro.errors import ReproError
from repro.fs.cache import ChunkCache
from repro.fs.simfs import SimFS

LIMIT = 4096  # file/offset/size bound: small enough for dense comparison


def _backend() -> SimBackend:
    fs = SimFS()
    fs.mkdir("/t")
    return SimBackend(fs)


def _seal(backend: SimBackend, path: str, content: bytes) -> None:
    h = backend.open(path, "wb")
    h.write(content)
    h.close()


def _cached(backend: SimBackend, path: str, cache: ChunkCache, gen: int = 1):
    return CachingRawFile(backend.open(path, "rb"), cache, gen, path)


@st.composite
def read_plans(draw):
    """A file plus an arbitrary interleaving of read ops against it."""
    content = draw(st.binary(min_size=0, max_size=LIMIT))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("pread"),
                    st.integers(0, LIMIT + 64),
                    st.integers(0, LIMIT // 4),
                ),
                st.tuples(
                    st.just("gather"),
                    st.lists(
                        st.tuples(
                            st.integers(0, LIMIT + 64), st.integers(0, LIMIT // 4)
                        ),
                        min_size=0,
                        max_size=4,
                    ),
                    st.none(),
                ),
            ),
            min_size=1,
            max_size=12,
        )
    )
    block = draw(st.sampled_from([1, 7, 64, 512, 4096]))
    capacity = draw(st.sampled_from([0, 64, 600, 1 << 20]))
    return content, ops, block, capacity


@given(read_plans())
@settings(max_examples=120, deadline=None)
def test_any_interleaving_matches_uncached(plan):
    """Cached reads are byte-identical to uncached reads, always."""
    content, ops, block, capacity = plan
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, content)
    cache = ChunkCache(capacity, block)
    cached = _cached(backend, path, cache)
    plain = backend.open(path, "rb")
    for op in ops:
        if op[0] == "pread":
            _, off, size = op
            assert cached.pread(off, size) == plain.pread(off, size)
        else:
            _, requests, _ = op
            requests = [(o, s) for o, s in requests]
            assert cached.gather_read(requests) == plain.gather_read(requests)
    snap = cache.snapshot()
    assert snap["used_bytes"] <= max(capacity, 0)
    assert snap["hits"] + snap["misses"] == snap["lookups"]
    cached.close()
    plain.close()


@given(st.binary(min_size=1, max_size=LIMIT), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_eviction_under_pressure_stays_correct(content, nblocks_budget):
    """A cache far smaller than the file evicts constantly, never corrupts."""
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, content)
    block = 64
    cache = ChunkCache(nblocks_budget * block, block)
    cached = _cached(backend, path, cache)
    plain = backend.open(path, "rb")
    # Two sweeps: the second re-touches blocks the first evicted.
    for _ in range(2):
        for off in range(0, len(content) + block, block // 2):
            assert cached.pread(off, block) == plain.pread(off, block)
    snap = cache.snapshot()
    assert snap["used_bytes"] <= nblocks_budget * block
    assert snap["entry_count"] <= nblocks_budget + 1
    if len(content) > (nblocks_budget + 1) * block:
        assert snap["evictions"] > 0
        assert snap["bytes_evicted"] > 0
    cached.close()
    plain.close()


def test_generation_invalidation_never_serves_stale_bytes():
    """A re-sealed file (new generation) never sees the old seal's blocks."""
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, b"A" * 512)
    cache = ChunkCache(1 << 20, 64)
    old = _cached(backend, path, cache, gen=1)
    assert old.pread(0, 512) == b"A" * 512
    assert cache.entry_count > 0

    # Re-seal: same path, different bytes, new generation.
    _seal(backend, path, b"B" * 512)
    dropped = cache.drop_generation(1)
    assert dropped > 0
    new = _cached(backend, path, cache, gen=2)
    assert new.pread(0, 512) == b"B" * 512
    # The old generation's keys are gone; the new one's are resident.
    assert cache.get((1, path, 0)) is None
    assert cache.snapshot()["invalidations"] == dropped
    old.close()
    new.close()


def test_generation_isolation_without_drop():
    """Even undropped, an old generation's entries never leak across tags."""
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, b"A" * 128)
    cache = ChunkCache(1 << 20, 64)
    _cached(backend, path, cache, gen=1).pread(0, 128)
    _seal(backend, path, b"B" * 128)
    # A reader on generation 2 misses generation 1's entries by key.
    assert _cached(backend, path, cache, gen=2).pread(0, 128) == b"B" * 128


def test_cache_telemetry_and_lru_order():
    """Hits refresh recency; the victim is the least recently used block."""
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, bytes(range(256)) * 2)
    cache = ChunkCache(3 * 64, 64)
    cached = _cached(backend, path, cache)
    for b in (0, 1, 2):
        cached.pread(b * 64, 64)
    cached.pread(0, 64)  # refresh block 0: block 1 is now LRU
    cached.pread(3 * 64, 64)  # evicts block 1
    assert cache.get((1, path, 0)) is not None
    assert cache.get((1, path, 1)) is None
    snap = cache.snapshot()
    assert snap["evictions"] == 1
    assert snap["bytes_served"] > 0


def test_zero_capacity_disables_caching():
    """capacity_bytes=0 keeps every code path but retains nothing."""
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, b"x" * 300)
    cache = ChunkCache(0, 64)
    cached = _cached(backend, path, cache)
    assert cached.pread(0, 300) == b"x" * 300
    assert cache.entry_count == 0
    assert cache.snapshot()["rejected"] > 0


def test_cache_rejects_bad_parameters():
    with pytest.raises(ReproError):
        ChunkCache(-1)
    with pytest.raises(ReproError):
        ChunkCache(10, 0)


def test_caching_rawfile_is_read_only():
    backend = _backend()
    path = "/t/f.bin"
    _seal(backend, path, b"sealed")
    cached = _cached(backend, path, ChunkCache(1024, 64))
    for call in (
        lambda: cached.write(b"no"),
        lambda: cached.write_zeros(4),
        lambda: cached.truncate(0),
        lambda: cached.pwrite(0, b"no"),
        lambda: cached.pwritev(0, [b"no"]),
        lambda: cached.scatter_write([(0, b"no")]),
    ):
        with pytest.raises(ReproError):
            call()
