"""Metadata brownout model: create storms hurt bystanders."""

import pytest

from repro.fs.events import Engine
from repro.fs.interference import (
    BystanderResult,
    DegradingMetadataService,
    bystander_latency,
)
from repro.fs.metadata import MetadataCosts, MetadataOp
from repro.fs.systems import jugene


def test_shallow_queue_runs_at_base_rate():
    eng = Engine()
    svc = DegradingMetadataService(
        eng, MetadataCosts(create=0.001), brownout_threshold=100
    )
    done = []
    for i in range(10):
        svc.submit(MetadataOp("create", f"/f{i}"), lambda t, op: done.append(t))
    eng.run()
    assert max(done) == pytest.approx(0.010)
    assert svc.brownouts_entered == 0


def test_deep_queue_triggers_brownout():
    eng = Engine()
    svc = DegradingMetadataService(
        eng, MetadataCosts(create=0.001), brownout_threshold=5, brownout_factor=10.0
    )
    done = []
    for i in range(20):
        svc.submit(MetadataOp("create", f"/f{i}"), lambda t, op: done.append(t))
    eng.run()
    assert svc.brownouts_entered > 0
    assert max(done) > 20 * 0.001  # slower than the un-degraded makespan


def test_bystander_unharmed_on_quiet_system():
    res = bystander_latency(jugene().metadata_costs, storm_ops=0)
    assert res.slowdown == pytest.approx(1.0)


def test_bystander_suffers_during_storm():
    """The paper's §1 claim: arbitrary users notice a 64K create storm."""
    res = bystander_latency(jugene().metadata_costs, storm_ops=65536)
    # An op that normally takes 0.1 ms waits behind half the storm: minutes.
    assert res.quiet_latency_s < 1e-3
    assert res.storm_latency_s > 60
    assert res.slowdown > 1e5


def test_collateral_scales_with_storm_size():
    costs = jugene().metadata_costs
    small = bystander_latency(costs, storm_ops=1024)
    large = bystander_latency(costs, storm_ops=32768)
    assert large.storm_latency_s > 10 * small.storm_latency_s


def test_sion_sized_storm_is_harmless():
    """A SION creation (a handful of creates) barely delays anyone."""
    res = bystander_latency(jugene().metadata_costs, storm_ops=16)
    assert res.storm_latency_s < 0.1


def test_validation():
    with pytest.raises(ValueError):
        bystander_latency(MetadataCosts(), storm_ops=-1)


def test_result_dataclass():
    r = BystanderResult(storm_ops=10, quiet_latency_s=0.0, storm_latency_s=5.0)
    assert r.slowdown == 1.0  # zero-quiet guard
