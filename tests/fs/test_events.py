"""Discrete-event engine semantics."""

import pytest

from repro.fs.events import Engine


def test_runs_in_time_order():
    eng = Engine()
    order = []
    eng.schedule_at(3.0, order.append, "c")
    eng.schedule_at(1.0, order.append, "a")
    eng.schedule_at(2.0, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 3.0


def test_ties_break_by_scheduling_order():
    eng = Engine()
    order = []
    for label in "abc":
        eng.schedule_at(1.0, order.append, label)
    eng.run()
    assert order == ["a", "b", "c"]


def test_schedule_in_is_relative():
    eng = Engine()
    times = []
    eng.schedule_in(2.0, lambda: times.append(eng.now))
    eng.run()
    assert times == [2.0]


def test_events_can_schedule_events():
    eng = Engine()
    seen = []

    def first():
        seen.append(("first", eng.now))
        eng.schedule_in(5.0, lambda: seen.append(("second", eng.now)))

    eng.schedule_at(1.0, first)
    eng.run()
    assert seen == [("first", 1.0), ("second", 6.0)]


def test_cancelled_event_is_skipped():
    eng = Engine()
    hits = []
    ev = eng.schedule_at(1.0, hits.append, "no")
    eng.schedule_at(2.0, hits.append, "yes")
    ev.cancel()
    eng.run()
    assert hits == ["yes"]


def test_cannot_schedule_in_the_past():
    eng = Engine()
    eng.schedule_at(5.0, lambda: None)
    eng.run()
    with pytest.raises(ValueError):
        eng.schedule_at(1.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Engine().schedule_in(-1.0, lambda: None)


def test_run_until_stops_early():
    eng = Engine()
    hits = []
    eng.schedule_at(1.0, hits.append, 1)
    eng.schedule_at(10.0, hits.append, 10)
    eng.run(until=5.0)
    assert hits == [1]
    assert eng.now == 5.0
    eng.run()
    assert hits == [1, 10]


def test_peek_time_skips_cancelled():
    eng = Engine()
    ev = eng.schedule_at(1.0, lambda: None)
    eng.schedule_at(2.0, lambda: None)
    ev.cancel()
    assert eng.peek_time() == 2.0


def test_pending_and_processed_counters():
    eng = Engine()
    eng.schedule_at(1.0, lambda: None)
    eng.schedule_at(2.0, lambda: None)
    assert eng.pending == 2
    eng.run()
    assert eng.pending == 0
    assert eng.events_processed == 2


def test_callback_args_passed():
    eng = Engine()
    got = []
    eng.schedule_at(1.0, lambda a, b: got.append(a + b), 2, 3)
    eng.run()
    assert got == [5]


def test_idle_engine_run_is_noop():
    eng = Engine()
    eng.run()
    assert eng.now == 0.0
