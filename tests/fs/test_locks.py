"""Block-lock false-sharing model (Table 1's mechanism)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.locks import (
    LockContentionModel,
    alignment_speedup,
    blocks_shared_by_layout,
    mean_sharers,
    worst_case_sharers,
)

MiB = 1 << 20
GPFS = LockContentionModel(write_coeff=1.55, read_coeff=0.79)
LUSTRE = LockContentionModel(write_coeff=0.0, read_coeff=0.0)


def test_aligned_chunks_have_one_sharer():
    assert GPFS.sharers_per_block(2 * MiB, 2 * MiB) == 1.0
    assert GPFS.sharers_per_block(4 * MiB, 2 * MiB) == 1.0  # multiple of block


def test_small_chunks_share_blocks():
    assert GPFS.sharers_per_block(16 * 1024, 2 * MiB) == pytest.approx(128.0)


def test_non_divisible_alignment_at_least_two_sharers():
    assert GPFS.sharers_per_block(3 * MiB, 2 * MiB) >= 2.0


def test_no_penalty_for_single_sharer():
    assert GPFS.write_penalty(1.0) == pytest.approx(1.0)
    assert GPFS.read_penalty(1.0) == pytest.approx(1.0)


def test_paper_table1_penalties():
    """16 KB chunks on a 2 MB GPFS block: 2.53x write, 1.78x read."""
    k = GPFS.sharers_per_block(16 * 1024, 2 * MiB)
    assert GPFS.write_penalty(k) == pytest.approx(2.53, abs=0.03)
    assert GPFS.read_penalty(k) == pytest.approx(1.78, abs=0.03)


def test_lustre_has_no_penalty():
    k = LUSTRE.sharers_per_block(16 * 1024, 2 * MiB)
    assert LUSTRE.write_penalty(k) == 1.0
    assert LUSTRE.read_penalty(k) == 1.0


def test_penalty_saturates():
    assert GPFS.write_penalty(1e9) < 1.0 + 1.55 + 1e-6


def test_sharers_below_one_rejected():
    with pytest.raises(ValueError):
        GPFS.write_penalty(0.5)


def test_bad_sizes_rejected():
    with pytest.raises(ValueError):
        GPFS.sharers_per_block(0, 2 * MiB)
    with pytest.raises(ValueError):
        GPFS.effective_bandwidth(100.0, 1024, 2 * MiB, op="append")


def test_effective_bandwidth_direction():
    aligned = GPFS.effective_bandwidth(6000.0, 2 * MiB, 2 * MiB, "write")
    unaligned = GPFS.effective_bandwidth(6000.0, 16 * 1024, 2 * MiB, "write")
    assert aligned == pytest.approx(6000.0)
    assert unaligned < aligned / 2


def test_alignment_speedup_matches_ratio():
    s = alignment_speedup(GPFS, 2 * MiB, 16 * 1024, 2 * MiB, "write")
    assert s == pytest.approx(GPFS.write_penalty(128.0))


def test_layout_sharing_exact_counts():
    # Two chunks of 1.5 blocks each: block 1 is shared.
    blk = 1024
    starts = [0, 1536]
    ends = [1536, 3072]
    shared = blocks_shared_by_layout(starts, ends, blk)
    assert shared == {0: 1, 1: 2, 2: 1}
    assert worst_case_sharers(shared) == 2
    assert mean_sharers(shared) == pytest.approx(4 / 3)


def test_layout_aligned_chunks_never_share():
    blk = 1024
    starts = [i * 2048 for i in range(8)]
    ends = [s + 2048 for s in starts]
    shared = blocks_shared_by_layout(starts, ends, blk)
    assert worst_case_sharers(shared) == 1


def test_layout_empty_chunks_ignored():
    assert blocks_shared_by_layout([5], [5], 1024) == {}
    assert mean_sharers({}) == 1.0


def test_layout_length_mismatch_rejected():
    with pytest.raises(ValueError):
        blocks_shared_by_layout([0], [1, 2], 1024)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 30),
    chunk_blocks=st.integers(1, 4),
    blk=st.sampled_from([256, 1024, 4096]),
)
def test_aligned_layouts_match_analytic_model(n, chunk_blocks, blk):
    """Whole-block chunks laid end to end: exact sharing == model's k=1."""
    size = chunk_blocks * blk
    starts = [i * size for i in range(n)]
    ends = [s + size for s in starts]
    shared = blocks_shared_by_layout(starts, ends, blk)
    assert worst_case_sharers(shared) == 1
    assert GPFS.sharers_per_block(size, blk) == 1.0


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 50),
    divisor=st.sampled_from([2, 4, 8, 16]),
)
def test_subblock_layouts_match_analytic_model(n, divisor):
    """Chunks of block/divisor packed densely share exactly `divisor` ways."""
    blk = 4096
    size = blk // divisor
    starts = [i * size for i in range(n)]
    ends = [s + size for s in starts]
    shared = blocks_shared_by_layout(starts, ends, blk)
    full_blocks = [b for b, c in shared.items() if c == divisor]
    if n >= divisor:
        assert full_blocks, "expected at least one fully shared block"
    assert GPFS.sharers_per_block(size, blk) == pytest.approx(divisor)
