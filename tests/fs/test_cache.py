"""Client read-cache model (Fig. 5b's >peak artifact)."""

import pytest

from repro.fs.cache import NO_CACHE, ClientCacheModel

GB = 10**9


def test_no_cache_passthrough():
    assert NO_CACHE.effective_read_bandwidth(6000.0, 1e12, 1000) == pytest.approx(6000.0)
    assert NO_CACHE.hit_fraction(1e12, 1000) == 0.0


def test_warm_cache_exceeds_disk_bandwidth():
    model = ClientCacheModel(bytes_per_node=6 * GB, cache_bw_per_node=1000.0, hit_efficiency=0.35)
    eff = model.effective_read_bandwidth(30000.0, 2e12, 3072)
    assert eff > 40000.0  # the paper's "beyond the 40 GB/s maximum"
    assert eff < 3072 * 1000.0  # but bounded by the cache path itself


def test_cold_cache_matches_disk():
    model = ClientCacheModel(bytes_per_node=1 * GB, cache_bw_per_node=1000.0, hit_efficiency=0.0)
    assert model.effective_read_bandwidth(5000.0, 1e12, 100) == pytest.approx(5000.0)


def test_hit_fraction_scales_with_nodes():
    model = ClientCacheModel(bytes_per_node=1 * GB, cache_bw_per_node=100.0, hit_efficiency=1.0)
    small = model.hit_fraction(100 * GB, 10)
    large = model.hit_fraction(100 * GB, 100)
    assert small == pytest.approx(0.1)
    assert large == pytest.approx(1.0)


def test_hit_fraction_capped_at_efficiency():
    model = ClientCacheModel(bytes_per_node=100 * GB, cache_bw_per_node=100.0, hit_efficiency=0.35)
    assert model.hit_fraction(1 * GB, 1000) == pytest.approx(0.35)


def test_effective_bw_monotonic_in_nodes():
    model = ClientCacheModel(bytes_per_node=2 * GB, cache_bw_per_node=500.0, hit_efficiency=0.5)
    prev = 0.0
    for nodes in (1, 10, 100, 1000):
        eff = model.effective_read_bandwidth(10000.0, 1e12, nodes)
        assert eff >= prev - 1e-9
        prev = eff


def test_aggregate_cache_bytes():
    model = ClientCacheModel(bytes_per_node=4 * GB, cache_bw_per_node=1.0)
    assert model.aggregate_cache_bytes(8) == pytest.approx(32 * GB)
    with pytest.raises(ValueError):
        model.aggregate_cache_bytes(-1)


def test_validation():
    with pytest.raises(ValueError):
        ClientCacheModel(bytes_per_node=1.0, cache_bw_per_node=1.0, hit_efficiency=1.5)
    with pytest.raises(ValueError):
        ClientCacheModel(bytes_per_node=-1.0, cache_bw_per_node=1.0)
    model = ClientCacheModel(bytes_per_node=1.0, cache_bw_per_node=1.0)
    with pytest.raises(ValueError):
        model.effective_read_bandwidth(0.0, 1.0, 1)
