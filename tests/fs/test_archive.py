"""Tape-archive model (the §1 file-management motivation)."""

import pytest

from repro.fs.archive import TapeLibrary, compare_archival

GB = 10**9
TB = 10**12


@pytest.fixture
def lib():
    return TapeLibrary()


class TestTapeLibrary:
    def test_tapes_needed(self, lib):
        assert lib.tapes_needed(0) == 1
        assert lib.tapes_needed(800e9) == 1
        assert lib.tapes_needed(800e9 + 1) == 2
        with pytest.raises(ValueError):
            lib.tapes_needed(-1)

    def test_archive_time_components(self, lib):
        t = lib.archive_time(1, 160e6)  # one file, one second of streaming
        assert t == pytest.approx(lib.mount_time_s + lib.per_file_overhead_s + 1.0)

    def test_per_file_term_dominates_at_scale(self, lib):
        """The paper's claim: many files slow archival significantly."""
        data = 100 * GB
        one = lib.archive_time(1, data)
        many = lib.archive_time(65536, data)
        assert many > 10 * one

    def test_archive_time_zero_files(self, lib):
        assert lib.archive_time(0, 0) == 0.0
        with pytest.raises(ValueError):
            lib.archive_time(-1, 0)

    def test_tapes_touched_interleaving_scatters(self, lib):
        # 1.47 TB fits on 2 tapes packed; 4 users scatter it over 8.
        assert lib.tapes_touched(32768, 1470 * GB, interleaved_users=1) == 2
        assert lib.tapes_touched(32768, 1470 * GB, interleaved_users=4) == 8

    def test_scatter_bounded_by_file_count(self, lib):
        # 3 files can never sit on more than 3 tapes.
        assert lib.tapes_touched(3, 10 * TB, interleaved_users=100) == 3

    def test_retrieval_pays_mounts_per_touched_tape(self, lib):
        data = 1470 * GB
        solo = lib.retrieval_time(16, data, interleaved_users=1)
        scattered = lib.retrieval_time(16, data, interleaved_users=4)
        assert scattered > solo
        with pytest.raises(ValueError):
            lib.retrieval_time(1, 1, interleaved_users=0)

    def test_retrieval_zero_files(self, lib):
        assert lib.retrieval_time(0, 0) == 0.0


class TestComparison:
    def test_multifile_wins_both_ways(self, lib):
        cmp_ = compare_archival(lib, 32768, 1470 * GB, nfiles_multifile=16,
                                interleaved_users=4)
        assert cmp_.archive_speedup > 2
        assert cmp_.retrieve_speedup > 2
        # The streaming term is identical; only overheads differ.
        stream = (1470 * GB / 1e6) / lib.stream_bw_mb_s
        assert cmp_.multifile_archive_s > stream
        assert cmp_.tasklocal_archive_s > cmp_.multifile_archive_s

    def test_speedup_grows_with_task_count(self, lib):
        small = compare_archival(lib, 1024, 46 * GB, 16, 4)
        large = compare_archival(lib, 65536, 2948 * GB, 16, 4)
        assert large.archive_speedup > small.archive_speedup

    def test_single_user_single_tape_still_favors_multifile(self, lib):
        cmp_ = compare_archival(lib, 4096, 100 * GB, 1, interleaved_users=1)
        assert cmp_.archive_speedup > 1
        assert cmp_.retrieve_speedup > 1
