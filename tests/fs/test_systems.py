"""Machine-profile sanity and derived helpers."""

import pytest

from repro.fs.systems import SystemProfile, get_system, jaguar, jugene


def test_registry_lookup():
    assert get_system("jugene").name == "Jugene"
    assert get_system("JAGUAR").name == "Jaguar"
    with pytest.raises(ValueError):
        get_system("summit")


@pytest.mark.parametrize("profile", [jugene(), jaguar()])
def test_profiles_internally_consistent(profile: SystemProfile):
    assert profile.fs_block_size > 0
    assert profile.peak_write_bw > 0 and profile.peak_read_bw > 0
    assert profile.n_targets >= 1
    assert profile.metadata_costs.create > profile.metadata_costs.open
    assert profile.shared_open_time > 0
    assert profile.total_cores % profile.cores_per_node == 0


def test_jugene_is_gpfs_with_per_file_caps():
    ju = jugene()
    assert ju.fs_type == "gpfs"
    assert ju.per_file_bw("write") == pytest.approx(2400.0)
    assert ju.per_file_bw("read") == pytest.approx(2800.0)
    assert ju.lock_model.write_coeff > 0  # alignment matters on GPFS


def test_jaguar_is_lustre_with_striping_caps():
    ja = jaguar()
    assert ja.fs_type == "lustre"
    default = ja.per_file_bw("write")
    optimized = ja.per_file_bw("write", ja.optimized_striping)
    assert optimized > default  # 64 OSTs beat 4
    assert ja.lock_model.write_coeff == 0.0  # no alignment penalty measured


def test_aggregate_client_bw_scales_then_caps():
    ju = jugene()
    assert ju.aggregate_client_bw(1024) < ju.aggregate_client_bw(4096)
    # I/O-node fan-in limits the client side on Blue Gene.
    assert ju.aggregate_client_bw(512) == pytest.approx(ju.ionode_bw)


def test_jaguar_clients_direct_attached():
    ja = jaguar()
    assert ja.aggregate_client_bw(100) == pytest.approx(100 * ja.client_bw_per_task)


def test_collective_time_logarithmic():
    ju = jugene()
    assert ju.collective_time(1) == 0.0
    t2 = ju.collective_time(2)
    t64k = ju.collective_time(65536)
    assert t64k == pytest.approx(16 * t2)


def test_n_nodes_rounds_up():
    ju = jugene()
    assert ju.n_nodes(1) == 1
    assert ju.n_nodes(5) == 2
    assert ju.n_nodes(8) == 2


def test_backplane_overheads_reduce_bandwidth():
    ju = jugene()
    base = ju.backplane_after_overheads("write")
    shared = ju.backplane_after_overheads("write", n_shared_files=128)
    tl = ju.backplane_after_overheads("write", n_tasklocal_files=65536)
    assert base == pytest.approx(ju.peak_write_bw)
    assert shared < base
    assert tl < base
    assert ju.backplane_after_overheads("write", n_tasklocal_files=10**9) >= 1.0


def test_peak_bw_op_validation():
    with pytest.raises(ValueError):
        jugene().peak_bw("append")


def test_sion_create_beats_tasklocal_on_both_machines():
    """The headline claim, at the profile level."""
    from repro.workloads.filecreate import sion_create_time, tasklocal_metadata_time

    for profile, ntasks in ((jugene(), 65536), (jaguar(), 12288)):
        t_tl = tasklocal_metadata_time(profile, ntasks, "create")
        t_sion = sion_create_time(profile, ntasks, 16)
        assert t_sion < t_tl / 20  # orders of magnitude, as the paper says


def test_paper_endpoint_calibration():
    """The calibrated endpoints stay near the paper's reported values."""
    from repro.workloads.filecreate import sion_create_time, tasklocal_metadata_time

    ju, ja = jugene(), jaguar()
    # Jugene: 64K creates ~ 6 min, opens ~ 1 min, SION < 3 s.
    assert 300 <= tasklocal_metadata_time(ju, 65536, "create") <= 480
    assert 45 <= tasklocal_metadata_time(ju, 65536, "open") <= 130
    assert sion_create_time(ju, 65536, 1) < 3.0
    # Jaguar: 12K creates ~ 5 min, opens ~ 20-60 s, SION < 10 s.
    assert 240 <= tasklocal_metadata_time(ja, 12288, "create") <= 420
    assert 15 <= tasklocal_metadata_time(ja, 12288, "open") <= 70
    assert sion_create_time(ja, 12288, 16) < 10.0
