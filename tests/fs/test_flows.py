"""Fluid-flow scheduler: fair sharing, caps, weights, batching."""

import math

import pytest

from repro.fs.events import Engine
from repro.fs.flows import FlowScheduler, Resource, simulate_transfer_batch


def _run(flows_spec, resources=None):
    """Helper: run a set of (size, resources, cap) specs; return flows."""
    eng = Engine()
    sched = FlowScheduler(eng)
    with sched.batch():
        flows = [
            sched.submit(size, res, rate_cap=cap) for size, res, cap in flows_spec
        ]
    eng.run()
    assert sched.active_flows == 0
    return flows


def test_single_flow_uses_full_capacity():
    disk = Resource("disk", 50.0)
    (f,) = _run([(100.0, (disk,), math.inf)])
    assert f.finish_time == pytest.approx(2.0)


def test_two_equal_flows_share_fairly():
    disk = Resource("disk", 100.0)
    flows = _run([(100.0, (disk,), math.inf)] * 2)
    for f in flows:
        assert f.finish_time == pytest.approx(2.0)


def test_short_flow_finishes_first_then_long_speeds_up():
    disk = Resource("disk", 100.0)
    flows = _run([(50.0, (disk,), math.inf), (150.0, (disk,), math.inf)])
    # Phase 1: both at 50 MB/s until t=1 (short done). Phase 2: long gets
    # 100 MB/s for its remaining 100 MB -> t=2.
    assert flows[0].finish_time == pytest.approx(1.0)
    assert flows[1].finish_time == pytest.approx(2.0)


def test_rate_cap_limits_single_flow():
    disk = Resource("disk", 1000.0)
    (f,) = _run([(100.0, (disk,), 10.0)])
    assert f.finish_time == pytest.approx(10.0)


def test_capped_flow_leaves_bandwidth_to_others():
    disk = Resource("disk", 100.0)
    flows = _run([(100.0, (disk,), 10.0), (180.0, (disk,), math.inf)])
    # Capped flow: 10 MB/s for 10 s.  Other: 90 MB/s -> done at 2.0.
    assert flows[0].finish_time == pytest.approx(10.0)
    assert flows[1].finish_time == pytest.approx(2.0)


def test_two_resources_bottleneck_is_the_smaller():
    a = Resource("a", 100.0)
    b = Resource("b", 30.0)
    (f,) = _run([(60.0, (a, b), math.inf)])
    assert f.finish_time == pytest.approx(2.0)


def test_weighted_resource_charges_fraction():
    # Flow charges 1/4 of its rate to the OST: cap 100 -> rate 400.
    ost = Resource("ost", 100.0)
    (f,) = _run([(400.0, ((ost, 0.25),), math.inf)])
    assert f.finish_time == pytest.approx(1.0)


def test_striped_flows_share_targets_fractionally():
    # Two flows, each striped over both targets at weight 1/2: the pair
    # aggregates to 2 * capacity of one target when both targets exist.
    t1 = Resource("t1", 50.0)
    t2 = Resource("t2", 50.0)
    flows = _run([(100.0, ((t1, 0.5), (t2, 0.5)), math.inf)] * 2)
    # Combined rate 100 MB/s, fair split 50 each -> 2 s.
    for f in flows:
        assert f.finish_time == pytest.approx(2.0)


def test_disjoint_resources_run_independently():
    a = Resource("a", 10.0)
    b = Resource("b", 100.0)
    flows = _run([(100.0, (a,), math.inf), (100.0, (b,), math.inf)])
    assert flows[0].finish_time == pytest.approx(10.0)
    assert flows[1].finish_time == pytest.approx(1.0)


def test_zero_size_flow_completes_instantly():
    disk = Resource("disk", 1.0)
    eng = Engine()
    sched = FlowScheduler(eng)
    done = []
    sched.submit(0.0, (disk,), on_complete=lambda t, f: done.append(t))
    eng.run()
    assert done == [0.0]


def test_negative_size_rejected():
    eng = Engine()
    sched = FlowScheduler(eng)
    with pytest.raises(ValueError):
        sched.submit(-1.0, (Resource("d", 1.0),))


def test_nonpositive_cap_rejected():
    eng = Engine()
    sched = FlowScheduler(eng)
    with pytest.raises(ValueError):
        sched.submit(1.0, (Resource("d", 1.0),), rate_cap=0.0)


def test_nonpositive_weight_rejected():
    eng = Engine()
    sched = FlowScheduler(eng)
    with pytest.raises(ValueError):
        sched.submit(1.0, ((Resource("d", 1.0), 0.0),))


def test_completion_callbacks_fire_with_time():
    disk = Resource("disk", 10.0)
    eng = Engine()
    sched = FlowScheduler(eng)
    seen = []
    sched.submit(10.0, (disk,), on_complete=lambda t, f: seen.append((t, f.size_mb)))
    sched.submit(20.0, (disk,), on_complete=lambda t, f: seen.append((t, f.size_mb)))
    eng.run()
    assert seen[0] == (pytest.approx(2.0), 10.0)
    assert seen[1] == (pytest.approx(3.0), 20.0)


def test_staggered_start_integrates_service():
    disk = Resource("disk", 100.0)
    eng = Engine()
    sched = FlowScheduler(eng)
    f1 = sched.submit(100.0, (disk,))
    # Second flow starts at t=0.5 via an event.
    holder = {}
    eng.schedule_at(0.5, lambda: holder.setdefault("f2", sched.submit(50.0, (disk,))))
    eng.run()
    # f1: 50 MB alone by t=0.5, then 50 MB/s -> +1.0 s -> t=1.5.
    assert f1.finish_time == pytest.approx(1.5)
    assert holder["f2"].finish_time == pytest.approx(1.5)


def test_large_symmetric_batch_is_fast_and_exact():
    disk = Resource("disk", 1000.0)
    eng = Engine()
    sched = FlowScheduler(eng)
    with sched.batch():
        flows = [sched.submit(1.0, (disk,)) for _ in range(10000)]
    eng.run()
    for f in flows:
        assert f.finish_time == pytest.approx(10.0)
    # Symmetric batch must not need thousands of events.
    assert eng.events_processed < 100


def test_simulate_transfer_batch_helper():
    disk = Resource("disk", 10.0)
    makespan = simulate_transfer_batch([10.0, 10.0], (disk,))
    assert makespan == pytest.approx(2.0)


def test_simulate_transfer_batch_validates_caps():
    with pytest.raises(ValueError):
        simulate_transfer_batch([1.0, 2.0], (Resource("d", 1.0),), rate_caps=[1.0])


def test_unconstrained_flow_completes_immediately():
    eng = Engine()
    sched = FlowScheduler(eng)
    f = sched.submit(100.0, ())
    eng.run()
    assert f.finish_time == pytest.approx(0.0)
    assert sched.active_flows == 0
