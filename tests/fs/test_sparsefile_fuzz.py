"""Fuzz :class:`SparseFile` against a plain-``bytearray`` reference model.

The extent store now splices buffer views directly (zero-copy), merges
and punches extents, and coalesces neighbours — this suite drives random
interleavings of write / write_zeros / truncate / read and checks every
observable against the dumbest possible model, plus the structural
invariants the store promises (sorted disjoint extents, allocation never
exceeding the logical size).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fs.simfs import SparseFile

LIMIT = 4096  # keep offsets/sizes small enough for dense model comparison


class Model:
    """Reference byte store: a bytearray that zero-extends on demand."""

    def __init__(self) -> None:
        self.buf = bytearray()

    def _grow(self, end: int) -> None:
        if end > len(self.buf):
            self.buf.extend(b"\0" * (end - len(self.buf)))

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        self._grow(offset + len(data))
        self.buf[offset : offset + len(data)] = data

    def write_zeros(self, offset: int, n: int) -> None:
        if n <= 0:
            return
        self._grow(offset + n)
        self.buf[offset : offset + n] = b"\0" * n

    def truncate(self, size: int) -> None:
        if size < len(self.buf):
            del self.buf[size:]
        else:
            self._grow(size)

    def read(self, offset: int, n: int) -> bytes:
        end = min(offset + n, len(self.buf))
        return bytes(self.buf[offset:end]) if end > offset else b""

    @property
    def size(self) -> int:
        return len(self.buf)


def _payload(seed: int, n: int) -> bytes:
    return bytes((seed + i) % 255 + 1 for i in range(n))  # never zero bytes


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("write"),
            st.integers(0, LIMIT),
            st.integers(0, 600),
            st.integers(0, 250),
            st.sampled_from(["bytes", "bytearray", "memoryview"]),
        ),
        st.tuples(st.just("zeros"), st.integers(0, LIMIT), st.integers(0, 600)),
        st.tuples(st.just("truncate"), st.integers(0, LIMIT)),
        st.tuples(st.just("read"), st.integers(0, LIMIT), st.integers(0, 800)),
    ),
    min_size=1,
    max_size=40,
)


def _check_invariants(sf: SparseFile) -> None:
    extents = sf.extents()
    assert extents == sorted(extents)
    prev_end = -1
    for start, length in extents:
        assert length > 0, "empty extent retained"
        assert start > prev_end, "extents overlap or touch without coalescing"
        prev_end = start + length
    if extents:
        assert extents[-1][0] + extents[-1][1] <= sf.size
    assert sf.allocated_bytes <= sf.size


@settings(max_examples=120, deadline=None)
@given(ops=ops)
def test_sparsefile_matches_bytearray_model(ops):
    sf, model = SparseFile(), Model()
    for op in ops:
        if op[0] == "write":
            _, offset, size, seed, kind = op
            data = _payload(seed, size)
            wrapped = {
                "bytes": data,
                "bytearray": bytearray(data),
                "memoryview": memoryview(data),
            }[kind]
            assert sf.write(offset, wrapped) == len(data)
            model.write(offset, data)
        elif op[0] == "zeros":
            _, offset, n = op
            sf.write_zeros(offset, n)
            model.write_zeros(offset, n)
        elif op[0] == "truncate":
            _, size = op
            sf.truncate(size)
            model.truncate(size)
        else:
            _, offset, n = op
            assert sf.read(offset, n) == model.read(offset, n)
        assert sf.size == model.size
        _check_invariants(sf)
    # Full-content equality at the end.
    assert sf.read(0, sf.size) == model.read(0, model.size)


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, LIMIT), st.integers(1, 300), st.integers(0, 250)),
        min_size=1,
        max_size=20,
    )
)
def test_writer_buffer_mutation_after_write_is_invisible(writes):
    """The store must own its copy: later mutation of the caller's buffer
    (the zero-copy contract's one allowed copy point) never shows up."""
    sf, model = SparseFile(), Model()
    for offset, size, seed in writes:
        data = bytearray(_payload(seed, size))
        sf.write(offset, memoryview(data))
        model.write(offset, bytes(data))
        data[:] = b"\xee" * len(data)  # scribble over the source buffer
    assert sf.read(0, sf.size) == model.read(0, model.size)
