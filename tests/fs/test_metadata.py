"""Metadata-contention model: FIFO service, load/dirsize terms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.events import Engine
from repro.fs.metadata import (
    FifoMetadataService,
    MetadataCosts,
    MetadataOp,
    batch_completion_time,
    batch_completion_time_fast,
)


def _service(costs=None):
    eng = Engine()
    return eng, FifoMetadataService(eng, costs or MetadataCosts())


def test_single_create_costs_base_time():
    eng, svc = _service(MetadataCosts(create=0.005))
    done = []
    svc.submit(MetadataOp("create", "/d/f0"), lambda t, op: done.append(t))
    eng.run()
    assert done == [pytest.approx(0.005)]


def test_ops_serialize_in_fifo_order():
    eng, svc = _service(MetadataCosts(create=0.01))
    done = []
    for i in range(5):
        svc.submit(MetadataOp("create", f"/d/f{i}"), lambda t, op: done.append((op.path, t)))
    eng.run()
    paths = [p for p, _ in done]
    assert paths == [f"/d/f{i}" for i in range(5)]
    times = [t for _, t in done]
    assert times == [pytest.approx(0.01 * (i + 1)) for i in range(5)]


def test_batch_makespan_is_linear_without_extra_terms():
    eng, svc = _service(MetadataCosts(create=0.002))
    done = []
    for i in range(100):
        svc.submit(MetadataOp("create", f"/d/f{i}"), lambda t, op: done.append(t))
    eng.run()
    assert max(done) == pytest.approx(0.2)


def test_dir_entries_track_creates_and_unlinks():
    eng, svc = _service()
    for i in range(3):
        svc.submit(MetadataOp("create", f"/d/f{i}"))
    eng.run()
    assert svc.dir_entries == 3
    svc.submit(MetadataOp("unlink", "/d/f0"))
    eng.run()
    assert svc.dir_entries == 2


def test_dirsize_factor_makes_creates_superlinear():
    lin_costs = MetadataCosts(create=0.001)
    sup_costs = MetadataCosts(create=0.001, dirsize_factor=1e-5)
    lin = batch_completion_time(1000, lin_costs)
    sup = batch_completion_time(1000, sup_costs)
    assert sup > lin
    # Doubling N must more than double the superlinear cost.
    assert batch_completion_time(2000, sup_costs) > 2.2 * sup


def test_load_factor_penalizes_deep_queues():
    costs = MetadataCosts(create=0.001, load_factor=1e-5)
    t10 = batch_completion_time(10, costs)
    t100 = batch_completion_time(100, costs)
    assert t100 > 10 * t10  # superlinear in queue depth


def test_open_cheaper_than_create_in_default_profiles():
    from repro.fs.systems import jaguar, jugene

    for profile in (jugene(), jaguar()):
        costs = profile.metadata_costs
        assert costs.open < costs.create


def test_open_existing_uses_initial_entries():
    costs = MetadataCosts(open=0.001, dirsize_factor=1e-6)
    cold = batch_completion_time(100, costs, kind="open", initial_entries=0)
    warm = batch_completion_time(100, costs, kind="open", initial_entries=10000)
    assert warm > cold


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        MetadataCosts().base_time("chmod")
    with pytest.raises(ValueError):
        batch_completion_time(1, MetadataCosts(), kind="chmod")


def test_negative_n_rejected():
    with pytest.raises(ValueError):
        batch_completion_time(-1, MetadataCosts())
    with pytest.raises(ValueError):
        batch_completion_time_fast(-1, MetadataCosts())


def test_service_stats_accumulate():
    eng, svc = _service(MetadataCosts(create=0.01))
    for i in range(4):
        svc.submit(MetadataOp("create", f"/d/f{i}"))
    eng.run()
    assert svc.ops_served == 4
    assert svc.busy_time == pytest.approx(0.04)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(0, 300),
    create=st.floats(1e-5, 1e-2),
    load=st.floats(0, 1e-5),
    dirsize=st.floats(0, 1e-6),
    initial=st.integers(0, 1000),
    kind=st.sampled_from(["create", "open", "stat"]),
)
def test_fast_formula_matches_reference(n, create, load, dirsize, initial, kind):
    costs = MetadataCosts(
        create=create, open=create / 2, stat=create / 4,
        load_factor=load, dirsize_factor=dirsize,
    )
    slow = batch_completion_time(n, costs, kind=kind, initial_entries=initial)
    fast = batch_completion_time_fast(n, costs, kind=kind, initial_entries=initial)
    assert slow == pytest.approx(fast, rel=1e-9, abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 200))
def test_des_matches_closed_form(n):
    costs = MetadataCosts(create=0.003, load_factor=1e-6, dirsize_factor=1e-7)
    eng = Engine()
    svc = FifoMetadataService(eng, costs)
    done = []
    for i in range(n):
        svc.submit(MetadataOp("create", f"/d/f{i}"), lambda t, op: done.append(t))
    eng.run()
    assert max(done) == pytest.approx(batch_completion_time(n, costs), rel=1e-9)
