"""Striping policies and OST coverage."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.striping import (
    StripingPolicy,
    aggregate_stripe_bandwidth,
    assign_osts_roundrobin,
    expected_coverage,
)

MiB = 1 << 20


def test_policy_validation():
    with pytest.raises(ValueError):
        StripingPolicy(0, MiB)
    with pytest.raises(ValueError):
        StripingPolicy(4, 0)


def test_depth_efficiency_increases_with_depth():
    shallow = StripingPolicy(4, 1 * MiB).depth_efficiency()
    deep = StripingPolicy(4, 8 * MiB).depth_efficiency()
    assert 0 < shallow < deep < 1.0


def test_depth_efficiency_paper_gap():
    """1 MB stripes lose ~20%; 8 MB stripes are nearly free."""
    assert StripingPolicy(4, 1 * MiB).depth_efficiency() == pytest.approx(0.8, abs=0.02)
    assert StripingPolicy(64, 8 * MiB).depth_efficiency() > 0.95


def test_roundrobin_assignment_is_contiguous_and_wraps():
    sets = assign_osts_roundrobin(3, stripe_count=4, n_targets=10)
    assert sets[0] == [0, 1, 2, 3]
    assert sets[1] == [4, 5, 6, 7]
    assert sets[2] == [8, 9, 0, 1]


def test_roundrobin_stripe_clamped_to_targets():
    sets = assign_osts_roundrobin(1, stripe_count=10, n_targets=4)
    assert sets[0] == [0, 1, 2, 3]


def test_roundrobin_requires_targets():
    with pytest.raises(ValueError):
        assign_osts_roundrobin(1, 1, 0)


def test_expected_coverage_bounds():
    cov = expected_coverage(10, 4, 144)
    assert 4 <= cov <= 40  # at least one file's stripes, at most all stripes
    assert expected_coverage(1, 4, 144) == pytest.approx(4.0)


def test_expected_coverage_saturates_at_targets():
    assert expected_coverage(10000, 4, 144) == pytest.approx(144.0, rel=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 500),
    stripe=st.integers(1, 64),
    targets=st.integers(1, 200),
)
def test_expected_coverage_monotonic_and_bounded(n, stripe, targets):
    c_n = expected_coverage(n, stripe, targets)
    c_n1 = expected_coverage(n + 1, stripe, targets)
    assert 0 < c_n <= targets + 1e-9
    assert c_n1 >= c_n - 1e-9


def test_aggregate_bandwidth_capped_by_system_peak():
    pol = StripingPolicy(64, 8 * MiB)
    bw = aggregate_stripe_bandwidth(64, pol, 144, per_target_bw=550.0, system_peak=26000.0)
    assert bw == pytest.approx(26000.0)


def test_aggregate_bandwidth_small_counts_scale_linearly():
    pol = StripingPolicy(4, 8 * MiB)
    one = aggregate_stripe_bandwidth(1, pol, 1000, per_target_bw=100.0)
    two = aggregate_stripe_bandwidth(2, pol, 1000, per_target_bw=100.0)
    assert two == pytest.approx(2 * one, rel=0.02)  # few collisions at 1000 targets


def test_aggregate_bandwidth_uncapped_default():
    pol = StripingPolicy(4, 8 * MiB)
    assert aggregate_stripe_bandwidth(4, pol, 144, 550.0) < math.inf
