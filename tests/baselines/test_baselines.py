"""The two traditional approaches: task-local files and single-file-sequential."""

import pytest

from repro.baselines.singlefile import read_single_file, write_single_file
from repro.baselines.tasklocal import (
    read_task_local,
    task_local_path,
    unlink_task_local,
    write_task_local,
)
from repro.errors import SionUsageError, SpmdWorkerError
from repro.simmpi import run_spmd


def _payload(rank, n=500):
    return bytes((rank * 3 + i) % 256 for i in range(n))


class TestTaskLocal:
    def test_naming_convention(self):
        assert task_local_path("/d/ckpt", 7) == "/d/ckpt.000007"
        with pytest.raises(SionUsageError):
            task_local_path("x", -1)

    def test_roundtrip(self, any_backend):
        backend, base = any_backend
        prefix = f"{base}/tl"

        def wtask(comm):
            return write_task_local(comm, prefix, _payload(comm.rank), backend=backend)

        paths = run_spmd(4, wtask)
        assert paths == [f"{prefix}.{r:06d}" for r in range(4)]

        def rtask(comm):
            return read_task_local(comm, prefix, backend=backend)

        out = run_spmd(4, rtask)
        assert all(out[r] == _payload(r) for r in range(4))

    def test_one_file_per_task_created(self, sim_backend):
        backend = sim_backend
        prefix = "/scratch/many"
        run_spmd(8, lambda c: write_task_local(c, prefix, b"x", backend=backend))
        # The simulated FS counted 8 creates: the paper's core problem.
        assert backend.fs.op_counts["create"] == 8

    def test_unlink(self, any_backend):
        backend, base = any_backend
        prefix = f"{base}/gone"
        run_spmd(3, lambda c: write_task_local(c, prefix, b"x", backend=backend))
        run_spmd(3, lambda c: unlink_task_local(c, prefix, backend=backend))
        assert not backend.exists(f"{prefix}.000000")


class TestSingleFile:
    def test_roundtrip(self, any_backend):
        backend, base = any_backend
        path = f"{base}/single.ckpt"
        sizes = [100, 0, 2500, 700]

        def wtask(comm):
            write_single_file(comm, path, _payload(comm.rank, sizes[comm.rank]),
                              backend=backend)

        run_spmd(4, wtask)
        assert backend.exists(path)

        def rtask(comm):
            return read_single_file(comm, path, backend=backend)

        out = run_spmd(4, rtask)
        assert all(out[r] == _payload(r, sizes[r]) for r in range(4))

    def test_small_slabs_force_many_rounds(self, any_backend):
        """Bounded gather slabs still reassemble correctly."""
        backend, base = any_backend
        path = f"{base}/slabbed.ckpt"

        def wtask(comm):
            write_single_file(comm, path, _payload(comm.rank, 1000),
                              backend=backend, slab_bytes=64)

        run_spmd(3, wtask)

        def rtask(comm):
            return read_single_file(comm, path, backend=backend, slab_bytes=64)

        out = run_spmd(3, rtask)
        assert all(out[r] == _payload(r, 1000) for r in range(3))

    def test_only_root_touches_the_file(self, sim_backend):
        backend = sim_backend
        path = "/scratch/root-only.ckpt"
        run_spmd(4, lambda c: write_single_file(c, path, b"data", backend=backend))
        assert backend.fs.op_counts["create"] == 1

    def test_nonzero_root(self, any_backend):
        backend, base = any_backend
        path = f"{base}/root2.ckpt"

        def wtask(comm):
            write_single_file(comm, path, _payload(comm.rank, 64),
                              backend=backend, root=2)

        run_spmd(4, wtask)

        def rtask(comm):
            return read_single_file(comm, path, backend=backend, root=2)

        out = run_spmd(4, rtask)
        assert all(out[r] == _payload(r, 64) for r in range(4))

    def test_task_count_mismatch_rejected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/mismatch.ckpt"
        run_spmd(3, lambda c: write_single_file(c, path, b"x", backend=backend))

        def rtask(comm):
            return read_single_file(comm, path, backend=backend)

        with pytest.raises(SpmdWorkerError):
            run_spmd(2, rtask)

    def test_bad_header_rejected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/garbage.ckpt"
        with backend.open(path, "wb") as f:
            f.write(b"not a checkpoint at all........")

        with pytest.raises(SpmdWorkerError):
            run_spmd(2, lambda c: read_single_file(c, path, backend=backend))

    def test_invalid_slab_bytes(self, any_backend):
        backend, base = any_backend

        def wtask(comm):
            write_single_file(comm, f"{base}/x", b"d", backend=backend, slab_bytes=0)

        with pytest.raises(SpmdWorkerError):
            run_spmd(2, wtask)
