"""The shared parallel-I/O simulation: resource limits, penalties, caching."""

import pytest

from repro.errors import ReproError
from repro.fs.systems import jaguar, jugene
from repro.workloads.common import parallel_io

GB = 10**9
TB = 10**12


class TestBasics:
    def test_bandwidth_definition(self):
        res = parallel_io(jugene(), 1024, 100 * GB, "write", nfiles=4)
        assert res.bandwidth_mb_s == pytest.approx(res.total_mb / res.time_s)

    def test_bandwidth_independent_of_data_size(self):
        a = parallel_io(jugene(), 4096, 100 * GB, "write", nfiles=8)
        b = parallel_io(jugene(), 4096, 1 * TB, "write", nfiles=8)
        assert a.bandwidth_mb_s == pytest.approx(b.bandwidth_mb_s, rel=1e-6)

    def test_never_exceeds_backplane(self):
        for op in ("write", "read"):
            res = parallel_io(jugene(), 65536, 1 * TB, op, nfiles=32)
            assert res.bandwidth_mb_s <= jugene().peak_bw(op) + 1e-6

    def test_never_exceeds_client_side(self):
        ju = jugene()
        res = parallel_io(ju, 256, 1 * GB, "write", nfiles=8)
        assert res.bandwidth_mb_s <= ju.aggregate_client_bw(256) + 1e-6

    def test_single_shared_file_hits_token_cap(self):
        ju = jugene()
        res = parallel_io(ju, 65536, 1 * TB, "write", nfiles=1)
        assert res.bandwidth_mb_s == pytest.approx(ju.per_file_bw("write"), rel=0.01)

    def test_more_files_more_bandwidth_until_saturation(self):
        ju = jugene()
        bws = [
            parallel_io(ju, 65536, 1 * TB, "write", nfiles=n).bandwidth_mb_s
            for n in (1, 2, 4)
        ]
        assert bws[0] < bws[1] < bws[2]

    def test_validation(self):
        with pytest.raises(ReproError):
            parallel_io(jugene(), 0, 1, "write")
        with pytest.raises(ReproError):
            parallel_io(jugene(), 4, 1, "append")
        with pytest.raises(ReproError):
            parallel_io(jugene(), 4, 1, "write", nfiles=8)


class TestTaskLocal:
    def test_tasklocal_ignores_nfiles(self):
        res = parallel_io(jugene(), 1024, 1 * GB, "write", tasklocal=True)
        assert res.nfiles == 1024

    def test_tasklocal_pays_backplane_overhead_at_scale(self):
        ju = jugene()
        sion = parallel_io(ju, 65536, 1 * TB, "write", nfiles=32)
        tl = parallel_io(ju, 65536, 1 * TB, "write", tasklocal=True)
        assert tl.bandwidth_mb_s < sion.bandwidth_mb_s


class TestAlignment:
    def test_misalignment_halves_gpfs_write(self):
        ju = jugene()
        good = parallel_io(ju, 32768, 256 * GB, "write", nfiles=16,
                           chunk_align_bytes=2 * (1 << 20))
        bad = parallel_io(ju, 32768, 256 * GB, "write", nfiles=16,
                          chunk_align_bytes=16 * 1024)
        assert good.bandwidth_mb_s / bad.bandwidth_mb_s > 2.0

    def test_lustre_unaffected_by_alignment(self):
        ja = jaguar()
        good = parallel_io(ja, 2048, 100 * GB, "write", nfiles=16,
                           chunk_align_bytes=2 * (1 << 20))
        bad = parallel_io(ja, 2048, 100 * GB, "write", nfiles=16,
                          chunk_align_bytes=16 * 1024)
        assert good.bandwidth_mb_s == pytest.approx(bad.bandwidth_mb_s, rel=1e-6)


class TestStripingAndCache:
    def test_optimized_striping_beats_default_at_one_file(self):
        ja = jaguar()
        default = parallel_io(ja, 2048, 1 * TB, "write", nfiles=1,
                              striping=ja.default_striping)
        optimized = parallel_io(ja, 2048, 1 * TB, "write", nfiles=1,
                                striping=ja.optimized_striping)
        assert optimized.bandwidth_mb_s > 5 * default.bandwidth_mb_s

    def test_cache_only_affects_reads(self):
        ja = jaguar()
        w = parallel_io(ja, 8192, 2 * TB, "write", nfiles=32, use_cache=True)
        assert w.cached_bandwidth_mb_s is None
        r = parallel_io(ja, 8192, 2 * TB, "read", nfiles=32, use_cache=True)
        assert r.cached_bandwidth_mb_s is not None
        assert r.effective_bandwidth > r.bandwidth_mb_s

    def test_cached_read_exceeds_nominal_peak_at_scale(self):
        ja = jaguar()
        r = parallel_io(ja, 12288, 2 * TB, "read", tasklocal=True, use_cache=True)
        assert r.effective_bandwidth > ja.nominal_peak_bw

    def test_rate_cap_override(self):
        ju = jugene()
        res = parallel_io(ju, 32768, 1 * TB, "write", nfiles=16,
                          rate_cap_per_task=0.067)
        assert res.bandwidth_mb_s == pytest.approx(32768 * 0.067, rel=0.01)
