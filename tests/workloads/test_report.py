"""Markdown report assembly from benchmark result files."""

import pathlib

import pytest

from repro.analysis.report import (
    ARTIFACTS,
    collect_sections,
    render_markdown,
    write_report,
)


def _seed_results(tmp_path, names):
    for name in names:
        (tmp_path / f"{name}.txt").write_text(f"content of {name}\n")


def test_collect_marks_missing(tmp_path):
    _seed_results(tmp_path, ["fig3a_jugene", "table1_alignment"])
    sections = collect_sections(tmp_path)
    by_name = {s.name: s for s in sections}
    assert not by_name["fig3a_jugene"].missing
    assert by_name["fig3a_jugene"].body == "content of fig3a_jugene"
    assert by_name["fig4a_jugene"].missing


def test_render_contains_all_titles(tmp_path):
    _seed_results(tmp_path, [name for name, _ in ARTIFACTS])
    md = render_markdown(collect_sections(tmp_path))
    for _, title in ARTIFACTS:
        assert title in md
    assert f"{len(ARTIFACTS)}/{len(ARTIFACTS)} artifacts present" in md


def test_write_report_roundtrip(tmp_path):
    _seed_results(tmp_path, ["fig6_mp2c"])
    out = write_report(tmp_path, tmp_path / "report.md")
    text = pathlib.Path(out).read_text()
    assert "content of fig6_mp2c" in text
    assert "MP2C" in text


def test_report_from_real_benchmark_results():
    """If the full bench suite has run, its artifacts must assemble cleanly."""
    results = pathlib.Path(__file__).parents[2] / "benchmarks" / "results"
    # A partial dir (single bench file run during development) is not a
    # suite run; only gate when enough *paper artifacts* exist to judge
    # assembly (benches also emit extra non-ARTIFACT tables).
    present = sum(
        1 for name, _ in ARTIFACTS if (results / f"{name}.txt").exists()
    ) if results.exists() else 0
    if present < 9:
        pytest.skip("full benchmark suite has not run")
    sections = collect_sections(results)
    md = render_markdown(sections)
    produced = [s for s in sections if not s.missing]
    # every produced table must actually land in the rendered report
    for section in produced:
        assert section.body in md
    assert "```" in md
