"""Result containers, table formatting, ASCII charts."""

import pytest

from repro.analysis.plots import ascii_chart
from repro.analysis.results import Series, format_table, human_count
from repro.errors import ReproError


def _series():
    s = Series("fig", "tasks", "MB/s", xs=[1, 2, 4])
    s.add_curve("write", [100.0, 200.0, 400.0])
    s.add_curve("read", [150.0, 250.0, 450.0])
    return s


def test_series_row_access():
    s = _series()
    x, vals = s.row(1)
    assert x == 2
    assert vals == {"write": 200.0, "read": 250.0}


def test_curve_length_checked():
    s = Series("f", "x", "y", xs=[1, 2])
    with pytest.raises(ReproError):
        s.add_curve("bad", [1.0])


def test_format_table_contains_everything():
    out = format_table(_series())
    lines = out.splitlines()
    assert "tasks" in lines[0] and "write" in lines[0] and "read" in lines[0]
    assert len(lines) == 2 + 3  # header, rule, three rows
    assert "400" in lines[-1]


def test_format_table_alignment():
    out = format_table(_series())
    widths = {len(line) for line in out.splitlines()}
    assert len(widths) == 1  # all rows equal width


def test_human_count():
    assert human_count(4096) == "4k"
    assert human_count(65536) == "64k"
    assert human_count(1000) == "1000"
    assert human_count(12288) == "12k"


def test_ascii_chart_renders_markers_and_legend():
    chart = ascii_chart(_series(), width=30, height=8)
    assert "*" in chart and "+" in chart
    assert "write" in chart and "read" in chart
    assert "x: tasks" in chart


def test_ascii_chart_log_axes():
    s = Series("log", "n", "t", xs=[1, 10, 100, 1000])
    s.add_curve("c", [1.0, 10.0, 100.0, 1000.0])
    chart = ascii_chart(s, width=40, height=10, log_x=True, log_y=True)
    # On log-log a power law is a diagonal: marks on distinct rows.
    rows_with_marks = [i for i, line in enumerate(chart.splitlines()) if "*" in line]
    assert len(rows_with_marks) >= 4


def test_ascii_chart_empty():
    assert "empty" in ascii_chart(Series("e", "x", "y", xs=[]))


def test_ascii_chart_constant_curve():
    s = Series("c", "x", "y", xs=[1, 2, 3])
    s.add_curve("flat", [5.0, 5.0, 5.0])
    chart = ascii_chart(s, width=20, height=5)
    assert "*" in chart
