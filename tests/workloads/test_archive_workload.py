"""Archive workload scenarios (§1 file-management)."""

import pytest

from repro.fs.archive import TapeLibrary
from repro.workloads.archive import run_archive_comparison, sweep_task_counts


def test_headline_comparison_defaults():
    cmp_ = run_archive_comparison()
    assert cmp_.ntasks == 32768
    assert cmp_.archive_speedup > 2
    assert cmp_.retrieve_speedup > 2


def test_custom_library_parameters():
    fast = TapeLibrary(per_file_overhead_s=0.01)
    slow = TapeLibrary(per_file_overhead_s=2.0)
    fast_cmp = run_archive_comparison(library=fast)
    slow_cmp = run_archive_comparison(library=slow)
    # Per-file overhead is the discriminating term.
    assert slow_cmp.archive_speedup > fast_cmp.archive_speedup


def test_sweep_shapes():
    points = sweep_task_counts([1024, 4096, 16384])
    assert [p.ntasks for p in points] == [1024, 4096, 16384]
    speedups = [p.comparison.archive_speedup for p in points]
    assert speedups == sorted(speedups)  # worsens with scale


def test_sweep_multifile_clamped_to_tasks():
    (point,) = sweep_task_counts([4], nfiles=16)
    assert point.comparison.nfiles_multifile == 4


def test_archive_time_dominated_by_streaming_for_multifile():
    cmp_ = run_archive_comparison()
    lib = TapeLibrary()
    stream_s = (cmp_.total_bytes / 1e6) / lib.stream_bw_mb_s
    assert cmp_.multifile_archive_s == pytest.approx(stream_s, rel=0.05)
