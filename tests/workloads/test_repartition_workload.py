"""The restart/analysis repartition workload: model and real-library driver."""

import pytest

from repro.backends.simfs_backend import SimBackend
from repro.errors import ReproError, SpmdWorkerError
from repro.fs.simfs import SimFS
from repro.fs.systems import get_system
from repro.workloads.repartition import (
    repartition_roundtrip,
    run_restart_analysis,
    sweep_reader_counts,
)

GB = 10**9


def _payload(rank, n=200):
    return bytes((rank * 13 + i) % 256 for i in range(n))


def _backend(blk=512):
    fs = SimFS(blocksize_override=blk)
    fs.mkdir("/w")
    return SimBackend(fs)


class TestModel:
    def test_cycle_prices_write_and_read(self):
        profile = get_system("jugene")
        res = run_restart_analysis(profile, 4096, 128, 10 * GB / 4096)
        assert res.write.time_s > 0 and res.read.time_s > 0
        assert res.cycle_time_s == res.write.time_s + res.read.time_s
        assert res.read_fanin == 32.0
        # Both phases move the same total data.
        assert res.write.total_mb == pytest.approx(res.read.total_mb)

    def test_fewer_readers_cannot_read_faster_than_more(self):
        """Shrinking the analysis world sheds aggregate client bandwidth."""
        profile = get_system("jugene")
        sweep = sweep_reader_counts(profile, 4096, [64, 512, 4096], 10 * GB / 4096)
        times = [p.read.time_s for p in sweep]
        assert times[0] >= times[1] >= times[2]

    def test_rejects_empty_worlds(self):
        profile = get_system("jugene")
        with pytest.raises(ReproError):
            run_restart_analysis(profile, 0, 4, 1.0)
        with pytest.raises(ReproError):
            run_restart_analysis(profile, 4, 0, 1.0)


class TestDriver:
    @pytest.mark.parametrize("engine", ["threads", "bulk"])
    def test_roundtrip_verifies_bytes(self, engine):
        res = repartition_roundtrip(
            _backend(), 8, 3, _payload, chunksize=128, fsblksize=512,
            nfiles=2, engine=engine, path="/w/r.sion",
        )
        assert res.bytes_total == 8 * 200
        assert res.reader_bytes == [600, 600, 400]
        assert res.read_fanin == pytest.approx(8 / 3)

    def test_roundtrip_with_aggregation_on_both_sides(self):
        res = repartition_roundtrip(
            _backend(), 8, 4, _payload, chunksize=128, fsblksize=512,
            write_collectors=2, read_collectsize=2, path="/w/c.sion",
        )
        assert res.bytes_total == 8 * 200

    def test_divergence_is_loud(self):
        backend = _backend()
        repartition_roundtrip(
            backend, 4, 2, _payload, chunksize=128, fsblksize=512,
            path="/w/d.sion",
        )
        # Corrupt one payload byte inside task 0's chunk, then re-read.
        with backend.open("/w/d.sion", "r+b") as f:
            f.pwrite(512, b"\xff")  # first data byte (start_of_data = 512)

        from repro.sion import paropen
        from repro.simmpi import run_spmd
        from repro.sion.mapping import ReadPartition

        part = ReadPartition.balanced(4, 2)

        def read_task(comm):
            f = paropen("/w/d.sion", "r", comm, backend=backend, partitioned=True)
            data = f.read_all()
            f.parclose()
            expected = b"".join(_payload(w) for w in part.writers_of(comm.rank))
            if data != expected:
                raise ReproError("diverged")
            return True

        with pytest.raises(SpmdWorkerError):
            run_spmd(2, read_task)
