"""Shape checks for every reproduced table and figure.

These assert the *paper's qualitative findings* — who wins, by what rough
factor, where curves saturate or cross — on the simulated machines.
"""

import pytest

from repro.fs.systems import jaguar, jugene
from repro.workloads.alignment import alignment_sweep, run_table1
from repro.workloads.bandwidth import run_fig4a, run_fig4b
from repro.workloads.filecreate import (
    run_fig3,
    sion_create_time,
    tasklocal_metadata_time,
)
from repro.workloads.mp2c_io import crossover_particles_m, run_fig6
from repro.workloads.scalasca_io import run_table2
from repro.workloads.taskbw import run_fig5a, run_fig5b

JU = jugene()
JA = jaguar()


class TestFig3:
    def test_create_monotonic_in_tasks(self):
        rows = run_fig3(JU, [1024, 4096, 16384])
        creates = [r.create_files_s for r in rows]
        assert creates == sorted(creates)

    def test_open_cheaper_than_create(self):
        for profile, n in ((JU, 16384), (JA, 4096)):
            assert tasklocal_metadata_time(profile, n, "open") < (
                tasklocal_metadata_time(profile, n, "create")
            )

    def test_sion_orders_of_magnitude_faster(self):
        rows = run_fig3(JU, [65536])
        assert rows[0].create_speedup > 50

    def test_paper_headline_numbers(self):
        """64K creates take minutes; the SION multifile takes seconds."""
        ju = run_fig3(JU, [65536])[0]
        assert 300 < ju.create_files_s < 480  # "more than five minutes"
        assert ju.sion_create_s < 3.0  # "less than 3 s on Jugene"
        ja = run_fig3(JA, [12288], sion_nfiles=16)[0]
        assert 240 < ja.create_files_s < 420
        assert ja.sion_create_s < 10.0  # "less than 10 s on Jaguar"

    def test_sion_create_scales_mildly(self):
        t4k = sion_create_time(JU, 4096)
        t64k = sion_create_time(JU, 65536)
        assert t64k < 20 * t4k  # near-linear in ntasks, tiny constants


class TestFig4:
    def test_jugene_single_file_capped_then_saturates(self):
        pts = {p.nfiles: p for p in run_fig4a(JU)}
        assert pts[1].write_mb_s == pytest.approx(2400, rel=0.05)
        assert pts[16].write_mb_s > 5800
        assert pts[16].read_mb_s > 6000

    def test_jugene_decline_at_128_files(self):
        pts = {p.nfiles: p for p in run_fig4a(JU)}
        assert pts[128].write_mb_s < pts[16].write_mb_s

    def test_jaguar_default_rises_with_files(self):
        res = run_fig4b(JA)
        default = [p.write_mb_s for p in res.default]
        assert default[0] < default[2] < default[4]
        assert max(default) > 20000  # saturates in the paper's 25-30 GB/s zone

    def test_jaguar_optimized_always_superior_and_flat(self):
        res = run_fig4b(JA)
        for d, o in zip(res.default, res.optimized):
            assert o.write_mb_s >= d.write_mb_s - 1e-6
            assert o.read_mb_s >= d.read_mb_s - 1e-6
        # "good performance already for two physical files"
        assert res.optimized[1].write_mb_s > 20000


class TestTable1:
    def test_paper_penalty_factors(self):
        t1 = run_table1(JU)
        assert t1.write_factor == pytest.approx(2.53, abs=0.1)
        assert t1.read_factor == pytest.approx(1.78, abs=0.1)

    def test_aligned_row_near_measured_values(self):
        t1 = run_table1(JU)
        # Paper: 5381.8 / 4630.6 MB/s; we accept the simulated saturation zone.
        assert 5000 < t1.aligned.write_mb_s < 6500
        assert 4200 < t1.aligned.read_mb_s < 6600

    def test_ablation_sweep_monotonic(self):
        rows = alignment_sweep(JU, [2 * (1 << 20), 512 * 1024, 64 * 1024, 16 * 1024])
        writes = [r.write_mb_s for r in rows]
        assert writes == sorted(writes, reverse=True)

    def test_no_effect_on_jaguar(self):
        t1 = run_table1(JA)
        assert t1.write_factor == pytest.approx(1.0, abs=1e-6)


class TestFig5:
    def test_jugene_saturates_at_8k_tasks(self):
        pts = {p.ntasks: p for p in run_fig5a(JU)}
        assert pts[1024].sion_write < 3000  # client-bound at small scale
        assert pts[8192].sion_write > 5800  # saturated
        assert pts[65536].sion_write == pytest.approx(pts[8192].sion_write, rel=0.05)

    def test_jugene_sion_marginally_better(self):
        for p in run_fig5a(JU):
            assert p.sion_write >= p.tasklocal_write - 1e-6
            assert p.sion_read >= p.tasklocal_read - 1e-6

    def test_jaguar_sion_write_better_at_scale(self):
        pts = run_fig5b(JA)
        large = [p for p in pts if p.ntasks >= 2048]
        assert all(p.sion_write > p.tasklocal_write for p in large)

    def test_jaguar_read_exceeds_nominal_peak(self):
        pts = {p.ntasks: p for p in run_fig5b(JA)}
        assert pts[12288].sion_read > JA.nominal_peak_bw
        assert pts[128].sion_read < JA.nominal_peak_bw


class TestFig6:
    def test_sion_flat_until_block_floor(self):
        pts = run_fig6(JU)
        small = [p for p in pts if p.data_mb < 1000 * 2]  # below 1000 x 2 MiB
        assert max(p.sion_write_s for p in small) == pytest.approx(
            min(p.sion_write_s for p in small), rel=0.01
        )

    def test_baseline_linear_in_particles(self):
        pts = {p.particles_m: p for p in run_fig6(JU)}
        assert pts[10].single_write_s == pytest.approx(
            10 * pts[1].single_write_s, rel=0.01
        )

    def test_crossover_within_swept_range(self):
        pts = run_fig6(JU)
        cross = crossover_particles_m(pts)
        assert cross is not None and cross <= 10

    def test_one_to_two_orders_at_33m(self):
        pts = {p.particles_m: p for p in run_fig6(JU)}
        assert 10 <= pts[33.0].write_speedup <= 200
        assert 10 <= pts[33.0].read_speedup <= 200

    def test_billion_particles_feasible_with_sion(self):
        """The paper's motivation: >1e9 particles became possible."""
        pts = {p.particles_m: p for p in run_fig6(JU)}
        assert pts[1000.0].sion_write_s < 60  # under a minute
        assert pts[1000.0].single_write_s > 2000  # vs ~45 minutes serialized


class TestTable2:
    def test_activation_speedup_order_of_magnitude(self):
        t2 = run_table2(JU)
        assert 5 <= t2.activation_speedup <= 20  # paper: 13.1x

    def test_sion_activation_near_paper_value(self):
        t2 = run_table2(JU)
        assert 20 < t2.sion.activation_s < 40  # paper: 28.1 s

    def test_write_bandwidth_slightly_improved(self):
        t2 = run_table2(JU)
        assert t2.sion.write_bw_mb_s > t2.tasklocal.write_bw_mb_s
        assert t2.sion.write_bw_mb_s == pytest.approx(2194, rel=0.05)
        assert t2.tasklocal.write_bw_mb_s == pytest.approx(2153, rel=0.05)
