"""Closed-form model vs. discrete-event simulator: they must agree.

The analytic model (:mod:`repro.analysis.model`) predicts the balanced
scenarios in O(1); the simulator computes them event by event.  Agreement
pins down both implementations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.model import (
    predict_alignment_factor,
    predict_bandwidth,
    predict_create_time,
    predict_sion_create_time,
    speedup_bound_create,
)
from repro.fs.systems import jaguar, jugene
from repro.workloads.alignment import run_table1
from repro.workloads.common import parallel_io
from repro.workloads.filecreate import sion_create_time, tasklocal_metadata_time

GB = 10**9
TB = 10**12

JU = jugene()
JA = jaguar()


class TestCreateTimes:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 3000), kind=st.sampled_from(["create", "open"]))
    def test_model_matches_des_jugene(self, n, kind):
        assert predict_create_time(JU, n, kind) == pytest.approx(
            tasklocal_metadata_time(JU, n, kind), rel=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 3000))
    def test_model_matches_des_jaguar(self, n):
        assert predict_create_time(JA, n) == pytest.approx(
            tasklocal_metadata_time(JA, n), rel=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 65536), nfiles=st.integers(1, 64))
    def test_sion_create_model_matches(self, n, nfiles):
        nfiles = min(nfiles, n)
        assert predict_sion_create_time(JU, n, nfiles) == pytest.approx(
            sion_create_time(JU, n, nfiles), rel=1e-9
        )

    def test_speedup_bound_consistent(self):
        bound = speedup_bound_create(JU, 65536)
        measured = tasklocal_metadata_time(JU, 65536, "create") / sion_create_time(
            JU, 65536, 1
        )
        assert bound == pytest.approx(measured, rel=1e-9)


class TestBandwidth:
    @pytest.mark.parametrize("op", ["write", "read"])
    @pytest.mark.parametrize("nfiles", [1, 2, 8, 32])
    def test_gpfs_shared_files(self, op, nfiles):
        pred = predict_bandwidth(JU, 65536, op, nfiles)
        sim = parallel_io(JU, 65536, 1 * TB, op, nfiles=nfiles)
        assert sim.bandwidth_mb_s == pytest.approx(pred.bandwidth_mb_s, rel=1e-6)

    @pytest.mark.parametrize("ntasks", [256, 2048, 16384, 65536])
    def test_gpfs_tasklocal(self, ntasks):
        pred = predict_bandwidth(JU, ntasks, "write", 0, tasklocal=True)
        sim = parallel_io(JU, ntasks, 100 * GB, "write", tasklocal=True)
        assert sim.bandwidth_mb_s == pytest.approx(pred.bandwidth_mb_s, rel=1e-6)

    @pytest.mark.parametrize("nfiles", [1, 4, 16])
    def test_lustre_striped(self, nfiles):
        pred = predict_bandwidth(JA, 2048, "write", nfiles, striping=JA.default_striping)
        sim = parallel_io(JA, 2048, 1 * TB, "write", nfiles=nfiles,
                          striping=JA.default_striping)
        assert sim.bandwidth_mb_s == pytest.approx(pred.bandwidth_mb_s, rel=1e-6)

    def test_rate_cap_scenario(self):
        pred = predict_bandwidth(JU, 32768, "write", 16, rate_cap_per_task=0.067)
        sim = parallel_io(JU, 32768, 1 * TB, "write", nfiles=16,
                          rate_cap_per_task=0.067)
        assert sim.bandwidth_mb_s == pytest.approx(pred.bandwidth_mb_s, rel=1e-6)
        assert pred.binding_constraint == "rate_cap"

    def test_binding_constraint_identification(self):
        # Single shared GPFS file at full scale: the token cap binds.
        assert predict_bandwidth(JU, 65536, "write", 1).binding_constraint == "files"
        # Few tasks: the client side binds.
        assert predict_bandwidth(JU, 256, "write", 32).binding_constraint == "clients"
        # Many files, many tasks: the backplane binds.
        assert predict_bandwidth(JU, 65536, "write", 32).binding_constraint == "backplane"


class TestAlignment:
    def test_alignment_factor_matches_simulated_table1(self):
        t1 = run_table1(JU)
        predicted = predict_alignment_factor(JU, 16 * 1024, "write")
        assert t1.write_factor == pytest.approx(predicted, rel=1e-6)
        predicted_r = predict_alignment_factor(JU, 16 * 1024, "read")
        assert t1.read_factor == pytest.approx(predicted_r, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(blk=st.sampled_from([4096, 16384, 65536, 1 << 20, 2 << 20, 4 << 20]))
    def test_factor_bounds(self, blk):
        f = predict_alignment_factor(JU, blk)
        assert 1.0 <= f <= 1.0 + JU.lock_model.write_coeff + 1e-9
