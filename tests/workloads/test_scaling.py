"""Weak-scaling and analyzer-load scenarios."""

import pytest

from repro.fs.systems import jugene
from repro.workloads.scaling import analyzer_load_times, mp2c_weak_scaling

JU = jugene()


class TestWeakScaling:
    def test_single_file_time_scales_with_total_data(self):
        pts = mp2c_weak_scaling(JU, [1024, 2048, 4096])
        assert pts[1].single_write_s == pytest.approx(2 * pts[0].single_write_s)
        assert pts[2].single_write_s == pytest.approx(4 * pts[0].single_write_s)

    def test_sion_time_bounded_by_fs_bandwidth(self):
        pts = mp2c_weak_scaling(JU, [8192, 65536])
        # 8x the data, but the saturated FS absorbs it in ~8x/1 ratio of
        # transfer time bounded by peak; SION time grows far slower than
        # the baseline's.
        sion_growth = pts[1].sion_write_s / pts[0].sion_write_s
        single_growth = pts[1].single_write_s / pts[0].single_write_s
        assert single_growth == pytest.approx(8.0, rel=1e-6)
        assert sion_growth < single_growth + 1e-9

    def test_speedup_grows_with_scale(self):
        pts = mp2c_weak_scaling(JU, [1024, 16384, 65536])
        speedups = [p.speedup for p in pts]
        assert speedups == sorted(speedups)

    def test_data_accounting(self):
        (pt,) = mp2c_weak_scaling(JU, [100], particles_per_task=1000)
        assert pt.data_bytes == 100 * 1000 * 52


class TestAnalyzerLoad:
    def test_sion_always_cheaper(self):
        for p in analyzer_load_times(JU, [256, 4096, 65536]):
            assert p.sion_open_s < p.tasklocal_open_s
            assert p.speedup > 1

    def test_tasklocal_open_matches_fig3_curve(self):
        from repro.workloads.filecreate import tasklocal_metadata_time

        (p,) = analyzer_load_times(JU, [16384])
        assert p.tasklocal_open_s == pytest.approx(
            tasklocal_metadata_time(JU, 16384, "open")
        )

    def test_speedup_meaningful_at_scale(self):
        (p,) = analyzer_load_times(JU, [65536])
        assert p.speedup > 10
