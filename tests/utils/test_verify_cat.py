"""sionverify and sioncat."""

import io

from repro.sion import paropen
from repro.simmpi import run_spmd
from repro.utils.cat import cat_rank
from repro.utils.verify import format_report, verify_multifile
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n=900):
    return bytes((rank * 3 + i) % 256 for i in range(n))


def _make(path, backend, ntasks=4, nfiles=2, shadow=False, compress=False):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=nfiles,
                    shadow=shadow, compress=compress, backend=backend)
        f.fwrite(_payload(comm.rank))
        f.parclose()

    run_spmd(ntasks, task)


class TestVerify:
    def test_clean_multifile_passes(self, any_backend):
        backend, base = any_backend
        path = f"{base}/v.sion"
        _make(path, backend)
        report = verify_multifile(path, backend=backend)
        assert report.ok, report.errors
        assert report.nfiles == 2 and report.ntasks == 4
        assert report.checks_run > 10
        assert "status: OK" in format_report(report)

    def test_deep_check_with_shadows(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vs.sion"
        _make(path, backend, shadow=True)
        report = verify_multifile(path, backend=backend, deep=True)
        assert report.ok, report.errors

    def test_deep_without_shadows_warns(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vw.sion"
        _make(path, backend)
        report = verify_multifile(path, backend=backend, deep=True)
        assert report.ok
        assert report.warnings

    def test_missing_sibling_detected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vm.sion"
        _make(path, backend, nfiles=3)
        backend.unlink(f"{path}.000002")
        report = verify_multifile(path, backend=backend)
        assert not report.ok
        assert any("missing" in e for e in report.errors)
        assert any("incomplete" in e for e in report.errors)

    def test_corrupt_metablock2_detected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vc.sion"
        _make(path, backend, nfiles=1)
        size = backend.file_size(path)
        with backend.open(path, "r+b") as f:
            f.seek(size - 2)
            f.write(b"\xff\xff")  # clobber the CRC
        report = verify_multifile(path, backend=backend)
        assert not report.ok
        assert any("metablock 2" in e for e in report.errors)

    def test_truncated_file_detected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vt.sion"
        _make(path, backend, nfiles=1)
        with backend.open(path, "r+b") as f:
            f.truncate(backend.file_size(path) - 10)
        report = verify_multifile(path, backend=backend)
        assert not report.ok

    def test_unreadable_path_reported_not_raised(self, any_backend):
        backend, base = any_backend
        report = verify_multifile(f"{base}/nonexistent.sion", backend=backend)
        assert not report.ok

    def test_shadow_mismatch_found_by_deep_check(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vsm.sion"
        _make(path, backend, nfiles=1, shadow=True)
        # Corrupt the first chunk's shadow header's `written` field by
        # rewriting a valid header with a wrong count.
        from repro.sion.format import Metablock1, ShadowHeader
        from repro.sion.layout import ChunkLayout

        with backend.open(path, "r+b") as f:
            mb1 = Metablock1.decode_from(f)
            layout = ChunkLayout.from_metablock1(mb1)
            f.seek(layout.chunk_start(0, 0))
            f.write(ShadowHeader(ltask=0, block=0, written=1).encode())
        report = verify_multifile(path, backend=backend, deep=True)
        assert not report.ok
        assert any("shadow" in e for e in report.errors)


class TestCat:
    def test_cat_streams_logical_bytes(self, any_backend):
        backend, base = any_backend
        path = f"{base}/c.sion"
        _make(path, backend)
        sink = io.BytesIO()
        n = cat_rank(path, 2, out=sink, backend=backend)
        assert n == 900
        assert sink.getvalue() == _payload(2)

    def test_cat_decompresses(self, any_backend):
        backend, base = any_backend
        path = f"{base}/cz.sion"
        _make(path, backend, compress=True)
        sink = io.BytesIO()
        cat_rank(path, 1, out=sink, backend=backend)
        assert sink.getvalue() == _payload(1)

    def test_cat_empty_task(self, any_backend):
        backend, base = any_backend
        path = f"{base}/ce.sion"

        def task(comm):
            f = paropen(path, "w", comm, chunksize=64, backend=backend)
            if comm.rank == 0:
                f.fwrite(b"only rank zero")
            f.parclose()

        run_spmd(2, task)
        sink = io.BytesIO()
        assert cat_rank(path, 1, out=sink, backend=backend) == 0
        assert sink.getvalue() == b""

    def test_cli_verify(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_verify

        backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
        path = f"{tmp_path}/cli.sion"
        _make(path, backend, nfiles=1)
        assert main_verify([path]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_cli_cat(self, tmp_path, capsysbinary):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_cat

        backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
        path = f"{tmp_path}/clicat.sion"
        _make(path, backend, nfiles=1)
        assert main_cat([path, "0"]) == 0
        assert capsysbinary.readouterr().out == _payload(0)

    def test_cli_verify_fails_on_damage(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_verify

        backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
        path = f"{tmp_path}/bad.sion"
        _make(path, backend, nfiles=2)
        backend.unlink(f"{path}.000001")
        assert main_verify([path]) == 2

    def test_cli_verify_readers_on_proc_engine(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_verify

        backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
        path = f"{tmp_path}/proc.sion"
        _make(path, backend, nfiles=1)
        assert main_verify([path, "--readers", "2", "--engine", "proc"]) == 0
        assert "status: OK" in capsys.readouterr().out

    def test_cli_verify_rejects_unknown_engine(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_verify

        backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
        path = f"{tmp_path}/eng.sion"
        _make(path, backend, nfiles=1)
        assert main_verify([path, "--readers", "2", "--engine", "nope"]) == 2
        assert "unknown SPMD engine" in capsys.readouterr().out
