"""The ``--readers m`` surface of the tools: dump, cat, verify."""

import io

from repro.sion import paropen
from repro.simmpi import run_spmd
from repro.utils.cat import cat_rank, cat_reader
from repro.utils.cli import main_cat, main_dump, main_verify
from repro.utils.dump import dump_multifile, format_partition, partition_table
from repro.utils.verify import verify_multifile
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n=600):
    return bytes((rank * 7 + i) % 256 for i in range(n))


def _make(path, backend, ntasks=6, nfiles=2, compress=False):
    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=nfiles,
                    compress=compress, backend=backend)
        f.fwrite(_payload(comm.rank))
        f.parclose()

    run_spmd(ntasks, task)


class TestDumpReaders:
    def test_partition_table_accounts_every_byte(self, any_backend):
        backend, base = any_backend
        path = f"{base}/dp.sion"
        _make(path, backend)
        summary = dump_multifile(path, backend=backend)
        rows = partition_table(summary, 4)
        assert [r[1:3] for r in rows] == [(0, 2), (2, 2), (4, 1), (5, 1)]
        assert sum(r[3] for r in rows) == summary.total_bytes
        text = format_partition(summary, 4)
        assert "partitioned read with 4 reader(s):" in text

    def test_cli_prints_partition(self, tmp_path, capsys):
        path = str(tmp_path / "dc.sion")
        from repro.backends.localfs import LocalBackend

        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE))
        assert main_dump([path, "--readers", "3"]) == 0
        out = capsys.readouterr().out
        assert "partitioned read with 3 reader(s):" in out
        assert "reader  first task  ntasks  bytes" in out


class TestCatReaders:
    def test_reader_slice_is_writer_concatenation(self, any_backend):
        backend, base = any_backend
        path = f"{base}/cp.sion"
        _make(path, backend)
        for readers in (1, 2, 4, 6):
            pieces = []
            for r in range(readers):
                sink = io.BytesIO()
                n = cat_reader(path, r, readers, out=sink, backend=backend)
                assert n == len(sink.getvalue())
                pieces.append(sink.getvalue())
            assert b"".join(pieces) == b"".join(
                _payload(r) for r in range(6)
            )

    def test_reader_slice_matches_rank_cats(self, any_backend):
        backend, base = any_backend
        path = f"{base}/cm.sion"
        _make(path, backend, ntasks=5)
        sink = io.BytesIO()
        cat_reader(path, 0, 2, out=sink, backend=backend)
        expected = io.BytesIO()
        for w in (0, 1, 2):  # balanced: reader 0 of 2 takes 3 of 5
            cat_rank(path, w, out=expected, backend=backend)
        assert sink.getvalue() == expected.getvalue()

    def test_compressed_slice_decompresses_per_stream(self, any_backend):
        backend, base = any_backend
        path = f"{base}/cz.sion"
        _make(path, backend, ntasks=4, compress=True)
        sink = io.BytesIO()
        cat_reader(path, 0, 2, out=sink, backend=backend)
        assert sink.getvalue() == _payload(0) + _payload(1)

    def test_cli_readers_flag(self, tmp_path, capsysbinary):
        path = str(tmp_path / "cc.sion")
        from repro.backends.localfs import LocalBackend

        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE), ntasks=4)
        assert main_cat([path, "1", "--readers", "2"]) == 0
        out = capsysbinary.readouterr().out
        assert out == _payload(2) + _payload(3)


class TestVerifyReaders:
    def test_partitioned_read_cross_check_passes(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vp.sion"
        _make(path, backend)
        for readers in (1, 3, 6, 8):
            report = verify_multifile(path, backend=backend, readers=readers)
            assert report.ok, report.errors

    def test_compressed_sets_cross_check(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vz.sion"
        _make(path, backend, compress=True)
        report = verify_multifile(path, backend=backend, readers=4)
        assert report.ok, report.errors

    def test_bad_reader_count_reported(self, any_backend):
        backend, base = any_backend
        path = f"{base}/vb.sion"
        _make(path, backend)
        report = verify_multifile(path, backend=backend, readers=0)
        assert not report.ok
        assert any("--readers" in e for e in report.errors)

    def test_cli_readers_flag(self, tmp_path, capsys):
        path = str(tmp_path / "vc.sion")
        from repro.backends.localfs import LocalBackend

        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE))
        assert main_verify([path, "--readers", "3"]) == 0
        assert "status: OK" in capsys.readouterr().out
