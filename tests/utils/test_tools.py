"""Command-line utility logic: dump, split, defragment."""

import pytest

from repro.errors import SionUsageError
from repro.sion import paropen, serial
from repro.simmpi import run_spmd
from repro.utils.defrag import defragment
from repro.utils.dump import dump_multifile, format_dump
from repro.utils.split import split_multifile
from tests.conftest import TEST_BLKSIZE


def _payload(rank, n):
    return bytes((rank + i) % 256 for i in range(n))


def _make(path, backend, ntasks=4, nfiles=2, sizes=None, compress=False):
    sizes = sizes if sizes is not None else [1300] * ntasks

    def task(comm):
        f = paropen(path, "w", comm, chunksize=TEST_BLKSIZE, nfiles=nfiles,
                    compress=compress, backend=backend)
        f.fwrite(_payload(comm.rank, sizes[comm.rank]))
        f.parclose()

    run_spmd(ntasks, task)
    return sizes


class TestDump:
    def test_summary_fields(self, any_backend):
        backend, base = any_backend
        path = f"{base}/d.sion"
        sizes = _make(path, backend, ntasks=3, nfiles=1, sizes=[100, 700, 1300])
        s = dump_multifile(path, backend=backend)
        assert s.ntasks == 3
        assert s.nfiles == 1
        assert s.fsblksize == TEST_BLKSIZE
        assert s.bytes_per_task == sizes
        assert s.total_bytes == sum(sizes)
        assert s.nblocks == [1, 2, 3]
        assert s.maxblocks == 3
        assert not s.compressed

    def test_format_compact_and_verbose(self, any_backend):
        backend, base = any_backend
        path = f"{base}/fmt.sion"
        _make(path, backend, ntasks=2)
        s = dump_multifile(path, backend=backend)
        compact = format_dump(s)
        assert "tasks:       2" in compact
        assert "task " not in compact
        verbose = format_dump(s, verbose=True)
        assert "chunksize" in verbose
        assert len(verbose.splitlines()) > len(compact.splitlines())

    def test_compressed_flag_reported(self, any_backend):
        backend, base = any_backend
        path = f"{base}/dz.sion"
        _make(path, backend, ntasks=2, nfiles=1, compress=True)
        assert dump_multifile(path, backend=backend).compressed


class TestSplit:
    def test_extract_all(self, any_backend):
        backend, base = any_backend
        path = f"{base}/s.sion"
        sizes = _make(path, backend, ntasks=4, nfiles=2, sizes=[10, 600, 0, 1400])
        out = split_multifile(path, f"{base}/task_{{rank:03d}}.dat", backend=backend)
        assert len(out) == 4
        for r, p in enumerate(out):
            with backend.open(p, "rb") as f:
                assert f.read() == _payload(r, sizes[r])

    def test_extract_subset(self, any_backend):
        backend, base = any_backend
        path = f"{base}/ss.sion"
        _make(path, backend, ntasks=4)
        out = split_multifile(path, f"{base}/t{{rank}}.dat", ranks=[1, 3], backend=backend)
        assert out == [f"{base}/t1.dat", f"{base}/t3.dat"]
        assert not backend.exists(f"{base}/t0.dat")

    def test_compressed_split_yields_logical_bytes(self, any_backend):
        backend, base = any_backend
        path = f"{base}/sz.sion"
        sizes = _make(path, backend, ntasks=2, nfiles=1, compress=True)
        out = split_multifile(path, f"{base}/z{{rank}}.dat", backend=backend)
        for r, p in enumerate(out):
            with backend.open(p, "rb") as f:
                assert f.read() == _payload(r, sizes[r])

    def test_pattern_must_contain_rank(self, any_backend):
        backend, base = any_backend
        path = f"{base}/sp.sion"
        _make(path, backend, ntasks=2)
        with pytest.raises(SionUsageError, match="placeholder"):
            split_multifile(path, f"{base}/fixed.dat", backend=backend)

    def test_rank_out_of_range(self, any_backend):
        backend, base = any_backend
        path = f"{base}/sr.sion"
        _make(path, backend, ntasks=2)
        with pytest.raises(SionUsageError):
            split_multifile(path, f"{base}/t{{rank}}.dat", ranks=[5], backend=backend)


class TestDefrag:
    def test_contracts_to_single_block(self, any_backend):
        backend, base = any_backend
        path = f"{base}/f.sion"
        sizes = _make(path, backend, ntasks=3, sizes=[2000, 100, 900])
        out = defragment(path, f"{base}/f_defrag.sion", backend=backend)
        with serial.open(out, "r", backend=backend) as sf:
            loc = sf.get_locations()
            assert loc.nblocks == [1, 1, 1]
            for r in range(3):
                assert sf.read_task(r) == _payload(r, sizes[r])

    def test_preserves_content_with_gaps(self, any_backend):
        """Only one task grows blocks: the input has huge logical gaps."""
        backend, base = any_backend
        path = f"{base}/g.sion"
        sizes = _make(path, backend, ntasks=4, nfiles=1, sizes=[5000, 10, 10, 10])
        out = defragment(path, f"{base}/g_defrag.sion", backend=backend)
        in_size = backend.file_size(path)
        out_size = backend.file_size(out)
        assert out_size < in_size  # gaps removed
        with serial.open(out, "r", backend=backend) as sf:
            for r in range(4):
                assert sf.read_task(r) == _payload(r, sizes[r])

    def test_can_change_file_count_and_blocksize(self, any_backend):
        backend, base = any_backend
        path = f"{base}/h.sion"
        _make(path, backend, ntasks=4, nfiles=2)
        out = defragment(path, f"{base}/h_defrag.sion", nfiles=4,
                         fsblksize=256, backend=backend)
        with serial.open(out, "r", backend=backend) as sf:
            assert sf.nfiles == 4
            assert sf.fsblksize == 256

    def test_in_place_rejected(self, any_backend):
        backend, base = any_backend
        path = f"{base}/i.sion"
        _make(path, backend, ntasks=2)
        with pytest.raises(SionUsageError):
            defragment(path, path, backend=backend)

    def test_empty_tasks_survive(self, any_backend):
        backend, base = any_backend
        path = f"{base}/j.sion"
        _make(path, backend, ntasks=3, sizes=[0, 500, 0])
        out = defragment(path, f"{base}/j_defrag.sion", backend=backend)
        with serial.open(out, "r", backend=backend) as sf:
            assert sf.read_task(0) == b""
            assert sf.read_task(1) == _payload(1, 500)
            assert sf.read_task(2) == b""


class TestCLI:
    def test_dump_cli(self, tmp_path, capsys):
        from repro.utils.cli import main_dump

        backend_dir = str(tmp_path)
        path = f"{backend_dir}/cli.sion"
        from repro.backends.localfs import LocalBackend

        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE), ntasks=2)
        assert main_dump([path, "-v"]) == 0
        out = capsys.readouterr().out
        assert "tasks:       2" in out

    def test_split_cli(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_split

        path = f"{tmp_path}/cli2.sion"
        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE), ntasks=2)
        assert main_split([path, f"{tmp_path}/out_{{rank}}.dat"]) == 0
        assert "extracted 2" in capsys.readouterr().out

    def test_defrag_cli(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.utils.cli import main_defrag

        path = f"{tmp_path}/cli3.sion"
        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE), ntasks=2)
        assert main_defrag([path, f"{tmp_path}/cli3_d.sion"]) == 0

    def test_recover_cli(self, tmp_path, capsys):
        from repro.backends.localfs import LocalBackend
        from repro.sion import paropen as po
        from repro.utils.cli import main_recover

        backend = LocalBackend(blocksize_override=TEST_BLKSIZE)
        path = f"{tmp_path}/cli4.sion"

        def task(comm):
            f = po(path, "w", comm, chunksize=TEST_BLKSIZE, shadow=True, backend=backend)
            f.fwrite(b"x" * 300)
            f.flush_shadow()
            f._raw.close()

        run_spmd(2, task)
        assert main_recover([path]) == 0
        assert "recovered: 1" in capsys.readouterr().out

    def test_cli_error_paths_return_nonzero(self, tmp_path, capsys):
        from repro.utils.cli import main_dump, main_split

        assert main_dump([f"{tmp_path}/missing.sion"]) == 1
        assert "error:" in capsys.readouterr().err or True
        from repro.backends.localfs import LocalBackend

        path = f"{tmp_path}/e.sion"
        _make(path, LocalBackend(blocksize_override=TEST_BLKSIZE), ntasks=2)
        assert main_split([path, f"{tmp_path}/no-placeholder.dat"]) == 1
