"""Shared fixtures: backends with deterministic block sizes, tmp paths."""

from __future__ import annotations

import pytest

from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend
from repro.fs.simfs import SimFS

#: Deterministic alignment granularity for functional tests (small enough
#: that multi-block layouts stay cheap).
TEST_BLKSIZE = 512


@pytest.fixture
def local_backend(tmp_path):
    """Real-file backend with a pinned 512-byte block size."""
    return LocalBackend(blocksize_override=TEST_BLKSIZE)


@pytest.fixture
def sim_backend():
    """Simulated-FS backend (no profile: zero-cost virtual clock)."""
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/scratch")
    return SimBackend(fs)


@pytest.fixture(params=["local", "sim"])
def any_backend(request, tmp_path):
    """Parametrized over both storage backends.

    Returns ``(backend, base_dir)`` so tests build paths that work on both.
    """
    if request.param == "local":
        return LocalBackend(blocksize_override=TEST_BLKSIZE), str(tmp_path)
    fs = SimFS(blocksize_override=TEST_BLKSIZE)
    fs.mkdir("/scratch")
    return SimBackend(fs), "/scratch"
