"""The normalized payload contract: buffers snapshot at deposit time.

``ndarray -> ndarray`` (copy), ``bytearray -> bytearray`` (copy),
``memoryview -> bytes`` (immutable snapshot) — and in every case the
sender may scribble over its buffer the moment the call returns without
the receiver ever noticing.
"""

import threading

import numpy as np

from repro.simmpi.comm import make_world


def spmd(size, fn):
    """Run ``fn(comm)`` on every rank; returns rank-ordered results."""
    comms = make_world(size, timeout=30.0)
    results = [None] * size
    errors = []

    def runner(rank):
        try:
            results[rank] = fn(comms[rank])
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append((rank, exc))
            comms[rank].abort()

    threads = [threading.Thread(target=runner, args=(r,)) for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0][1]
    return results


class TestMemoryviewSnapshots:
    def test_send_recv_snapshots_a_memoryview(self):
        def task(comm):
            if comm.rank == 0:
                buf = bytearray(b"payload!")
                comm.send(memoryview(buf), dest=1)
                buf[:] = b"SCRIBBLE"  # sender reuses its buffer immediately
                return None
            got = comm.recv(source=0)
            assert type(got) is bytes
            return got

        assert spmd(2, task)[1] == b"payload!"

    def test_sliced_view_sends_only_the_window(self):
        def task(comm):
            if comm.rank == 0:
                buf = bytearray(b"0123456789")
                comm.send(memoryview(buf)[3:7], dest=1)
                return None
            return comm.recv(source=0)

        assert spmd(2, task)[1] == b"3456"

    def test_non_contiguous_view_flattens_in_c_order(self):
        def task(comm):
            if comm.rank == 0:
                arr = np.arange(10, dtype=np.uint8)
                comm.send(memoryview(arr[::2]), dest=1)
                return None
            return comm.recv(source=0)

        assert spmd(2, task)[1] == bytes([0, 2, 4, 6, 8])

    def test_bcast_snapshots_before_fanout(self):
        def task(comm):
            buf = bytearray(b"root-data") if comm.rank == 0 else None
            view = memoryview(buf) if buf is not None else None
            got = comm.bcast(view, root=0)
            if buf is not None:
                buf[:] = b"XXXXXXXXX"
            return got

        assert spmd(3, task) == [b"root-data"] * 3

    def test_gather_delivers_bytes_per_rank(self):
        def task(comm):
            mine = bytearray([comm.rank]) * 4
            got = comm.gather(memoryview(mine), root=0)
            mine[:] = b"\xff" * 4
            return got

        results = spmd(3, task)
        assert results[0] == [bytes([r]) * 4 for r in range(3)]
        assert results[1] is None and results[2] is None

    def test_isend_snapshots_like_send(self):
        def task(comm):
            if comm.rank == 0:
                buf = bytearray(b"async")
                req = comm.isend(memoryview(buf), dest=1)
                buf[:] = b"!!!!!"
                req.wait()
                return None
            return comm.recv(source=0)

        assert spmd(2, task)[1] == b"async"


class TestOtherBufferTypes:
    def test_bytearray_stays_bytearray_but_is_copied(self):
        def task(comm):
            if comm.rank == 0:
                buf = bytearray(b"mutate-me")
                comm.send(buf, dest=1)
                buf[:] = b"armageddo"
                return None
            got = comm.recv(source=0)
            assert type(got) is bytearray
            return bytes(got)

        assert spmd(2, task)[1] == b"mutate-me"

    def test_ndarray_stays_ndarray_but_is_copied(self):
        def task(comm):
            if comm.rank == 0:
                arr = np.arange(6, dtype=np.int32)
                comm.send(arr, dest=1)
                arr += 100
                return None
            got = comm.recv(source=0)
            assert isinstance(got, np.ndarray)
            return got.tolist()

        assert spmd(2, task)[1] == [0, 1, 2, 3, 4, 5]

    def test_immutable_payloads_travel_by_reference(self):
        marker = (1, "two", b"three")

        def task(comm):
            return comm.bcast(marker if comm.rank == 0 else None, root=0)

        results = spmd(2, task)
        assert results[0] is marker and results[1] is marker
