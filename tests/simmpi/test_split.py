"""Communicator splitting, duplication, and sub-communicator collectives."""

from repro.simmpi import COMM_NULL, run_spmd


def test_split_even_odd():
    def fn(c):
        sub = c.split(color=c.rank % 2)
        return (sub.rank, sub.size, c.rank % 2)

    out = run_spmd(6, fn)
    for r, (srank, ssize, color) in enumerate(out):
        assert ssize == 3
        assert srank == r // 2 if color == 0 else True
    evens = [out[r][0] for r in (0, 2, 4)]
    odds = [out[r][0] for r in (1, 3, 5)]
    assert evens == [0, 1, 2]
    assert odds == [0, 1, 2]


def test_split_with_none_color_gets_comm_null():
    def fn(c):
        sub = c.split(color=0 if c.rank < 2 else None)
        if sub is COMM_NULL:
            return "null"
        return (sub.rank, sub.size)

    out = run_spmd(4, fn)
    assert out[:2] == [(0, 2), (1, 2)]
    assert out[2:] == ["null", "null"]


def test_split_key_reorders_ranks():
    def fn(c):
        # Reverse order within the single group.
        sub = c.split(color=0, key=-c.rank)
        return sub.rank

    out = run_spmd(4, fn)
    assert out == [3, 2, 1, 0]


def test_split_key_ties_break_by_old_rank():
    def fn(c):
        sub = c.split(color=0, key=0)
        return sub.rank

    assert run_spmd(4, fn) == [0, 1, 2, 3]


def test_collectives_on_subcommunicator():
    def fn(c):
        sub = c.split(color=c.rank // 2)
        return sub.allreduce(c.rank)

    out = run_spmd(6, fn)
    assert out == [1, 1, 5, 5, 9, 9]


def test_parent_still_usable_after_split():
    def fn(c):
        sub = c.split(color=c.rank % 2)
        local = sub.allreduce(1)
        total = c.allreduce(local)
        return total

    out = run_spmd(4, fn)
    assert out == [8] * 4  # each rank contributes its subgroup size (2)


def test_nested_split():
    def fn(c):
        half = c.split(color=c.rank // 4)
        quarter = half.split(color=half.rank // 2)
        return (half.size, quarter.size, quarter.rank)

    out = run_spmd(8, fn)
    for halfsize, qsize, qrank in out:
        assert halfsize == 4
        assert qsize == 2
        assert qrank in (0, 1)


def test_dup_preserves_shape_and_isolates_traffic():
    def fn(c):
        d = c.dup()
        assert (d.rank, d.size) == (c.rank, c.size)
        # Traffic on the dup must not interfere with the parent's.
        if c.rank == 0:
            d.send("dup-msg", dest=1)
            c.send("parent-msg", dest=1)
            return None
        return (c.recv(source=0), d.recv(source=0))

    out = run_spmd(2, fn)
    assert out[1] == ("parent-msg", "dup-msg")


def test_p2p_within_split_group_uses_new_ranks():
    def fn(c):
        sub = c.split(color=c.rank % 2)
        if sub.rank == 0:
            sub.send(f"group{c.rank % 2}", dest=1)
            return None
        return sub.recv(source=0)

    out = run_spmd(4, fn)
    assert out[2] == "group0"
    assert out[3] == "group1"


def test_repeated_splits_are_independent():
    def fn(c):
        sizes = []
        for _ in range(5):
            sub = c.split(color=c.rank % 2)
            sizes.append(sub.size)
        return sizes

    out = run_spmd(4, fn)
    assert all(s == [2] * 5 for s in out)
