"""Randomized engine conformance: wave-vectorized bulk vs. threads.

Hypothesis draws small rank *programs* — sequences of collectives,
subworld phases, ``exec_once`` effects and point-to-point shifts — and
runs each under both engines.  The contract:

* identical rank-ordered results on success (the thread engine is the
  reference semantics);
* ``exec_once`` effects fire exactly as often as on the thread engine
  (once per rank per call site), no matter how often the bulk engine
  replays a body;
* scripted rank failures surface the same ``SpmdWorkerError`` — same
  failing ranks, same exception types and messages — with abort fallout
  filtered identically;
* the PR 8 fault-injection plans (``FaultPlan.kill_rank`` fired through
  the SION layer, engines x nfiles x collectsize x victim) either fail
  identically or leave byte-identical multifiles.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import FaultInjectingBackend, FaultPlan
from repro.backends.simfs_backend import SimBackend
from repro.bench.scale import multifile_fingerprint
from repro.errors import SpmdWorkerError
from repro.fs.simfs import SimFS
from repro.simmpi import run_spmd
from repro.sion import paropen
from tests.conftest import TEST_BLKSIZE

# --------------------------------------------------------------------------
# Program specs and their interpreter.  Every op result is a pure function
# of (rank, world, spec), so both engines must produce identical outputs;
# the only side effect (exec_once) is recorded in a shared log.

_flat_op = st.one_of(
    st.tuples(st.just("bcast"), st.integers(0, 7), st.integers(-50, 50)),
    st.tuples(st.just("gather"), st.integers(0, 7)),
    st.tuples(st.just("allgather"), st.integers(-50, 50)),
    st.tuples(st.just("reduce"), st.integers(0, 7)),
    st.tuples(st.just("allreduce")),
    st.tuples(st.just("scatter"), st.integers(0, 7)),
    st.tuples(st.just("gatherv"), st.integers(0, 7), st.integers(0, 2)),
    st.tuples(st.just("alltoall")),
    st.tuples(st.just("barrier")),
    st.tuples(st.just("ring"), st.integers(0, 5)),
    st.tuples(st.just("tagged"), st.integers(0, 5)),
    st.tuples(st.just("exec_once"), st.integers(-50, 50)),
)
_sub_op = st.tuples(
    st.just("sub"),
    st.integers(1, 3),  # number of colors
    st.booleans(),  # last rank opts out with color=None
    st.lists(_flat_op, min_size=1, max_size=3),
)
_program = st.lists(st.one_of(_flat_op, _sub_op), min_size=1, max_size=6)


def _apply(c, op, grank, once_log, lock):
    kind = op[0]
    if kind == "bcast":
        root, seed = op[1] % c.size, op[2]
        return c.bcast((seed, c.size) if c.rank == root else None, root=root)
    if kind == "gather":
        return c.gather(c.rank * 3 + 1, root=op[1] % c.size)
    if kind == "allgather":
        return list(c.allgather((c.rank, op[1])))
    if kind == "reduce":
        return c.reduce(c.rank + 1, root=op[1] % c.size)
    if kind == "allreduce":
        return c.allreduce(c.rank * 2 + 1)
    if kind == "scatter":
        root = op[1] % c.size
        values = [i * 5 + 1 for i in range(c.size)] if c.rank == root else None
        return c.scatter(values, root=root)
    if kind == "gatherv":
        root, w = op[1] % c.size, op[2]
        frags = [(c.rank, i) for i in range((c.rank + w) % 3 + 1)]
        return c.gatherv(frags, root=root)
    if kind == "alltoall":
        return c.alltoall([(c.rank, dst) for dst in range(c.size)])
    if kind == "barrier":
        c.barrier()
        return "bar"
    if kind == "ring":
        tag = op[1]
        return c.sendrecv(
            (c.rank, tag),
            dest=(c.rank + 1) % c.size,
            source=(c.rank - 1) % c.size,
            tag=tag,
        )
    if kind == "tagged":
        tag = op[1]
        if c.rank == 0:
            for dst in range(1, c.size):
                c.send((dst, tag), dest=dst, tag=tag)
            return "sent"
        return c.recv(source=0, tag=tag)
    if kind == "exec_once":
        seed = op[1]

        def effect():
            with lock:
                once_log.append(grank)
            return (grank, seed)

        return c.exec_once(effect)
    if kind == "sub":
        _, ncolors, use_null, subops = op
        color = c.rank % ncolors
        if use_null and c.size > 1 and c.rank == c.size - 1:
            color = None
        sub = c.split(color=color, key=c.rank)
        if sub is None:
            return "null"
        return [_apply(sub, o, grank, once_log, lock) for o in subops]
    raise AssertionError(f"unknown op {op!r}")


def _run(nprocs, spec, engine):
    once_log: list[int] = []
    lock = threading.Lock()

    def body(c):
        return [_apply(c, op, c.rank, once_log, lock) for op in spec]

    out = run_spmd(nprocs, body, engine=engine)
    return out, sorted(once_log)


@settings(max_examples=30, deadline=None)
@given(nprocs=st.integers(1, 8), spec=_program)
def test_random_programs_match_thread_engine(nprocs, spec):
    ref, ref_once = _run(nprocs, spec, "threads")
    got, got_once = _run(nprocs, spec, "bulk")
    assert got == ref
    # The thread engine runs each body exactly once, so its effect log
    # defines "once per rank per call site"; bulk replays must not add
    # or drop a single firing.
    assert got_once == ref_once


def _failure_surface(nprocs, spec, victims, seed, engine):
    lock = threading.Lock()
    once_log: list[int] = []

    def body(c):
        out = [_apply(c, op, c.rank, once_log, lock) for op in spec]
        if c.rank in victims:
            raise ValueError(f"scripted failure {seed} on rank {c.rank}")
        c.barrier()  # survivors park so abort fallout paths fire
        return out

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(nprocs, body, engine=engine)
    return {
        rank: (type(exc).__name__, str(exc))
        for rank, exc in exc_info.value.failures.items()
    }


@settings(max_examples=25, deadline=None)
@given(
    nprocs=st.integers(2, 8),
    spec=_program,
    victim=st.integers(0, 7),
    seed=st.integers(0, 999),
)
def test_random_failure_surfaces_match(nprocs, spec, victim, seed):
    # A single scripted victim must surface identically: the program runs
    # to completion on every rank before the victim raises, so abort
    # fallout filtering leaves exactly one primary failure either way.
    victim %= nprocs
    bulk = _failure_surface(nprocs, spec, {victim}, seed, "bulk")
    threads = _failure_surface(nprocs, spec, {victim}, seed, "threads")
    assert bulk == threads
    assert set(bulk) == {victim}


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(2, 8),
    spec=_program,
    victims=st.sets(st.integers(0, 7), min_size=2, max_size=3),
    seed=st.integers(0, 999),
)
def test_multi_victim_failures_are_scripted_subset(nprocs, spec, victims, seed):
    # With several victims, *which* of them survives the abort-fallout
    # filter is scheduling-dependent on both engines — the invariant each
    # must uphold is that every reported primary failure is one of the
    # scripted ValueErrors, never an engine-internal error.
    victims = {v % nprocs for v in victims}
    for engine in ("bulk", "threads"):
        surface = _failure_surface(nprocs, spec, victims, seed, engine)
        assert surface, f"{engine}: empty failure surface"
        for rank, (typ, msg) in surface.items():
            assert rank in victims, f"{engine}: non-victim rank {rank} primary"
            assert (typ, msg) == (
                "ValueError",
                f"scripted failure {seed} on rank {rank}",
            )


# --------------------------------------------------------------------------
# PR 8 fault-injection grid, randomized: a scripted backend fault must
# surface identically under both engines — or, when the plan never fires,
# both engines must leave byte-identical multifiles.


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(2, 6),
    victim=st.integers(0, 5),
    after=st.sampled_from([0, 100, 2000]),
    collectsize=st.sampled_from([None, 2]),
    nfiles=st.sampled_from([1, 2]),
)
def test_fault_grid_surfaces_match(nprocs, victim, after, collectsize, nfiles):
    victim %= nprocs
    if collectsize:
        victim -= victim % collectsize  # only collectors do physical I/O

    def outcome(engine):
        fs = SimFS(blocksize_override=TEST_BLKSIZE)
        fs.mkdir("/scratch")
        inner = SimBackend(fs)
        be = FaultInjectingBackend(
            inner, FaultPlan().kill_rank(victim, after_bytes=after)
        )
        kwargs = {"collectsize": collectsize} if collectsize else {}

        def task(comm):
            f = paropen(
                "/scratch/h.sion",
                "w",
                comm,
                chunksize=256,
                nfiles=nfiles,
                backend=be.for_rank(comm.rank),
                **kwargs,
            )
            f.fwrite(bytes((comm.rank * 13 + i) % 256 for i in range(300)))
            f.parclose()

        try:
            run_spmd(nprocs, task, engine=engine)
        except SpmdWorkerError as exc:
            return {
                rank: type(err).__name__ for rank, err in exc.failures.items()
            }
        return multifile_fingerprint(inner, "/scratch/h.sion", nfiles=nfiles)

    assert outcome("bulk") == outcome("threads")
