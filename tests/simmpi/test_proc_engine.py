"""Process engine conformance: same programs, same results, real cores.

The matrix from ``test_bulk_engine`` runs unchanged under
``engine="proc"`` against the thread engine's results, plus the
process-specific contracts: exec_once runs once per rank *in the rank's
own process*, payloads cross by value, CountingBackend telemetry merges
at join, SimBackend refuses to cross, and multifiles written under any
engine are byte-identical.
"""

import hashlib
import os
import pickle

import numpy as np
import pytest
from test_bulk_engine import PROGRAMS

from repro.backends.instrument import CountingBackend
from repro.backends.localfs import LocalBackend
from repro.backends.simfs_backend import SimBackend
from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    SimMPIError,
    SpmdWorkerError,
)
from repro.simmpi import run_spmd
from repro.sion import paropen

# --------------------------------------------------------------------------
# The shared conformance matrix, and proc-specific collective programs.


@pytest.mark.parametrize("name,program,nprocs", PROGRAMS, ids=[p[0] for p in PROGRAMS])
def test_engine_conformance(name, program, nprocs):
    expected = run_spmd(nprocs, program)  # thread engine = reference
    got = run_spmd(nprocs, program, engine="proc")
    assert got == expected


def _gatherv_scatterv(c):
    frags = [bytes([c.rank])] * (c.rank + 1)
    g = c.gatherv(frags, root=1)
    sv = c.scatterv(
        [[(i, j) for j in range(i + 1)] for i in range(c.size)]
        if c.rank == 0
        else None
    )
    return (g, sv)


def _subworld_reads(c):
    sub = c.subworld(2)
    if sub is None:
        return "outside"
    return (sub.rank, sub.size, sub.allreduce(c.rank))


def _nested_split(c):
    # Split, then split the subgroup again: subgroup collectives route
    # over the control channel and must not collide across contexts.
    sub = c.split(color=c.rank % 2, key=c.rank)
    inner = sub.split(color=0, key=-sub.rank)
    return (sub.allgather(c.rank), inner.allgather(sub.rank))


def _probe_then_recv(c):
    if c.rank == 0:
        c.send("ping", dest=1, tag=7)
        return c.recv(source=1)
    while not c.iprobe(source=0, tag=7):
        pass
    msg = c.recv(source=0, tag=7)
    c.send("pong", dest=0)
    return msg


EXTRA_PROGRAMS = [
    ("gatherv-scatterv", _gatherv_scatterv, 4),
    ("subworld", _subworld_reads, 5),
    ("nested-split", _nested_split, 4),
    ("probe-then-recv", _probe_then_recv, 2),
]


@pytest.mark.parametrize(
    "name,program,nprocs", EXTRA_PROGRAMS, ids=[p[0] for p in EXTRA_PROGRAMS]
)
def test_extra_conformance(name, program, nprocs):
    expected = run_spmd(nprocs, program)
    assert run_spmd(nprocs, program, engine="proc") == expected


def test_thread_alias_accepted():
    assert run_spmd(2, lambda c: c.allreduce(1), engine="thread") == [2, 2]


def test_large_payload_spills_past_slot():
    def fn(c):
        data = np.arange(200_000, dtype=np.int64) + c.rank  # ~1.6 MB > slot
        got = c.bcast(data if c.rank == 1 else None, root=1)
        return int(got.sum())

    expected = run_spmd(3, fn)
    assert run_spmd(3, fn, engine="proc") == expected


def test_payloads_cross_by_value():
    # A mutable payload mutated after send must arrive as deposited.
    def fn(c):
        if c.rank == 0:
            buf = bytearray(b"orig")
            c.send(buf, dest=1)
            buf[:] = b"xxxx"
            return None
        got = c.recv(source=0)
        return (bytes(got), type(got).__name__)

    assert run_spmd(2, fn, engine="proc")[1] == (b"orig", "bytearray")


# --------------------------------------------------------------------------
# Failure semantics.


def test_rank_failure_reported_and_fallout_filtered():
    def fn(c):
        if c.rank == 1:
            raise ValueError("boom")
        return c.allreduce(1)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn, engine="proc")
    assert set(exc_info.value.failures) == {1}
    assert isinstance(exc_info.value.failures[1], ValueError)


def test_collective_mismatch_detected():
    def fn(c):
        if c.rank == 0:
            return c.gather(1)
        return c.bcast(None)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="proc")
    assert any(
        isinstance(e, CollectiveMismatchError)
        for e in exc_info.value.failures.values()
    )


def test_invalid_root_raises():
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, lambda c: c.bcast(1, root=7), engine="proc")
    assert any(
        isinstance(e, CommunicatorError) for e in exc_info.value.failures.values()
    )


def test_scatter_shape_error_aborts_world():
    def fn(c):
        return c.scatter([1] if c.rank == 0 else None)  # wrong length

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn, engine="proc")
    assert any(
        isinstance(e, CommunicatorError) for e in exc_info.value.failures.values()
    )


def test_recv_timeout_raises():
    def fn(c):
        if c.rank == 0:
            c.recv(source=1)  # nobody sends
        return "ok"

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="proc", timeout=2.0)
    assert any(
        "timed out" in str(e) for e in exc_info.value.failures.values()
    )


def test_rank_cap_enforced(monkeypatch):
    monkeypatch.setenv("REPRO_PROC_MAX_RANKS", "4")
    with pytest.raises(SimMPIError, match="capped at 4 ranks"):
        run_spmd(5, lambda c: None, engine="proc")


def test_dead_rank_detected():
    def fn(c):
        if c.rank == 1:
            os._exit(17)  # dies without reporting or aborting
        c.barrier()

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="proc", timeout=30.0)
    assert any(
        "died without reporting" in str(e)
        for e in exc_info.value.failures.values()
    )


# --------------------------------------------------------------------------
# exec_once and process-isolation semantics.

_GLOBAL_EFFECTS = {"n": 0}


def test_exec_once_runs_exactly_once_per_rank(tmp_path):
    # Observable through the file system: each rank appends one byte via
    # exec_once; exactly one byte per rank file proves single execution.
    def fn(c):
        def effect():
            with open(tmp_path / f"rank{c.rank}.log", "a") as f:
                f.write("x")
            return c.rank

        v = c.exec_once(effect)
        c.barrier()
        return v

    assert run_spmd(4, fn, engine="proc") == list(range(4))
    for r in range(4):
        assert (tmp_path / f"rank{r}.log").read_text() == "x"


def test_in_memory_effects_stay_in_the_child():
    def fn(c):
        _GLOBAL_EFFECTS["n"] += 1
        return _GLOBAL_EFFECTS["n"]

    before = _GLOBAL_EFFECTS["n"]
    assert run_spmd(3, fn, engine="proc") == [before + 1] * 3
    assert _GLOBAL_EFFECTS["n"] == before  # parent state untouched


# --------------------------------------------------------------------------
# Backend handles across the process boundary.


def test_simbackend_refuses_to_cross():
    # Under fork the object would silently COW-copy instead; the pickle
    # guard is what keeps spawn (and any payload use) loudly safe.
    with pytest.raises(TypeError, match="in-process-only"):
        pickle.dumps(SimBackend())


def test_open_handle_travels_to_ranks(tmp_path):
    # The fd-passing story end to end: the parent opens one file, every
    # rank process writes its own region through the pickled handle.
    path = str(tmp_path / "shared.bin")
    handle = LocalBackend().open(path, "w+")
    handle.truncate(4 * 8)

    def fn(c, h):
        h.pwrite(c.rank * 8, bytes([c.rank]) * 8)
        c.barrier()
        return True

    assert run_spmd(4, fn, handle, engine="proc") == [True] * 4
    assert handle.pread(0, 32) == b"".join(bytes([r]) * 8 for r in range(4))
    handle.close()


# --------------------------------------------------------------------------
# CountingBackend telemetry aggregates across processes.


def _counted_multifile(comm, backend, base):
    payload = bytes([comm.rank]) * (200 + comm.rank)
    f = paropen(
        os.path.join(base, "counted.sion"),
        "w",
        comm,
        chunksize=128,
        fsblksize=512,
        backend=backend,
    )
    f.fwrite(payload)
    f.parclose()
    return True


def test_counting_backend_merges_across_processes(tmp_path):
    (tmp_path / "t").mkdir()
    (tmp_path / "p").mkdir()
    thread_cb = CountingBackend(LocalBackend(blocksize_override=512))
    run_spmd(3, _counted_multifile, thread_cb, str(tmp_path / "t"))
    proc_cb = CountingBackend(LocalBackend(blocksize_override=512))
    run_spmd(3, _counted_multifile, proc_cb, str(tmp_path / "p"), engine="proc")
    # Identical telemetry: per-child counters merged at join equal the
    # thread engine's shared-object counts, method by method.
    assert proc_cb.snapshot() == thread_cb.snapshot()
    assert proc_cb.snapshot()["bytes_written"] > 0


# --------------------------------------------------------------------------
# Byte-identical multifiles across all three engines.

_BYTES_PAYLOADS = {r: bytes([65 + r]) * (300 + 17 * r) for r in range(4)}


def _write_multifile(comm, base):
    backend = LocalBackend(blocksize_override=512)
    f = paropen(
        os.path.join(base, "out.sion"),
        "w",
        comm,
        chunksize=128,
        fsblksize=512,
        nfiles=2,
        backend=backend,
    )
    f.fwrite(_BYTES_PAYLOADS[comm.rank])
    f.parclose()
    return True


def _read_multifile(comm, base):
    backend = LocalBackend(blocksize_override=512)
    f = paropen(os.path.join(base, "out.sion"), "r", comm, backend=backend)
    data = f.read_all()
    f.parclose()
    return data


def _hash_tree(base):
    out = {}
    for name in sorted(os.listdir(base)):
        with open(os.path.join(base, name), "rb") as f:
            out[name] = hashlib.sha256(f.read()).hexdigest()
    return out


def test_multifile_bytes_identical_across_engines(tmp_path):
    trees = {}
    for engine in ("threads", "bulk", "proc"):
        base = tmp_path / engine
        base.mkdir()
        run_spmd(4, _write_multifile, str(base), engine=engine)
        trees[engine] = _hash_tree(base)
    assert trees["proc"] == trees["threads"] == trees["bulk"]
    assert len(trees["proc"]) == 2  # nfiles=2 physical files

    # And the proc-written tree reads back under every engine.
    expected = [_BYTES_PAYLOADS[r] for r in range(4)]
    for engine in ("threads", "bulk", "proc"):
        assert run_spmd(4, _read_multifile, str(tmp_path / "proc"), engine=engine) == (
            expected
        )


# --------------------------------------------------------------------------
# Spawn start method: everything must pickle, nothing may inherit.

def _spawn_program(comm, base):
    v = comm.allreduce(comm.rank + 1)
    with open(os.path.join(base, f"r{comm.rank}.txt"), "w") as f:
        f.write(str(v))
    return v


def test_spawn_start_method_smoke(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PROC_START", "spawn")
    n = 3
    assert run_spmd(n, _spawn_program, str(tmp_path), engine="proc") == [6] * n
    for r in range(n):
        assert (tmp_path / f"r{r}.txt").read_text() == "6"
