"""Collective semantics of the SPMD substrate."""

import operator

import numpy as np
import pytest

from repro.errors import CommunicatorError, SpmdWorkerError
from repro.simmpi import run_spmd
from repro.simmpi.comm import make_world


def test_rank_and_size():
    out = run_spmd(5, lambda c: (c.rank, c.size))
    assert out == [(r, 5) for r in range(5)]


def test_single_rank_world():
    assert run_spmd(1, lambda c: c.allreduce(41) + 1) == [42]


def test_world_size_must_be_positive():
    with pytest.raises(CommunicatorError):
        make_world(0)


def test_barrier_all_ranks_pass():
    out = run_spmd(4, lambda c: c.barrier() or "ok")
    assert out == ["ok"] * 4


def test_bcast_from_default_root():
    out = run_spmd(4, lambda c: c.bcast("payload" if c.rank == 0 else None))
    assert out == ["payload"] * 4


def test_bcast_from_nonzero_root():
    def fn(c):
        return c.bcast(c.rank * 10 if c.rank == 2 else None, root=2)

    assert run_spmd(4, fn) == [20] * 4


def test_bcast_invalid_root_raises():
    with pytest.raises(SpmdWorkerError):
        run_spmd(2, lambda c: c.bcast(1, root=7))


def test_gather_collects_in_rank_order():
    out = run_spmd(4, lambda c: c.gather(c.rank * c.rank))
    assert out[0] == [0, 1, 4, 9]
    assert out[1:] == [None, None, None]


def test_gather_at_other_root():
    out = run_spmd(3, lambda c: c.gather(c.rank, root=2))
    assert out[2] == [0, 1, 2]
    assert out[0] is None and out[1] is None


def test_allgather():
    out = run_spmd(4, lambda c: c.allgather(chr(ord("a") + c.rank)))
    assert out == [["a", "b", "c", "d"]] * 4


def test_scatter():
    def fn(c):
        values = [i * 2 for i in range(c.size)] if c.rank == 0 else None
        return c.scatter(values)

    assert run_spmd(4, fn) == [0, 2, 4, 6]


def test_scatter_wrong_length_raises():
    def fn(c):
        values = [1] if c.rank == 0 else None
        return c.scatter(values)

    with pytest.raises(SpmdWorkerError):
        run_spmd(3, fn)


def test_alltoall_is_transpose():
    def fn(c):
        return c.alltoall([(c.rank, dst) for dst in range(c.size)])

    out = run_spmd(3, fn)
    for dst, inbox in enumerate(out):
        assert inbox == [(src, dst) for src in range(3)]


def test_reduce_default_sum():
    out = run_spmd(5, lambda c: c.reduce(c.rank + 1))
    assert out[0] == 15
    assert out[1:] == [None] * 4


def test_allreduce_sum_everywhere():
    assert run_spmd(5, lambda c: c.allreduce(c.rank)) == [10] * 5


def test_allreduce_custom_op_max():
    assert run_spmd(4, lambda c: c.allreduce(c.rank * 3, op=max)) == [9] * 4


def test_allreduce_custom_op_min():
    assert run_spmd(4, lambda c: c.allreduce(c.rank, op=min)) == [0] * 4


def test_reduce_noncommutative_order():
    # String concatenation exposes the reduction order: must be rank order.
    out = run_spmd(3, lambda c: c.reduce(str(c.rank), op=operator.add))
    assert out[0] == "012"


def test_numpy_payloads_are_copied():
    def fn(c):
        arr = np.full(4, c.rank)
        gathered = c.allgather(arr)
        arr[:] = -1  # mutating the source must not affect what others got
        return gathered

    out = run_spmd(3, fn)
    for inbox in out:
        for src, a in enumerate(inbox):
            assert (a == src).all()


def test_bytearray_payloads_are_copied():
    def fn(c):
        buf = bytearray([c.rank] * 3)
        got = c.allgather(buf)
        buf[0] = 99
        return got

    out = run_spmd(2, fn)
    assert out[0] == [bytearray([0, 0, 0]), bytearray([1, 1, 1])]


def test_many_sequential_collectives_reuse_slots():
    def fn(c):
        acc = 0
        for i in range(50):
            acc += c.allreduce(i + c.rank)
        return acc

    out = run_spmd(3, fn)
    assert len(set(out)) == 1  # identical on every rank


def test_collective_values_none_payload():
    # None must be transportable (it is also the non-root marker).
    out = run_spmd(2, lambda c: c.allgather(None))
    assert out == [[None, None], [None, None]]
