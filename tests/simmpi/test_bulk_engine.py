"""Bulk engine conformance: same programs, same results as the thread engine.

The conformance matrix runs deterministic SPMD programs under both
engines and requires identical rank-ordered results.  Programs follow the
bulk-engine contract (deterministic, idempotent side effects), which every
program in this repo's SION layer also follows.
"""

import threading

import pytest

from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    SimMPIError,
    SpmdWorkerError,
)
from repro.simmpi import run_spmd

# --------------------------------------------------------------------------
# Conformance matrix: (name, program) pairs executed under both engines.


def _collectives_mix(c):
    v = c.bcast(("cfg", c.size) if c.rank == 0 else None)
    g = c.gather(c.rank * 3)
    s = c.scatter([10 * i for i in range(c.size)] if c.rank == 0 else None)
    r = c.allreduce(c.rank)
    a = list(c.allgather(c.rank**2))
    c.barrier()
    red = c.reduce(1)
    return (v, g, s, r, a, red)


def _split_subgroups(c):
    sub = c.split(color=c.rank % 2, key=-c.rank)
    return (sub.rank, sub.size, sub.allgather(c.rank))


def _split_with_null(c):
    sub = c.split(color=None if c.rank == 0 else 1, key=c.rank)
    if sub is None:
        return "null"
    return sub.allreduce(1)


def _dup_then_reduce(c):
    return c.dup().allreduce(c.rank)


def _ring_shift(c):
    return c.sendrecv(c.rank, dest=(c.rank + 1) % c.size, source=(c.rank - 1) % c.size)


def _tagged_p2p(c):
    if c.rank == 0:
        for dst in range(1, c.size):
            c.send(f"m{dst}", dest=dst, tag=dst)
        return "root"
    return c.recv(source=0, tag=c.rank)


def _alltoall_identity(c):
    row = [(c.rank, dst) for dst in range(c.size)]
    return c.alltoall(c.alltoall(row)) == row


def _nonblocking(c):
    if c.rank == 0:
        reqs = [c.isend(i, dest=i, tag=0) for i in range(1, c.size)]
        return all(r.completed for r in reqs)
    req = c.irecv(source=0)
    return req.wait()


PROGRAMS = [
    ("collectives-mix", _collectives_mix, 5),
    ("split-subgroups", _split_subgroups, 6),
    ("split-with-null", _split_with_null, 4),
    ("dup-then-reduce", _dup_then_reduce, 4),
    ("ring-shift", _ring_shift, 7),
    ("tagged-p2p", _tagged_p2p, 5),
    ("alltoall-identity", _alltoall_identity, 4),
    ("nonblocking", _nonblocking, 4),
    ("single-rank", lambda c: c.allreduce(41) + 1, 1),
]


@pytest.mark.parametrize("name,program,nprocs", PROGRAMS, ids=[p[0] for p in PROGRAMS])
def test_engine_conformance(name, program, nprocs):
    expected = run_spmd(nprocs, program)  # thread engine = reference
    got = run_spmd(nprocs, program, engine="bulk")
    assert got == expected


@pytest.mark.parametrize("nworkers", [1, 3])
def test_worker_pool_sizes_agree(nworkers):
    out = run_spmd(6, _collectives_mix, engine="bulk", nworkers=nworkers)
    assert out == run_spmd(6, _collectives_mix)


# --------------------------------------------------------------------------
# Failure semantics.


def test_unknown_engine_rejected():
    with pytest.raises(SimMPIError, match="unknown SPMD engine"):
        run_spmd(2, lambda c: None, engine="fibers")


def test_rank_failure_reported_and_fallout_filtered():
    def fn(c):
        if c.rank == 1:
            raise ValueError("boom")
        return c.allreduce(1)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn, engine="bulk")
    assert set(exc_info.value.failures) == {1}
    assert isinstance(exc_info.value.failures[1], ValueError)


def test_collective_mismatch_detected():
    def fn(c):
        if c.rank == 0:
            return c.gather(1)
        return c.bcast(None)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="bulk")
    assert any(
        isinstance(e, CollectiveMismatchError)
        for e in exc_info.value.failures.values()
    )


def test_invalid_root_raises():
    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, lambda c: c.bcast(1, root=7), engine="bulk")
    assert any(
        isinstance(e, CommunicatorError) for e in exc_info.value.failures.values()
    )


def test_deadlock_detected_without_timeout():
    # Rank 0 waits for a message nobody sends: the worklist drains and the
    # engine reports the deadlock instead of hanging until a timeout.
    def fn(c):
        if c.rank == 0:
            c.recv(source=1)
        return "ok"

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="bulk", timeout=None)
    assert any("deadlock" in str(e) for e in exc_info.value.failures.values())


def test_scatter_shape_error_aborts_world():
    def fn(c):
        return c.scatter([1] if c.rank == 0 else None)  # wrong length

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn, engine="bulk")
    assert any(
        isinstance(e, CommunicatorError) for e in exc_info.value.failures.values()
    )


# --------------------------------------------------------------------------
# Replay semantics.


def test_exec_once_runs_exactly_once_per_rank():
    counts: dict[int, int] = {}
    lock = threading.Lock()

    def fn(c):
        def effect():
            with lock:
                counts[c.rank] = counts.get(c.rank, 0) + 1
            return c.rank

        v = c.exec_once(effect)
        c.barrier()  # forces at least one replay for most ranks
        c.barrier()
        return v

    assert run_spmd(5, fn, engine="bulk") == list(range(5))
    assert counts == {r: 1 for r in range(5)}


def test_exec_once_rejects_communication_inside():
    def fn(c):
        return c.exec_once(lambda: c.allreduce(1))

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="bulk")
    assert any(
        "must not perform communication" in str(e)
        for e in exc_info.value.failures.values()
    )


def test_nondeterministic_program_detected():
    # The op sequence depends on hidden mutable state, so a replay calls
    # a different collective than the log recorded.
    phase: dict[int, int] = {}
    lock = threading.Lock()

    def fn(c):
        with lock:
            phase[c.rank] = phase.get(c.rank, 0) + 1
            attempt = phase[c.rank]
        if attempt == 1:
            c.bcast(1 if c.rank == 0 else None)  # completes and is logged
            c.barrier()  # parks everyone but the last arriver
        else:
            c.allreduce(1)  # replay diverges from the logged bcast
        return "done"

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn, engine="bulk")
    assert any(
        "non-deterministic" in str(e) for e in exc_info.value.failures.values()
    )


def test_allgather_result_is_shared_between_ranks():
    # Documented bulk-engine divergence: one shared result object.
    out = run_spmd(3, lambda c: c.allgather(c.rank), engine="bulk")
    assert out[0] == [0, 1, 2]
    assert out[0] is out[1] is out[2]


def test_bulk_timeout_fires():
    def fn(c):
        if c.rank == 0:
            c.recv(source=1, tag=5)  # never satisfied
        else:
            import time

            time.sleep(0.2)  # keep a worker busy so it's not a deadlock
            c.send(1, dest=0, tag=9)  # wrong tag
        return "x"

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, engine="bulk", timeout=0.5)
    messages = [str(e) for e in exc_info.value.failures.values()]
    assert any("timed out" in m or "deadlock" in m for m in messages)


def test_cleanup_communication_during_suspend_is_deferred():
    # A with-block whose __exit__ communicates (like SionParallelFile's
    # parclose) must not corrupt the op log when a suspension unwinds
    # through it: the cleanup ops re-suspend and run for real on replay.
    class Group:
        def __init__(self, c):
            self.c = c
            self.closes = 0

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            self.closes += 1
            self.c.barrier()  # communicates during cleanup

    def fn(c):
        g = Group(c)
        with g:
            c.barrier()  # parks everyone but the last arriver
            inner = c.allreduce(1)
        return (inner, g.closes)

    out = run_spmd(4, fn, engine="bulk")
    # Every rank's *final* (completing) run enters and exits the block
    # exactly once, so the observed close count is 1.
    assert out == [(4, 1)] * 4


def test_split_with_unorderable_keys_raises_everywhere_promptly():
    def fn(c):
        return c.split(color=0, key="a" if c.rank else 1)

    for engine in ("threads", "bulk"):
        with pytest.raises(SpmdWorkerError) as exc_info:
            run_spmd(3, fn, engine=engine, timeout=5)
        # threads: every rank raises its own CommunicatorError wrapping the
        # shared sort failure; bulk: the computing rank raises the
        # TypeError directly and the rest are abort fallout.
        assert any(
            isinstance(e, TypeError)
            or (isinstance(e, CommunicatorError) and "split failed" in str(e))
            for e in exc_info.value.failures.values()
        ), engine


# --------------------------------------------------------------------------
# The SION collective open/close cycle under the bulk engine.


def test_paropen_roundtrip_under_bulk_engine():
    from repro.backends.simfs_backend import SimBackend
    from repro.fs.simfs import SimFS
    from repro.sion import paropen

    backend = SimBackend(SimFS(blocksize_override=4096))
    payloads = {r: bytes([r]) * (100 + r) for r in range(6)}

    def write_task(comm):
        f = paropen(
            "/bulk.sion", "w", comm, chunksize=64, fsblksize=512,
            nfiles=2, backend=backend,
        )
        f.fwrite(payloads[comm.rank])  # spans chunks
        f.parclose()
        # Every rank of a file shares ONE mb1 object, so the master's
        # metablock2_offset patch is visible everywhere — also under
        # replay, where the master must adopt the broadcast instance.
        return (f.filenum, f.mb1.metablock2_offset)

    results = run_spmd(6, write_task, engine="bulk")
    assert [f for f, _ in results] == [0, 0, 0, 1, 1, 1]
    offsets = {f: off for f, off in results}
    for f, off in results:
        assert off == offsets[f] and off > 0

    def read_task(comm):
        f = paropen("/bulk.sion", "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    # Written by bulk, read by bulk AND by the thread engine: the bytes
    # on disk are engine-independent.
    assert run_spmd(6, read_task, engine="bulk") == [payloads[r] for r in range(6)]
    assert run_spmd(6, read_task) == [payloads[r] for r in range(6)]


def test_thread_written_file_reads_under_bulk():
    from repro.backends.simfs_backend import SimBackend
    from repro.fs.simfs import SimFS
    from repro.sion import paropen

    backend = SimBackend(SimFS(blocksize_override=4096))

    def write_task(comm):
        f = paropen("/x.sion", "w", comm, chunksize=256, backend=backend)
        f.fwrite(b"t%d" % comm.rank * 30)
        f.parclose()

    run_spmd(4, write_task)  # thread engine writes

    def read_task(comm):
        f = paropen("/x.sion", "r", comm, backend=backend)
        data = f.read_all()
        f.parclose()
        return data

    assert run_spmd(4, read_task, engine="bulk") == [
        b"t%d" % r * 30 for r in range(4)
    ]
