"""Point-to-point messaging: matching, tags, wildcards, ordering."""

import pytest

from repro.errors import SpmdWorkerError
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_spmd


def test_simple_send_recv():
    def fn(c):
        if c.rank == 0:
            c.send({"x": 1}, dest=1)
            return None
        return c.recv(source=0)

    assert run_spmd(2, fn)[1] == {"x": 1}


def test_self_send():
    def fn(c):
        c.send("loop", dest=c.rank, tag=5)
        return c.recv(source=c.rank, tag=5)

    assert run_spmd(3, fn) == ["loop"] * 3


def test_tag_matching_selects_correct_message():
    def fn(c):
        if c.rank == 0:
            c.send("a", dest=1, tag=1)
            c.send("b", dest=1, tag=2)
            return None
        second = c.recv(source=0, tag=2)
        first = c.recv(source=0, tag=1)
        return (first, second)

    assert run_spmd(2, fn)[1] == ("a", "b")


def test_wildcard_source():
    def fn(c):
        if c.rank == 0:
            got = [c.recv(source=ANY_SOURCE, tag=7) for _ in range(c.size - 1)]
            return sorted(got)
        c.send(c.rank, dest=0, tag=7)
        return None

    assert run_spmd(4, fn)[0] == [1, 2, 3]


def test_wildcard_tag_with_status():
    def fn(c):
        if c.rank == 0:
            c.send("hello", dest=1, tag=42)
            return None
        value, src, tag = c.recv(source=0, tag=ANY_TAG, return_status=True)
        return (value, src, tag)

    assert run_spmd(2, fn)[1] == ("hello", 0, 42)


def test_fifo_order_same_source_tag():
    def fn(c):
        if c.rank == 0:
            for i in range(10):
                c.send(i, dest=1, tag=0)
            return None
        return [c.recv(source=0, tag=0) for _ in range(10)]

    assert run_spmd(2, fn)[1] == list(range(10))


def test_ring_sendrecv():
    def fn(c):
        right = (c.rank + 1) % c.size
        left = (c.rank - 1) % c.size
        return c.sendrecv(c.rank, dest=right, source=left)

    out = run_spmd(5, fn)
    assert out == [(r - 1) % 5 for r in range(5)]


def test_invalid_dest_raises():
    with pytest.raises(SpmdWorkerError):
        run_spmd(2, lambda c: c.send(1, dest=5))


def test_negative_tag_raises():
    with pytest.raises(SpmdWorkerError):
        run_spmd(2, lambda c: c.send(1, dest=0, tag=-3))


def test_invalid_source_raises():
    with pytest.raises(SpmdWorkerError):
        run_spmd(2, lambda c: c.recv(source=9))


def test_recv_timeout_raises_instead_of_hanging():
    def fn(c):
        if c.rank == 1:
            return c.recv(source=0)  # never sent
        return None

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn, timeout=0.2)
    assert 1 in exc_info.value.failures


def test_messages_do_not_cross_ranks():
    def fn(c):
        c.send(f"for-{(c.rank + 1) % c.size}", dest=(c.rank + 1) % c.size)
        return c.recv()

    out = run_spmd(4, fn)
    assert out == [f"for-{r}" for r in range(4)]
