"""Non-blocking point-to-point: isend/irecv/iprobe and requests."""

import time

import pytest

from repro.errors import CommunicatorError, SpmdWorkerError
from repro.simmpi import ANY_SOURCE, ANY_TAG, run_spmd


def test_isend_completes_immediately():
    def fn(c):
        if c.rank == 0:
            req = c.isend("payload", dest=1)
            return req.completed
        return c.recv(source=0)

    out = run_spmd(2, fn)
    assert out[0] is True
    assert out[1] == "payload"


def test_irecv_wait():
    def fn(c):
        if c.rank == 0:
            c.send({"k": 5}, dest=1, tag=3)
            return None
        req = c.irecv(source=0, tag=3)
        return req.wait()

    assert run_spmd(2, fn)[1] == {"k": 5}


def test_irecv_test_polls_until_ready():
    def fn(c):
        if c.rank == 0:
            time.sleep(0.05)
            c.send(42, dest=1)
            return None
        req = c.irecv(source=0)
        polls = 0
        while True:
            done, value = req.test()
            if done:
                return polls, value
            polls += 1
            time.sleep(0.005)

    polls, value = run_spmd(2, fn)[1]
    assert value == 42
    assert polls >= 1  # the message genuinely wasn't there at first


def test_request_wait_idempotent():
    def fn(c):
        if c.rank == 0:
            c.send("once", dest=1)
            return None
        req = c.irecv(source=0)
        first = req.wait()
        second = req.wait()  # must not consume another message
        return first, second, req.completed

    assert run_spmd(2, fn)[1] == ("once", "once", True)


def test_test_after_completion_returns_cached():
    def fn(c):
        if c.rank == 0:
            c.send(7, dest=1)
            return None
        req = c.irecv(source=0)
        req.wait()
        return req.test()

    assert run_spmd(2, fn)[1] == (True, 7)


def test_irecv_wildcards():
    def fn(c):
        if c.rank == 0:
            got = [c.irecv(source=ANY_SOURCE, tag=ANY_TAG).wait() for _ in range(2)]
            return sorted(got)
        c.send(c.rank, dest=0, tag=c.rank)
        return None

    assert run_spmd(3, fn)[0] == [1, 2]


def test_iprobe_does_not_consume():
    def fn(c):
        if c.rank == 0:
            c.send("still-there", dest=1, tag=9)
            return None
        while not c.iprobe(source=0, tag=9):
            time.sleep(0.001)
        assert c.iprobe(source=0, tag=9)  # probing again still sees it
        return c.recv(source=0, tag=9)

    assert run_spmd(2, fn)[1] == "still-there"


def test_iprobe_false_when_empty():
    def fn(c):
        return c.iprobe()

    assert run_spmd(2, fn) == [False, False]


def test_irecv_invalid_source():
    def fn(c):
        c.irecv(source=10)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn)
    assert any(
        isinstance(e, CommunicatorError) for e in exc_info.value.failures.values()
    )


def test_many_outstanding_requests_fifo_per_tag():
    def fn(c):
        if c.rank == 0:
            for i in range(10):
                c.isend(i, dest=1, tag=0)
            return None
        reqs = [c.irecv(source=0, tag=0) for _ in range(10)]
        return [r.wait() for r in reqs]

    assert run_spmd(2, fn)[1] == list(range(10))
