"""Property-based tests of collective identities."""

from hypothesis import given, settings, strategies as st

from repro.simmpi import run_spmd

_sizes = st.integers(min_value=1, max_value=8)
_payloads = st.lists(st.integers(-1000, 1000), min_size=1, max_size=8)


@settings(max_examples=25, deadline=None)
@given(nprocs=_sizes, values=_payloads)
def test_allgather_equals_gather_plus_bcast(nprocs, values):
    def fn(c):
        v = values[c.rank % len(values)]
        ag = c.allgather(v)
        gb = c.bcast(c.gather(v))
        return ag == gb

    assert all(run_spmd(nprocs, fn))


@settings(max_examples=25, deadline=None)
@given(nprocs=_sizes, values=_payloads)
def test_allreduce_sum_matches_python_sum(nprocs, values):
    def fn(c):
        return c.allreduce(values[c.rank % len(values)])

    expected = sum(values[r % len(values)] for r in range(nprocs))
    assert run_spmd(nprocs, fn) == [expected] * nprocs


@settings(max_examples=25, deadline=None)
@given(nprocs=_sizes)
def test_scatter_inverts_gather(nprocs):
    def fn(c):
        gathered = c.gather(c.rank * 7)
        return c.scatter(gathered)

    assert run_spmd(nprocs, fn) == [r * 7 for r in range(nprocs)]


@settings(max_examples=20, deadline=None)
@given(nprocs=st.integers(min_value=1, max_value=6))
def test_alltoall_twice_is_identity(nprocs):
    def fn(c):
        row = [(c.rank, dst) for dst in range(c.size)]
        once = c.alltoall(row)
        twice = c.alltoall(once)
        return twice == row

    assert all(run_spmd(nprocs, fn))


@settings(max_examples=20, deadline=None)
@given(nprocs=st.integers(min_value=2, max_value=8), root=st.integers(0, 7))
def test_bcast_from_any_root_reaches_all(nprocs, root):
    root %= nprocs

    def fn(c):
        return c.bcast(("origin", c.rank) if c.rank == root else None, root=root)

    assert run_spmd(nprocs, fn) == [("origin", root)] * nprocs
