"""REPRO_SPMD_TIMEOUT: environment-configurable collective timeout."""

import pytest

from repro.errors import SimMPIError, SpmdWorkerError
from repro.simmpi import run_spmd
from repro.simmpi.runner import DEFAULT_TIMEOUT, resolve_timeout


class TestResolveTimeout:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPMD_TIMEOUT", raising=False)
        assert resolve_timeout() == DEFAULT_TIMEOUT

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "4500")
        assert resolve_timeout() == 4500.0

    def test_env_read_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "7")
        assert resolve_timeout() == 7.0
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "8")
        assert resolve_timeout() == 8.0

    def test_zero_or_negative_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "0")
        assert resolve_timeout() is None
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "-1")
        assert resolve_timeout() is None

    def test_blank_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "  ")
        assert resolve_timeout() == DEFAULT_TIMEOUT

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "soon")
        with pytest.raises(SimMPIError, match="REPRO_SPMD_TIMEOUT"):
            resolve_timeout()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "4500")
        assert resolve_timeout(3.0) == 3.0
        assert resolve_timeout(None) is None


@pytest.mark.parametrize("engine", ["threads", "bulk"])
def test_env_timeout_applies_to_run_spmd(monkeypatch, engine):
    monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "0.3")

    def fn(c):
        if c.rank == 0:
            c.recv(source=1, tag=1)  # never sent
        else:
            import time

            # Keep the bulk worklist from declaring an instant deadlock:
            # the point here is the timeout path.
            time.sleep(0.6)
            c.barrier()
        return "x"

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, fn, engine=engine)
