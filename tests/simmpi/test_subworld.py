"""Sub-world sizing: the first-m-ranks communicator behind partitioned reads."""

import pytest

from repro.errors import CommunicatorError, SpmdWorkerError
from repro.simmpi import COMM_NULL, run_spmd


@pytest.mark.parametrize("engine", ["threads", "bulk"])
@pytest.mark.parametrize("m", [1, 3, 6])
def test_subworld_selects_first_m_ranks(engine, m):
    def task(comm):
        sub = comm.subworld(m)
        if comm.rank < m:
            assert sub is not None
            return (sub.rank, sub.size)
        assert sub is COMM_NULL
        return None

    out = run_spmd(6, task, engine=engine)
    assert out[:m] == [(r, m) for r in range(m)]
    assert out[m:] == [None] * (6 - m)


@pytest.mark.parametrize("engine", ["threads", "bulk"])
def test_subworld_drives_collectives(engine):
    """A write world re-enters as a smaller read world (the repartition
    workload's shape): only the sub-world participates in its collectives."""

    def task(comm):
        sub = comm.subworld(2)
        result = sub.allreduce(sub.rank) if sub is not None else -1
        comm.barrier()
        return result

    assert run_spmd(5, task, engine=engine) == [1, 1, -1, -1, -1]


@pytest.mark.parametrize("engine", ["threads", "bulk"])
@pytest.mark.parametrize("bad", [0, -1, 7])
def test_subworld_rejects_out_of_range_sizes(engine, bad):
    def task(comm):
        comm.subworld(bad)

    with pytest.raises(SpmdWorkerError) as exc:
        run_spmd(6, task, engine=engine)
    assert any(
        isinstance(e, CommunicatorError) for e in exc.value.failures.values()
    )
