"""Vectored sub-world collectives (gatherv/scatterv) on both engines.

These are the communication primitives behind collector-rank aggregation
(ISSUE 4): variable-length fragment sequences per rank, the payload
snapshot contract per fragment, sub-world (split) operation, and
replay safety under the bulk engine.
"""

import numpy as np
import pytest

from repro.errors import CommunicatorError, SpmdWorkerError
from repro.simmpi import run_spmd

ENGINES = ("threads", "bulk")


# --------------------------------------------------------------------------
# Basic semantics and engine conformance.


def _gatherv_program(c):
    frags = [bytes([c.rank] * (i + 1)) for i in range(c.rank)]
    return c.gatherv(frags, root=1)


def _scatterv_program(c):
    if c.rank == 0:
        values = [
            [bytes([dst]) * (i + 1) for i in range(dst)] for dst in range(c.size)
        ]
        return c.scatterv(values)
    return c.scatterv(None)


def _roundtrip_program(c):
    """scatterv of what gatherv collected is the identity."""
    frags = tuple(bytes([c.rank, i]) for i in range(c.rank % 3))
    gathered = c.gatherv(frags, root=0)
    if c.rank == 0:
        back = c.scatterv(gathered)
    else:
        back = c.scatterv(None)
    return back == frags


def _subworld_program(c):
    """gatherv/scatterv inside split groups (the collector pattern)."""
    group = c.rank // 2
    sub = c.split(color=group, key=c.rank)
    gathered = sub.gatherv([bytes([c.rank])] * (sub.rank + 1), root=0)
    if sub.rank == 0:
        flat = tuple(b for frags in gathered for b in frags)
        out = sub.scatterv([flat] * sub.size)
    else:
        out = sub.scatterv(None)
    return out


@pytest.mark.parametrize("engine", ENGINES)
def test_gatherv_collects_variable_fragments(engine):
    out = run_spmd(4, _gatherv_program, engine=engine)
    assert out[0] is None and out[2] is None and out[3] is None
    assert out[1] == [
        (),
        (b"\x01",),
        (b"\x02", b"\x02\x02"),
        (b"\x03", b"\x03\x03", b"\x03\x03\x03"),
    ]


@pytest.mark.parametrize("engine", ENGINES)
def test_scatterv_distributes_variable_fragments(engine):
    out = run_spmd(4, _scatterv_program, engine=engine)
    assert out == [
        (),
        (b"\x01",),
        (b"\x02", b"\x02\x02"),
        (b"\x03", b"\x03\x03", b"\x03\x03\x03"),
    ]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("program", [_roundtrip_program, _subworld_program],
                         ids=["roundtrip", "subworld"])
def test_engine_conformance(engine, program):
    assert run_spmd(6, program, engine=engine) == run_spmd(6, program)


# --------------------------------------------------------------------------
# Payload contract: fragments snapshot at deposit.


@pytest.mark.parametrize("engine", ENGINES)
def test_gatherv_snapshots_mutable_fragments(engine):
    def program(c):
        buf = bytearray(b"live")
        view = memoryview(buf)
        gathered = c.gatherv([buf, view], root=0)
        buf[:] = b"dead"  # mutation after the call must not be visible
        return gathered

    out = run_spmd(2, program, engine=engine)
    for frags in out[0]:
        assert bytes(frags[0]) == b"live"
        # memoryview fragments arrive as immutable bytes (contract).
        assert isinstance(frags[1], bytes) and frags[1] == b"live"
        assert isinstance(frags[0], bytearray)


@pytest.mark.parametrize("engine", ENGINES)
def test_scatterv_snapshots_and_accepts_arrays(engine):
    def program(c):
        if c.rank == 0:
            arr = np.arange(3, dtype=np.uint8)
            values = [[arr, bytearray(b"x")] for _ in range(c.size)]
            got = c.scatterv(values)
            arr += 100  # root may reuse its buffer immediately
        else:
            got = c.scatterv(None)
        return (got[0].tolist(), bytes(got[1]))

    out = run_spmd(3, program, engine=engine)
    assert out == [([0, 1, 2], b"x")] * 3


# --------------------------------------------------------------------------
# Errors.


@pytest.mark.parametrize("engine", ENGINES)
def test_scatterv_wrong_shape_fails(engine):
    def program(c):
        return c.scatterv([[b"a"]] if c.rank == 0 else None)  # len 1 != size 2

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, program, engine=engine)
    assert any(
        isinstance(e, CommunicatorError) for e in exc_info.value.failures.values()
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_root_range_checked(engine):
    def program(c):
        c.gatherv([b"x"], root=9)

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, program, engine=engine)


# --------------------------------------------------------------------------
# Bulk-engine replay safety: the collector pattern (gatherv + exec_once'd
# side effect + scatterv) must run the side effect exactly once per rank
# even though collective parking re-executes rank bodies.


def test_bulk_replay_runs_wave_side_effect_once():
    effects: dict[int, int] = {}

    def program(c):
        sub = c.split(color=c.rank // 2, key=c.rank)
        gathered = sub.gatherv([bytes([c.rank])], root=0)
        if sub.rank == 0:
            flat = tuple(b for frags in gathered for b in frags)

            def wave():
                effects[c.rank] = effects.get(c.rank, 0) + 1
                return flat

            payload = sub.exec_once(wave)
            out = sub.scatterv([payload] * sub.size)
        else:
            out = sub.scatterv(None)
        c.barrier()  # force parking after the wave -> replays happen
        return out

    out = run_spmd(6, program, engine="bulk", nworkers=2)
    assert effects == {0: 1, 2: 1, 4: 1}
    for rank, got in enumerate(out):
        group_root = (rank // 2) * 2
        assert got == (bytes([group_root]), bytes([group_root + 1]))


def test_bulk_gatherv_only_blocks_the_root():
    # MPI-relaxed readiness: non-root senders return before the root
    # consumed; their later ops proceed without the whole group.
    def program(c):
        c.gatherv([bytes([c.rank])], root=0)
        if c.rank != 0:
            c.send(c.rank * 10, dest=0)
            return "sent"
        return sorted(c.recv() for _ in range(c.size - 1))

    out = run_spmd(4, program, engine="bulk")
    assert out[0] == [10, 20, 30]
