"""SPMD runner: result collection, failure handling, deadlock safety."""

import pytest

from repro.errors import CollectiveMismatchError, SimMPIError, SpmdWorkerError
from repro.simmpi import run_spmd, spmd_context


def test_results_in_rank_order():
    assert run_spmd(6, lambda c: c.rank**2) == [0, 1, 4, 9, 16, 25]


def test_kwargs_forwarded():
    def fn(c, base, scale=1):
        return base + c.rank * scale

    assert run_spmd(3, fn, 100, scale=10) == [100, 110, 120]


def test_single_failure_reported_with_rank():
    def fn(c):
        if c.rank == 2:
            raise ValueError("boom")
        return c.rank

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(4, fn)
    assert set(exc_info.value.failures) == {2}
    assert isinstance(exc_info.value.failures[2], ValueError)


def test_failure_during_collective_releases_other_ranks():
    # Rank 1 dies before the collective; the others must not deadlock.
    def fn(c):
        if c.rank == 1:
            raise RuntimeError("early death")
        return c.allreduce(1)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn)
    # Only the true failure is reported; abort fallout is filtered.
    assert set(exc_info.value.failures) == {1}


def test_multiple_independent_failures_all_reported():
    def fn(c):
        raise KeyError(c.rank)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(3, fn)
    assert set(exc_info.value.failures) == {0, 1, 2}


def test_collective_mismatch_detected():
    def fn(c):
        if c.rank == 0:
            return c.gather(1)
        return c.allgather(1)

    with pytest.raises(SpmdWorkerError) as exc_info:
        run_spmd(2, fn)
    assert any(
        isinstance(e, CollectiveMismatchError)
        for e in exc_info.value.failures.values()
    )


def test_barrier_timeout_does_not_hang():
    def fn(c):
        if c.rank == 0:
            return "skipped the barrier"
        c.barrier()
        return "passed"

    with pytest.raises(SpmdWorkerError):
        run_spmd(2, fn, timeout=0.2)


def test_spmd_context_provides_comms():
    with spmd_context(3) as comms:
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)


def test_spmd_context_aborts_on_exit():
    with spmd_context(2) as comms:
        saved = comms[0]
    with pytest.raises(SimMPIError):
        saved.barrier()


def test_error_message_names_first_failure():
    def fn(c):
        if c.rank == 1:
            raise ValueError("specific cause")
        return None

    with pytest.raises(SpmdWorkerError, match="specific cause"):
        run_spmd(2, fn)


def test_large_world():
    out = run_spmd(64, lambda c: c.allreduce(1))
    assert out == [64] * 64
