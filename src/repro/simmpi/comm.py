"""MPI-like communicators over threads.

A :class:`Comm` is one rank's view of a communication group.  All ranks of a
group share a :class:`_Backbone` carrying the synchronization primitives.
Collectives follow a deposit / barrier / read / barrier pattern so that a
slot array can be reused safely between consecutive operations.

**Payload contract** (MPI buffer semantics, normalized in
:func:`_copy_payload`): mutable buffer-like payloads — NumPy arrays,
``bytearray``, ``memoryview`` — are **snapshotted at deposit time**, so
the sender may reuse or mutate its buffer the moment ``send``/``bcast``/…
returns, and the receiver owns what it gets.  Arrays arrive as arrays and
``bytearray`` as ``bytearray``; a ``memoryview`` (including views of
arrays or of the zero-copy I/O path's staging buffers) arrives as
immutable ``bytes`` — the view would otherwise dangle once the sender's
buffer is reused, exactly the "silent conversion surprise" this contract
pins down.  Everything else travels by reference, which is safe for the
immutable metadata tuples the SION layer exchanges.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    SimMPIError,
)

#: Wildcard source for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG = -1

#: Returned by :meth:`Comm.split` for ranks passing ``color=None``.
COMM_NULL = None


#: Exact types that are immutable (or travel by reference anyway) and can
#: skip the snapshot type dispatch entirely.  This is the hot path: SION
#: metadata exchange deposits ints, strings, bytes and tuples of those on
#: every collective, and none of them need copying.
_IMMUTABLE_FAST = frozenset(
    (int, float, complex, bool, str, bytes, tuple, frozenset, type(None))
)


def _copy_payload(value: Any) -> Any:
    """Snapshot mutable buffer-like payloads at deposit time.

    The type mapping is part of the public contract (see module
    docstring): ``ndarray -> ndarray`` (contiguous copy), ``bytearray ->
    bytearray``, ``memoryview -> bytes`` (an immutable snapshot: the
    receiver must never observe later mutations of the sender's
    underlying buffer, and a live view would also pin — or break, once
    resized — buffers like the coalescing writer's staging area).
    Non-contiguous memoryviews flatten in C order, matching ``tobytes``.
    Immutable payloads (ints, strings, bytes, tuples, ...) pass through
    untouched via an exact-type fast path.
    """
    if value.__class__ in _IMMUTABLE_FAST:
        return value
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, bytearray):
        return bytearray(value)
    if isinstance(value, memoryview):
        return value.tobytes()
    return value


class _Mailbox:
    """Per-destination message store supporting wildcard matching."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._messages: list[tuple[int, int, Any]] = []
        self._aborted = False

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cond:
            self._messages.append((source, tag, payload))
            self._cond.notify_all()

    def get(self, source: int, tag: int, timeout: float | None) -> tuple[int, int, Any]:
        def _match() -> int | None:
            for i, (src, tg, _) in enumerate(self._messages):
                if source not in (ANY_SOURCE, src):
                    continue
                if tag not in (ANY_TAG, tg):
                    continue
                return i
            return None

        with self._cond:
            while True:
                if self._aborted:
                    raise SimMPIError("communicator aborted while waiting for a message")
                idx = _match()
                if idx is not None:
                    return self._messages.pop(idx)
                if not self._cond.wait(timeout=timeout):
                    raise SimMPIError(
                        f"recv timed out waiting for source={source} tag={tag}"
                    )

    def try_get(self, source: int, tag: int) -> tuple[int, int, Any] | None:
        """Non-blocking matching receive; ``None`` when nothing matches."""
        with self._cond:
            if self._aborted:
                raise SimMPIError("communicator aborted while probing for a message")
            for i, (src, tg, _) in enumerate(self._messages):
                if source not in (ANY_SOURCE, src):
                    continue
                if tag not in (ANY_TAG, tg):
                    continue
                return self._messages.pop(i)
            return None

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


class _Backbone:
    """Shared state of one communicator group."""

    def __init__(self, size: int, timeout: float | None = None) -> None:
        if size < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self.timeout = timeout
        self.barrier = threading.Barrier(size)
        self.lock = threading.Lock()
        self.slots: list[Any] = [None] * size
        self.opnames: list[str | None] = [None] * size
        self.mailboxes = [_Mailbox() for _ in range(size)]
        self.shared: dict[Any, Any] = {}
        self.generation = 0
        self.children: list[_Backbone] = []
        self._aborted = False

    def abort(self) -> None:
        """Break all synchronization points so blocked ranks raise."""
        self._aborted = True
        self.barrier.abort()
        for box in self.mailboxes:
            box.abort()
        for child in self.children:
            child.abort()

    def wait_barrier(self) -> None:
        if self._aborted:
            raise SimMPIError("communicator aborted")
        try:
            self.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            raise SimMPIError(
                "collective aborted (another rank failed or barrier timed out)"
            ) from exc


class Comm:
    """One rank's handle on a communicator.

    Mirrors the subset of MPI used by SIONlib and the example applications:
    ``rank``/``size``, ``barrier``, ``bcast``, ``gather``/``gatherv``,
    ``allgather``, ``scatter``/``scatterv``, ``alltoall``,
    ``reduce``/``allreduce``, ``send``/``recv``, ``split`` and ``dup``.
    """

    def __init__(self, backbone: _Backbone, rank: int) -> None:
        if not 0 <= rank < backbone.size:
            raise CommunicatorError(
                f"rank {rank} out of range for size {backbone.size}"
            )
        self._bb = backbone
        self._rank = rank

    # -- introspection ----------------------------------------------------

    @property
    def rank(self) -> int:
        """This task's rank within the communicator (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._bb.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Comm rank={self._rank} size={self.size}>"

    # -- internal collective machinery ------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(f"root {root} out of range for size {self.size}")

    def _exchange(
        self,
        opname: str,
        value: Any,
        reader: Callable[[list[Any]], Any] | None = None,
    ) -> Any:
        """Deposit/barrier/read primitive behind every collective.

        Every rank deposits, then reads between the two barriers while the
        slot array is stable.  ``reader`` extracts this rank's result from
        the slots; the default snapshots the whole array (allgather
        semantics).  Collectives that only need one element (bcast,
        scatter) or nothing at all (barrier) pass a cheaper reader so a
        size-``n`` world does O(n) total work per collective instead of
        O(n^2).  Readers must not raise: they run between barriers, where
        an exception would strand the other ranks until the timeout.
        """
        bb = self._bb
        with bb.lock:
            bb.slots[self._rank] = value
            bb.opnames[self._rank] = opname
        bb.wait_barrier()
        names = {n for n in bb.opnames if n is not None}
        if len(names) > 1:
            bb.abort()
            raise CollectiveMismatchError(
                f"ranks disagree on collective operation: {sorted(names)}"
            )
        result = reader(bb.slots) if reader is not None else list(bb.slots)
        bb.wait_barrier()
        if self._rank == 0:
            with bb.lock:
                bb.slots = [None] * bb.size
                bb.opnames = [None] * bb.size
                bb.generation += 1
        bb.wait_barrier()
        return result

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank of the communicator has entered."""
        self._exchange("barrier", None, reader=_read_nothing)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to every rank; returns it."""
        self._check_root(root)
        deposited = _copy_payload(value) if self._rank == root else None
        return self._exchange("bcast", deposited, reader=lambda slots: slots[root])

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank at ``root``.

        Returns the rank-ordered list at ``root`` and ``None`` elsewhere.
        """
        self._check_root(root)
        reader = list if self._rank == root else _read_nothing
        return self._exchange("gather", _copy_payload(value), reader=reader)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank and return the list on every rank."""
        return self._exchange("allgather", _copy_payload(value))

    def gatherv(self, fragments: Sequence[Any], root: int = 0) -> list[tuple[Any, ...]] | None:
        """Gather a *variable-length* fragment sequence per rank at ``root``.

        The vectored gather behind collector-rank aggregation
        (:mod:`repro.sion.collective`): each rank contributes any number
        of buffer fragments, and ``root`` receives the rank-ordered list
        of fragment tuples.  Every fragment is snapshotted at deposit per
        the payload contract (``memoryview -> bytes``), so senders may
        reuse their buffers the moment the call returns.  Non-root ranks
        receive ``None``.
        """
        self._check_root(root)
        deposit = tuple(_copy_payload(f) for f in fragments)
        reader = list if self._rank == root else _read_nothing
        return self._exchange("gatherv", deposit, reader=reader)

    def scatterv(
        self, values: Sequence[Sequence[Any]] | None, root: int = 0
    ) -> tuple[Any, ...]:
        """Scatter a *variable-length* fragment sequence to each rank.

        ``root`` provides one sequence per rank (``len == size``); every
        rank receives its sequence as a tuple.  The vectored mirror of
        :meth:`gatherv`, used to distribute per-sender read fragments
        from a collector rank.  Fragments follow the payload contract.
        """
        self._check_root(root)
        if self._rank == root:
            if values is None or len(values) != self.size:
                self._bb.abort()
                raise CommunicatorError(
                    "scatterv requires exactly one fragment sequence per rank "
                    "at the root"
                )
            deposit = [tuple(_copy_payload(f) for f in seq) for seq in values]
        else:
            deposit = None
        return self._exchange(
            "scatterv", deposit, reader=lambda slots: slots[root][self._rank]
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``len == size`` values from ``root``; each rank gets one."""
        self._check_root(root)
        if self._rank == root:
            if values is None or len(values) != self.size:
                self._bb.abort()
                raise CommunicatorError(
                    "scatter requires exactly one value per rank at the root"
                )
            deposit = [_copy_payload(v) for v in values]
        else:
            deposit = None
        return self._exchange(
            "scatter", deposit, reader=lambda slots: slots[root][self._rank]
        )

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Each rank provides one value per destination; returns its column."""
        if len(values) != self.size:
            self._bb.abort()
            raise CommunicatorError("alltoall requires exactly one value per rank")
        slots = self._exchange("alltoall", [_copy_payload(v) for v in values])
        return [slots[src][self._rank] for src in range(self.size)]

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] | None = None,
        root: int = 0,
    ) -> Any | None:
        """Reduce one value per rank at ``root`` (default op: ``+``)."""
        self._check_root(root)
        reader = list if self._rank == root else _read_nothing
        slots = self._exchange("reduce", _copy_payload(value), reader=reader)
        if self._rank != root:
            return None
        return _fold(slots, op)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce one value per rank; the result is returned on every rank."""
        slots = self._exchange("allreduce", _copy_payload(value))
        return _fold(slots, op)

    # -- point to point ----------------------------------------------------

    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        """Send ``value`` to rank ``dest`` (asynchronous, buffered)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"dest {dest} out of range for size {self.size}")
        if tag < 0:
            raise CommunicatorError("tags must be non-negative")
        self._bb.mailboxes[dest].put(self._rank, tag, _copy_payload(value))

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, return_status: bool = False
    ) -> Any:
        """Receive a message; blocks until a matching one arrives.

        With ``return_status=True`` returns ``(value, source, tag)``.
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        src, tg, payload = self._bb.mailboxes[self._rank].get(
            source, tag, self._bb.timeout
        )
        if return_status:
            return payload, src, tg
        return payload

    def sendrecv(
        self, value: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
    ) -> Any:
        """Combined send and receive (deadlock-free shift pattern)."""
        self.send(value, dest, tag)
        return self.recv(source, tag)

    def isend(self, value: Any, dest: int, tag: int = 0) -> "Request":
        """Non-blocking send.  Buffered, so it completes immediately;
        the returned request exists for MPI-style symmetry."""
        self.send(value, dest, tag)
        req = Request(self, None, None)
        req._done = True
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Request":
        """Non-blocking receive; complete it with ``wait()`` or ``test()``."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        return Request(self, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already waiting (not consumed)."""
        box = self._bb.mailboxes[self._rank]
        with box._cond:
            for src, tg, _ in box._messages:
                if source not in (ANY_SOURCE, src):
                    continue
                if tag not in (ANY_TAG, tg):
                    continue
                return True
            return False

    # -- communicator management -------------------------------------------

    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order subgroups by ``key``.

        Ranks passing ``color=None`` receive :data:`COMM_NULL`.  New ranks are
        assigned by ascending ``(key, old_rank)``.  The grouping is computed
        **once per world** by whichever rank reads the slots first (the
        others reuse the shared plan), so a split costs O(n log n) total
        rather than per rank — the difference between a few hundred and a
        few hundred thousand simulated ranks.
        """
        bb = self._bb

        def build_plan(slots: list[Any]) -> "dict[int, tuple[_Backbone, int]] | BaseException":
            # Runs between the exchange barriers, where an escaping
            # exception would strand the other ranks until the timeout —
            # so a failed plan (e.g. unorderable keys) is *returned* and
            # raised by every rank after the exchange completes.
            gen = bb.generation
            with bb.lock:
                plan = bb.shared.get(("splitplan", gen))
                if plan is None:
                    try:
                        plan = _split_plan(slots, bb.timeout)
                    except Exception as exc:  # noqa: BLE001 - re-raised per rank
                        plan = exc
                    else:
                        seen: set[int] = set()
                        for child, _ in plan.values():
                            if id(child) not in seen:
                                seen.add(id(child))
                                bb.children.append(child)
                    bb.shared[("splitplan", gen)] = plan
            return plan

        plan = self._exchange("split", (color, key), reader=build_plan)
        if self._rank == 0:
            with bb.lock:
                bb.shared.pop(("splitplan", bb.generation - 1), None)
        if isinstance(plan, BaseException):
            # Raise a per-rank wrapper: re-raising the one shared instance
            # from every rank thread would race on its __traceback__.
            raise CommunicatorError(f"split failed: {plan!r}") from plan
        entry = plan.get(self._rank)
        if entry is None:
            return COMM_NULL
        child, new_rank = entry
        return Comm(child, new_rank)

    def dup(self) -> "Comm":
        """Duplicate the communicator (fresh synchronization context)."""
        comm = self.split(color=0, key=self._rank)
        assert comm is not None
        return comm

    def subworld(self, size: int) -> "Comm | None":
        """Communicator over ranks ``[0, size)``; :data:`COMM_NULL` elsewhere.

        Sub-world sizing for partitioned readers: a job that wrote a
        checkpoint with ``n`` tasks re-enters the multifile with its
        first ``m`` ranks as the analysis world (``paropen(...,
        partitioned=True)`` on the returned communicator), while the
        remaining ranks skip the read entirely.  Collective over the
        parent communicator.

        Raises :class:`CommunicatorError` unless ``1 <= size <=
        self.size``.

        Example::

            sub = comm.subworld(32)
            if sub is not COMM_NULL:
                f = sion.paropen(path, "r", sub, partitioned=True)
        """
        if not 1 <= size <= self.size:
            raise CommunicatorError(
                f"subworld size {size} out of range for {self.size} ranks"
            )
        return self.split(color=0 if self._rank < size else None, key=self._rank)

    def exec_once(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` exactly once per rank program; returns its result.

        On this thread-per-rank engine a rank body executes exactly once,
        so this simply calls ``fn``.  Under the bulk engine
        (:mod:`repro.simmpi.bulk`) rank bodies may be *re-executed* when a
        collective unblocks, and there ``exec_once`` memoizes: the first
        execution's result is returned on every replay and ``fn`` never
        runs again.  Wrap non-idempotent side effects (truncating file
        creates, appends, counters) in ``exec_once`` to write portable
        SPMD programs.
        """
        return fn()

    def abort(self) -> None:
        """Abort the communicator group, waking all blocked ranks with errors."""
        self._bb.abort()


class Request:
    """Handle for a pending non-blocking operation."""

    def __init__(self, comm: "Comm", source: int | None, tag: int | None) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    @property
    def completed(self) -> bool:
        """True once the operation has finished (after wait/test success)."""
        return self._done

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``."""
        if self._done:
            return True, self._value
        assert self._source is not None or self._source == ANY_SOURCE
        box = self._comm._bb.mailboxes[self._comm.rank]
        hit = box.try_get(self._source if self._source is not None else ANY_SOURCE,
                          self._tag if self._tag is not None else ANY_TAG)
        if hit is None:
            return False, None
        _, _, payload = hit
        self._value = payload
        self._done = True
        return True, payload

    def wait(self) -> Any:
        """Block until completion; returns the received value (sends: None)."""
        if self._done:
            return self._value
        value = self._comm.recv(
            self._source if self._source is not None else ANY_SOURCE,
            self._tag if self._tag is not None else ANY_TAG,
        )
        self._value = value
        self._done = True
        return value


def _read_nothing(slots: list[Any]) -> None:
    """Reader for ranks whose collective result is ``None`` (barrier, ...)."""
    return None


def _split_plan(
    info: list[Any], timeout: float | None
) -> dict[int, tuple["_Backbone", int]]:
    """Shared split assignment: old rank -> (child backbone, new rank)."""
    groups: dict[int, list[tuple[int, int]]] = {}
    for old_rank, (col, k) in enumerate(info):
        if col is None:
            continue
        groups.setdefault(col, []).append((k, old_rank))
    plan: dict[int, tuple[_Backbone, int]] = {}
    for members in groups.values():
        members.sort()
        child = _Backbone(len(members), timeout=timeout)
        for new_rank, (_, old_rank) in enumerate(members):
            plan[old_rank] = (child, new_rank)
    return plan


def _fold(values: Iterable[Any], op: Callable[[Any, Any], Any] | None) -> Any:
    it = iter(values)
    try:
        acc = next(it)
    except StopIteration:  # pragma: no cover - size >= 1 enforced
        raise CommunicatorError("reduce over empty communicator") from None
    if op is None:
        for v in it:
            acc = acc + v
    else:
        for v in it:
            acc = op(acc, v)
    return acc


def make_world(size: int, timeout: float | None = None) -> list[Comm]:
    """Create a world communicator and return each rank's handle."""
    bb = _Backbone(size, timeout=timeout)
    return [Comm(bb, r) for r in range(size)]
