"""Bulk SPMD engine: hundreds of thousands of ranks without the threads.

The default :func:`~repro.simmpi.runner.run_spmd` engine gives every rank
its own OS thread, which is faithful but tops out around a few thousand
ranks — each collective crosses three full-world barriers and the kernel
has to schedule one thread per rank.  This module executes the same
``fn(comm, ...)`` programs *cooperatively*: a bounded worker pool (default
``min(32, ncpu * 4)``) drains a run queue of logical ranks, and whole-world
collectives deposit into a **preallocated world buffer** (one slot array
per in-flight collective) instead of the thread engine's per-rank
mailbox-and-barrier dance.

Plain Python functions cannot be suspended mid-call without a dedicated
stack, so cooperative scheduling is built on **memoized replay**:

* a rank body runs until it hits a communication op whose result is not
  yet available (e.g. a barrier some ranks have not reached);
* the op's deposit is recorded in the world buffer, the rank is parked,
  and its worker moves on to another rank;
* when the op completes, parked ranks re-run **from the top** — every
  communication op they already completed returns its logged result
  instantly and with no side effects, so the body deterministically
  reaches the frontier and continues.

The number of re-runs per rank is bounded by the number of collectives it
parks on (roughly the program's collective depth), not by world size.

**Program contract** (checked where cheap, documented here in full):

1. Rank bodies must be *deterministic* given their communication results.
   The engine verifies on replay that the op sequence matches and raises
   ``SimMPIError`` otherwise.
2. Non-communication side effects between ops may be re-executed and must
   be idempotent (positioned writes of the same bytes are; truncating
   creates and appends are not).  Guard non-idempotent effects with
   ``Comm.exec_once(fn)``, which executes exactly once and replays its
   result.  Cleanup code (``finally`` blocks, ``__exit__``) that runs
   while a suspension unwinds may *call* communication ops safely: they
   re-suspend without touching any state, and the cleanup re-runs for
   real on replay.
3. Busy-wait loops over ``iprobe()``/``Request.test()`` never yield the
   worker; use blocking ``recv``/``wait`` instead.
4. ``allgather``/``allreduce`` results are computed once and **shared**
   between ranks (the thread engine hands each rank a private copy);
   treat them as read-only.
5. Because segments re-execute, side effects your own rank body performs
   between ops (counters, logging, ad-hoc file appends) count replays
   too unless you guard them with ``exec_once``.  The SION layer guards
   *all* of its backend interactions — collective mode's waves and
   direct mode's handles (routed through
   :class:`repro.sion.openspec.ReplayGuardedFile`) alike — so SimFS
   accounting and ``CountingBackend`` telemetry of multifile I/O are
   deterministic and engine-independent, which is what the
   ``collective`` and ``repartition`` benchmark suites pin.

Collective *readiness* is relaxed exactly as real MPI allows: a bcast
returns at the root immediately, a gather blocks only the root, a barrier
blocks everyone.  Programs that relied on the thread engine's accidental
barrier-per-collective behavior should add explicit barriers.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    SimMPIError,
)
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, COMM_NULL, _copy_payload, _fold


def default_nworkers() -> int:
    """Bounded pool size: enough to overlap I/O, few enough to stay cheap.

    Thin re-export: the actual default lives in
    :func:`repro.simmpi.runner.default_bulk_nworkers`, the single source
    of truth the ``run_spmd`` docstring refers to.
    """
    from repro.simmpi.runner import default_bulk_nworkers

    return default_bulk_nworkers()


class _Suspend(BaseException):
    """Internal control flow: unwind a rank body back to the scheduler.

    Derives from ``BaseException`` so user-level ``except Exception``
    handlers cannot swallow a suspension.
    """


class _Coll:
    """One in-flight collective: the preallocated world buffer plus state."""

    __slots__ = (
        "name", "slots", "deposited", "filled", "consumed",
        "waiters", "wake_root", "shared", "has_shared",
    )

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.slots: list[Any] = [None] * size
        self.deposited = bytearray(size)
        self.filled = 0
        self.consumed = 0
        self.waiters: set[int] = set()  # global ranks parked on this op
        self.wake_root: int | None = None  # deposit by this lrank readies waiters
        self.shared: Any = None  # once-computed shared result (allgather, ...)
        self.has_shared = False


class _Mailbox:
    """Point-to-point message store of one (world, local rank)."""

    __slots__ = ("messages", "waiters")

    def __init__(self) -> None:
        self.messages: deque[tuple[int, int, Any]] = deque()
        self.waiters: set[int] = set()

    def match(self, source: int, tag: int) -> tuple[int, int, Any] | None:
        for i, (src, tg, _) in enumerate(self.messages):
            if source not in (ANY_SOURCE, src):
                continue
            if tag not in (ANY_TAG, tg):
                continue
            msg = self.messages[i]
            del self.messages[i]
            return msg
        return None

    def probe(self, source: int, tag: int) -> bool:
        return any(
            source in (ANY_SOURCE, src) and tag in (ANY_TAG, tg)
            for src, tg, _ in self.messages
        )


class _World:
    """Shared state of one communicator group under the bulk engine."""

    __slots__ = ("engine", "size", "granks", "consumed_ops", "colls", "_mailboxes")

    def __init__(self, engine: "_BulkEngine", granks: Sequence[int]) -> None:
        self.engine = engine
        self.size = len(granks)
        self.granks = list(granks)
        #: Per local rank: number of collective ops already consumed — the
        #: frontier collective of local rank ``lr`` is op number
        #: ``consumed_ops[lr]`` of this world.
        self.consumed_ops = [0] * self.size
        self.colls: dict[int, _Coll] = {}
        self._mailboxes: dict[int, _Mailbox] = {}

    def mailbox(self, lrank: int) -> _Mailbox:
        box = self._mailboxes.get(lrank)
        if box is None:
            box = self._mailboxes[lrank] = _Mailbox()
        return box


class _RankState:
    """Execution state of one logical rank."""

    __slots__ = ("log", "cursor", "done", "parked_on", "suspending", "running", "rewake")

    def __init__(self) -> None:
        #: Completed op results as ``(opname, value)``, in program order.
        self.log: list[tuple[str, Any]] = []
        self.cursor = 0
        self.done = False
        self.parked_on = "start"
        #: True while a worker is executing (or unwinding) this rank's
        #: body.  A wake that arrives in that window — the rank deposited,
        #: released the engine lock, and its op completed before the
        #: worker finished unwinding — must not re-queue it yet, or two
        #: workers would execute the same rank concurrently.  It is
        #: deferred via ``rewake`` until the worker hands the rank back.
        self.running = False
        self.rewake = False
        #: True while a ``_Suspend`` is unwinding this rank's body.  Any
        #: communication attempted by cleanup code (``finally`` blocks,
        #: context-manager ``__exit__`` like ``SionParallelFile.parclose``)
        #: during the unwind must itself suspend without touching the op
        #: log or world state — the cleanup re-runs for real on replay.
        self.suspending = False


class BulkComm:
    """One rank's communicator handle under the bulk engine.

    Implements the same surface as :class:`repro.simmpi.comm.Comm`; see the
    module docstring for the few intentional semantic differences.
    """

    __slots__ = ("_world", "_lrank", "_grank", "_state")

    def __init__(self, world: _World, lrank: int) -> None:
        self._world = world
        self._lrank = lrank
        self._grank = world.granks[lrank]
        self._state = world.engine.states[self._grank]

    # -- introspection ----------------------------------------------------

    @property
    def rank(self) -> int:
        """This task's rank within the communicator (0-based)."""
        return self._lrank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._world.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BulkComm rank={self._lrank} size={self._world.size}>"

    # -- replay machinery -------------------------------------------------

    def _replay(self, name: str) -> Any:
        """Return the logged result of the op at the cursor (fast path)."""
        state = self._state
        logged_name, value = state.log[state.cursor]
        if logged_name != name:
            raise SimMPIError(
                f"non-deterministic rank program: replay expected "
                f"{logged_name!r} but rank {self._grank} called {name!r}; "
                "bulk-engine programs must be deterministic"
            )
        state.cursor += 1
        return value

    def _op(self, name: str, frontier: Callable[[], Any]) -> Any:
        """Replay a logged op or execute ``frontier`` exactly once."""
        state = self._state
        if state.suspending:
            raise _Suspend()
        if state.cursor < len(state.log):
            return self._replay(name)
        engine = self._world.engine
        if engine.aborted:
            raise SimMPIError("communicator aborted (another rank failed)")
        value = frontier()
        state.log.append((name, value))
        state.cursor += 1
        return value

    def _collective(
        self,
        name: str,
        deposit: Any,
        ready: Callable[[_Coll], bool],
        result: Callable[[_Coll], Any],
        wake_root: int | None = None,
        copy: bool = True,
    ) -> Any:
        state = self._state
        if state.suspending:
            raise _Suspend()
        if state.cursor < len(state.log):
            # Replay fast path: no lock, no deposit copy, no closures.
            return self._replay(name)
        world, lr = self._world, self._lrank
        engine = world.engine
        with engine.cond:
            if engine.aborted:
                raise SimMPIError("communicator aborted (another rank failed)")
            k = world.consumed_ops[lr]
            coll = world.colls.get(k)
            if coll is None:
                coll = world.colls[k] = _Coll(name, world.size)
                coll.wake_root = wake_root
            if coll.name != name:
                engine.abort()
                raise CollectiveMismatchError(
                    "ranks disagree on collective operation: "
                    f"{sorted((coll.name, name))}"
                )
            if not coll.deposited[lr]:
                coll.deposited[lr] = 1
                coll.slots[lr] = _copy_payload(deposit) if copy else deposit
                coll.filled += 1
                engine.last_progress = time.monotonic()
                if coll.filled == world.size or lr == coll.wake_root:
                    engine.wake(coll.waiters)
            if not ready(coll):
                coll.waiters.add(self._grank)
                state.parked_on = f"{name} (op {k} of a {world.size}-rank world)"
                state.suspending = True
                raise _Suspend()
            value = result(coll)
            world.consumed_ops[lr] += 1
            coll.consumed += 1
            if coll.consumed == world.size:
                del world.colls[k]
        state.log.append((name, value))
        state.cursor += 1
        return value

    # -- collectives ------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank of the communicator has entered."""
        self._collective(
            "barrier", None, _ready_all, lambda coll: None
        )

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to every rank; returns it."""
        self._check_root(root)
        deposit = value if self._lrank == root else None
        return self._collective(
            "bcast",
            deposit,
            lambda coll: bool(coll.deposited[root]),
            lambda coll: coll.slots[root],
            wake_root=root,
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank at ``root`` (``None`` elsewhere)."""
        self._check_root(root)
        if self._lrank == root:
            # The world buffer itself is handed to the root: by the time
            # every rank has deposited, the engine never touches it again.
            return self._collective(
                "gather", value, _ready_all, lambda coll: coll.slots
            )
        return self._collective("gather", value, _ready_always, _result_none)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank; every rank gets the (shared) list."""
        return self._collective("allgather", value, _ready_all, _shared_list)

    def gatherv(self, fragments: Sequence[Any], root: int = 0) -> list[tuple[Any, ...]] | None:
        """Gather a variable-length fragment sequence per rank at ``root``.

        Same contract as :meth:`repro.simmpi.comm.Comm.gatherv`: fragments
        are snapshotted per the payload contract at deposit, only the root
        blocks (MPI-relaxed readiness), and the result replays on body
        re-execution like every collective.
        """
        self._check_root(root)
        # Tuples travel by reference through _copy_payload, so snapshot
        # each fragment explicitly before depositing (copy=False below).
        deposit = tuple(_copy_payload(f) for f in fragments)
        if self._lrank == root:
            return self._collective(
                "gatherv", deposit, _ready_all, lambda coll: coll.slots, copy=False
            )
        return self._collective(
            "gatherv", deposit, _ready_always, _result_none, copy=False
        )

    def scatterv(
        self, values: Sequence[Sequence[Any]] | None, root: int = 0
    ) -> tuple[Any, ...]:
        """Scatter one variable-length fragment sequence to each rank.

        Mirror of :meth:`gatherv`; non-root ranks only wait for the
        root's deposit, as real MPI allows.
        """
        self._check_root(root)
        if self._lrank == root:
            if values is None or len(values) != self.size:
                self._world.engine.abort()
                raise CommunicatorError(
                    "scatterv requires exactly one fragment sequence per rank "
                    "at the root"
                )
            deposit = [tuple(_copy_payload(f) for f in seq) for seq in values]
            return self._collective(
                "scatterv", deposit, _ready_always,
                lambda coll: coll.slots[root][root],
                wake_root=root, copy=False,
            )
        lr = self._lrank
        return self._collective(
            "scatterv", None,
            lambda coll: bool(coll.deposited[root]),
            lambda coll: coll.slots[root][lr],
            wake_root=root,
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``len == size`` values from ``root``; each rank gets one."""
        self._check_root(root)
        if self._lrank == root:
            if values is None or len(values) != self.size:
                self._world.engine.abort()
                raise CommunicatorError(
                    "scatter requires exactly one value per rank at the root"
                )
            deposit = [_copy_payload(v) for v in values]
            return self._collective(
                "scatter", deposit, _ready_always,
                lambda coll: coll.slots[root][root],
                wake_root=root, copy=False,
            )
        lr = self._lrank
        return self._collective(
            "scatter", None,
            lambda coll: bool(coll.deposited[root]),
            lambda coll: coll.slots[root][lr],
            wake_root=root,
        )

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Each rank provides one value per destination; returns its column."""
        if len(values) != self.size:
            self._world.engine.abort()
            raise CommunicatorError("alltoall requires exactly one value per rank")
        lr = self._lrank
        return self._collective(
            "alltoall",
            [_copy_payload(v) for v in values],
            _ready_all,
            lambda coll: [coll.slots[src][lr] for src in range(coll_size(coll))],
            copy=False,
        )

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] | None = None,
        root: int = 0,
    ) -> Any | None:
        """Reduce one value per rank at ``root`` (default op: ``+``)."""
        self._check_root(root)
        if self._lrank == root:
            return self._collective(
                "reduce", value, _ready_all,
                lambda coll: _fold(coll.slots, op),
            )
        return self._collective("reduce", value, _ready_always, _result_none)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce one value per rank; the (shared) result on every rank."""

        def shared_fold(coll: _Coll) -> Any:
            if not coll.has_shared:
                coll.shared = _fold(coll.slots, op)
                coll.has_shared = True
            return coll.shared

        return self._collective("allreduce", value, _ready_all, shared_fold)

    # -- point to point ---------------------------------------------------

    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        """Send ``value`` to rank ``dest`` (asynchronous, buffered)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"dest {dest} out of range for size {self.size}")
        if tag < 0:
            raise CommunicatorError("tags must be non-negative")
        world, lr = self._world, self._lrank
        engine = world.engine

        def frontier() -> None:
            with engine.cond:
                box = world.mailbox(dest)
                box.messages.append((lr, tag, _copy_payload(value)))
                engine.wake(box.waiters)
            return None

        return self._op("send", frontier)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, return_status: bool = False
    ) -> Any:
        """Receive a message; parks this rank until a matching one arrives.

        With ``return_status=True`` returns ``(value, source, tag)``.
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        world, lr = self._world, self._lrank
        engine = world.engine

        def frontier() -> Any:
            with engine.cond:
                if engine.aborted:
                    raise SimMPIError("communicator aborted (another rank failed)")
                box = world.mailbox(lr)
                hit = box.match(source, tag)
                if hit is None:
                    box.waiters.add(self._grank)
                    self._state.parked_on = f"recv(source={source}, tag={tag})"
                    self._state.suspending = True
                    raise _Suspend()
                return hit

        src, tg, payload = self._op("recv", frontier)
        if return_status:
            return payload, src, tg
        return payload

    def sendrecv(
        self, value: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
    ) -> Any:
        """Combined send and receive (deadlock-free shift pattern)."""
        self.send(value, dest, tag)
        return self.recv(source, tag)

    def isend(self, value: Any, dest: int, tag: int = 0) -> "BulkRequest":
        """Non-blocking send.  Buffered, so it completes immediately."""
        self.send(value, dest, tag)
        req = BulkRequest(self, None, None)
        req._done = True
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "BulkRequest":
        """Non-blocking receive; complete it with ``wait()`` or ``test()``."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        return BulkRequest(self, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already waiting (not consumed).

        The probe is an op: its outcome is logged and replayed.  Spinning
        on ``iprobe`` without an intervening blocking op never yields the
        worker — use ``recv`` to wait.
        """
        world, lr = self._world, self._lrank
        engine = world.engine

        def frontier() -> bool:
            with engine.cond:
                return world.mailbox(lr).probe(source, tag)

        return self._op("iprobe", frontier)

    # -- communicator management ------------------------------------------

    def split(self, color: int | None, key: int = 0) -> "BulkComm | None":
        """Partition by ``color``; subgroup ranks ordered by ``(key, rank)``."""
        world = self._world

        def split_result(coll: _Coll) -> "BulkComm | None":
            if not coll.has_shared:
                coll.shared = _split_worlds(world, coll.slots)
                coll.has_shared = True
            entry = coll.shared.get(self._lrank)
            if entry is None:
                return COMM_NULL
            child_world, new_rank = entry
            return BulkComm(child_world, new_rank)

        return self._collective("split", (color, key), _ready_all, split_result)

    def dup(self) -> "BulkComm":
        """Duplicate the communicator (fresh synchronization context)."""
        comm = self.split(color=0, key=self._lrank)
        assert comm is not None
        return comm

    def subworld(self, size: int) -> "BulkComm | None":
        """Communicator over ranks ``[0, size)``; ``COMM_NULL`` elsewhere.

        Same contract as :meth:`repro.simmpi.comm.Comm.subworld` — the
        sub-world sizing hook for partitioned readers.
        """
        if not 1 <= size <= self.size:
            raise CommunicatorError(
                f"subworld size {size} out of range for {self.size} ranks"
            )
        return self.split(color=0 if self._lrank < size else None, key=self._lrank)

    def exec_once(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` exactly once for this rank; replays return its result.

        The bulk-engine escape hatch for non-idempotent side effects: on
        replay the logged result is returned and ``fn`` is not called.
        ``fn`` must not perform communication — a skipped replay would
        desynchronize the op log (checked).
        """

        def frontier() -> Any:
            before = len(self._state.log)
            value = fn()
            if len(self._state.log) != before:
                raise SimMPIError(
                    "exec_once callable must not perform communication"
                )
            return value

        return self._op("exec_once", frontier)

    def abort(self) -> None:
        """Abort the whole bulk world, failing every unfinished rank."""
        engine = self._world.engine
        with engine.cond:
            engine.abort()

    # -- internals ---------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(f"root {root} out of range for size {self.size}")


def coll_size(coll: _Coll) -> int:
    return len(coll.slots)


def _ready_all(coll: _Coll) -> bool:
    return coll.filled == len(coll.slots)


def _ready_always(coll: _Coll) -> bool:
    return True


def _result_none(coll: _Coll) -> None:
    return None


def _shared_list(coll: _Coll) -> list[Any]:
    """Shared allgather result (computed once, handed to every rank)."""
    if not coll.has_shared:
        coll.shared = list(coll.slots)
        coll.has_shared = True
    return coll.shared


def _split_worlds(
    world: _World, slots: list[Any]
) -> dict[int, tuple[_World, int]]:
    """Shared split plan: old local rank -> (child world, new rank)."""
    groups: dict[int, list[tuple[int, int]]] = {}
    for old_rank, (color, key) in enumerate(slots):
        if color is None:
            continue
        groups.setdefault(color, []).append((key, old_rank))
    plan: dict[int, tuple[_World, int]] = {}
    for members in groups.values():
        members.sort()
        granks = [world.granks[old] for _, old in members]
        child = _World(world.engine, granks)
        for new_rank, (_, old_rank) in enumerate(members):
            plan[old_rank] = (child, new_rank)
    return plan


class BulkRequest:
    """Handle for a pending non-blocking operation (bulk engine)."""

    def __init__(self, comm: BulkComm, source: int | None, tag: int | None) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    @property
    def completed(self) -> bool:
        """True once the operation has finished (after wait/test success)."""
        return self._done

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``.

        Each call is an op whose outcome is logged; see ``iprobe`` for the
        busy-wait caveat.
        """
        if self._done:
            return True, self._value
        comm = self._comm
        world, lr = comm._world, comm._lrank
        engine = world.engine
        source = self._source if self._source is not None else ANY_SOURCE
        tag = self._tag if self._tag is not None else ANY_TAG

        def frontier() -> tuple[bool, Any]:
            with engine.cond:
                hit = world.mailbox(lr).match(source, tag)
                if hit is None:
                    return False, None
                return True, hit[2]

        done, payload = comm._op("tryrecv", frontier)
        if done:
            self._done = True
            self._value = payload
        return done, payload

    def wait(self) -> Any:
        """Park until completion; returns the received value (sends: None)."""
        if self._done:
            return self._value
        value = self._comm.recv(
            self._source if self._source is not None else ANY_SOURCE,
            self._tag if self._tag is not None else ANY_TAG,
        )
        self._value = value
        self._done = True
        return value


class _BulkEngine:
    """Worklist scheduler executing logical ranks on a bounded pool."""

    def __init__(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        timeout: float | None,
        nworkers: int | None,
    ) -> None:
        if nprocs < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {nprocs}")
        self.size = nprocs
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.timeout = timeout
        #: Monotonic time of the last scheduler progress (op completion,
        #: wake, rank finishing).  The timeout is a *stall* bound — it
        #: fires only when nothing has advanced for ``timeout`` seconds,
        #: matching the thread engine's per-wait semantics rather than
        #: capping healthy long runs.
        self.last_progress = time.monotonic()
        self.nworkers = max(1, nworkers if nworkers is not None else default_nworkers())
        self.cond = threading.Condition()
        self.states = [_RankState() for _ in range(nprocs)]
        self.world = _World(self, range(nprocs))
        self.runnable: deque[int] = deque(range(nprocs))
        self.queued = bytearray(b"\x01" * nprocs)
        self.results: list[Any] = [None] * nprocs
        self.failures: dict[int, BaseException] = {}
        self.ndone = 0
        self.active = 0
        self.aborted = False
        self.finished = False
        self.timed_out = False

    # -- scheduler state transitions (call with ``self.cond`` held) --------

    def wake(self, waiters: set[int]) -> None:
        """Move parked ranks back onto the run queue (or defer: a rank
        whose previous execution is still unwinding re-queues when its
        worker releases it)."""
        if not waiters:
            return
        self.last_progress = time.monotonic()
        for grank in waiters:
            state = self.states[grank]
            if state.done or self.queued[grank]:
                continue
            if state.running:
                state.rewake = True
            else:
                self.queued[grank] = 1
                self.runnable.append(grank)
        waiters.clear()
        self.cond.notify_all()

    def abort(self) -> None:
        # The condition wraps an RLock, so this is safe both from worker
        # context (lock already held) and from plain rank code.
        with self.cond:
            self.aborted = True
            self.cond.notify_all()

    def _finish_rank(self, grank: int, result: Any) -> None:
        state = self.states[grank]
        state.done = True
        self.results[grank] = result
        self.ndone += 1
        self.last_progress = time.monotonic()

    def _fail_rank(self, grank: int, exc: BaseException) -> None:
        state = self.states[grank]
        state.done = True
        self.failures[grank] = exc
        self.ndone += 1
        self.aborted = True

    def _declare_stuck(self) -> None:
        """No runnable rank, no active worker, ranks unfinished: fail them."""
        for grank, state in enumerate(self.states):
            if state.done:
                continue
            if self.timed_out:
                exc: BaseException = SimMPIError(
                    f"bulk engine stalled: no scheduler progress for "
                    f"{self.timeout}s while rank {grank} was parked on "
                    f"{state.parked_on}; raise REPRO_SPMD_TIMEOUT if the "
                    "machine is genuinely this slow"
                )
            elif self.aborted:
                exc = SimMPIError("communicator aborted (another rank failed)")
            else:
                exc = SimMPIError(
                    f"deadlock: rank {grank} is parked on {state.parked_on} "
                    "and no other rank can complete it"
                )
            self._fail_rank(grank, exc)
        self.finished = True
        self.cond.notify_all()

    # -- execution ---------------------------------------------------------

    def _execute(self, grank: int) -> None:
        state = self.states[grank]
        state.cursor = 0
        state.suspending = False
        comm = BulkComm(self.world, grank)
        try:
            result = self.fn(comm, *self.args, **self.kwargs)
        except _Suspend:
            return
        except BaseException as exc:  # noqa: BLE001 - fanned out to caller
            with self.cond:
                self._fail_rank(grank, exc)
                self.cond.notify_all()
            return
        with self.cond:
            self._finish_rank(grank, result)
            self.cond.notify_all()

    def _worker(self) -> None:
        while True:
            with self.cond:
                grank = None
                while grank is None:
                    if self.finished or self.ndone >= self.size:
                        self.finished = True
                        self.cond.notify_all()
                        return
                    if self.aborted and self.active == 0:
                        self._declare_stuck()
                        return
                    if self.runnable and not self.aborted:
                        grank = self.runnable.popleft()
                        self.queued[grank] = 0
                        if self.states[grank].done:
                            grank = None
                            continue
                        self.states[grank].running = True
                        self.active += 1
                        break
                    if self.active == 0 and not self.runnable:
                        self._declare_stuck()
                        return
                    remaining = None
                    if self.timeout is not None:
                        remaining = self.last_progress + self.timeout - time.monotonic()
                        if remaining <= 0:
                            if not self.timed_out:
                                self.timed_out = True
                                self.aborted = True
                                self.cond.notify_all()
                            if self.active == 0:
                                self._declare_stuck()
                                return
                            # A worker is still executing a rank body; it
                            # will fail at its next op and notify.  Wait —
                            # spinning here would hold the condition lock
                            # and starve that worker.
                            remaining = 0.05
                    self.cond.wait(timeout=remaining)
            self._execute(grank)
            with self.cond:
                state = self.states[grank]
                state.running = False
                self.active -= 1
                if state.rewake:
                    state.rewake = False
                    if not state.done and not self.queued[grank]:
                        self.queued[grank] = 1
                        self.runnable.append(grank)
                self.cond.notify_all()

    def run(self) -> list[Any]:
        nworkers = min(self.nworkers, self.size)
        if nworkers == 1:
            self._worker()
        else:
            threads = [
                threading.Thread(
                    target=self._worker, name=f"bulk-worker-{i}", daemon=True
                )
                for i in range(nworkers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if self.failures:
            from repro.simmpi.runner import spmd_failure_error

            raise spmd_failure_error(self.failures)
        return self.results


def run_spmd_bulk(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = None,
    nworkers: int | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` cooperative ranks.

    Same result contract as :func:`repro.simmpi.runner.run_spmd`; see the
    module docstring for the bulk-engine program contract.  Usually invoked
    as ``run_spmd(..., engine="bulk")``.
    """
    return _BulkEngine(nprocs, fn, args, kwargs, timeout, nworkers).run()
