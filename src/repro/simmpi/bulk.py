"""Bulk SPMD engine: a million ranks without the threads — or the logs.

The default :func:`~repro.simmpi.runner.run_spmd` engine gives every rank
its own OS thread, which is faithful but tops out around a few thousand
ranks.  This module executes the same ``fn(comm, ...)`` programs
*cooperatively* on a bounded worker pool, and — since the wave-vectorized
rewrite — keeps the whole control plane in **flat per-wave arrays** so
each rank costs O(1) python objects of engine state:

* **Shared op log.**  Rank op sequences are interned opcode ids appended
  to :class:`_Program` rows *shared* by every rank that runs the same
  sequence (the SPMD common case: one row for the whole world, plus one
  for the root's extra ``exec_once`` steps).  A rank's log is just two
  integers in flat arrays — its program row and its op count — not a
  per-rank list of tuples.
* **Value columns.**  Logged op *results* live in per-position
  :class:`_Col` columns that start as a single shared value (barrier
  ``None``, the bcast/allgather/allreduce shared object) and spill to an
  exceptions dict, then a dense object ndarray, only when ranks actually
  disagree (per-rank ``exec_once`` results such as file handles).
* **Preallocated wave buffers.**  Each in-flight collective is one
  :class:`_Wave`: an object ndarray of deposit slots, a bool deposit
  bitmap, and a preallocated int32 waiter array.  Waking the world when a
  wave completes is a handful of vectorized index operations over flag
  arrays, not a python loop over a waiter set.
* **Uniform-program fast path.**  When the first wave of a world
  completes with every member on the same program row, replay
  verification switches from per-op opcode compares to a running
  sequence fingerprint checked once when the rank reaches its frontier.

Plain Python functions cannot be suspended mid-call without a dedicated
stack, so cooperative scheduling is built on **memoized replay**:

* a rank body runs until it hits a communication op whose result is not
  yet available (e.g. a barrier some ranks have not reached);
* the op's deposit is recorded in the wave buffer, the rank is parked,
  and its worker moves on to another rank;
* when the op completes, parked ranks re-run **from the top** — every
  communication op they already completed returns its column value
  instantly and with no side effects, so the body deterministically
  reaches the frontier and continues.

The number of re-runs per rank is bounded by the number of collectives it
parks on (roughly the program's collective depth), not by world size.

**Program contract** (checked where cheap, documented here in full):

1. Rank bodies must be *deterministic* given their communication results.
   The engine verifies on replay that the op sequence matches — per op on
   the general path, by sequence fingerprint on the uniform fast path —
   and raises ``SimMPIError`` otherwise.
2. Non-communication side effects between ops may be re-executed and must
   be idempotent (positioned writes of the same bytes are; truncating
   creates and appends are not).  Guard non-idempotent effects with
   ``Comm.exec_once(fn)``, which executes exactly once and replays its
   result.  Cleanup code (``finally`` blocks, ``__exit__``) that runs
   while a suspension unwinds may *call* communication ops safely: they
   re-suspend without touching any state, and the cleanup re-runs for
   real on replay.
3. Busy-wait loops over ``iprobe()``/``Request.test()`` never yield the
   worker; use blocking ``recv``/``wait`` instead.
4. ``allgather``/``allreduce`` results are computed once and **shared**
   between ranks (the thread engine hands each rank a private copy);
   treat them as read-only.
5. Because segments re-execute, side effects your own rank body performs
   between ops (counters, logging, ad-hoc file appends) count replays
   too unless you guard them with ``exec_once``.  The SION layer guards
   *all* of its backend interactions — collective mode's waves and
   direct mode's handles (routed through
   :class:`repro.sion.openspec.ReplayGuardedFile`) alike — so SimFS
   accounting and ``CountingBackend`` telemetry of multifile I/O are
   deterministic and engine-independent, which is what the
   ``collective`` and ``repartition`` benchmark suites pin.

Collective *readiness* is relaxed exactly as real MPI allows: a bcast
returns at the root immediately, a gather blocks only the root, a barrier
blocks everyone.  Programs that relied on the thread engine's accidental
barrier-per-collective behavior should add explicit barriers.

Pass ``stats={}`` to :func:`run_spmd_bulk` (or ``engine_stats={}``
through ``run_spmd``) to receive per-wave timing and replay counters —
the raw material of the ``scale`` suite's phase breakdown.
"""

from __future__ import annotations

import threading
import time
from array import array
from collections import deque
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    SimMPIError,
)
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, COMM_NULL, _copy_payload, _fold


def default_nworkers() -> int:
    """Bounded pool size: enough to overlap I/O, few enough to stay cheap.

    Thin re-export: the actual default lives in
    :func:`repro.simmpi.runner.default_bulk_nworkers`, the single source
    of truth the ``run_spmd`` docstring refers to.
    """
    from repro.simmpi.runner import default_bulk_nworkers

    return default_bulk_nworkers()


class _Suspend(BaseException):
    """Internal control flow: unwind a rank body back to the scheduler.

    Derives from ``BaseException`` so user-level ``except Exception``
    handlers cannot swallow a suspension.
    """


# --------------------------------------------------------------------------
# Opcode interning and program fingerprints.

_OP_NAMES: list[str] = []
_OP_IDS: dict[str, int] = {}


def _opid(name: str) -> int:
    opid = _OP_IDS.get(name)
    if opid is None:
        opid = _OP_IDS[name] = len(_OP_NAMES)
        _OP_NAMES.append(name)
    return opid


_OP_BARRIER = _opid("barrier")
_OP_BCAST = _opid("bcast")
_OP_GATHER = _opid("gather")
_OP_ALLGATHER = _opid("allgather")
_OP_GATHERV = _opid("gatherv")
_OP_SCATTERV = _opid("scatterv")
_OP_SCATTER = _opid("scatter")
_OP_ALLTOALL = _opid("alltoall")
_OP_REDUCE = _opid("reduce")
_OP_ALLREDUCE = _opid("allreduce")
_OP_SPLIT = _opid("split")
_OP_SEND = _opid("send")
_OP_RECV = _opid("recv")
_OP_IPROBE = _opid("iprobe")
_OP_TRYRECV = _opid("tryrecv")
_OP_EXEC_ONCE = _opid("exec_once")

#: FNV-1a-style running fingerprint of an op-id sequence, masked to stay
#: a machine int.  Used by the uniform-program fast path: replays
#: accumulate the fingerprint instead of checking each opcode, and the
#: result is compared against the program's prefix fingerprint once, when
#: the rank crosses from replay into fresh execution.
_FP_SEED = 0xCBF29CE484222325
_FP_MULT = 0x100000001B3
_FP_MASK = (1 << 64) - 1


def _fp_step(fp: int, opid: int) -> int:
    return ((fp ^ opid) * _FP_MULT) & _FP_MASK


#: Above this many distinct per-rank values a column abandons its
#: exceptions dict for a dense object ndarray (8 bytes/rank + values).
_COL_SPILL = 16


class _Col:
    """Value column of one program position: the logged results, by rank.

    Starts empty, becomes *uniform* on the first deposit (a single shared
    value — the common case for barriers, bcast/allgather shared objects
    and ``None`` results), collects disagreeing ranks in an exceptions
    dict, and spills to a dense object ndarray indexed by global rank
    once per-rank values are the rule (``exec_once`` handles).
    """

    __slots__ = ("mode", "value", "exc", "dense")

    def __init__(self) -> None:
        self.mode = 0  # 0 empty, 1 uniform(+exceptions), 2 dense
        self.value: Any = None
        self.exc: dict[int, Any] | None = None
        self.dense: Any = None

    def put(self, grank: int, value: Any, engine_size: int) -> None:
        """Record ``value`` for ``grank`` (caller holds the program lock)."""
        mode = self.mode
        if mode == 2:
            self.dense[grank] = value
            return
        if mode == 0:
            self.value = value
            self.mode = 1
            return
        if value is self.value:
            return
        exc = self.exc
        if exc is None:
            exc = self.exc = {}
        exc[grank] = value
        if len(exc) > _COL_SPILL and engine_size > 2 * _COL_SPILL:
            dense = np.empty(engine_size, dtype=object)
            dense.fill(self.value)
            for g, v in exc.items():
                dense[g] = v
            # Publish dense before flipping the mode: lock-free readers
            # observe either the old uniform view or the complete dense
            # one (the exceptions dict is kept so a stale mode-1 read
            # stays correct).
            self.dense = dense
            self.mode = 2

    def get(self, grank: int) -> Any:
        """Logged value for ``grank`` (lock-free; replay hot path)."""
        mode = self.mode
        if mode == 1:
            exc = self.exc
            if exc is not None:
                return exc.get(grank, self.value)
            return self.value
        return self.dense[grank]


class _Program:
    """One shared op sequence: interned opcode ids plus value columns.

    Ranks running identical sequences share a row; a rank whose next op
    diverges branches to a child row that shares the common-prefix
    columns by reference.  ``fps[k]`` is the running fingerprint of
    ``ops[:k]``; ``uniform`` is set when a whole world was observed on
    this row at its first wave, enabling fingerprint-verified replay.
    """

    __slots__ = ("ops", "cols", "fps", "branches", "uniform")

    def __init__(
        self,
        ops: list[int] | None = None,
        cols: list[_Col] | None = None,
        fps: list[int] | None = None,
    ) -> None:
        self.ops: list[int] = ops if ops is not None else []
        self.cols: list[_Col] = cols if cols is not None else []
        self.fps: list[int] = fps if fps is not None else [_FP_SEED]
        self.branches: dict[tuple[int, int], _Program] = {}
        self.uniform = False


class _Exec:
    """Transient state of one execution (one run of one rank body).

    Created per :meth:`_BulkEngine._execute` call and dropped when the
    body returns, parks, or fails — engine state that must *persist*
    across executions lives in the engine's flat arrays instead.
    """

    __slots__ = ("prog", "cursor", "nlogged", "fast", "fp", "verified", "suspending")

    def __init__(self, prog: _Program, nlogged: int) -> None:
        self.prog = prog
        self.cursor = 0
        self.nlogged = nlogged
        #: Snapshot of ``prog.uniform`` at execution start: the replay
        #: verification mode must not change mid-run (the fingerprint is
        #: only meaningful if accumulated from op 0).
        self.fast = prog.uniform
        self.fp = _FP_SEED
        self.verified = False
        #: True while a ``_Suspend`` is unwinding this body.  Any
        #: communication attempted by cleanup code (``finally`` blocks,
        #: context-manager ``__exit__`` like ``SionParallelFile.parclose``)
        #: during the unwind must itself suspend without touching the
        #: program or wave state — the cleanup re-runs for real on replay.
        self.suspending = False


class _Wave:
    """One in-flight collective: preallocated world buffers plus state."""

    __slots__ = (
        "opid", "slots", "deposited", "filled", "consumed",
        "waiters", "nwaiters", "wake_root", "shared", "has_shared", "t0",
    )

    def __init__(self, opid: int, size: int) -> None:
        self.opid = opid
        self.slots = np.empty(size, dtype=object)
        self.deposited = np.zeros(size, dtype=bool)
        self.filled = 0
        self.consumed = 0
        #: Parked global ranks, packed front-first; reset on every wake.
        self.waiters = np.empty(size, dtype=np.int32)
        self.nwaiters = 0
        self.wake_root: int | None = None  # deposit by this lrank readies waiters
        self.shared: Any = None  # once-computed shared result (allgather, ...)
        self.has_shared = False
        self.t0 = time.monotonic()


class _Mailbox:
    """Point-to-point message store of one (world, local rank)."""

    __slots__ = ("messages", "waiters")

    def __init__(self) -> None:
        self.messages: deque[tuple[int, int, Any]] = deque()
        self.waiters: set[int] = set()

    def match(self, source: int, tag: int) -> tuple[int, int, Any] | None:
        for i, (src, tg, _) in enumerate(self.messages):
            if source not in (ANY_SOURCE, src):
                continue
            if tag not in (ANY_TAG, tg):
                continue
            msg = self.messages[i]
            del self.messages[i]
            return msg
        return None

    def probe(self, source: int, tag: int) -> bool:
        return any(
            source in (ANY_SOURCE, src) and tag in (ANY_TAG, tg)
            for src, tg, _ in self.messages
        )


class _World:
    """Shared state of one communicator group under the bulk engine.

    ``granks`` maps local rank to engine (global) rank; for the root
    world it is a ``range``, so a million-rank world costs no per-rank
    objects here either.  ``consumed[lr]`` counts collective ops local
    rank ``lr`` has completed — its frontier collective is op number
    ``consumed[lr]`` of this world.
    """

    __slots__ = ("engine", "size", "granks", "consumed", "waves", "_mailboxes")

    def __init__(self, engine: "_BulkEngine", granks: Sequence[int]) -> None:
        self.engine = engine
        self.size = len(granks)
        self.granks = granks
        self.consumed = array("l", bytes(8 * self.size))
        self.waves: dict[int, _Wave] = {}
        self._mailboxes: dict[int, _Mailbox] = {}

    def mailbox(self, lrank: int) -> _Mailbox:
        box = self._mailboxes.get(lrank)
        if box is None:
            box = self._mailboxes[lrank] = _Mailbox()
        return box


class BulkComm:
    """One rank's communicator handle under the bulk engine.

    Implements the same surface as :class:`repro.simmpi.comm.Comm`; see the
    module docstring for the few intentional semantic differences.
    """

    __slots__ = ("_world", "_engine", "_lrank", "_grank")

    def __init__(self, world: _World, lrank: int) -> None:
        self._world = world
        self._engine = world.engine
        self._lrank = lrank
        self._grank = world.granks[lrank]

    # -- introspection ----------------------------------------------------

    @property
    def rank(self) -> int:
        """This task's rank within the communicator (0-based)."""
        return self._lrank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self._world.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BulkComm rank={self._lrank} size={self._world.size}>"

    # -- replay machinery -------------------------------------------------

    def _replay(self, ex: _Exec, opid: int) -> Any:
        """Return the column value of the op at the cursor (hot path)."""
        prog, c = ex.prog, ex.cursor
        if ex.fast:
            # Uniform fast path: accumulate the sequence fingerprint;
            # verified once against the program prefix at the frontier.
            ex.fp = _fp_step(ex.fp, opid)
        elif prog.ops[c] != opid:
            raise SimMPIError(
                f"non-deterministic rank program: replay expected "
                f"{_OP_NAMES[prog.ops[c]]!r} but rank {self._grank} called "
                f"{_OP_NAMES[opid]!r}; bulk-engine programs must be "
                "deterministic"
            )
        ex.cursor = c + 1
        return prog.cols[c].get(self._grank)

    def _verify_frontier(self, ex: _Exec) -> None:
        """Fingerprint check when a fast-path replay reaches its frontier."""
        if ex.fast and not ex.verified:
            if ex.fp != ex.prog.fps[ex.cursor]:
                raise SimMPIError(
                    f"non-deterministic rank program: rank {self._grank}'s "
                    "replayed op sequence diverged from the logged program "
                    "(fingerprint mismatch); bulk-engine programs must be "
                    "deterministic"
                )
        ex.verified = True

    def _advance(self, ex: _Exec, opid: int, value: Any) -> Any:
        """Record a completed frontier op in the (shared) program row."""
        engine = self._engine
        g = self._grank
        with engine.proglock:
            self._verify_frontier(ex)
            prog, k = ex.prog, ex.cursor
            if k < len(prog.ops):
                if prog.ops[k] == opid:
                    prog.cols[k].put(g, value, engine.size)
                else:
                    # This rank diverges from the row it shared: branch to
                    # (or create) the child row for its op, sharing the
                    # common-prefix columns by reference.
                    child = prog.branches.get((k, opid))
                    if child is None:
                        fps = prog.fps[: k + 1]
                        fps.append(_fp_step(fps[-1], opid))
                        child = _Program(
                            prog.ops[:k] + [opid], prog.cols[:k] + [_Col()], fps
                        )
                        prog.branches[(k, opid)] = child
                    child.cols[k].put(g, value, engine.size)
                    engine.progs[g] = ex.prog = child
            else:
                col = _Col()
                col.put(g, value, engine.size)
                prog.ops.append(opid)
                prog.cols.append(col)
                prog.fps.append(_fp_step(prog.fps[-1], opid))
            engine.nops[g] = ex.nlogged = ex.cursor = k + 1
        return value

    def _op(self, opid: int, frontier: Callable[[], Any]) -> Any:
        """Replay a logged op or execute ``frontier`` exactly once."""
        engine = self._engine
        ex = engine.execs[self._grank]
        if ex.suspending:
            raise _Suspend()
        if ex.cursor < ex.nlogged:
            return self._replay(ex, opid)
        if engine.aborted:
            raise SimMPIError("communicator aborted (another rank failed)")
        return self._advance(ex, opid, frontier())

    def _collective(
        self,
        opid: int,
        deposit: Any,
        ready: Callable[[_Wave], bool],
        result: Callable[[_Wave], Any],
        wake_root: int | None = None,
        copy: bool = True,
    ) -> Any:
        engine = self._engine
        g = self._grank
        ex = engine.execs[g]
        if ex.suspending:
            raise _Suspend()
        if ex.cursor < ex.nlogged:
            # Replay fast path: no lock, no deposit copy.
            return self._replay(ex, opid)
        world, lr = self._world, self._lrank
        with engine.cond:
            if engine.aborted:
                raise SimMPIError("communicator aborted (another rank failed)")
            k = world.consumed[lr]
            wave = world.waves.get(k)
            if wave is None:
                wave = world.waves[k] = _Wave(opid, world.size)
                wave.wake_root = wake_root
            if wave.opid != opid:
                engine.abort()
                raise CollectiveMismatchError(
                    "ranks disagree on collective operation: "
                    f"{sorted((_OP_NAMES[wave.opid], _OP_NAMES[opid]))}"
                )
            if not wave.deposited[lr]:
                wave.deposited[lr] = True
                wave.slots[lr] = _copy_payload(deposit) if copy else deposit
                wave.filled += 1
                engine.last_progress = time.monotonic()
                if wave.filled == world.size or lr == wave.wake_root:
                    engine.wake_wave(wave)
            if not ready(wave):
                nw = wave.nwaiters
                wave.waiters[nw] = g
                wave.nwaiters = nw + 1
                engine.park_collective(g, opid, k, world.size)
                ex.suspending = True
                raise _Suspend()
            value = result(wave)
            world.consumed[lr] = k + 1
            wave.consumed += 1
            if wave.consumed == world.size:
                del world.waves[k]
                engine.note_wave_done(world, wave)
                if k == 0:
                    engine.maybe_mark_uniform(world)
        return self._advance(ex, opid, value)

    # -- collectives ------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank of the communicator has entered."""
        self._collective(_OP_BARRIER, None, _ready_all, _result_none)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to every rank; returns it."""
        self._check_root(root)
        deposit = value if self._lrank == root else None
        return self._collective(
            _OP_BCAST,
            deposit,
            lambda wave: bool(wave.deposited[root]),
            lambda wave: wave.slots[root],
            wake_root=root,
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank at ``root`` (``None`` elsewhere)."""
        self._check_root(root)
        if self._lrank == root:
            return self._collective(
                _OP_GATHER, value, _ready_all, _slots_list
            )
        return self._collective(_OP_GATHER, value, _ready_always, _result_none)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank; every rank gets the (shared) list."""
        return self._collective(_OP_ALLGATHER, value, _ready_all, _shared_list)

    def gatherv(self, fragments: Sequence[Any], root: int = 0) -> list[tuple[Any, ...]] | None:
        """Gather a variable-length fragment sequence per rank at ``root``.

        Same contract as :meth:`repro.simmpi.comm.Comm.gatherv`: fragments
        are snapshotted per the payload contract at deposit, only the root
        blocks (MPI-relaxed readiness), and the result replays on body
        re-execution like every collective.
        """
        self._check_root(root)
        # Tuples travel by reference through _copy_payload, so snapshot
        # each fragment explicitly before depositing (copy=False below).
        deposit = tuple(_copy_payload(f) for f in fragments)
        if self._lrank == root:
            return self._collective(
                _OP_GATHERV, deposit, _ready_all, _slots_list, copy=False
            )
        return self._collective(
            _OP_GATHERV, deposit, _ready_always, _result_none, copy=False
        )

    def scatterv(
        self, values: Sequence[Sequence[Any]] | None, root: int = 0
    ) -> tuple[Any, ...]:
        """Scatter one variable-length fragment sequence to each rank.

        Mirror of :meth:`gatherv`; non-root ranks only wait for the
        root's deposit, as real MPI allows.
        """
        self._check_root(root)
        if self._lrank == root:
            if values is None or len(values) != self.size:
                self._engine.abort()
                raise CommunicatorError(
                    "scatterv requires exactly one fragment sequence per rank "
                    "at the root"
                )
            deposit = [tuple(_copy_payload(f) for f in seq) for seq in values]
            return self._collective(
                _OP_SCATTERV, deposit, _ready_always,
                lambda wave: wave.slots[root][root],
                wake_root=root, copy=False,
            )
        lr = self._lrank
        return self._collective(
            _OP_SCATTERV, None,
            lambda wave: bool(wave.deposited[root]),
            lambda wave: wave.slots[root][lr],
            wake_root=root,
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``len == size`` values from ``root``; each rank gets one."""
        self._check_root(root)
        if self._lrank == root:
            if values is None or len(values) != self.size:
                self._engine.abort()
                raise CommunicatorError(
                    "scatter requires exactly one value per rank at the root"
                )
            deposit = [_copy_payload(v) for v in values]
            return self._collective(
                _OP_SCATTER, deposit, _ready_always,
                lambda wave: wave.slots[root][root],
                wake_root=root, copy=False,
            )
        lr = self._lrank
        return self._collective(
            _OP_SCATTER, None,
            lambda wave: bool(wave.deposited[root]),
            lambda wave: wave.slots[root][lr],
            wake_root=root,
        )

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Each rank provides one value per destination; returns its column."""
        if len(values) != self.size:
            self._engine.abort()
            raise CommunicatorError("alltoall requires exactly one value per rank")
        lr = self._lrank
        return self._collective(
            _OP_ALLTOALL,
            [_copy_payload(v) for v in values],
            _ready_all,
            lambda wave: [wave.slots[src][lr] for src in range(len(wave.slots))],
            copy=False,
        )

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] | None = None,
        root: int = 0,
    ) -> Any | None:
        """Reduce one value per rank at ``root`` (default op: ``+``)."""
        self._check_root(root)
        if self._lrank == root:
            return self._collective(
                _OP_REDUCE, value, _ready_all,
                lambda wave: _fold(list(wave.slots), op),
            )
        return self._collective(_OP_REDUCE, value, _ready_always, _result_none)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce one value per rank; the (shared) result on every rank."""

        def shared_fold(wave: _Wave) -> Any:
            if not wave.has_shared:
                wave.shared = _fold(list(wave.slots), op)
                wave.has_shared = True
            return wave.shared

        return self._collective(_OP_ALLREDUCE, value, _ready_all, shared_fold)

    # -- point to point ---------------------------------------------------

    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        """Send ``value`` to rank ``dest`` (asynchronous, buffered)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"dest {dest} out of range for size {self.size}")
        if tag < 0:
            raise CommunicatorError("tags must be non-negative")
        world, lr = self._world, self._lrank
        engine = self._engine

        def frontier() -> None:
            with engine.cond:
                box = world.mailbox(dest)
                box.messages.append((lr, tag, _copy_payload(value)))
                engine.wake(box.waiters)
            return None

        return self._op(_OP_SEND, frontier)

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, return_status: bool = False
    ) -> Any:
        """Receive a message; parks this rank until a matching one arrives.

        With ``return_status=True`` returns ``(value, source, tag)``.
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        world, lr = self._world, self._lrank
        engine = self._engine

        def frontier() -> Any:
            with engine.cond:
                if engine.aborted:
                    raise SimMPIError("communicator aborted (another rank failed)")
                box = world.mailbox(lr)
                hit = box.match(source, tag)
                if hit is None:
                    box.waiters.add(self._grank)
                    engine.park_recv(self._grank, source, tag)
                    engine.execs[self._grank].suspending = True
                    raise _Suspend()
                return hit

        src, tg, payload = self._op(_OP_RECV, frontier)
        if return_status:
            return payload, src, tg
        return payload

    def sendrecv(
        self, value: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
    ) -> Any:
        """Combined send and receive (deadlock-free shift pattern)."""
        self.send(value, dest, tag)
        return self.recv(source, tag)

    def isend(self, value: Any, dest: int, tag: int = 0) -> "BulkRequest":
        """Non-blocking send.  Buffered, so it completes immediately."""
        self.send(value, dest, tag)
        req = BulkRequest(self, None, None)
        req._done = True
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "BulkRequest":
        """Non-blocking receive; complete it with ``wait()`` or ``test()``."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        return BulkRequest(self, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already waiting (not consumed).

        The probe is an op: its outcome is logged and replayed.  Spinning
        on ``iprobe`` without an intervening blocking op never yields the
        worker — use ``recv`` to wait.
        """
        world, lr = self._world, self._lrank
        engine = self._engine

        def frontier() -> bool:
            with engine.cond:
                return world.mailbox(lr).probe(source, tag)

        return self._op(_OP_IPROBE, frontier)

    # -- communicator management ------------------------------------------

    def split(self, color: int | None, key: int = 0) -> "BulkComm | None":
        """Partition by ``color``; subgroup ranks ordered by ``(key, rank)``."""
        world = self._world

        def split_result(wave: _Wave) -> "BulkComm | None":
            if not wave.has_shared:
                wave.shared = _split_worlds(world, wave.slots)
                wave.has_shared = True
            entry = wave.shared.get(self._lrank)
            if entry is None:
                return COMM_NULL
            child_world, new_rank = entry
            return BulkComm(child_world, new_rank)

        return self._collective(_OP_SPLIT, (color, key), _ready_all, split_result)

    def dup(self) -> "BulkComm":
        """Duplicate the communicator (fresh synchronization context)."""
        comm = self.split(color=0, key=self._lrank)
        assert comm is not None
        return comm

    def subworld(self, size: int) -> "BulkComm | None":
        """Communicator over ranks ``[0, size)``; ``COMM_NULL`` elsewhere.

        Same contract as :meth:`repro.simmpi.comm.Comm.subworld` — the
        sub-world sizing hook for partitioned readers.
        """
        if not 1 <= size <= self.size:
            raise CommunicatorError(
                f"subworld size {size} out of range for {self.size} ranks"
            )
        return self.split(color=0 if self._lrank < size else None, key=self._lrank)

    def exec_once(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` exactly once for this rank; replays return its result.

        The bulk-engine escape hatch for non-idempotent side effects: on
        replay the column value is returned and ``fn`` is not called.
        Whether a rank has executed its op is exactly ``nops[rank] >
        position`` — the shared program's op count doubles as the
        exec-once bitmap.  ``fn`` must not perform communication — a
        skipped replay would desynchronize the op log (checked).
        """
        engine = self._engine

        def frontier() -> Any:
            ex = engine.execs[self._grank]
            before = ex.cursor
            value = fn()
            if ex.cursor != before:
                raise SimMPIError(
                    "exec_once callable must not perform communication"
                )
            return value

        return self._op(_OP_EXEC_ONCE, frontier)

    def abort(self) -> None:
        """Abort the whole bulk world, failing every unfinished rank."""
        engine = self._engine
        with engine.cond:
            engine.abort()

    # -- internals ---------------------------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(f"root {root} out of range for size {self.size}")


def _ready_all(wave: _Wave) -> bool:
    return wave.filled == len(wave.slots)


def _ready_always(wave: _Wave) -> bool:
    return True


def _result_none(wave: _Wave) -> None:
    return None


def _slots_list(wave: _Wave) -> list[Any]:
    """Root's gather/gatherv result: the wave buffer as a plain list."""
    return list(wave.slots)


def _shared_list(wave: _Wave) -> list[Any]:
    """Shared allgather result (computed once, handed to every rank)."""
    if not wave.has_shared:
        wave.shared = list(wave.slots)
        wave.has_shared = True
    return wave.shared


def _split_worlds(
    world: _World, slots: Sequence[Any]
) -> dict[int, tuple[_World, int]]:
    """Shared split plan: old local rank -> (child world, new rank)."""
    groups: dict[int, list[tuple[int, int]]] = {}
    for old_rank, (color, key) in enumerate(slots):
        if color is None:
            continue
        groups.setdefault(color, []).append((key, old_rank))
    plan: dict[int, tuple[_World, int]] = {}
    for members in groups.values():
        members.sort()
        granks = [world.granks[old] for _, old in members]
        child = _World(world.engine, granks)
        for new_rank, (_, old_rank) in enumerate(members):
            plan[old_rank] = (child, new_rank)
    return plan


class BulkRequest:
    """Handle for a pending non-blocking operation (bulk engine)."""

    def __init__(self, comm: BulkComm, source: int | None, tag: int | None) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    @property
    def completed(self) -> bool:
        """True once the operation has finished (after wait/test success)."""
        return self._done

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``.

        Each call is an op whose outcome is logged; see ``iprobe`` for the
        busy-wait caveat.
        """
        if self._done:
            return True, self._value
        comm = self._comm
        world, lr = comm._world, comm._lrank
        engine = comm._engine
        source = self._source if self._source is not None else ANY_SOURCE
        tag = self._tag if self._tag is not None else ANY_TAG

        def frontier() -> tuple[bool, Any]:
            with engine.cond:
                hit = world.mailbox(lr).match(source, tag)
                if hit is None:
                    return False, None
                return True, hit[2]

        done, payload = comm._op(_OP_TRYRECV, frontier)
        if done:
            self._done = True
            self._value = payload
        return done, payload

    def wait(self) -> Any:
        """Park until completion; returns the received value (sends: None)."""
        if self._done:
            return self._value
        value = self._comm.recv(
            self._source if self._source is not None else ANY_SOURCE,
            self._tag if self._tag is not None else ANY_TAG,
        )
        self._value = value
        self._done = True
        return value


#: Waiter batches below this size wake with a plain loop; above it, the
#: numpy views over the flag arrays take over (one vectorized pass).
_WAKE_VECTOR_MIN = 64

#: Per-wave timing entries kept for engine stats before dropping.
_WAVE_LOG_CAP = 4096


class _BulkEngine:
    """Worklist scheduler executing logical ranks on a bounded pool.

    All persistent per-rank state is packed into flat arrays (program
    row refs, op counts, scheduler flags, parked-on descriptors); the
    only per-rank python objects are the transient :class:`_Exec` of the
    ranks currently on a worker and whatever the rank bodies themselves
    allocate.
    """

    def __init__(
        self,
        nprocs: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        timeout: float | None,
        nworkers: int | None,
        stats: dict | None = None,
    ) -> None:
        if nprocs < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {nprocs}")
        self.size = nprocs
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.timeout = timeout
        self.stats = stats
        #: Monotonic time of the last scheduler progress (op completion,
        #: wake, rank finishing).  The timeout is a *stall* bound — it
        #: fires only when nothing has advanced for ``timeout`` seconds,
        #: matching the thread engine's per-wait semantics rather than
        #: capping healthy long runs.
        self.last_progress = time.monotonic()
        self.nworkers = max(1, nworkers if nworkers is not None else default_nworkers())
        self.cond = threading.Condition()
        #: Guards program rows, columns and the ``progs``/``nops`` arrays.
        #: Leaf lock: may be taken while holding ``cond``, never the
        #: reverse.  Replay reads are lock-free (GIL-ordered stores).
        self.proglock = threading.Lock()

        # Flat per-rank state: one shared program row at the start, zero
        # logged ops, every rank runnable and parked on "start".
        root = _Program()
        self.progs: list[_Program] = [root] * nprocs
        self.nops = array("l", bytes(8 * nprocs))
        self.execs: list[_Exec | None] = [None] * nprocs

        # Scheduler flags as byte arrays with shared numpy views: the
        # scalar paths index the bytearrays, vectorized wake indexes the
        # views — same memory.
        self.done_b = bytearray(nprocs)
        self.queued_b = bytearray(b"\x01" * nprocs)
        self.running_b = bytearray(nprocs)
        self.rewake_b = bytearray(nprocs)
        self.done_v = np.frombuffer(self.done_b, dtype=np.bool_)
        self.queued_v = np.frombuffer(self.queued_b, dtype=np.bool_)
        self.running_v = np.frombuffer(self.running_b, dtype=np.bool_)
        self.rewake_v = np.frombuffer(self.rewake_b, dtype=np.bool_)

        # Parked-on descriptors, packed; formatted lazily by
        # ``_parked_desc`` only when a stuck world is reported.
        self.parked_kind = bytearray(nprocs)  # 0 start, 1 collective, 2 recv
        self.parked_a = array("l", bytes(8 * nprocs))  # opid / source
        self.parked_b = array("l", bytes(8 * nprocs))  # op index / tag
        self.parked_c = array("l", bytes(8 * nprocs))  # world size / unused

        self.world = _World(self, range(nprocs))
        self.runnable: deque[int] = deque(range(nprocs))
        self.results: list[Any] = [None] * nprocs
        self.failures: dict[int, BaseException] = {}
        self.ndone = 0
        self.active = 0
        self.aborted = False
        self.finished = False
        self.timed_out = False

        # Stats counters (satellite telemetry, no hot-path cost beyond
        # the per-wave append).
        self.nexecs = 0
        self.nprograms = 1
        self.wave_log: list[tuple[int, str, float, float]] = []
        self.wave_log_dropped = 0

    # -- scheduler state transitions (call with ``self.cond`` held) --------

    def wake(self, waiters: set[int]) -> None:
        """Move parked ranks back onto the run queue (or defer: a rank
        whose previous execution is still unwinding re-queues when its
        worker releases it).  Set-based path for mailbox waiters."""
        if not waiters:
            return
        self.last_progress = time.monotonic()
        for grank in waiters:
            if self.done_b[grank] or self.queued_b[grank]:
                continue
            if self.running_b[grank]:
                self.rewake_b[grank] = 1
            else:
                self.queued_b[grank] = 1
                self.runnable.append(grank)
        waiters.clear()
        self.cond.notify_all()

    def wake_wave(self, wave: _Wave) -> None:
        """Wake a wave's parked ranks — vectorized over the flag views."""
        nw = wave.nwaiters
        if nw == 0:
            return
        wave.nwaiters = 0
        self.last_progress = time.monotonic()
        if nw < _WAKE_VECTOR_MIN:
            for i in range(nw):
                grank = int(wave.waiters[i])
                if self.done_b[grank] or self.queued_b[grank]:
                    continue
                if self.running_b[grank]:
                    self.rewake_b[grank] = 1
                else:
                    self.queued_b[grank] = 1
                    self.runnable.append(grank)
        else:
            w = wave.waiters[:nw]
            w = w[~(self.done_v[w] | self.queued_v[w])]
            running = self.running_v[w]
            self.rewake_v[w[running]] = True
            go = w[~running]
            self.queued_v[go] = True
            self.runnable.extend(go.tolist())
        self.cond.notify_all()

    def park_collective(self, grank: int, opid: int, k: int, wsize: int) -> None:
        self.parked_kind[grank] = 1
        self.parked_a[grank] = opid
        self.parked_b[grank] = k
        self.parked_c[grank] = wsize

    def park_recv(self, grank: int, source: int, tag: int) -> None:
        self.parked_kind[grank] = 2
        self.parked_a[grank] = source
        self.parked_b[grank] = tag

    def _parked_desc(self, grank: int) -> str:
        kind = self.parked_kind[grank]
        if kind == 1:
            return (
                f"{_OP_NAMES[self.parked_a[grank]]} (op {self.parked_b[grank]} "
                f"of a {self.parked_c[grank]}-rank world)"
            )
        if kind == 2:
            return f"recv(source={self.parked_a[grank]}, tag={self.parked_b[grank]})"
        return "start"

    def note_wave_done(self, world: _World, wave: _Wave) -> None:
        if len(self.wave_log) < _WAVE_LOG_CAP:
            self.wave_log.append(
                (world.size, _OP_NAMES[wave.opid], wave.t0, time.monotonic())
            )
        else:
            self.wave_log_dropped += 1

    def maybe_mark_uniform(self, world: _World) -> None:
        """Uniform-program detection at a world's first completed wave.

        If every member rank is on the same program row once wave 0 has
        been consumed by all of them, the row is flagged and subsequent
        replays of it verify by sequence fingerprint instead of per-op
        opcode compares.  Ranks that later diverge simply branch to
        unflagged child rows — the flag never needs revoking.
        """
        with self.proglock:
            progs = self.progs
            first = progs[world.granks[0]]
            for lr in range(1, world.size):
                if progs[world.granks[lr]] is not first:
                    return
            first.uniform = True

    def abort(self) -> None:
        # The condition wraps an RLock, so this is safe both from worker
        # context (lock already held) and from plain rank code.
        with self.cond:
            self.aborted = True
            self.cond.notify_all()

    def _finish_rank(self, grank: int, result: Any) -> None:
        self.done_b[grank] = 1
        self.results[grank] = result
        self.ndone += 1
        self.last_progress = time.monotonic()

    def _fail_rank(self, grank: int, exc: BaseException) -> None:
        self.done_b[grank] = 1
        self.failures[grank] = exc
        self.ndone += 1
        self.aborted = True

    def _declare_stuck(self) -> None:
        """No runnable rank, no active worker, ranks unfinished: fail them."""
        for grank in range(self.size):
            if self.done_b[grank]:
                continue
            if self.timed_out:
                exc: BaseException = SimMPIError(
                    f"bulk engine stalled: no scheduler progress for "
                    f"{self.timeout}s while rank {grank} was parked on "
                    f"{self._parked_desc(grank)}; raise REPRO_SPMD_TIMEOUT "
                    "if the machine is genuinely this slow"
                )
            elif self.aborted:
                exc = SimMPIError("communicator aborted (another rank failed)")
            else:
                exc = SimMPIError(
                    f"deadlock: rank {grank} is parked on "
                    f"{self._parked_desc(grank)} and no other rank can "
                    "complete it"
                )
            self._fail_rank(grank, exc)
        self.finished = True
        self.cond.notify_all()

    # -- execution ---------------------------------------------------------

    def _execute(self, grank: int) -> None:
        ex = _Exec(self.progs[grank], self.nops[grank])
        self.execs[grank] = ex
        comm = BulkComm(self.world, grank)
        try:
            result = self.fn(comm, *self.args, **self.kwargs)
            self._check_completed_replay(ex, grank)
        except _Suspend:
            return
        except BaseException as exc:  # noqa: BLE001 - fanned out to caller
            with self.cond:
                self._fail_rank(grank, exc)
                self.cond.notify_all()
            return
        finally:
            self.execs[grank] = None
        with self.cond:
            self._finish_rank(grank, result)
            self.cond.notify_all()

    def _check_completed_replay(self, ex: _Exec, grank: int) -> None:
        """Deferred replay verification when a body returns mid-replay.

        The uniform fast path checks the sequence fingerprint at the
        frontier; a nondeterministic body that returns *before* reaching
        its frontier (fewer ops than logged, or a diverging sequence the
        fingerprint accumulated) is caught here instead.
        """
        if ex.cursor < ex.nlogged:
            raise SimMPIError(
                f"non-deterministic rank program: rank {grank} returned "
                f"after {ex.cursor} ops but its log holds {ex.nlogged}; "
                "bulk-engine programs must be deterministic"
            )
        if ex.fast and not ex.verified and ex.fp != ex.prog.fps[ex.cursor]:
            raise SimMPIError(
                f"non-deterministic rank program: rank {grank}'s replayed "
                "op sequence diverged from the logged program (fingerprint "
                "mismatch); bulk-engine programs must be deterministic"
            )

    def _worker(self) -> None:
        while True:
            with self.cond:
                grank = None
                while grank is None:
                    if self.finished or self.ndone >= self.size:
                        self.finished = True
                        self.cond.notify_all()
                        return
                    if self.aborted and self.active == 0:
                        self._declare_stuck()
                        return
                    if self.runnable and not self.aborted:
                        grank = self.runnable.popleft()
                        self.queued_b[grank] = 0
                        if self.done_b[grank]:
                            grank = None
                            continue
                        self.running_b[grank] = 1
                        self.active += 1
                        break
                    if self.active == 0 and not self.runnable:
                        self._declare_stuck()
                        return
                    remaining = None
                    if self.timeout is not None:
                        remaining = self.last_progress + self.timeout - time.monotonic()
                        if remaining <= 0:
                            if not self.timed_out:
                                self.timed_out = True
                                self.aborted = True
                                self.cond.notify_all()
                            if self.active == 0:
                                self._declare_stuck()
                                return
                            # A worker is still executing a rank body; it
                            # will fail at its next op and notify.  Wait —
                            # spinning here would hold the condition lock
                            # and starve that worker.
                            remaining = 0.05
                    self.cond.wait(timeout=remaining)
            self._execute(grank)
            with self.cond:
                self.nexecs += 1
                self.running_b[grank] = 0
                self.active -= 1
                if self.rewake_b[grank]:
                    self.rewake_b[grank] = 0
                    if not self.done_b[grank] and not self.queued_b[grank]:
                        self.queued_b[grank] = 1
                        self.runnable.append(grank)
                self.cond.notify_all()

    def _fill_stats(self) -> None:
        stats = self.stats
        if stats is None:
            return
        seen: set[int] = set()
        uniform = 0
        for prog in self.progs:
            if id(prog) not in seen:
                seen.add(id(prog))
                if prog.uniform:
                    uniform += 1
        stats["engine"] = "bulk"
        stats["ranks"] = self.size
        stats["executions"] = self.nexecs
        stats["programs"] = len(seen)
        stats["uniform_programs"] = uniform
        stats["waves"] = list(self.wave_log)
        stats["waves_dropped"] = self.wave_log_dropped

    def run(self) -> list[Any]:
        nworkers = min(self.nworkers, self.size)
        if nworkers == 1:
            self._worker()
        else:
            threads = [
                threading.Thread(
                    target=self._worker, name=f"bulk-worker-{i}", daemon=True
                )
                for i in range(nworkers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        self._fill_stats()
        if self.failures:
            from repro.simmpi.runner import spmd_failure_error

            raise spmd_failure_error(self.failures)
        return self.results


def run_spmd_bulk(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = None,
    nworkers: int | None = None,
    stats: dict | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` cooperative ranks.

    Same result contract as :func:`repro.simmpi.runner.run_spmd`; see the
    module docstring for the bulk-engine program contract.  Usually invoked
    as ``run_spmd(..., engine="bulk")``.  If ``stats`` is a dict it is
    filled with engine telemetry on return: ``executions`` (total body
    runs, replay multiplier included), ``programs``/``uniform_programs``
    (shared op-log rows), and ``waves`` — up to ``_WAVE_LOG_CAP``
    ``(world_size, opname, t_created, t_completed)`` tuples the scale
    suite turns into its per-phase breakdown.
    """
    return _BulkEngine(nprocs, fn, args, kwargs, timeout, nworkers, stats).run()
