"""In-process SPMD substrate with MPI-like communicators.

The SION layer (like the original SIONlib) needs MPI only for metadata
exchange around collective open/close.  This package provides those
semantics — communicators, point-to-point messages, and the standard
collectives — over Python threads, so parallel programs can be executed
deterministically in a single process:

>>> from repro.simmpi import run_spmd
>>> def program(comm):
...     return comm.allreduce(comm.rank)
>>> run_spmd(4, program)
[6, 6, 6, 6]
"""

from repro.simmpi.bulk import BulkComm, default_nworkers, run_spmd_bulk
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, COMM_NULL, Comm
from repro.simmpi.proc import ProcComm, run_spmd_proc
from repro.simmpi.runner import (
    ENGINES,
    default_bulk_nworkers,
    normalize_engine,
    run_spmd,
    spmd_context,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "COMM_NULL",
    "BulkComm",
    "Comm",
    "ENGINES",
    "ProcComm",
    "default_bulk_nworkers",
    "default_nworkers",
    "normalize_engine",
    "run_spmd",
    "run_spmd_bulk",
    "run_spmd_proc",
    "spmd_context",
]
