"""SPMD program execution over threads.

:func:`run_spmd` launches ``nprocs`` copies of a function, each with its own
rank's :class:`~repro.simmpi.comm.Comm`, joins them, and either returns the
rank-ordered results or raises :class:`~repro.errors.SpmdWorkerError`
carrying every rank's exception.  A failing rank aborts the world's
synchronization primitives so no surviving rank deadlocks.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Iterator

from repro.errors import SimMPIError, SpmdWorkerError
from repro.simmpi.comm import Comm, make_world

#: Default safety timeout for collectives; prevents silent test hangs.
DEFAULT_TIMEOUT = 120.0


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = DEFAULT_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks and join.

    Parameters
    ----------
    nprocs:
        Number of ranks (threads) to launch.
    fn:
        The SPMD program.  Receives the rank's communicator as the first
        positional argument.
    timeout:
        Collective/receive timeout in seconds (``None`` disables).  A rank
        stuck longer than this raises instead of hanging the process.

    Returns
    -------
    list
        ``fn``'s return value for each rank, in rank order.

    Raises
    ------
    SpmdWorkerError
        If any rank raised.  ``failures`` maps rank to the exception; ranks
        that only failed because the world was aborted are omitted.
    """
    comms = make_world(nprocs, timeout=timeout)
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - fan out to caller
            with failures_lock:
                failures[rank] = exc
            comms[rank].abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        primary = {
            rank: exc
            for rank, exc in failures.items()
            if not _is_abort_fallout(exc)
        }
        raise SpmdWorkerError(primary or failures)
    return results


def _is_abort_fallout(exc: BaseException) -> bool:
    """True for errors that are consequences of another rank's failure."""
    return isinstance(exc, SimMPIError) and "abort" in str(exc).lower()


@contextlib.contextmanager
def spmd_context(
    nprocs: int, timeout: float | None = DEFAULT_TIMEOUT
) -> Iterator[list[Comm]]:
    """Context manager yielding the communicators of a world.

    Useful for driving ranks manually from test code (e.g. one rank per
    explicitly managed thread).  On exit the world is aborted so stray
    blocked threads are released.
    """
    comms = make_world(nprocs, timeout=timeout)
    try:
        yield comms
    finally:
        comms[0].abort()
