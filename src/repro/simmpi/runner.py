"""SPMD program execution over threads.

:func:`run_spmd` launches ``nprocs`` copies of a function, each with its own
rank's :class:`~repro.simmpi.comm.Comm`, joins them, and either returns the
rank-ordered results or raises :class:`~repro.errors.SpmdWorkerError`
carrying every rank's exception.  A failing rank aborts the world's
synchronization primitives so no surviving rank deadlocks.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Any, Callable, Iterator

from repro.errors import SimMPIError, SpmdWorkerError
from repro.simmpi.comm import Comm, make_world

#: Default safety timeout for collectives; prevents silent test hangs.
#: Overridable per environment via ``REPRO_SPMD_TIMEOUT`` (seconds; zero or
#: negative disables the timeout entirely) — large bulk-engine benchmark
#: runs on slow CI workers routinely need more than the 120 s default.
DEFAULT_TIMEOUT = 120.0

#: Sentinel distinguishing "caller passed nothing" from an explicit None.
_TIMEOUT_UNSET = object()

#: Engines selectable via ``run_spmd(..., engine=...)``.
ENGINES = ("threads", "bulk", "proc")

#: Accepted spellings that normalize onto :data:`ENGINES` entries.
_ENGINE_ALIASES = {"thread": "threads", "processes": "proc", "process": "proc"}


def default_bulk_nworkers() -> int:
    """Bulk-engine pool default: ``min(32, (os.cpu_count() or 1) * 4)``.

    Defined here — next to the engine dispatch that documents it — as the
    single source of truth; :mod:`repro.simmpi.bulk` re-exports it as
    ``default_nworkers``.  The ``or 1`` guard matters: ``os.cpu_count()``
    may return ``None`` (e.g. some containers), and the pool must never
    be empty.
    """
    return min(32, (os.cpu_count() or 1) * 4)


def normalize_engine(engine: str) -> str:
    """Canonical engine name for ``engine``; raises on unknown names."""
    engine = _ENGINE_ALIASES.get(engine, engine)
    if engine not in ENGINES:
        raise SimMPIError(
            f"unknown SPMD engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def resolve_timeout(timeout: Any = _TIMEOUT_UNSET) -> float | None:
    """The effective SPMD timeout: explicit arg > env var > default.

    ``REPRO_SPMD_TIMEOUT`` is read at call time (not import time) so test
    environments and CI jobs can adjust it per run.  A value <= 0 disables
    the timeout.
    """
    if timeout is not _TIMEOUT_UNSET:
        return timeout
    raw = os.environ.get("REPRO_SPMD_TIMEOUT")
    if raw is None or not raw.strip():
        return DEFAULT_TIMEOUT
    try:
        value = float(raw)
    except ValueError:
        raise SimMPIError(
            f"REPRO_SPMD_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    return value if value > 0 else None


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: Any = _TIMEOUT_UNSET,
    engine: str = "threads",
    nworkers: int | None = None,
    engine_stats: dict | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks and join.

    Parameters
    ----------
    nprocs:
        Number of logical ranks.
    fn:
        The SPMD program.  Receives the rank's communicator as the first
        positional argument.
    timeout:
        Collective/receive timeout in seconds (``None`` disables).  When
        omitted, the ``REPRO_SPMD_TIMEOUT`` environment variable (seconds,
        <= 0 disables) is consulted before falling back to
        :data:`DEFAULT_TIMEOUT`.  A rank stuck longer than this raises
        instead of hanging the process.
    engine:
        ``"threads"`` (default) runs one OS thread per rank — fully
        preemptive, supports arbitrary blocking programs, practical up to
        a few thousand ranks.  ``"bulk"`` runs ranks cooperatively on a
        bounded worker pool with wave-vectorized collectives: op logs are
        shared program rows of interned opcode ids, per-op results live
        in per-position value columns, and each collective is one
        preallocated wave buffer — O(1) python objects of engine state
        per rank, practical to a million ranks.  Rank bodies may be
        re-executed when a collective unblocks (see
        :mod:`repro.simmpi.bulk` for the contract; guard non-idempotent
        effects with ``Comm.exec_once``).
        ``"proc"`` runs one OS *process* per rank with shared-memory
        collectives — the only engine whose aggregate bandwidth scales
        past one core; payloads cross by value and backend handles must
        be picklable or rank-local (see :mod:`repro.simmpi.proc`).
        ``"thread"`` is accepted as an alias of ``"threads"``.
    nworkers:
        Bulk engine only: size of the worker pool (default
        :func:`default_bulk_nworkers`, i.e.
        ``min(32, (os.cpu_count() or 1) * 4)``).
    engine_stats:
        Bulk engine only: pass a dict to receive engine telemetry on
        return (execution counts, program rows, per-wave timings — see
        :func:`repro.simmpi.bulk.run_spmd_bulk`).  The other engines
        leave the dict untouched.

    Returns
    -------
    list
        ``fn``'s return value for each rank, in rank order.

    Raises
    ------
    SpmdWorkerError
        If any rank raised.  ``failures`` maps rank to the exception; ranks
        that only failed because the world was aborted are omitted.
    """
    timeout = resolve_timeout(timeout)
    engine = normalize_engine(engine)
    if engine == "bulk":
        from repro.simmpi.bulk import run_spmd_bulk

        return run_spmd_bulk(
            nprocs, fn, *args, timeout=timeout, nworkers=nworkers,
            stats=engine_stats, **kwargs
        )
    if engine == "proc":
        from repro.simmpi.proc import run_spmd_proc

        return run_spmd_proc(nprocs, fn, *args, timeout=timeout, **kwargs)
    comms = make_world(nprocs, timeout=timeout)
    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - fan out to caller
            with failures_lock:
                failures[rank] = exc
            comms[rank].abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(nprocs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        raise spmd_failure_error(failures)
    return results


def _is_abort_fallout(exc: BaseException) -> bool:
    """True for errors that are consequences of another rank's failure."""
    return isinstance(exc, SimMPIError) and "abort" in str(exc).lower()


def spmd_failure_error(failures: dict[int, BaseException]) -> SpmdWorkerError:
    """Shared failure policy of both engines: abort fallout is reported
    only when no primary failure remains to explain it."""
    primary = {
        rank: exc for rank, exc in failures.items() if not _is_abort_fallout(exc)
    }
    return SpmdWorkerError(primary or failures)


@contextlib.contextmanager
def spmd_context(
    nprocs: int, timeout: Any = _TIMEOUT_UNSET
) -> Iterator[list[Comm]]:
    """Context manager yielding the communicators of a world.

    Useful for driving ranks manually from test code (e.g. one rank per
    explicitly managed thread).  On exit the world is aborted so stray
    blocked threads are released.
    """
    comms = make_world(nprocs, timeout=resolve_timeout(timeout))
    try:
        yield comms
    finally:
        comms[0].abort()
