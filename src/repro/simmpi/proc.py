"""MPI-like communicators over OS processes: the true multi-core engine.

The thread engine (:mod:`repro.simmpi.comm`) and the bulk engine
(:mod:`repro.simmpi.bulk`) both execute rank code under one GIL, so
aggregate bandwidth can never exceed one core no matter how parallel the
byte path is.  This engine runs **one process per rank**: rank bodies
execute preemptively on separate cores, and measured MB/s actually
scales with workers — the property every bandwidth figure of the paper
(weak scaling, task-local write rates) depends on.

Architecture
------------

* **World collectives** go through a ``multiprocessing.shared_memory``
  slot buffer: every rank owns a fixed slot, deposits a pickled payload,
  and a double ``multiprocessing.Barrier`` brackets the read phase —
  the same deposit / barrier / read / barrier discipline as the thread
  engine, with the slot array living in a shared segment instead of a
  Python list.  Payloads larger than a slot spill into an ephemeral
  shared-memory segment whose name travels in the slot.
* **Point-to-point and subgroup traffic** use a lightweight control
  channel: one ``multiprocessing.Queue`` mailbox per rank.  Messages
  carry their communicator id, so traffic on a ``split`` subgroup never
  collides with world traffic.  Subgroup collectives are routed through
  the subgroup's local rank 0 (the *hub*) over the same mailboxes —
  process barriers cannot be conjured up after the world has started,
  so subgroups synchronize by message passing instead.
* **Results and telemetry** return over a queue at join.  Each child
  ships per-:class:`~repro.backends.instrument.IOStats` counter deltas
  alongside its result, and the parent merges them into the live stats
  objects, so ``CountingBackend`` telemetry aggregates across processes
  exactly as it does across threads.

Payload contract
----------------

Everything crosses process boundaries **by value** (pickle) after the
engine-wide :func:`~repro.simmpi.comm._copy_payload` normalization:
arrays arrive as arrays, ``bytearray`` as ``bytearray``, ``memoryview``
as immutable ``bytes``.  Identity is never preserved — two ranks can
never share an object — which is the strictest reading of the MPI
buffer semantics the other engines emulate.

``exec_once`` semantics
-----------------------

A rank body executes exactly once per run in its own dedicated process,
so :meth:`ProcComm.exec_once` simply calls ``fn`` — once per rank, like
the thread engine.  The process twist is *where* the side effects land:
in-memory effects (globals, caches) live and die with the child process
and are never visible to the parent or sibling ranks; only external
effects (files, sockets) outlive the run.  Programs that are portable
across all three engines should keep ``exec_once`` bodies idempotent in
memory and externally observable only through the backend.

Backend handles
---------------

Handles a rank opens must either be created inside the rank body or be
picklable.  :class:`~repro.backends.localfs.LocalBackend` and open
:class:`~repro.backends.localfs.LocalRawFile` handles pickle (the file
reopens by path and seeks back in the child).  ``SimBackend`` is
**in-process-only**: under ``fork`` each child would get an independent
copy-on-write snapshot of the simulated store and cross-rank writes
would silently vanish, so it refuses to pickle and must not be shared
across ranks of this engine — use ``LocalBackend`` (or keep SimBackend
work on the thread/bulk engines).

Scale envelope: one OS process per rank is practical to a few dozen
ranks (``REPRO_PROC_MAX_RANKS``, default 128).  For simulated worlds of
thousands to hundreds of thousands of ranks, use the bulk engine — this
engine is for *real* data-plane parallelism, not rank-count scale.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import struct
import threading
import time
import traceback
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Sequence

from repro.backends.instrument import snapshot_live_stats, stats_deltas
from repro.errors import (
    CollectiveMismatchError,
    CommunicatorError,
    SimMPIError,
)
from repro.simmpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    COMM_NULL,
    _copy_payload,
    _fold,
)

#: Maximum world size; one OS process per rank.  Overridable via the
#: ``REPRO_PROC_MAX_RANKS`` environment variable.
DEFAULT_MAX_RANKS = 128

#: Per-rank slot size in the shared-memory world buffer; payloads that
#: do not fit spill to an ephemeral segment.  Overridable via
#: ``REPRO_PROC_SLOT_BYTES``.
DEFAULT_SLOT_BYTES = 64 * 1024

#: Slot header: 1 byte kind, 32 bytes opname (utf-8, NUL-padded),
#: 8 bytes payload length.
_HEADER = struct.Struct(">B32sQ")
_KIND_INLINE = 1
_KIND_SPILL = 2

#: Mailbox poll granularity while honouring abort flags and timeouts.
_POLL_S = 0.05

#: Communicator id of the world; subgroup ids are tuples derived from it.
_WORLD_ID = ("w",)

#: Marks a hub reply in the control channel (never a valid local rank).
_HUB = -1


def _attach_shm(name: str) -> SharedMemory:
    """Attach an existing segment by name.

    On POSIX, attaching registers the name with the resource tracker —
    harmlessly: rank processes share the parent's tracker (the tracker
    fd travels through fork and spawn alike), its cache is a set, and
    the single ``unlink()`` each segment eventually gets unregisters it
    exactly once.  No extra bookkeeping is needed here.
    """
    return SharedMemory(name=name)


def default_start_method() -> str:
    """Start method used for rank processes.

    ``REPRO_PROC_START`` overrides; otherwise ``fork`` where available
    (fast, closures and open handles inherit) with ``spawn`` as the
    portable fallback (rank function and arguments must pickle).
    """
    env = os.environ.get("REPRO_PROC_START", "").strip()
    if env:
        return env
    return "fork" if "fork" in get_all_start_methods() else "spawn"


class _ProcShared:
    """Synchronization state shared by every rank process of one world.

    Created in the parent; reaches children by inheritance (fork) or by
    pickling through ``Process`` args (spawn) — every field is either
    a picklable multiprocessing primitive or plain data.  The shared-
    memory world buffer itself travels by *name* and is attached lazily
    in each process, so both start methods take the same path.
    """

    def __init__(self, ctx, size: int, timeout: float | None, slot_bytes: int) -> None:
        self.size = size
        self.timeout = timeout
        self.slot_bytes = slot_bytes
        self.barrier = ctx.Barrier(size)
        self.abort_event = ctx.Event()
        self.mailboxes = [ctx.Queue() for _ in range(size)]
        self._shm: SharedMemory | None = SharedMemory(
            create=True, size=size * slot_bytes
        )
        self.shm_name = self._shm.name
        self._owner_pid = os.getpid()

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["_shm"] = None  # children re-attach by name
        return state

    def buffer(self) -> memoryview:
        """The world slot buffer, attaching on first use in this process."""
        if self._shm is None:
            self._shm = _attach_shm(self.shm_name)
        return self._shm.buf

    def abort(self) -> None:
        """Break every synchronization point so blocked ranks raise."""
        self.abort_event.set()
        try:
            self.barrier.abort()
        except Exception:  # pragma: no cover - broken barrier machinery
            pass

    def wait_barrier(self) -> None:
        if self.abort_event.is_set():
            raise SimMPIError("communicator aborted")
        try:
            self.barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            raise SimMPIError(
                "collective aborted (another rank failed or barrier timed out)"
            ) from exc

    def detach(self) -> None:
        """Release this process's view of the world buffer."""
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # pragma: no cover - exported views alive
                pass
            self._shm = None

    def destroy(self) -> None:
        """Unlink the world buffer (creator only, after all ranks joined)."""
        self.detach()
        if os.getpid() == self._owner_pid:
            try:
                SharedMemory(name=self.shm_name).unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class _SlotView:
    """Lazy, cached view of the deposited slots of one world collective.

    Readers index only what they need (``bcast`` touches one slot), so a
    size-*n* world does O(n) total unpickling work for single-source
    collectives instead of every rank unpickling every slot.
    """

    def __init__(self, shared: _ProcShared) -> None:
        self._shared = shared
        self._cache: dict[int, Any] = {}

    def __getitem__(self, rank: int) -> Any:
        if rank not in self._cache:
            self._cache[rank] = _read_slot(self._shared, rank)
        return self._cache[rank]

    def all(self) -> list[Any]:
        return [self[r] for r in range(self._shared.size)]


class _ListSlots:
    """Slot-view interface over a plain list (hub-routed collectives)."""

    def __init__(self, slots: list[Any]) -> None:
        self._slots = slots

    def __getitem__(self, rank: int) -> Any:
        return self._slots[rank]

    def all(self) -> list[Any]:
        return list(self._slots)


def _write_slot(
    shared: _ProcShared, rank: int, opname: str, value: Any
) -> SharedMemory | None:
    """Deposit one rank's payload; returns the spill segment if one was used.

    The caller owns the returned segment and must unlink it once the
    collective's consume barrier has passed.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    base = rank * shared.slot_bytes
    buf = shared.buffer()
    op = opname.encode("utf-8")[:32]
    spill = None
    if _HEADER.size + len(payload) <= shared.slot_bytes:
        _HEADER.pack_into(buf, base, _KIND_INLINE, op, len(payload))
        buf[base + _HEADER.size : base + _HEADER.size + len(payload)] = payload
    else:
        spill = SharedMemory(create=True, size=len(payload))
        spill.buf[: len(payload)] = payload
        name = spill.name.encode("ascii")
        _HEADER.pack_into(buf, base, _KIND_SPILL, op, len(name))
        buf[base + _HEADER.size : base + _HEADER.size + len(name)] = name
    return spill


def _read_slot(shared: _ProcShared, rank: int) -> Any:
    base = rank * shared.slot_bytes
    buf = shared.buffer()
    kind, _, length = _HEADER.unpack_from(buf, base)
    raw = bytes(buf[base + _HEADER.size : base + _HEADER.size + length])
    if kind == _KIND_INLINE:
        return pickle.loads(raw)
    spill = _attach_shm(raw.decode("ascii"))
    try:
        return pickle.loads(spill.buf)
    finally:
        spill.close()


def _read_opnames(shared: _ProcShared) -> set[str]:
    buf = shared.buffer()
    names = set()
    for rank in range(shared.size):
        _, op, _ = _HEADER.unpack_from(buf, rank * shared.slot_bytes)
        names.add(op.rstrip(b"\x00").decode("utf-8"))
    return names


class _Runtime:
    """One rank process's engine state: mailbox stash and sequencers."""

    def __init__(self, shared: _ProcShared, world_rank: int) -> None:
        self.shared = shared
        self.world_rank = world_rank
        #: Messages pulled off the mailbox but not yet consumed.
        self.stash: list[tuple] = []
        #: Per-communicator collective sequence numbers (hub routing).
        self.seq: dict[tuple, int] = {}
        #: Per-communicator child-context counters (split determinism).
        self.ctx_seq: dict[tuple, int] = {}

    def post(self, world_dest: int, message: tuple) -> None:
        self.shared.mailboxes[world_dest].put(message)

    def wait_for(
        self, match: Callable[[tuple], bool], what: str
    ) -> tuple:
        """Block until a mailbox message satisfies ``match``.

        Non-matching messages are stashed for later receives.  Honours
        the world abort flag and the communicator timeout.
        """
        for i, msg in enumerate(self.stash):
            if match(msg):
                return self.stash.pop(i)
        mailbox = self.shared.mailboxes[self.world_rank]
        timeout = self.shared.timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.shared.abort_event.is_set():
                raise SimMPIError(
                    "communicator aborted while waiting for a message"
                )
            wait = _POLL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SimMPIError(f"recv timed out waiting for {what}")
                wait = min(wait, remaining)
            try:
                msg = mailbox.get(timeout=wait)
            except queue_mod.Empty:
                continue
            if match(msg):
                return msg
            self.stash.append(msg)

    def drain(self) -> None:
        """Pull everything currently queued into the stash (probe path)."""
        mailbox = self.shared.mailboxes[self.world_rank]
        while True:
            try:
                self.stash.append(mailbox.get_nowait())
            except queue_mod.Empty:
                return

    def next_seq(self, comm_id: tuple) -> int:
        n = self.seq.get(comm_id, 0)
        self.seq[comm_id] = n + 1
        return n

    def next_ctx(self, comm_id: tuple) -> int:
        n = self.ctx_seq.get(comm_id, 0)
        self.ctx_seq[comm_id] = n + 1
        return n


def _read_nothing(slots: Any) -> None:
    return None


class ProcComm:
    """One rank's communicator handle on the process engine.

    Mirrors the :class:`~repro.simmpi.comm.Comm` API: ``rank``/``size``,
    all collectives (``barrier`` … ``allreduce``, ``gatherv`` /
    ``scatterv``), point-to-point, ``split``/``dup``/``subworld`` and
    ``exec_once``.  World collectives ride the shared-memory slot
    buffer; subgroup collectives are hub-routed over mailboxes.
    """

    def __init__(
        self,
        runtime: _Runtime,
        comm_id: tuple,
        members: tuple[int, ...],
        rank: int,
    ) -> None:
        self._rt = runtime
        self._id = comm_id
        self._members = members  # local rank -> world rank
        self._rank = rank

    # -- introspection ----------------------------------------------------

    @property
    def rank(self) -> int:
        """This task's rank within the communicator (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProcComm rank={self._rank} size={self.size}>"

    # -- internal collective machinery ------------------------------------

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise CommunicatorError(f"root {root} out of range for size {self.size}")

    def _is_world(self) -> bool:
        return self._id == _WORLD_ID

    def _exchange(
        self,
        opname: str,
        value: Any,
        reader: Callable[[Any], Any] | None = None,
    ) -> Any:
        """Deposit/synchronize/read primitive behind every collective."""
        value = _copy_payload(value)
        if self._is_world():
            return self._exchange_world(opname, value, reader)
        return self._exchange_hub(opname, value, reader)

    def _exchange_world(
        self, opname: str, value: Any, reader: Callable[[Any], Any] | None
    ) -> Any:
        shared = self._rt.shared
        spill = _write_slot(shared, self._rank, opname, value)
        try:
            shared.wait_barrier()
            names = _read_opnames(shared)
            if len(names) > 1:
                shared.abort()
                raise CollectiveMismatchError(
                    f"ranks disagree on collective operation: {sorted(names)}"
                )
            slots = _SlotView(shared)
            result = reader(slots) if reader is not None else slots.all()
            # Second barrier: every rank has read; slots (and any spill
            # segments) may now be reused/unlinked for the next op.
            shared.wait_barrier()
            return result
        finally:
            if spill is not None:
                spill.close()
                try:
                    spill.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def _exchange_hub(
        self, opname: str, value: Any, reader: Callable[[Any], Any] | None
    ) -> Any:
        """Subgroup collective routed through local rank 0 (the hub)."""
        rt = self._rt
        cid = self._id
        seq = rt.next_seq(cid)
        hub_world = self._members[0]
        if self._rank != 0:
            rt.post(hub_world, ("c", cid, seq, self._rank, opname, value))
            _, _, _, _, op, slots = rt.wait_for(
                lambda m: m[0] == "c" and m[1] == cid and m[2] == seq and m[3] == _HUB,
                what=f"hub reply for {opname}#{seq} on {cid}",
            )
            if op != opname:
                self.abort()
                raise CollectiveMismatchError(
                    f"ranks disagree on collective operation: {sorted({op, opname})}"
                )
            view = _ListSlots(slots)
            return reader(view) if reader is not None else view.all()
        slots = [None] * self.size
        slots[0] = value
        names = {opname}
        for _ in range(self.size - 1):
            _, _, _, src, op, payload = rt.wait_for(
                lambda m: m[0] == "c" and m[1] == cid and m[2] == seq and m[3] != _HUB,
                what=f"deposits for {opname}#{seq} on {cid}",
            )
            slots[src] = payload
            names.add(op)
        if len(names) > 1:
            self.abort()
            raise CollectiveMismatchError(
                f"ranks disagree on collective operation: {sorted(names)}"
            )
        for lr in range(1, self.size):
            rt.post(self._members[lr], ("c", cid, seq, _HUB, opname, slots))
        view = _ListSlots(slots)
        return reader(view) if reader is not None else view.all()

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank of the communicator has entered."""
        self._exchange("barrier", None, reader=_read_nothing)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to every rank; returns it."""
        self._check_root(root)
        deposited = value if self._rank == root else None
        return self._exchange("bcast", deposited, reader=lambda slots: slots[root])

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank at ``root`` (rank order; None elsewhere)."""
        self._check_root(root)
        reader = _read_all if self._rank == root else _read_nothing
        return self._exchange("gather", value, reader=reader)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank and return the list on every rank."""
        return self._exchange("allgather", value)

    def gatherv(
        self, fragments: Sequence[Any], root: int = 0
    ) -> list[tuple[Any, ...]] | None:
        """Gather a variable-length fragment sequence per rank at ``root``.

        Same contract as the thread engine: ``root`` receives the
        rank-ordered list of fragment tuples, everyone else ``None``;
        fragments are snapshotted at deposit per the payload contract.
        """
        self._check_root(root)
        deposit = tuple(_copy_payload(f) for f in fragments)
        reader = _read_all if self._rank == root else _read_nothing
        return self._exchange("gatherv", deposit, reader=reader)

    def scatterv(
        self, values: Sequence[Sequence[Any]] | None, root: int = 0
    ) -> tuple[Any, ...]:
        """Scatter a variable-length fragment sequence to each rank."""
        self._check_root(root)
        if self._rank == root:
            if values is None or len(values) != self.size:
                self.abort()
                raise CommunicatorError(
                    "scatterv requires exactly one fragment sequence per rank "
                    "at the root"
                )
            deposit = [tuple(_copy_payload(f) for f in seq) for seq in values]
        else:
            deposit = None
        rank = self._rank
        return self._exchange(
            "scatterv", deposit, reader=lambda slots: slots[root][rank]
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``len == size`` values from ``root``; each rank gets one."""
        self._check_root(root)
        if self._rank == root:
            if values is None or len(values) != self.size:
                self.abort()
                raise CommunicatorError(
                    "scatter requires exactly one value per rank at the root"
                )
            deposit = [_copy_payload(v) for v in values]
        else:
            deposit = None
        rank = self._rank
        return self._exchange(
            "scatter", deposit, reader=lambda slots: slots[root][rank]
        )

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Each rank provides one value per destination; returns its column."""
        if len(values) != self.size:
            self.abort()
            raise CommunicatorError("alltoall requires exactly one value per rank")
        slots = self._exchange("alltoall", [_copy_payload(v) for v in values])
        return [slots[src][self._rank] for src in range(self.size)]

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] | None = None,
        root: int = 0,
    ) -> Any | None:
        """Reduce one value per rank at ``root`` (default op: ``+``)."""
        self._check_root(root)
        reader = _read_all if self._rank == root else _read_nothing
        slots = self._exchange("reduce", value, reader=reader)
        if self._rank != root:
            return None
        return _fold(slots, op)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce one value per rank; the result is returned on every rank."""
        slots = self._exchange("allreduce", value)
        return _fold(slots, op)

    # -- point to point ----------------------------------------------------

    def send(self, value: Any, dest: int, tag: int = 0) -> None:
        """Send ``value`` to rank ``dest`` (asynchronous, buffered)."""
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"dest {dest} out of range for size {self.size}")
        if tag < 0:
            raise CommunicatorError("tags must be non-negative")
        self._rt.post(
            self._members[dest],
            ("u", self._id, self._rank, tag, _copy_payload(value)),
        )

    def _match_user(self, source: int, tag: int) -> Callable[[tuple], bool]:
        cid = self._id

        def match(m: tuple) -> bool:
            if m[0] != "u" or m[1] != cid:
                return False
            if source not in (ANY_SOURCE, m[2]):
                return False
            return tag in (ANY_TAG, m[3])

        return match

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, return_status: bool = False
    ) -> Any:
        """Receive a message; blocks until a matching one arrives.

        With ``return_status=True`` returns ``(value, source, tag)``.
        """
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        _, _, src, tg, payload = self._rt.wait_for(
            self._match_user(source, tag), what=f"source={source} tag={tag}"
        )
        if return_status:
            return payload, src, tg
        return payload

    def sendrecv(
        self, value: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
    ) -> Any:
        """Combined send and receive (deadlock-free shift pattern)."""
        self.send(value, dest, tag)
        return self.recv(source, tag)

    def isend(self, value: Any, dest: int, tag: int = 0) -> "ProcRequest":
        """Non-blocking send; buffered, so it completes immediately."""
        self.send(value, dest, tag)
        req = ProcRequest(self, None, None)
        req._done = True
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "ProcRequest":
        """Non-blocking receive; complete it with ``wait()`` or ``test()``."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommunicatorError(f"source {source} out of range")
        return ProcRequest(self, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already waiting (not consumed)."""
        self._rt.drain()
        match = self._match_user(source, tag)
        return any(match(m) for m in self._rt.stash)

    # -- communicator management -------------------------------------------

    def split(self, color: int | None, key: int = 0) -> "ProcComm | None":
        """Partition the communicator by ``color``; order subgroups by ``key``.

        Every member allgathers ``(color, key)`` and computes the same
        deterministic assignment locally; subgroup ids derive from the
        parent id and a per-communicator split counter, so traffic on
        different subgroups never mixes.  Ranks passing ``color=None``
        receive :data:`~repro.simmpi.comm.COMM_NULL`.
        """
        ctx = self._rt.next_ctx(self._id)
        info = self.allgather((color, key))
        try:
            groups: dict[int, list[tuple[int, int]]] = {}
            for old_rank, (col, k) in enumerate(info):
                if col is None:
                    continue
                groups.setdefault(col, []).append((k, old_rank))
            my_entry: tuple[tuple, tuple[int, ...], int] | None = None
            for col, members in groups.items():
                members.sort()
                locals_ = tuple(self._members[old] for _, old in members)
                for new_rank, (_, old_rank) in enumerate(members):
                    if old_rank == self._rank:
                        my_entry = ((*self._id, ctx, col), locals_, new_rank)
        except Exception as exc:  # noqa: BLE001 - mirrored thread-engine policy
            raise CommunicatorError(f"split failed: {exc!r}") from exc
        if my_entry is None:
            return COMM_NULL
        child_id, members, new_rank = my_entry
        return ProcComm(self._rt, child_id, members, new_rank)

    def dup(self) -> "ProcComm":
        """Duplicate the communicator (fresh message context)."""
        comm = self.split(color=0, key=self._rank)
        assert comm is not None
        return comm

    def subworld(self, size: int) -> "ProcComm | None":
        """Communicator over ranks ``[0, size)``; COMM_NULL elsewhere.

        Same contract as the thread engine: collective over the parent,
        raises :class:`CommunicatorError` unless ``1 <= size <=
        self.size``.
        """
        if not 1 <= size <= self.size:
            raise CommunicatorError(
                f"subworld size {size} out of range for {self.size} ranks"
            )
        return self.split(color=0 if self._rank < size else None, key=self._rank)

    def exec_once(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` exactly once per rank program; returns its result.

        Rank bodies execute exactly once on this engine (no replay), so
        this simply calls ``fn`` — but *in the rank's own process*:
        in-memory side effects stay in the child; only external effects
        (files, backend writes) are visible after the run.  See the
        module docstring for the portability contract.
        """
        return fn()

    def abort(self) -> None:
        """Abort the world, waking all blocked ranks with errors.

        Process worlds share one abort domain: unlike the thread engine,
        aborting a subgroup tears down the whole world — the same net
        effect as a rank failure under :func:`run_spmd`.
        """
        self._rt.shared.abort()


class ProcRequest:
    """Handle for a pending non-blocking operation (process engine)."""

    def __init__(
        self, comm: ProcComm, source: int | None, tag: int | None
    ) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._value: Any = None

    @property
    def completed(self) -> bool:
        """True once the operation has finished (after wait/test success)."""
        return self._done

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check: ``(done, value_or_None)``."""
        if self._done:
            return True, self._value
        comm = self._comm
        comm._rt.drain()
        match = comm._match_user(
            self._source if self._source is not None else ANY_SOURCE,
            self._tag if self._tag is not None else ANY_TAG,
        )
        for i, msg in enumerate(comm._rt.stash):
            if match(msg):
                comm._rt.stash.pop(i)
                self._value = msg[4]
                self._done = True
                return True, self._value
        return False, None

    def wait(self) -> Any:
        """Block until completion; returns the received value (sends: None)."""
        if self._done:
            return self._value
        self._value = self._comm.recv(
            self._source if self._source is not None else ANY_SOURCE,
            self._tag if self._tag is not None else ANY_TAG,
        )
        self._done = True
        return self._value


def _read_all(slots: Any) -> list[Any]:
    return slots.all()


def _portable_exception(exc: BaseException) -> BaseException:
    """An exception safe to ship over the result queue.

    Returns ``exc`` itself when it pickles; otherwise a ``RuntimeError``
    carrying the original type and traceback text (a plain RuntimeError
    so the abort-fallout filter never mistakes a wrapped user error for
    engine fallout).
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure takes the wrap path
        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        return RuntimeError(
            f"rank raised unpicklable {type(exc).__name__}: {exc}\n{tb}"
        )


def _child_main(
    shared: _ProcShared,
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    result_q,
) -> None:
    """Rank process body: run ``fn``, ship result + telemetry deltas."""
    shared.buffer()  # attach (and untrack) the world buffer eagerly
    baseline = snapshot_live_stats()
    status = "ok"
    payload: Any = None
    try:
        comm = ProcComm(
            _Runtime(shared, rank), _WORLD_ID, tuple(range(shared.size)), rank
        )
        payload = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - fan out to the parent
        shared.abort()
        status, payload = "err", _portable_exception(exc)
    deltas = stats_deltas(baseline, snapshot_live_stats())
    try:
        blob = pickle.dumps(
            (rank, status, payload, deltas), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception as exc:  # noqa: BLE001 - report instead of vanishing
        blob = pickle.dumps(
            (
                rank,
                "err",
                RuntimeError(f"rank {rank} result not picklable: {exc!r}"),
                deltas,
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    result_q.put(blob)
    shared.detach()


def run_spmd_proc(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = None,
    start_method: str | None = None,
    slot_bytes: int | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nprocs`` rank *processes*.

    The process-parallel twin of :func:`repro.simmpi.runner.run_spmd`'s
    thread path; normally reached via ``run_spmd(..., engine="proc")``.
    ``timeout`` has already been resolved by the caller (``None``
    disables).  ``start_method`` overrides the world's multiprocessing
    start method (default: :func:`default_start_method`); under
    ``spawn``/``forkserver`` the rank function, its arguments, and its
    return value must pickle.  ``slot_bytes`` sizes the per-rank slot of
    the shared-memory world buffer.

    Returns rank-ordered results; raises
    :class:`~repro.errors.SpmdWorkerError` if any rank failed, with
    abort fallout filtered by the engines' shared failure policy.
    """
    from repro.backends.instrument import apply_stats_deltas
    from repro.simmpi.runner import spmd_failure_error

    if nprocs < 1:
        raise CommunicatorError(f"communicator size must be >= 1, got {nprocs}")
    max_ranks = int(os.environ.get("REPRO_PROC_MAX_RANKS", str(DEFAULT_MAX_RANKS)))
    if nprocs > max_ranks:
        raise SimMPIError(
            f"engine='proc' runs one OS process per rank and is capped at "
            f"{max_ranks} ranks (REPRO_PROC_MAX_RANKS); for large simulated "
            f"worlds use engine='bulk'"
        )
    slot_bytes = slot_bytes or int(
        os.environ.get("REPRO_PROC_SLOT_BYTES", str(DEFAULT_SLOT_BYTES))
    )
    if slot_bytes <= _HEADER.size:
        raise SimMPIError(f"slot_bytes must exceed the {_HEADER.size}-byte header")
    ctx = get_context(start_method or default_start_method())
    shared = _ProcShared(ctx, nprocs, timeout, slot_bytes)
    result_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_child_main,
            args=(shared, rank, fn, args, kwargs, result_q),
            name=f"spmd-proc-{rank}",
            daemon=True,
        )
        for rank in range(nprocs)
    ]
    try:
        for p in procs:
            p.start()
        reports = _collect_reports(shared, procs, result_q)
    finally:
        _reap(shared, procs)
        shared.destroy()

    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    for rank in range(nprocs):
        status, payload, deltas = reports[rank]
        if deltas:
            apply_stats_deltas(deltas)
        if status == "ok":
            results[rank] = payload
        else:
            failures[rank] = payload
    if failures:
        raise spmd_failure_error(failures)
    return results


#: Grace period for a dead child's queued report to surface before the
#: rank is declared failed, and for survivors to drain after an abort.
_REPORT_GRACE_S = 2.0


def _collect_reports(
    shared: _ProcShared, procs: list, result_q
) -> dict[int, tuple[str, Any, list]]:
    """Gather one report per rank, detecting ranks that die silently."""
    nprocs = len(procs)
    reports: dict[int, tuple[str, Any, list]] = {}
    suspects: dict[int, float] = {}
    while len(reports) < nprocs:
        try:
            rank, status, payload, deltas = pickle.loads(result_q.get(timeout=0.25))
            reports[rank] = (status, payload, deltas)
            suspects.pop(rank, None)
            continue
        except queue_mod.Empty:
            pass
        now = time.monotonic()
        for rank, p in enumerate(procs):
            if rank in reports or p.exitcode is None:
                continue
            since = suspects.setdefault(rank, now)
            if now - since >= _REPORT_GRACE_S:
                reports[rank] = (
                    "err",
                    SimMPIError(
                        f"rank {rank} process died without reporting "
                        f"(exitcode {p.exitcode})"
                    ),
                    [],
                )
                shared.abort()
    return reports


def _reap(shared: _ProcShared, procs: list) -> None:
    """Join all rank processes, escalating to terminate on stragglers.

    Skips processes that were never started (a start-time failure, e.g.
    unpicklable arguments under spawn, leaves the tail of the world
    unstarted and the original error propagating).
    """
    started = [p for p in procs if p.pid is not None]
    deadline = time.monotonic() + _REPORT_GRACE_S
    for p in started:
        p.join(timeout=max(0.0, deadline - time.monotonic()))
    for p in started:
        if p.is_alive():  # pragma: no cover - straggler escalation
            shared.abort()
            p.terminate()
            p.join(timeout=_REPORT_GRACE_S)
