"""``sionverify``: consistency checking of a multifile set.

Beyond what plain opening already validates (magics, version, metablock-2
CRC), this walks the whole set and cross-checks the pieces against each
other: mapping bijectivity, per-file task counts, chunk-layout bounds,
recorded byte counts vs. chunk capacities, physical file sizes, and —
optionally — the shadow headers against metablock 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import ReproError, SionFormatError
from repro.sion.buddy import buddy_path
from repro.sion.constants import FLAG_BUDDY, FLAG_SHADOW, SHADOW_HEADER_SIZE
from repro.sion.format import Metablock1, Metablock2, ShadowHeader
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import TaskMapping, physical_path


@dataclass
class VerifyReport:
    """Outcome of one verification pass."""

    path: str
    nfiles: int = 0
    ntasks: int = 0
    checks_run: int = 0
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    def warn(self, msg: str) -> None:
        self.warnings.append(msg)

    def check(self, condition: bool, msg: str) -> None:
        self.checks_run += 1
        if not condition:
            self.error(msg)


def verify_multifile(
    path: str,
    backend: Backend | None = None,
    deep: bool = False,
    readers: int | None = None,
    engine: str = "bulk",
) -> VerifyReport:
    """Verify a multifile set; returns a report rather than raising.

    ``deep=True`` additionally validates every shadow header against the
    recorded metablock-2 byte counts (only for sets written with
    ``shadow=True``).  ``readers=m`` additionally executes an ``m``-rank
    partitioned read of the whole set and cross-checks every reader's
    slice against the serial global view — proving the container can be
    consumed by a differently sized world, byte for byte.

    ``engine`` selects the SPMD engine of that partitioned read (any
    name :func:`repro.simmpi.normalize_engine` accepts).  The default
    stays ``bulk`` because a reader world is allowed to be huge; with
    ``"proc"`` the backend must be able to cross process boundaries
    (:class:`~repro.backends.localfs.LocalBackend` can).
    """
    backend = backend if backend is not None else LocalBackend()
    report = VerifyReport(path=path)

    try:
        raw0 = backend.open(path, "rb")
        mb1_0 = Metablock1.decode_from(raw0)
        raw0.close()
    except (ReproError, OSError) as exc:
        report.error(f"{path}: cannot read metablock 1: {exc}")
        return report

    report.nfiles = mb1_0.nfiles
    report.ntasks = mb1_0.ntasks_global
    try:
        tmap = TaskMapping.from_kind_code(
            mb1_0.ntasks_global, mb1_0.nfiles, mb1_0.mapping_kind, mb1_0.mapping_table
        )
    except Exception as exc:  # noqa: BLE001 - report, don't raise
        report.error(f"{path}: invalid task mapping: {exc}")
        return report

    seen_ranks: set[int] = set()
    for filenum in range(mb1_0.nfiles):
        fpath = physical_path(path, filenum)
        _verify_one(fpath, filenum, mb1_0, tmap, backend, report, deep, seen_ranks)

    report.check(
        seen_ranks == set(range(mb1_0.ntasks_global)),
        f"global ranks covered by the set are incomplete: "
        f"{len(seen_ranks)}/{mb1_0.ntasks_global}",
    )
    if readers is not None and report.ok:
        _verify_partitioned_read(path, backend, readers, report, engine)
    return report


def _verify_partitioned_read(
    path: str, backend: Backend, readers: int, report: VerifyReport, engine: str
) -> None:
    """Cross-check an m-reader partitioned read against the serial view."""
    from repro.sion import paropen, serial
    from repro.sion.mapping import ReadPartition
    from repro.simmpi import normalize_engine, run_spmd

    if readers < 1:
        report.error(f"--readers must be >= 1, got {readers}")
        return
    try:
        engine = normalize_engine(engine)
    except ReproError as exc:
        report.error(str(exc))
        return
    part = ReadPartition.balanced(report.ntasks, readers)

    def read_task(comm):
        f = paropen(path, "r", comm, backend=backend, partitioned=True)
        data = f.read_all()
        eof = f.feof()
        f.parclose()
        return data, eof

    try:
        # Default is the bulk engine: a reader world is allowed to be huge
        # (that is the feature), and one OS thread per reader stops working
        # around a few thousand — the SION layer is replay-safe by
        # construction.  --engine proc trades world size for real cores.
        out = run_spmd(readers, read_task, engine=engine)
    except Exception as exc:  # noqa: BLE001 - report, don't raise
        report.error(f"{path}: partitioned read with {readers} readers failed: {exc}")
        return
    with serial.open(path, "r", backend=backend) as sf:
        for r, (data, eof) in enumerate(out):
            expected = b"".join(sf.read_task(w) for w in part.writers_of(r))
            report.check(
                eof,
                f"{path}: reader {r}/{readers} left data unread "
                "(shortfall against recorded metadata)",
            )
            report.check(
                data == expected,
                f"{path}: reader {r}/{readers} diverged from the serial "
                f"view ({len(data)} vs {len(expected)} bytes)",
            )


def _verify_one(
    fpath: str,
    filenum: int,
    mb1_0: Metablock1,
    tmap: TaskMapping,
    backend: Backend,
    report: VerifyReport,
    deep: bool,
    seen_ranks: set[int],
) -> None:
    if not backend.exists(fpath):
        report.error(f"{fpath}: physical file {filenum} is missing")
        return
    raw = backend.open(fpath, "rb")
    try:
        try:
            mb1 = Metablock1.decode_from(raw)
        except SionFormatError as exc:
            report.error(f"{fpath}: bad metablock 1: {exc}")
            return
        report.check(mb1.filenum == filenum, f"{fpath}: filenum {mb1.filenum} != {filenum}")
        report.check(
            mb1.nfiles == mb1_0.nfiles and mb1.ntasks_global == mb1_0.ntasks_global,
            f"{fpath}: set geometry disagrees with file 0",
        )
        report.check(
            mb1.fsblksize == mb1_0.fsblksize,
            f"{fpath}: fsblksize {mb1.fsblksize} != file 0's {mb1_0.fsblksize}",
        )
        expected_members = tmap.tasks_of_file(filenum)
        report.check(
            mb1.globalranks == expected_members,
            f"{fpath}: stored global ranks disagree with the mapping",
        )
        seen_ranks.update(mb1.globalranks)

        layout = ChunkLayout.from_metablock1(mb1)
        try:
            mb2 = Metablock2.decode_from(raw, mb1.metablock2_offset)
        except SionFormatError as exc:
            report.error(f"{fpath}: bad metablock 2: {exc}")
            return
        report.check(
            mb2.ntasks_local == mb1.ntasks_local,
            f"{fpath}: metablock 2 task count {mb2.ntasks_local} != "
            f"metablock 1's {mb1.ntasks_local}",
        )
        shadow = bool(mb1.flags & FLAG_SHADOW)
        usable_delta = SHADOW_HEADER_SIZE if shadow else 0
        for ltask, blocks in enumerate(mb2.blocksizes):
            cap = layout.capacity(ltask) - usable_delta
            for b, nbytes in enumerate(blocks):
                report.check(
                    nbytes <= cap,
                    f"{fpath}: task {ltask} block {b} records {nbytes} bytes, "
                    f"over the chunk capacity {cap}",
                )
        fsize = backend.file_size(fpath)
        report.check(
            mb1.metablock2_offset < fsize,
            f"{fpath}: metablock 2 offset {mb1.metablock2_offset} beyond "
            f"file size {fsize}",
        )
        end = layout.end_of_blocks(mb2.maxblocks)
        report.check(
            mb1.metablock2_offset >= end or mb2.maxblocks == 0,
            f"{fpath}: metablock 2 at {mb1.metablock2_offset} overlaps "
            f"chunk data ending at {end}",
        )
        if deep:
            if not shadow:
                report.warn(f"{fpath}: deep check requested but no shadow headers")
            else:
                _deep_check_shadows(fpath, raw, layout, mb2, report)
    finally:
        raw.close()


def _deep_check_shadows(
    fpath: str, raw, layout: ChunkLayout, mb2: Metablock2, report: VerifyReport
) -> None:
    for ltask, blocks in enumerate(mb2.blocksizes):
        for b, nbytes in enumerate(blocks):
            # Positioned probe: the header address is computable locally.
            hdr = ShadowHeader.decode(
                raw.pread(layout.chunk_start(ltask, b), SHADOW_HEADER_SIZE)
            )
            if hdr is None:
                report.check(
                    nbytes == 0,
                    f"{fpath}: task {ltask} block {b} has data but no shadow header",
                )
                continue
            report.check(
                hdr.ltask == ltask and hdr.block == b,
                f"{fpath}: shadow header at task {ltask} block {b} "
                f"identifies itself as task {hdr.ltask} block {hdr.block}",
            )
            report.check(
                hdr.written == nbytes,
                f"{fpath}: task {ltask} block {b}: shadow says {hdr.written} "
                f"bytes, metablock 2 says {nbytes}",
            )


def assess_loss(
    path: str, filenum: int, backend: Backend | None = None
) -> VerifyReport:
    """What-if assessment: could the set survive losing file ``filenum``?

    The ``sionverify --inject lose-file=K`` backend.  Non-destructive:
    nothing is deleted or modified.  The report is ``ok`` iff losing
    physical file ``K`` *entirely* would still be recoverable — i.e. the
    set was written with ``buddy=True`` and file ``K``'s replica exists
    with both metablocks fully intact (the qualification
    :func:`~repro.sion.recovery.recover_multifile` demands before a
    byte-copy restore).  Shadow headers cannot save a lost file — they
    live inside it — so a shadow-only set reports unrecoverable here.
    """
    backend = backend if backend is not None else LocalBackend()
    report = VerifyReport(path=path)
    try:
        raw0 = backend.open(path, "rb")
        mb1_0 = Metablock1.decode_from(raw0)
        raw0.close()
    except (ReproError, OSError) as exc:
        report.error(f"{path}: cannot read metablock 1: {exc}")
        return report
    report.nfiles = mb1_0.nfiles
    report.ntasks = mb1_0.ntasks_global
    if not 0 <= filenum < mb1_0.nfiles:
        report.error(
            f"--inject lose-file={filenum}: the set has {mb1_0.nfiles} "
            "physical file(s)"
        )
        return report
    if not mb1_0.flags & FLAG_BUDDY:
        report.error(
            f"{path}: set written without buddy=True; losing file "
            f"{filenum} would be unrecoverable"
        )
        return report
    rpath = buddy_path(path, filenum, mb1_0.nfiles)
    if not backend.exists(rpath):
        report.error(
            f"{rpath}: buddy replica of file {filenum} is missing; the "
            "loss would be unrecoverable"
        )
        return report
    raw = backend.open(rpath, "rb")
    try:
        try:
            mb1 = Metablock1.decode_from(raw)
            Metablock2.decode_from(raw, mb1.metablock2_offset)
        except SionFormatError as exc:
            report.error(f"{rpath}: buddy replica does not fully decode: {exc}")
            return report
    finally:
        raw.close()
    report.check(
        mb1.filenum == filenum and mb1.nfiles == mb1_0.nfiles,
        f"{rpath}: replica describes file {mb1.filenum} of {mb1.nfiles}, "
        f"not file {filenum} of {mb1_0.nfiles}",
    )
    if report.ok:
        report.warnings.append(
            f"losing file {filenum} would be recoverable: intact buddy "
            f"replica at {rpath}"
        )
    return report


def format_report(report: VerifyReport) -> str:
    """Human-readable rendering of a verification report."""
    lines = [
        f"multifile: {report.path}",
        f"files: {report.nfiles}  tasks: {report.ntasks}  "
        f"checks: {report.checks_run}",
    ]
    lines.extend(f"warning: {w}" for w in report.warnings)
    lines.extend(f"ERROR: {e}" for e in report.errors)
    lines.append("status: " + ("OK" if report.ok else f"{len(report.errors)} error(s)"))
    return "\n".join(lines)
