"""``siondump``: print the metadata of a multifile set.

"A convenient way to learn more about the structure of the multifile to
see, for example, how many logical files it contains and how large they
are" (paper §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import Backend
from repro.sion import serial
from repro.sion.mapping import ReadPartition


@dataclass
class MultifileSummary:
    """Structured result of a dump, convenient for programmatic use."""

    path: str
    ntasks: int
    nfiles: int
    fsblksize: int
    compressed: bool
    chunksizes: list[int]
    nblocks: list[int]
    bytes_per_task: list[int]
    total_bytes: int

    @property
    def maxblocks(self) -> int:
        """Largest block count over all tasks."""
        return max(self.nblocks, default=0)


def dump_multifile(path: str, backend: Backend | None = None) -> MultifileSummary:
    """Read every metablock of the set and summarize it."""
    with serial.open(path, "r", backend=backend) as sf:
        loc = sf.get_locations()
        return MultifileSummary(
            path=path,
            ntasks=loc.ntasks,
            nfiles=loc.nfiles,
            fsblksize=loc.fsblksize,
            compressed=loc.compressed,
            chunksizes=list(loc.chunksizes),
            nblocks=list(loc.nblocks),
            bytes_per_task=[sum(b) for b in loc.blocksizes],
            total_bytes=loc.total_bytes(),
        )


def format_dump(summary: MultifileSummary, verbose: bool = False) -> str:
    """Human-readable rendering, one task per line in verbose mode."""
    lines = [
        f"multifile:   {summary.path}",
        f"tasks:       {summary.ntasks}",
        f"phys. files: {summary.nfiles}",
        f"fsblksize:   {summary.fsblksize}",
        f"compressed:  {'yes' if summary.compressed else 'no'}",
        f"max blocks:  {summary.maxblocks}",
        f"total bytes: {summary.total_bytes}",
    ]
    if verbose:
        lines.append("task  chunksize  blocks  bytes")
        lines.extend(
            f"{t:>4}  {summary.chunksizes[t]:>9}  "
            f"{summary.nblocks[t]:>6}  {summary.bytes_per_task[t]}"
            for t in range(summary.ntasks)
        )
    return "\n".join(lines)


def partition_table(
    summary: MultifileSummary, readers: int
) -> list[tuple[int, int, int, int]]:
    """Reader assignments of an ``m``-reader partitioned read.

    Returns ``(reader, first_task, ntasks, bytes)`` rows — what each
    rank of a ``--readers m`` analysis job would consume.  Pure metadata
    arithmetic: the partition is derivable from the dump alone, which is
    the point of keeping the mapping in the file.
    """
    part = ReadPartition.balanced(summary.ntasks, readers)
    return [
        (
            r,
            part.starts[r],
            part.counts[r],
            sum(summary.bytes_per_task[w] for w in part.writers_of(r)),
        )
        for r in range(readers)
    ]


def format_partition(summary: MultifileSummary, readers: int) -> str:
    """Render the ``--readers m`` assignment table."""
    lines = [
        f"partitioned read with {readers} reader(s):",
        "reader  first task  ntasks  bytes",
    ]
    lines.extend(
        f"{r:>6}  {first:>10}  {count:>6}  {nbytes}"
        for r, first, count, nbytes in partition_table(summary, readers)
    )
    return "\n".join(lines)
