"""``python -m repro.utils <tool> ...`` — offline-friendly CLI dispatch.

The console scripts in pyproject.toml require a pip install; this module
exposes the same tools without one:

    python -m repro.utils dump    out.sion -v
    python -m repro.utils split   out.sion 'task_{rank}.dat'
    python -m repro.utils defrag  out.sion out_dense.sion
    python -m repro.utils recover out.sion
    python -m repro.utils verify  out.sion --deep
    python -m repro.utils cat     out.sion 3
"""

from __future__ import annotations

import sys

from repro.utils.cli import (
    main_cat,
    main_defrag,
    main_dump,
    main_recover,
    main_split,
    main_verify,
)

_TOOLS = {
    "dump": main_dump,
    "split": main_split,
    "defrag": main_defrag,
    "recover": main_recover,
    "verify": main_verify,
    "cat": main_cat,
}


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help") or args[0] not in _TOOLS:
        print(
            "usage: python -m repro.utils "
            f"{{{','.join(sorted(_TOOLS))}}} [tool options]",
            file=sys.stderr,
        )
        return 0 if args and args[0] in ("-h", "--help") else 2
    return _TOOLS[args[0]](args[1:])


if __name__ == "__main__":
    raise SystemExit(main())
