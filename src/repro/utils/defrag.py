"""``siondefrag``: contract a multifile into a single dense block.

"The defragment tool generates a new multifile from an existing one with
all the blocks contracted into a single block, that is, the new file
contains only one chunk per task with the data from all chunks of this
task found in the input file.  In addition, all gaps in the form of unused
file-system blocks are removed" (paper §3.3).
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import SionUsageError
from repro.sion import serial


def defragment(
    in_path: str,
    out_path: str,
    nfiles: int = 1,
    fsblksize: int | None = None,
    backend: Backend | None = None,
) -> str:
    """Rewrite ``in_path`` as a dense single-block multifile at ``out_path``.

    Each task's chunks are concatenated into exactly one chunk sized to its
    total data, so the output has no inter-block gaps.  ``fsblksize``
    defaults to the input's alignment.  Returns ``out_path``.
    """
    if in_path == out_path:
        raise SionUsageError("defragment cannot rewrite a multifile in place")
    backend = backend if backend is not None else LocalBackend()
    with serial.open(in_path, "r", backend=backend) as src:
        loc = src.get_locations()
        payloads = [src.read_task(rank) for rank in range(loc.ntasks)]
    chunksizes = [max(len(p), 1) for p in payloads]
    out_blk = fsblksize if fsblksize is not None else loc.fsblksize
    with serial.open(
        out_path,
        "w",
        chunksizes=chunksizes,
        fsblksize=out_blk,
        nfiles=nfiles,
        backend=backend,
    ) as dst:
        for rank, payload in enumerate(payloads):
            if payload:
                dst.seek(rank, 0, 0)
                # A view suffices: the write path forwards it zero-copy.
                dst.write(memoryview(payload))
    return out_path
