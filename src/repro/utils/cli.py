"""Argparse entry points for the multifile command-line utilities.

Installed as ``siondump``, ``sionsplit``, ``siondefrag``,
``sionrecover``, ``sionverify`` and ``sioncat`` (see
``pyproject.toml``); also reachable without an install as
``python -m repro.utils <tool>``.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError, SionUsageError
from repro.sion.recovery import recover_multifile
from repro.utils.cat import cat_rank, cat_reader
from repro.utils.defrag import defragment
from repro.utils.dump import dump_multifile, format_dump, format_partition
from repro.utils.split import split_multifile
from repro.utils.verify import assess_loss, format_report, verify_multifile


def main_dump(argv: list[str] | None = None) -> int:
    """``siondump [-v] [--readers M] MULTIFILE``

    Print the multifile's metadata summary; ``-v`` adds one line per
    task, ``--readers M`` appends the reader→stream assignment table of
    an ``M``-reader partitioned read.  Returns 0 on success, 1 (with a
    message on stderr) on a damaged or missing multifile.

    Example: ``siondump --readers 4 out.sion``.
    """
    p = argparse.ArgumentParser(
        prog="siondump", description="Print SION multifile metadata."
    )
    p.add_argument("multifile", help="path of physical file 0")
    p.add_argument(
        "-v", "--verbose", action="store_true", help="one line per task"
    )
    p.add_argument(
        "--readers",
        type=int,
        default=None,
        metavar="M",
        help="also print the reader→stream assignment table of an "
        "M-reader partitioned read",
    )
    args = p.parse_args(argv)

    def run() -> None:
        summary = dump_multifile(args.multifile)
        text = format_dump(summary, args.verbose)
        if args.readers is not None:
            text += "\n" + format_partition(summary, args.readers)
        print(text)

    return _run(run)


def main_split(argv: list[str] | None = None) -> int:
    """``sionsplit MULTIFILE OUT_PATTERN [--ranks 0 1 2]``"""
    p = argparse.ArgumentParser(
        prog="sionsplit",
        description="Extract logical task-local files from a SION multifile.",
    )
    p.add_argument("multifile", help="path of physical file 0")
    p.add_argument(
        "out_pattern",
        help="output path containing '{rank}', e.g. 'task_{rank:06d}.dat'",
    )
    p.add_argument(
        "--ranks", type=int, nargs="+", default=None, help="extract only these ranks"
    )
    args = p.parse_args(argv)

    def run() -> None:
        paths = split_multifile(args.multifile, args.out_pattern, args.ranks)
        print(f"extracted {len(paths)} logical file(s)")

    return _run(run)


def main_defrag(argv: list[str] | None = None) -> int:
    """``siondefrag IN OUT [--nfiles N] [--fsblksize B]``"""
    p = argparse.ArgumentParser(
        prog="siondefrag",
        description="Contract a SION multifile into a dense single-block one.",
    )
    p.add_argument("input", help="path of physical file 0")
    p.add_argument("output", help="path of the defragmented multifile")
    p.add_argument("--nfiles", type=int, default=1, help="output physical files")
    p.add_argument(
        "--fsblksize", type=int, default=None, help="output alignment granularity"
    )
    args = p.parse_args(argv)

    def run() -> None:
        out = defragment(args.input, args.output, args.nfiles, args.fsblksize)
        print(f"defragmented into {out}")

    return _run(run)


def main_recover(argv: list[str] | None = None) -> int:
    """``sionrecover MULTIFILE [--force]``"""
    p = argparse.ArgumentParser(
        prog="sionrecover",
        description="Rebuild a lost metablock 2 from per-chunk shadow headers.",
    )
    p.add_argument("multifile", help="path of physical file 0")
    p.add_argument(
        "--force",
        action="store_true",
        help="rebuild even if metablock 2 looks intact",
    )
    args = p.parse_args(argv)

    def run() -> None:
        report = recover_multifile(args.multifile, force=args.force)
        for line in report.details:
            print(line)
        print(
            f"files: {report.nfiles} intact: {report.files_intact} "
            f"recovered: {report.files_recovered} "
            f"bytes: {report.bytes_recovered}"
        )

    return _run(run)


def main_verify(argv: list[str] | None = None) -> int:
    """``sionverify [--deep] [--readers M] [--engine NAME] [--inject WHAT] MULTIFILE``

    Check the consistency of a multifile set.  ``--deep`` additionally
    validates shadow headers against metablock 2; ``--readers M``
    executes a real ``M``-reader partitioned read and cross-checks it
    against the serial global view, on the SPMD engine picked by
    ``--engine`` (default ``bulk``; ``proc`` reads on real cores).
    ``--inject lose-file=K`` runs a *non-destructive what-if* instead:
    the tool reports whether losing physical file ``K`` entirely would
    still be recoverable (i.e. the set was written with ``buddy=True``
    and file ``K``'s replica is fully intact).  Returns 0 when the set
    verifies (or the injected loss is survivable), 2 when it does not,
    1 on I/O errors.

    Example: ``sionverify --deep --readers 4 --engine proc out.sion``;
    ``sionverify --inject lose-file=1 out.sion``.
    """
    p = argparse.ArgumentParser(
        prog="sionverify",
        description="Check the consistency of a SION multifile set.",
    )
    p.add_argument("multifile", help="path of physical file 0")
    p.add_argument(
        "--deep",
        action="store_true",
        help="also validate shadow headers against metablock 2",
    )
    p.add_argument(
        "--readers",
        type=int,
        default=None,
        metavar="M",
        help="also execute an M-reader partitioned read and cross-check "
        "it against the serial global view",
    )
    p.add_argument(
        "--engine",
        default="bulk",
        metavar="NAME",
        help="SPMD engine of the --readers read (threads|bulk|proc, "
        "aliases accepted; default: bulk)",
    )
    p.add_argument(
        "--inject",
        default=None,
        metavar="WHAT",
        help="non-destructive what-if: 'lose-file=K' reports whether the "
        "set would survive losing physical file K (buddy replica intact)",
    )
    args = p.parse_args(argv)

    def run() -> None:
        if args.inject is not None:
            kind, _, value = args.inject.partition("=")
            if kind != "lose-file" or not value.lstrip("-").isdigit():
                raise SionUsageError(
                    f"--inject expects lose-file=K, got {args.inject!r}"
                )
            report = assess_loss(args.multifile, int(value))
        else:
            report = verify_multifile(
                args.multifile,
                deep=args.deep,
                readers=args.readers,
                engine=args.engine,
            )
        print(format_report(report))
        if not report.ok:
            raise SystemExit(2)

    try:
        return _run(run)
    except SystemExit as exc:
        return int(exc.code or 0)


def main_cat(argv: list[str] | None = None) -> int:
    """``sioncat MULTIFILE RANK [--readers M]``

    Stream one logical task-local file to stdout; with ``--readers M``,
    ``RANK`` is instead a reader index of an ``M``-reader partitioned
    read and that reader's whole contiguous slice is streamed.  Returns
    0 on success, 1 (message on stderr) on bad ranks or a damaged set.

    Example: ``sioncat out.sion 2 --readers 4 > slice2.bin``.
    """
    p = argparse.ArgumentParser(
        prog="sioncat",
        description="Stream one logical task-local file to stdout.",
    )
    p.add_argument("multifile", help="path of physical file 0")
    p.add_argument(
        "rank",
        type=int,
        help="logical file (global rank) to print; with --readers M, the "
        "reader index whose whole slice is printed",
    )
    p.add_argument(
        "--readers",
        type=int,
        default=None,
        metavar="M",
        help="treat RANK as a reader of an M-reader partitioned read and "
        "stream its contiguous slice of task streams",
    )
    args = p.parse_args(argv)
    if args.readers is not None:
        return _run(lambda: cat_reader(args.multifile, args.rank, args.readers))
    return _run(lambda: cat_rank(args.multifile, args.rank))


def _run(fn) -> int:
    try:
        fn()
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
