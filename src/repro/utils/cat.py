"""``sioncat``: stream one logical task-local file to a file object.

The moral equivalent of ``cat`` for a logical file inside a multifile —
useful for piping a single task's log or trace into other tools without
extracting the whole set.
"""

from __future__ import annotations

import io
import sys

from repro.backends.base import Backend
from repro.sion.serial import open_rank

#: Read granularity; small enough to stream, large enough to be cheap.
_PIECE = 256 * 1024


def cat_rank(
    path: str,
    rank: int,
    out: io.RawIOBase | io.BufferedIOBase | None = None,
    backend: Backend | None = None,
) -> int:
    """Copy rank ``rank``'s logical bytes to ``out`` (default: stdout).

    Streams in bounded pieces (never materializes the whole logical file);
    transparently decompresses compressed multifiles.  Returns the number
    of bytes written.
    """
    sink = out if out is not None else sys.stdout.buffer
    total = 0
    with open_rank(path, rank, backend=backend) as rf:
        while True:
            piece = rf.fread(_PIECE)
            if not piece:
                break
            sink.write(piece)
            total += len(piece)
    return total


def cat_reader(
    path: str,
    reader: int,
    readers: int,
    out: io.RawIOBase | io.BufferedIOBase | None = None,
    backend: Backend | None = None,
) -> int:
    """Stream one reader's slice of an ``readers``-way partitioned read.

    The serial mirror of ``paropen(..., partitioned=True)``: reader
    ``reader`` of a ``readers``-rank analysis world owns a contiguous
    slice of the recorded task streams, and this streams their
    concatenation — still in bounded pieces, one logical file at a time.
    The set's metadata is decoded **once** (a 64k-entry metablock per
    stream would be O(n²/m) work); returns the number of bytes written.
    """
    from repro.sion import serial
    from repro.sion.mapping import ReadPartition

    sink = out if out is not None else sys.stdout.buffer
    total = 0
    with serial.open(path, "r", backend=backend) as sf:
        part = ReadPartition.balanced(sf.ntasks, readers)
        for writer in part.writers_of(reader):
            if sf.compressed:
                # Transparent decompression materializes one logical
                # task at a time (each stream is its own zlib stream).
                data = sf.read_task(writer)
                sink.write(data)
                total += len(data)
                continue
            sf.seek(writer, 0, 0)
            while True:
                piece = sf.fread(_PIECE)
                if not piece:
                    break
                sink.write(piece)
                total += len(piece)
    return total
