"""``sioncat``: stream one logical task-local file to a file object.

The moral equivalent of ``cat`` for a logical file inside a multifile —
useful for piping a single task's log or trace into other tools without
extracting the whole set.
"""

from __future__ import annotations

import io
import sys

from repro.backends.base import Backend
from repro.sion.serial import open_rank

#: Read granularity; small enough to stream, large enough to be cheap.
_PIECE = 256 * 1024


def cat_rank(
    path: str,
    rank: int,
    out: io.RawIOBase | io.BufferedIOBase | None = None,
    backend: Backend | None = None,
) -> int:
    """Copy rank ``rank``'s logical bytes to ``out`` (default: stdout).

    Streams in bounded pieces (never materializes the whole logical file);
    transparently decompresses compressed multifiles.  Returns the number
    of bytes written.
    """
    sink = out if out is not None else sys.stdout.buffer
    total = 0
    with open_rank(path, rank, backend=backend) as rf:
        while True:
            piece = rf.fread(_PIECE)
            if not piece:
                break
            sink.write(piece)
            total += len(piece)
    return total
