"""``sionsplit``: recreate physical task-local files from a multifile.

"The split tool extracts all or only distinct logical files from a given
multifile and recreates the corresponding physical files" (paper §3.3).
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import SionUsageError
from repro.sion import serial


def split_multifile(
    path: str,
    out_pattern: str,
    ranks: list[int] | None = None,
    backend: Backend | None = None,
) -> list[str]:
    """Extract logical files into separate physical files.

    ``out_pattern`` must contain ``{rank}`` (e.g. ``"out/task_{rank:06d}.dat"``).
    ``ranks`` selects a subset (default: all).  Returns the written paths.
    Compressed multifiles are transparently decompressed — the extracted
    files hold the original logical bytes.
    """
    if "{rank" not in out_pattern:
        raise SionUsageError(
            "out_pattern must contain a '{rank}' placeholder, "
            f"got {out_pattern!r}"
        )
    backend = backend if backend is not None else LocalBackend()
    written: list[str] = []
    with serial.open(path, "r", backend=backend) as sf:
        todo = ranks if ranks is not None else list(range(sf.ntasks))
        for rank in todo:
            if not 0 <= rank < sf.ntasks:
                raise SionUsageError(
                    f"rank {rank} out of range ({sf.ntasks} tasks)"
                )
            data = sf.read_task(rank)
            out_path = out_pattern.format(rank=rank)
            with backend.open(out_path, "wb") as out:
                out.write(data)
            written.append(out_path)
    return written
