"""Serial command-line utilities for multifiles (paper §3.3).

* :mod:`repro.utils.dump` — print multifile metadata (``siondump``).
* :mod:`repro.utils.split` — extract logical files back into physical ones
  (``sionsplit``).
* :mod:`repro.utils.defrag` — contract all blocks into one and drop gaps
  (``siondefrag``).
* :mod:`repro.utils.verify` — set-wide consistency checks (``sionverify``).
* :mod:`repro.utils.cat` — stream one logical file (``sioncat``).
* :mod:`repro.utils.cli` — argparse entry points wired up in
  ``pyproject.toml``.
"""

from repro.utils.cat import cat_rank
from repro.utils.defrag import defragment
from repro.utils.dump import dump_multifile, format_dump
from repro.utils.split import split_multifile
from repro.utils.verify import format_report, verify_multifile

__all__ = [
    "cat_rank",
    "defragment",
    "dump_multifile",
    "format_dump",
    "format_report",
    "split_multifile",
    "verify_multifile",
]
