"""Result containers, ASCII plotting, and report generation."""

from repro.analysis.model import predict_bandwidth, predict_create_time
from repro.analysis.plots import ascii_chart
from repro.analysis.report import collect_sections, render_markdown, write_report
from repro.analysis.results import Series, format_table

__all__ = [
    "Series",
    "format_table",
    "ascii_chart",
    "predict_bandwidth",
    "predict_create_time",
    "collect_sections",
    "render_markdown",
    "write_report",
]
