"""Tabular result containers shared by benchmarks and reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class Series:
    """Named x/y curves over a shared x-axis (one figure's content)."""

    name: str
    x_label: str
    y_label: str
    xs: list[float]
    curves: dict[str, list[float]] = field(default_factory=dict)

    def add_curve(self, label: str, ys: list[float]) -> None:
        if len(ys) != len(self.xs):
            raise ReproError(
                f"curve {label!r} has {len(ys)} points for {len(self.xs)} x-values"
            )
        self.curves[label] = list(ys)

    def row(self, i: int) -> tuple[float, dict[str, float]]:
        """The i-th x-value and every curve's value there."""
        return self.xs[i], {k: v[i] for k, v in self.curves.items()}


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10000:
        return f"{v:,.0f}"
    if abs(v) >= 100:
        return f"{v:.1f}"
    if abs(v) >= 1:
        return f"{v:.2f}"
    return f"{v:.4f}"


def format_table(series: Series, x_format: str = "g") -> str:
    """Render a series as an aligned text table (one row per x)."""
    headers = [series.x_label, *series.curves.keys()]
    rows = []
    for i, x in enumerate(series.xs):
        vals = [format(x, x_format)] + [_fmt(series.curves[c][i]) for c in series.curves]
        rows.append(vals)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    out = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    out.extend("  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in rows)
    return "\n".join(out)


def human_count(n: float) -> str:
    """4096 -> '4k', 65536 -> '64k' (axis labels like the paper's)."""
    if n >= 1024 and n % 1024 == 0:
        return f"{int(n // 1024)}k"
    return f"{int(n)}" if float(n).is_integer() else f"{n}"
