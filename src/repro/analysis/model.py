"""Closed-form performance model, cross-validated against the simulator.

The discrete-event simulator in :mod:`repro.fs` computes the experiments;
this module predicts the same quantities analytically.  Tests assert the
two agree, which pins down the simulator's semantics (and catches
regressions in either).  The formulas also make the calibration story in
DESIGN.md §5 auditable: each paper endpoint maps to one term here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fs.metadata import batch_completion_time_fast
from repro.fs.striping import StripingPolicy
from repro.fs.systems import SystemProfile


@dataclass(frozen=True)
class BandwidthPrediction:
    """The binding constraint and the resulting aggregate bandwidth."""

    bandwidth_mb_s: float
    binding_constraint: str  # "clients" | "backplane" | "files" | "rate_cap"


def predict_create_time(profile: SystemProfile, ntasks: int, kind: str = "create") -> float:
    """Fig. 3 task-local curves: the serialized metadata batch."""
    initial = ntasks if kind == "open" else 0
    return batch_completion_time_fast(
        ntasks, profile.metadata_costs, kind=kind, initial_entries=initial
    )


def predict_sion_create_time(
    profile: SystemProfile, ntasks: int, nfiles: int = 1, metablock_write: float = 0.01
) -> float:
    """Fig. 3 SION curve: nfiles creates + gather + grants + metablocks."""
    creates = batch_completion_time_fast(nfiles, profile.metadata_costs, "create")
    return (
        creates
        + profile.collective_time(ntasks)
        + ntasks * profile.shared_open_time
        + metablock_write * nfiles
    )


def predict_bandwidth(
    profile: SystemProfile,
    ntasks: int,
    op: str,
    nfiles: int,
    striping: StripingPolicy | None = None,
    tasklocal: bool = False,
    rate_cap_per_task: float | None = None,
) -> BandwidthPrediction:
    """Symmetric-transfer aggregate bandwidth: min over the constraints.

    Matches :func:`repro.workloads.common.parallel_io` for balanced
    scenarios (every file holds the same number of tasks, stripe placement
    collision-free), which is exactly the regime of Figs. 4-5.
    """
    if tasklocal:
        nfiles = ntasks
    candidates: dict[str, float] = {}
    candidates["clients"] = profile.aggregate_client_bw(ntasks)
    candidates["backplane"] = profile.backplane_after_overheads(
        op,
        n_shared_files=0 if tasklocal else nfiles,
        n_tasklocal_files=ntasks if tasklocal else 0,
    )
    cap = rate_cap_per_task if rate_cap_per_task is not None else profile.client_bw_per_task
    candidates["rate_cap"] = cap * ntasks

    if profile.fs_type == "gpfs":
        if not tasklocal:
            candidates["files"] = nfiles * profile.per_file_bw(op)
    else:
        pol = striping or profile.default_striping
        per_target = (
            profile.target_write_bw if op == "write" else profile.target_read_bw
        )
        stripe = min(pol.stripe_count, profile.n_targets)
        distinct = min(nfiles * stripe, profile.n_targets)
        candidates["files"] = distinct * per_target * pol.depth_efficiency()

    constraint = min(candidates, key=candidates.get)  # type: ignore[arg-type]
    return BandwidthPrediction(
        bandwidth_mb_s=candidates[constraint], binding_constraint=constraint
    )


def predict_alignment_factor(
    profile: SystemProfile, configured_blk: int, op: str = "write"
) -> float:
    """Table 1's rightmost column from the lock model alone."""
    k = profile.lock_model.sharers_per_block(configured_blk, profile.fs_block_size)
    if op == "write":
        return profile.lock_model.write_penalty(k)
    return profile.lock_model.read_penalty(k)


def predict_mp2c_sion_floor_bytes(profile: SystemProfile, ntasks: int) -> int:
    """Fig. 6's flat region: the one-FS-block-per-task allocation floor."""
    return ntasks * profile.fs_block_size


def predict_cached_read(
    profile: SystemProfile, disk_bw: float, data_bytes: float, ntasks: int
) -> float:
    """Fig. 5b's >peak reads from the client-cache model."""
    return profile.cache_model.effective_read_bandwidth(
        disk_bw, data_bytes, profile.n_nodes(ntasks)
    )


def speedup_bound_create(profile: SystemProfile, ntasks: int, nfiles: int = 1) -> float:
    """Upper-bound speedup of SION creation over task-local creation."""
    tl = predict_create_time(profile, ntasks)
    sion = predict_sion_create_time(profile, ntasks, nfiles)
    return tl / sion if sion > 0 else math.inf
