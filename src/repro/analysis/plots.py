"""ASCII rendering of figure series (for terminal-only reproduction runs)."""

from __future__ import annotations

import math

from repro.analysis.results import Series

_MARKS = "*+xo#@%&"


def ascii_chart(
    series: Series,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render the curves of ``series`` as a character grid.

    Each curve gets a marker from ``*+xo#@%&``; a legend follows the grid.
    Log axes mirror the paper's figure scales.
    """
    if not series.curves or not series.xs:
        return "(empty series)"

    def tx(v: float) -> float:
        return math.log10(max(v, 1e-300)) if log_x else v

    def ty(v: float) -> float:
        return math.log10(max(v, 1e-300)) if log_y else v

    xs = [tx(x) for x in series.xs]
    all_y = [ty(v) for ys in series.curves.values() for v in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for ci, (label, ys) in enumerate(series.curves.items()):
        mark = _MARKS[ci % len(_MARKS)]
        for x, y in zip(xs, (ty(v) for v in ys)):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    top = f"{10**y_hi if log_y else y_hi:.4g}"
    bottom = f"{10**y_lo if log_y else y_lo:.4g}"
    margin = max(len(top), len(bottom)) + 1
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = top.rjust(margin)
        elif i == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row_chars))
    lines.append(" " * margin + "+" + "-" * width)
    left = f"{10**x_lo if log_x else x_lo:.4g}"
    right = f"{10**x_hi if log_x else x_hi:.4g}"
    lines.append(
        " " * (margin + 1) + left + (" " * max(1, width - len(left) - len(right))) + right
    )
    lines.append(" " * (margin + 1) + f"x: {series.x_label}   y: {series.y_label}")
    lines.extend(
        " " * (margin + 1) + f"{_MARKS[ci % len(_MARKS)]} {label}"
        for ci, label in enumerate(series.curves)
    )
    return "\n".join(lines)
