"""Markdown report generation from saved benchmark results.

The benchmark harness writes every reproduced table/figure to
``benchmarks/results/<name>.txt``; this module assembles them into a
single markdown document (the regenerable core of EXPERIMENTS.md).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

#: Display order and titles for the known result artifacts.
ARTIFACTS: list[tuple[str, str]] = [
    ("fig3a_jugene", "Fig. 3a — parallel file creation, Jugene"),
    ("fig3b_jaguar", "Fig. 3b — parallel file creation, Jaguar"),
    ("fig4a_jugene", "Fig. 4a — bandwidth vs. #physical files, Jugene"),
    ("fig4b_jaguar", "Fig. 4b — bandwidth vs. #files and striping, Jaguar"),
    ("table1_alignment", "Table 1 — file-system block alignment"),
    ("fig5a_jugene", "Fig. 5a — SION vs. task-local bandwidth, Jugene"),
    ("fig5b_jaguar", "Fig. 5b — SION vs. task-local bandwidth, Jaguar"),
    ("fig6_mp2c", "Fig. 6 — MP2C restart I/O"),
    ("table2_scalasca", "Table 2 — Scalasca measurement activation"),
    ("ablation_alignment_sweep", "Ablation — alignment granularity sweep"),
    ("ablation_nfiles_tradeoff", "Ablation — number-of-files trade-off"),
    ("ablation_metadata_exchange", "Ablation — metadata exchange strategy"),
    ("ablation_tape_archive", "Ablation — tape archival (§1 motivation)"),
    ("ablation_interference", "Ablation — bystander interference (§1 motivation)"),
    ("weak_scaling_mp2c", "Weak scaling — MP2C checkpoints growing with the machine"),
    ("analyzer_trace_load", "Analyzer trace-load pass (§5.2 read path)"),
    ("extrapolation_million_tasks", "Extrapolation — toward a million tasks"),
]


@dataclass
class ReportSection:
    """One artifact's rendered block."""

    name: str
    title: str
    body: str
    missing: bool = False


def collect_sections(results_dir: str | pathlib.Path) -> list[ReportSection]:
    """Load every known artifact (missing ones are flagged, not fatal)."""
    root = pathlib.Path(results_dir)
    sections = []
    for name, title in ARTIFACTS:
        path = root / f"{name}.txt"
        if path.exists():
            sections.append(ReportSection(name, title, path.read_text().rstrip()))
        else:
            sections.append(
                ReportSection(
                    name,
                    title,
                    f"(missing — run `pytest benchmarks/ --benchmark-only` "
                    f"to produce {path.name})",
                    missing=True,
                )
            )
    return sections


def render_markdown(sections: list[ReportSection], heading: str = "Reproduced results") -> str:
    """Assemble the sections into one markdown document."""
    lines = [f"# {heading}", ""]
    produced = sum(1 for s in sections if not s.missing)
    lines.append(
        f"{produced}/{len(sections)} artifacts present. Regenerate with "
        "`pytest benchmarks/ --benchmark-only`."
    )
    lines.append("")
    for s in sections:
        lines.append(f"## {s.title}")
        lines.append("")
        lines.append("```")
        lines.append(s.body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: str | pathlib.Path, out_path: str | pathlib.Path
) -> pathlib.Path:
    """Collect + render + write; returns the output path."""
    out = pathlib.Path(out_path)
    out.write_text(render_markdown(collect_sections(results_dir)))
    return out
