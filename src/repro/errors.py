"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type.  Sub-hierarchies mirror
the package layout: SPMD substrate, simulated file system, and the SION
multifile layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# simmpi


class SimMPIError(ReproError):
    """Base class for SPMD-substrate errors."""


class CommunicatorError(SimMPIError):
    """Invalid communicator usage (bad rank, mismatched collective, ...)."""


class CollectiveMismatchError(CommunicatorError):
    """Ranks of one communicator called different collectives concurrently."""


class SpmdWorkerError(SimMPIError):
    """One or more SPMD workers raised; carries the per-rank exceptions."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first = next(iter(sorted(self.failures.items())))
        super().__init__(
            f"{len(self.failures)} SPMD worker(s) failed (ranks {ranks}); "
            f"first failure on rank {first[0]}: {first[1]!r}"
        )


# ---------------------------------------------------------------------------
# Simulated file system


class SimFSError(ReproError):
    """Base class for simulated-file-system errors."""


class FileExistsSimError(SimFSError):
    """Exclusive create of a path that already exists."""


class FileNotFoundSimError(SimFSError):
    """Open/stat/unlink of a path that does not exist."""


class NotADirectorySimError(SimFSError):
    """Path component used as a directory is not one."""


class InvalidOperationError(SimFSError):
    """Operation not valid for the handle's open mode or state."""


class FaultInjectedError(ReproError):
    """A :class:`~repro.backends.faults.FaultPlan` fired a scripted fault.

    Raised by :class:`~repro.backends.faults.FaultInjectingBackend` at the
    exact backend call a plan targets.  Deliberately a direct
    :class:`ReproError` subclass — it is neither a storage malfunction nor
    an API misuse, and tests must be able to tell a scripted fault from a
    real bug.  Carries only its message so it crosses process boundaries
    (the ``proc`` SPMD engine transports worker exceptions by pickle).
    """


# ---------------------------------------------------------------------------
# SION layer


class SionError(ReproError):
    """Base class for SION multifile errors."""


class SionFormatError(SionError):
    """File does not parse as a SION multifile (bad magic, truncation, ...)."""


class SionUsageError(SionError):
    """API misuse: wrong mode, closed handle, invalid parameter."""


class SionChunkOverflowError(SionError):
    """A plain write exceeded the space remaining in the current chunk.

    Raised when the caller used the raw ANSI-style ``write`` without a
    preceding :func:`ensure_free_space`, mirroring the corruption that would
    occur in C.  Use ``sion_fwrite`` to split writes across chunks instead.
    """


class SionMetadataLostError(SionError):
    """Metablock 2 is missing or corrupt; recovery may be possible."""
