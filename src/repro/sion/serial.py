"""Serial multifile access — the paper's Listings 3-5.

Three entry points:

* :func:`open` with mode ``"r"`` — *global view*: all metadata of all
  physical files is loaded (``get_locations``), and ``seek(rank, block,
  pos)`` positions anywhere in any task's data (Listing 5).
* :func:`open` with mode ``"w"`` — serial creation of a multifile for an
  arbitrary number of tasks, the prerequisite for post-processing tools
  like defragmentation (Listing 3).
* :func:`open_rank` — *task-local view*: read a single task's logical file
  with the same streaming API the parallel reader offers (Listing 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import Backend, RawFile
from repro.backends.localfs import LocalBackend
from repro.buffers import BufferLike, as_view
from repro.errors import SionUsageError
from repro.sion.constants import FLAG_COMPRESS, FLAG_SHADOW
from repro.sion.compression import ZlibReader
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import TaskMapping, physical_path
from repro.sion.openspec import OpenSpec, build_file_metadata, load_metablocks
from repro.sion.readwrite import TaskStream


@dataclass
class Locations:
    """Everything ``sion_get_locations`` reveals about a multifile."""

    ntasks: int
    nfiles: int
    fsblksize: int
    chunksizes: list[int]  # requested chunk size per global rank
    nblocks: list[int]  # blocks recorded per global rank
    blocksizes: list[list[int]]  # bytes written per rank per block
    file_of_task: list[int]
    compressed: bool

    def total_bytes(self, rank: int | None = None) -> int:
        """Logical bytes of one rank (or of the whole multifile)."""
        if rank is None:
            return sum(sum(b) for b in self.blocksizes)
        if not 0 <= rank < self.ntasks:
            raise SionUsageError(f"rank {rank} out of range ({self.ntasks})")
        return sum(self.blocksizes[rank])


class _PhysFile:
    """Loaded state of one physical file of the multifile set."""

    def __init__(
        self, filenum: int, path: str, raw: RawFile, mb1: Metablock1, layout: ChunkLayout
    ) -> None:
        self.filenum = filenum
        self.path = path
        self.raw = raw
        self.mb1 = mb1
        self.layout = layout
        self.mb2: Metablock2 | None = None


def open(  # noqa: A001 - mirrors the paper's sion_open
    path: str,
    mode: str = "r",
    *,
    chunksizes: list[int] | None = None,
    fsblksize: int | None = None,
    nfiles: int = 1,
    mapping: str | list[int] = "blocked",
    backend: Backend | None = None,
) -> "SionSerialFile":
    """Open a multifile from a serial program (global view).

    A thin shim over the shared pipeline: the options are validated as
    an :class:`~repro.sion.openspec.OpenSpec` (so contradictory
    combinations fail identically across every entry point) before the
    serial executor runs.
    """
    backend = backend if backend is not None else LocalBackend()
    spec = OpenSpec.for_serial(
        path,
        mode,
        chunksizes=chunksizes,
        fsblksize=fsblksize,
        nfiles=nfiles,
        mapping=mapping,
    )
    if spec.mode == "r":
        return SionSerialFile._open_read(path, backend)
    return SionSerialFile._open_write(spec, backend)


def open_rank(
    path: str, rank: int, backend: Backend | None = None
) -> "SionRankFile":
    """Open the task-local view of a single rank (read-only).

    Shares the pipeline's validated spec and metadata decode helpers
    with every other entry point (the task-local view is a read spec
    narrowed to one stream).
    """
    backend = backend if backend is not None else LocalBackend()
    spec = OpenSpec.for_serial(path, "r")
    return SionRankFile(spec.path, rank, backend)


class SionSerialFile:
    """Global-view handle for serial programs and command-line tools."""

    def __init__(
        self,
        mode: str,
        backend: Backend,
        base_path: str,
        files: list[_PhysFile],
        tmap: TaskMapping,
    ) -> None:
        self.mode = mode
        self.backend = backend
        self.base_path = base_path
        self._files = files
        self.mapping = tmap
        self._closed = False
        # Serial-write accounting: bytes written per (global rank, block).
        self._written: dict[int, dict[int, int]] = {}
        # Current cursor.
        self._cur_rank = 0
        self._cur_block = 0
        self._cur_pos = 0
        self._read_stream: TaskStream | None = None
        if mode == "r":
            self.seek(0, 0, 0)

    # -- constructors --------------------------------------------------------

    @classmethod
    def _open_read(cls, path: str, backend: Backend) -> "SionSerialFile":
        raw0 = backend.open(path, "rb")
        mb1_0, mb2_0, layout_0 = load_metablocks(raw0)
        tmap = TaskMapping.from_kind_code(
            mb1_0.ntasks_global, mb1_0.nfiles, mb1_0.mapping_kind, mb1_0.mapping_table
        )
        files: list[_PhysFile] = []
        for f in range(mb1_0.nfiles):
            fpath = physical_path(path, f)
            if f == 0:
                raw, (mb1, mb2, layout) = raw0, (mb1_0, mb2_0, layout_0)
            else:
                raw = backend.open(fpath, "rb")
                mb1, mb2, layout = load_metablocks(raw)
            pf = _PhysFile(f, fpath, raw, mb1, layout)
            pf.mb2 = mb2
            files.append(pf)
        return cls("r", backend, path, files, tmap)

    @classmethod
    def _open_write(cls, spec: OpenSpec, backend: Backend) -> "SionSerialFile":
        assert spec.chunksizes is not None
        chunksizes = list(spec.chunksizes)
        ntasks = len(chunksizes)
        tmap = TaskMapping.create(
            ntasks, spec.effective_nfiles, spec.effective_mapping
        )
        fsblksize = spec.fsblksize
        if fsblksize is None:
            fsblksize = backend.stat_blocksize(spec.path)
        files: list[_PhysFile] = []
        for f in range(tmap.nfiles):
            members = tmap.tasks_of_file(f)
            mb1, layout = build_file_metadata(
                tmap, f, [chunksizes[r] for r in members], members, fsblksize, 0
            )
            fpath = physical_path(spec.path, f)
            raw = backend.open(fpath, "w+b")
            raw.write(mb1.encode())
            files.append(_PhysFile(f, fpath, raw, mb1, layout))
        return cls("w", backend, spec.path, files, tmap)

    # -- metadata (Listing 5) ------------------------------------------------

    def get_locations(self) -> Locations:
        """Return the full multifile geometry (``sion_get_locations``).

        Per-file scatters of chunk sizes land through one fancy-indexed
        assignment per physical file; only the ragged per-block lists keep
        a (C-iterated) per-task loop.
        """
        self._check_open()
        ntasks = self.mapping.ntasks
        chunks = np.zeros(ntasks, dtype=np.int64)
        nblocks = np.zeros(ntasks, dtype=np.int64)
        blocksizes: list[list[int]] = [[] for _ in range(ntasks)]
        for pf in self._files:
            granks = np.asarray(pf.mb1.globalranks, dtype=np.intp)
            chunks[granks] = pf.mb1.chunksizes
            if pf.mb2 is not None:
                nblocks[granks] = [len(b) for b in pf.mb2.blocksizes]
                for grank, blocks in zip(pf.mb1.globalranks, pf.mb2.blocksizes):
                    blocksizes[grank] = list(blocks)
        return Locations(
            ntasks=ntasks,
            nfiles=self.mapping.nfiles,
            fsblksize=self._files[0].mb1.fsblksize,
            chunksizes=chunks.tolist(),
            nblocks=nblocks.tolist(),
            blocksizes=blocksizes,
            file_of_task=list(self.mapping.files),
            compressed=bool(self._files[0].mb1.flags & FLAG_COMPRESS),
        )

    @property
    def ntasks(self) -> int:
        """Number of logical task-local files in the multifile."""
        return self.mapping.ntasks

    @property
    def nfiles(self) -> int:
        """Number of physical files backing it."""
        return self.mapping.nfiles

    @property
    def fsblksize(self) -> int:
        """Alignment granularity recorded at creation."""
        return self._files[0].mb1.fsblksize

    @property
    def compressed(self) -> bool:
        """True if task streams are transparently zlib-compressed."""
        return bool(self._files[0].mb1.flags & FLAG_COMPRESS)

    # -- cursor ------------------------------------------------------------------

    def seek(self, rank: int, block: int = 0, pos: int = 0) -> None:
        """Position at ``pos`` within ``rank``'s chunk of ``block``.

        This is ``sion_seek``: the navigation primitive for both global-view
        reading and serial writing.
        """
        self._check_open()
        if not 0 <= rank < self.mapping.ntasks:
            raise SionUsageError(f"rank {rank} out of range ({self.mapping.ntasks})")
        pf = self._phys_of(rank)
        lrank = self.mapping.local_rank(rank)
        if self.mode == "r":
            assert pf.mb2 is not None
            stream = TaskStream(
                pf.raw,
                pf.layout,
                lrank,
                "r",
                blocksizes=pf.mb2.blocksizes[lrank],
                shadow=bool(pf.mb1.flags & FLAG_SHADOW),
            )
            stream.seek_logical(block, pos)
            self._read_stream = stream
        else:
            capacity = pf.layout.capacity(lrank)
            if block < 0 or pos < 0:
                raise SionUsageError("block and pos must be non-negative")
            if pos > capacity:
                raise SionUsageError(
                    f"pos {pos} beyond chunk capacity {capacity} of rank {rank}"
                )
            # Write mode keeps a purely logical cursor: every write is a
            # positioned backend call, so there is nothing to seek.
        self._cur_rank = rank
        self._cur_block = block
        self._cur_pos = pos

    # -- reading --------------------------------------------------------------------

    def bytes_avail_in_chunk(self) -> int:
        """Unread data bytes in the chunk under the cursor."""
        self._check_mode("r")
        assert self._read_stream is not None
        return self._read_stream.bytes_avail_in_chunk()

    def feof(self) -> bool:
        """True when the cursor's task has no data left."""
        self._check_mode("r")
        assert self._read_stream is not None
        return self._read_stream.feof()

    def read(self, n: int) -> bytes:
        """Read within the current chunk."""
        self._check_mode("r")
        self._no_compress("read")
        assert self._read_stream is not None
        return self._read_stream.read(n)

    def fread(self, n: int) -> bytes:
        """Read across chunk boundaries of the current task."""
        self._check_mode("r")
        self._no_compress("fread")
        assert self._read_stream is not None
        return self._read_stream.fread(n)

    def read_task(self, rank: int) -> bytes:
        """Entire logical content of ``rank``'s task-local file.

        Transparently decompresses if the multifile was written with
        ``compress=True``.
        """
        self._check_mode("r")
        self.seek(rank, 0, 0)
        assert self._read_stream is not None
        raw = self._read_stream.read_all()
        if self.compressed:
            zr = ZlibReader()
            zr.feed(raw)
            zr.source_exhausted()
            return zr.take(zr.available())
        return raw

    # -- serial writing (Listing 3) -----------------------------------------------------

    def ensure_free_space(self, nbytes: int) -> bool:
        """Advance the cursor to a fresh chunk if ``nbytes`` don't fit."""
        self._check_mode("w")
        pf = self._phys_of(self._cur_rank)
        capacity = pf.layout.capacity(self.mapping.local_rank(self._cur_rank))
        if nbytes < 0:
            raise SionUsageError("nbytes must be non-negative")
        if nbytes > capacity:
            raise SionUsageError(
                f"request of {nbytes} bytes exceeds chunk capacity {capacity}; "
                "use fwrite() to span chunks"
            )
        if self._cur_pos + nbytes > capacity:
            self.seek(self._cur_rank, self._cur_block + 1, 0)
            return True
        return False

    def write(self, data: BufferLike) -> int:
        """Write at the cursor; must stay inside the current chunk.

        The payload view goes down as one positioned backend write — no
        intermediate copy, no seek.
        """
        self._check_mode("w")
        pf = self._phys_of(self._cur_rank)
        lrank = self.mapping.local_rank(self._cur_rank)
        capacity = pf.layout.capacity(lrank)
        view = as_view(data)
        n = view.nbytes
        if self._cur_pos + n > capacity:
            raise SionUsageError(
                f"write of {n} bytes overflows chunk capacity {capacity} "
                f"at pos {self._cur_pos}; call ensure_free_space first"
            )
        if n:
            pf.raw.pwrite(
                pf.layout.chunk_start(lrank, self._cur_block) + self._cur_pos, view
            )
        self._record_written(self._cur_rank, self._cur_block, self._cur_pos + n)
        self._cur_pos += n
        return n

    def fwrite(self, data: BufferLike) -> int:
        """Write at the cursor, spanning blocks of the current task.

        Splits the payload at chunk boundaries locally and issues a
        single vectored ``scatter_write`` for the whole fragment list.
        """
        self._check_mode("w")
        view = as_view(data)
        total = view.nbytes
        if total == 0:
            return 0
        pf = self._phys_of(self._cur_rank)
        lrank = self.mapping.local_rank(self._cur_rank)
        capacity = pf.layout.capacity(lrank)
        fragments: list[tuple[int, BufferLike]] = []
        ends: list[tuple[int, int]] = []  # (block, end_pos) to record on success
        blk, pos = self._cur_block, self._cur_pos
        done = 0
        while done < total:
            avail = capacity - pos
            if avail == 0:
                blk += 1
                pos = 0
                avail = capacity
            take = min(avail, total - done)
            fragments.append(
                (pf.layout.chunk_start(lrank, blk) + pos, view[done : done + take])
            )
            pos += take
            ends.append((blk, pos))
            done += take
        pf.raw.scatter_write(fragments)
        # Metadata commits only after the backend accepted the bytes — a
        # failed write must not leave metablock 2 claiming phantom data.
        for b, end in ends:
            self._record_written(self._cur_rank, b, end)
        self._cur_block, self._cur_pos = blk, pos
        return total

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        """Close; in write mode this appends metablock 2 to every file."""
        if self._closed:
            return
        if self.mode == "w":
            for pf in self._files:
                blocksizes: list[list[int]] = []
                for grank in pf.mb1.globalranks:
                    per_block = self._written.get(grank, {})
                    nblocks = max(per_block) + 1 if per_block else 1
                    blocksizes.append(
                        [per_block.get(b, 0) for b in range(nblocks)]
                    )
                mb2 = Metablock2(blocksizes=blocksizes)
                offset = pf.layout.end_of_blocks(mb2.maxblocks)
                pf.raw.seek(offset)
                pf.raw.write(mb2.encode())
                pf.mb1.patch_metablock2_offset(pf.raw, offset)
                pf.raw.flush()
        for pf in self._files:
            pf.raw.close()
        self._closed = True

    def __enter__(self) -> "SionSerialFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------------------------

    def _phys_of(self, rank: int) -> _PhysFile:
        return self._files[self.mapping.file_of(rank)]

    def _record_written(self, rank: int, block: int, end_pos: int) -> None:
        per_block = self._written.setdefault(rank, {})
        per_block[block] = max(per_block.get(block, 0), end_pos)

    def _check_open(self) -> None:
        if self._closed:
            raise SionUsageError("multifile is closed")

    def _check_mode(self, mode: str) -> None:
        self._check_open()
        if self.mode != mode:
            raise SionUsageError(
                f"operation requires mode {mode!r}, file is open {self.mode!r}"
            )

    def _no_compress(self, op: str) -> None:
        if self.compressed:
            raise SionUsageError(
                f"{op} returns raw chunk bytes, which are compressed in this "
                "multifile; use read_task for transparent decompression"
            )


class SionRankFile:
    """Task-local read view of one rank (Listing 4)."""

    def __init__(self, path: str, rank: int, backend: Backend) -> None:
        raw0 = backend.open(path, "rb")
        mb1_0 = Metablock1.decode_from(raw0)
        tmap = TaskMapping.from_kind_code(
            mb1_0.ntasks_global, mb1_0.nfiles, mb1_0.mapping_kind, mb1_0.mapping_table
        )
        if not 0 <= rank < tmap.ntasks:
            raw0.close()
            raise SionUsageError(f"rank {rank} out of range ({tmap.ntasks} tasks)")
        filenum = tmap.file_of(rank)
        lrank = tmap.local_rank(rank)
        if filenum == 0:
            raw, mb1 = raw0, mb1_0
            mb2 = Metablock2.decode_from(raw, mb1.metablock2_offset)
            layout = ChunkLayout.from_metablock1(mb1)
        else:
            raw0.close()
            raw = backend.open(physical_path(path, filenum), "rb")
            mb1, mb2, layout = load_metablocks(raw)
        self.rank = rank
        self.path = path
        self._raw = raw
        self.mb1 = mb1
        self.compressed = bool(mb1.flags & FLAG_COMPRESS)
        self._stream = TaskStream(
            raw,
            layout,
            lrank,
            "r",
            blocksizes=mb2.blocksizes[lrank],
            shadow=bool(mb1.flags & FLAG_SHADOW),
        )
        self._zr = ZlibReader() if self.compressed else None
        self._closed = False

    def bytes_avail_in_chunk(self) -> int:
        """Unread data bytes in the current chunk (raw stream)."""
        self._check_open()
        return self._stream.bytes_avail_in_chunk()

    def get_current_location(self) -> tuple[int, int]:
        """``sion_get_current_location``: ``(block, pos_in_chunk)``."""
        self._check_open()
        return self._stream.cur_block, self._stream.pos

    def tell_logical(self) -> int:
        """Raw chunk-stream bytes consumed so far for this rank."""
        self._check_open()
        return self._stream.tell_logical()

    def feof(self) -> bool:
        """True when this rank's logical stream is exhausted."""
        self._check_open()
        if self._zr is not None:
            self._pump(1)
            return self._zr.exhausted
        return self._stream.feof()

    def read(self, n: int) -> bytes:
        """Read within the current chunk (raw bytes; no decompression)."""
        self._check_open()
        if self.compressed:
            raise SionUsageError("compressed multifile: use fread/read_all")
        return self._stream.read(n)

    def fread(self, n: int) -> bytes:
        """Read up to ``n`` logical bytes, crossing chunk boundaries."""
        self._check_open()
        if self._zr is not None:
            self._pump(n)
            return self._zr.take(n)
        return self._stream.fread(n)

    def read_all(self) -> bytes:
        """Everything that remains of this rank's logical file."""
        self._check_open()
        if self._zr is not None:
            parts = []
            while not self.feof():
                self._pump(1 << 20)
                parts.append(self._zr.take(self._zr.available()))
            return b"".join(parts)
        return self._stream.read_all()

    def close(self) -> None:
        """Release the underlying physical-file handle."""
        if not self._closed:
            self._raw.close()
            self._closed = True

    def __enter__(self) -> "SionRankFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _pump(self, want: int) -> None:
        assert self._zr is not None
        while self._zr.available() < want and not self._stream.feof():
            piece = self._stream.fread(64 * 1024)
            if not piece:
                break
            self._zr.feed(piece)
        if self._stream.feof():
            self._zr.source_exhausted()

    def _check_open(self) -> None:
        if self._closed:
            raise SionUsageError("rank file is closed")
