"""Write coalescing for fine-grained output.

Applications that emit many tiny records (trace events, log lines, particle
attributes) would otherwise hit the storage layer once per record.  The
:class:`CoalescingWriter` batches small ``fwrite``s into an in-memory
buffer and flushes it in chunk-sized pieces — the classic buffered-stdio
optimization, applied per task-local stream.

It is a pure wrapper: bytes on disk are identical with and without it
(property-tested), only the number of backend write calls changes.
"""

from __future__ import annotations

from repro.buffers import BufferLike, as_view
from repro.errors import SionUsageError


class CoalescingWriter:
    """Batch small writes into ``buffer_size``-byte flushes.

    Copy discipline: small records are copied **once**, into the staging
    buffer (that copy *is* the coalescing); each flush then hands the
    stream a ``memoryview`` of the buffer — no flush-time copy.  Large
    writes arriving on an empty buffer bypass the staging entirely and
    the caller's view flows through untouched.

    >>> w = CoalescingWriter(handle, buffer_size=64 * 1024)  # doctest: +SKIP
    ... for record in records:
    ...     w.write(record)
    ... w.close()        # flushes the tail; the handle stays open
    """

    def __init__(self, stream, buffer_size: int = 64 * 1024) -> None:
        if buffer_size < 1:
            raise SionUsageError(f"buffer_size must be positive: {buffer_size}")
        self.stream = stream
        self.buffer_size = buffer_size
        self._buf = bytearray()
        self._closed = False
        self.bytes_written = 0
        self.flushes = 0

    def write(self, data: BufferLike) -> int:
        """Queue ``data``; flushes automatically at the buffer bound."""
        self._check_open()
        view = as_view(data)
        n = view.nbytes
        self.bytes_written += n
        if n >= self.buffer_size and not self._buf:
            # Large writes bypass the staging buffer: zero-copy passthrough.
            self.stream.fwrite(view)
            self.flushes += 1
            return n
        self._buf += view
        while len(self._buf) >= self.buffer_size:
            self._flush_prefix(self.buffer_size)
        return n

    def fwrite(self, data: BufferLike) -> int:
        """Alias for :meth:`write`, matching the SION stream protocol so
        the coalescer can sit under :class:`~repro.sion.text.TextWriter`
        or any other layer written against ``fwrite``."""
        return self.write(data)

    def flush(self) -> None:
        """Push any buffered tail down to the stream."""
        self._check_open()
        if self._buf:
            self._flush_prefix(len(self._buf))

    def _flush_prefix(self, size: int) -> None:
        """Hand the stream a view of the buffer head, then drop it.

        The view must be released before the ``del`` — a ``bytearray``
        with exported buffers refuses to resize.  Downstream consumes the
        bytes synchronously (the vectored backend call returns only after
        the store took its copy), so releasing here is safe.
        """
        view = memoryview(self._buf)
        head = view[:size]
        try:
            self.stream.fwrite(head)
        finally:
            head.release()
            view.release()
        del self._buf[:size]
        self.flushes += 1

    @property
    def pending(self) -> int:
        """Bytes queued but not yet flushed."""
        return len(self._buf)

    def close(self) -> None:
        """Flush and detach (does *not* close the underlying handle)."""
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "CoalescingWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SionUsageError("coalescing writer is closed")


class CountingStream:
    """Test/diagnostic wrapper counting fwrite calls and bytes."""

    def __init__(self, stream) -> None:
        self.stream = stream
        self.calls = 0
        self.bytes = 0

    def fwrite(self, data: bytes) -> int:
        self.calls += 1
        self.bytes += len(data)
        return self.stream.fwrite(data)

    def __getattr__(self, name):
        return getattr(self.stream, name)
