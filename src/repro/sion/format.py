"""Binary encoding of the multifile metablocks.

A physical SION file looks like (paper Fig. 2):

```
+-------------+------------------- ... -------------------+-------------+
| metablock 1 | block 0 | block 1 | ...      (chunk data) | metablock 2 |
+-------------+------------------- ... -------------------+-------------+
```

*Metablock 1* is written at offset 0 during the collective open: layout
parameters (fs block size, chunk sizes, global ranks) plus, in physical
file 0, the task-to-file mapping.  Its ``metablock2_offset`` field is
patched during the collective close, when *metablock 2* — per-task block
counts and bytes actually written per chunk — is appended at the end.

All integers are little-endian.  Metablock 2 carries a CRC32 so truncation
and corruption are detectable (the recovery path, paper §6, reconstructs it
from per-chunk shadow headers).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.backends.base import RawFile
from repro.errors import SionFormatError
from repro.sion.constants import (
    FORMAT_VERSION,
    MAGIC_MB1,
    MAGIC_MB2,
    MAGIC_SHADOW,
    MAPPING_BLOCKED,
    MAPPING_CUSTOM,
    MAPPING_ROUNDROBIN,
    SHADOW_HEADER_SIZE,
)

_MB1_HEAD = struct.Struct("<8sIIQIIIIQQ")
# magic, version, flags, fsblksize, ntasks_local, nfiles, filenum,
# ntasks_global, start_of_data, metablock2_offset
_MB2_HEAD = struct.Struct("<8sI")
_SHADOW = struct.Struct("<8sIIQQ")  # magic, ltask, block, written, crc


@dataclass
class Metablock1:
    """Layout metadata at the head of one physical file."""

    fsblksize: int
    ntasks_local: int
    nfiles: int
    filenum: int
    ntasks_global: int
    start_of_data: int
    metablock2_offset: int
    globalranks: list[int]
    chunksizes: list[int]  # requested (pre-alignment) chunk sizes, bytes
    flags: int = 0
    mapping_kind: int = MAPPING_BLOCKED
    # Only present in file 0 when mapping_kind == MAPPING_CUSTOM:
    mapping_table: list[tuple[int, int]] = field(default_factory=list)

    def validate(self) -> None:
        """Raise :class:`SionFormatError` on internally inconsistent values."""
        if self.fsblksize < 1:
            raise SionFormatError(f"fsblksize must be positive: {self.fsblksize}")
        if self.ntasks_local < 0 or self.ntasks_global < self.ntasks_local:
            raise SionFormatError(
                f"bad task counts: local={self.ntasks_local} "
                f"global={self.ntasks_global}"
            )
        if not 0 <= self.filenum < max(self.nfiles, 1):
            raise SionFormatError(
                f"filenum {self.filenum} out of range for nfiles {self.nfiles}"
            )
        if len(self.globalranks) != self.ntasks_local:
            raise SionFormatError("globalranks length mismatch")
        if len(self.chunksizes) != self.ntasks_local:
            raise SionFormatError("chunksizes length mismatch")
        if any(c < 0 for c in self.chunksizes):
            raise SionFormatError("negative chunk size")
        if self.mapping_kind not in (
            MAPPING_BLOCKED,
            MAPPING_ROUNDROBIN,
            MAPPING_CUSTOM,
        ):
            raise SionFormatError(f"unknown mapping kind {self.mapping_kind}")
        if self.mapping_kind == MAPPING_CUSTOM and self.filenum == 0:
            if len(self.mapping_table) != self.ntasks_global:
                raise SionFormatError("custom mapping table length mismatch")

    def encode(self) -> bytes:
        """Serialize; the result's length is the metablock-1 size on disk."""
        self.validate()
        head = _MB1_HEAD.pack(
            MAGIC_MB1,
            FORMAT_VERSION,
            self.flags,
            self.fsblksize,
            self.ntasks_local,
            self.nfiles,
            self.filenum,
            self.ntasks_global,
            self.start_of_data,
            self.metablock2_offset,
        )
        parts = [head]
        parts.append(struct.pack(f"<{self.ntasks_local}Q", *self.globalranks))
        parts.append(struct.pack(f"<{self.ntasks_local}Q", *self.chunksizes))
        parts.append(struct.pack("<I", self.mapping_kind))
        if self.mapping_kind == MAPPING_CUSTOM and self.filenum == 0:
            flat = [v for pair in self.mapping_table for v in pair]
            parts.append(struct.pack(f"<{2 * self.ntasks_global}I", *flat))
        return b"".join(parts)

    @property
    def encoded_size(self) -> int:
        """Size of the encoded metablock without building it."""
        n = _MB1_HEAD.size + 16 * self.ntasks_local + 4
        if self.mapping_kind == MAPPING_CUSTOM and self.filenum == 0:
            n += 8 * self.ntasks_global
        return n

    @classmethod
    def decode_from(cls, f: RawFile) -> "Metablock1":
        """Read and parse metablock 1 from the start of ``f``."""
        f.seek(0)
        raw = f.read(_MB1_HEAD.size)
        if len(raw) != _MB1_HEAD.size:
            raise SionFormatError("file too short for a SION metablock 1")
        (
            magic,
            version,
            flags,
            fsblksize,
            ntasks_local,
            nfiles,
            filenum,
            ntasks_global,
            start_of_data,
            mb2_offset,
        ) = _MB1_HEAD.unpack(raw)
        if magic != MAGIC_MB1:
            raise SionFormatError(
                f"not a SION multifile (magic {magic!r} != {MAGIC_MB1!r})"
            )
        if version != FORMAT_VERSION:
            raise SionFormatError(f"unsupported format version {version}")
        granks = _read_array(f, "Q", ntasks_local, "globalranks")
        chunks = _read_array(f, "Q", ntasks_local, "chunksizes")
        (mapping_kind,) = struct.unpack("<I", _read_exact(f, 4, "mapping kind"))
        table: list[tuple[int, int]] = []
        if mapping_kind == MAPPING_CUSTOM and filenum == 0:
            flat = _read_array(f, "I", 2 * ntasks_global, "mapping table")
            table = [(flat[2 * i], flat[2 * i + 1]) for i in range(ntasks_global)]
        mb1 = cls(
            fsblksize=fsblksize,
            ntasks_local=ntasks_local,
            nfiles=nfiles,
            filenum=filenum,
            ntasks_global=ntasks_global,
            start_of_data=start_of_data,
            metablock2_offset=mb2_offset,
            globalranks=list(granks),
            chunksizes=list(chunks),
            flags=flags,
            mapping_kind=mapping_kind,
            mapping_table=table,
        )
        mb1.validate()
        return mb1

    def patch_metablock2_offset(self, f: RawFile, offset: int) -> None:
        """Rewrite only the ``metablock2_offset`` field in place."""
        self.metablock2_offset = offset
        # Field position: after 8s I I Q I I I I Q = 8+4+4+8+4+4+4+4+8 = 48.
        f.seek(_MB1_HEAD.size - 8)
        f.write(struct.pack("<Q", offset))


@dataclass
class Metablock2:
    """Write-accounting metadata appended at close time.

    ``blocksizes[t][b]`` is the number of bytes task ``t`` (local index)
    actually wrote into its chunk of block ``b``.
    """

    blocksizes: list[list[int]]

    @property
    def ntasks_local(self) -> int:
        return len(self.blocksizes)

    @property
    def maxblocks(self) -> int:
        """Largest per-task block count (the multifile's block count)."""
        return max((len(b) for b in self.blocksizes), default=0)

    def validate(self) -> None:
        for t, blocks in enumerate(self.blocksizes):
            if any(b < 0 for b in blocks):
                raise SionFormatError(f"task {t}: negative block size")

    def encode(self) -> bytes:
        """Serialize with a trailing CRC32 over the payload."""
        self.validate()
        parts = [_MB2_HEAD.pack(MAGIC_MB2, self.ntasks_local)]
        nblocks = [len(b) for b in self.blocksizes]
        parts.append(struct.pack(f"<{self.ntasks_local}I", *nblocks))
        parts.extend(
            struct.pack(f"<{len(blocks)}Q", *blocks) for blocks in self.blocksizes
        )
        payload = b"".join(parts)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return payload + struct.pack("<I", crc)

    @classmethod
    def decode_from(cls, f: RawFile, offset: int) -> "Metablock2":
        """Read and verify metablock 2 at ``offset``."""
        if offset <= 0:
            raise SionFormatError(
                "metablock 2 offset not set (file was never closed cleanly)"
            )
        f.seek(offset)
        head = _read_exact(f, _MB2_HEAD.size, "metablock 2 header")
        magic, ntasks = _MB2_HEAD.unpack(head)
        if magic != MAGIC_MB2:
            raise SionFormatError(
                f"bad metablock 2 magic {magic!r} at offset {offset}"
            )
        nblocks_raw = _read_exact(f, 4 * ntasks, "metablock 2 block counts")
        nblocks = struct.unpack(f"<{ntasks}I", nblocks_raw)
        payload = head + nblocks_raw
        blocksizes: list[list[int]] = []
        for t in range(ntasks):
            raw = _read_exact(f, 8 * nblocks[t], f"task {t} block sizes")
            payload += raw
            blocksizes.append(list(struct.unpack(f"<{nblocks[t]}Q", raw)))
        (stored_crc,) = struct.unpack("<I", _read_exact(f, 4, "metablock 2 crc"))
        if stored_crc != (zlib.crc32(payload) & 0xFFFFFFFF):
            raise SionFormatError("metablock 2 CRC mismatch (corrupt or truncated)")
        return cls(blocksizes=blocksizes)


@dataclass
class ShadowHeader:
    """Tiny per-chunk header enabling metablock-2 reconstruction (§6)."""

    ltask: int
    block: int
    written: int

    def encode(self) -> bytes:
        body = _SHADOW.pack(MAGIC_SHADOW, self.ltask, self.block, self.written, 0)
        crc = zlib.crc32(body[:-8]) & 0xFFFFFFFF
        out = _SHADOW.pack(MAGIC_SHADOW, self.ltask, self.block, self.written, crc)
        assert len(out) == SHADOW_HEADER_SIZE
        return out

    @classmethod
    def decode(cls, raw: bytes) -> "ShadowHeader | None":
        """Parse a shadow header; ``None`` if the bytes aren't one."""
        if len(raw) < SHADOW_HEADER_SIZE:
            return None
        magic, ltask, block, written, crc = _SHADOW.unpack(raw[:SHADOW_HEADER_SIZE])
        if magic != MAGIC_SHADOW:
            return None
        expect = zlib.crc32(_SHADOW.pack(magic, ltask, block, written, 0)[:-8])
        if crc != (expect & 0xFFFFFFFF):
            return None
        return cls(ltask=ltask, block=block, written=written)


def _read_exact(f: RawFile, n: int, what: str) -> bytes:
    raw = f.read(n)
    if len(raw) != n:
        raise SionFormatError(f"truncated multifile while reading {what}")
    return raw


def _read_array(f: RawFile, fmt: str, count: int, what: str) -> tuple:
    width = struct.calcsize(f"<{fmt}")
    raw = _read_exact(f, width * count, what)
    return struct.unpack(f"<{count}{fmt}", raw)
