"""Binary encoding of the multifile metablocks.

A physical SION file looks like (paper Fig. 2):

```
+-------------+------------------- ... -------------------+-------------+
| metablock 1 | block 0 | block 1 | ...      (chunk data) | metablock 2 |
+-------------+------------------- ... -------------------+-------------+
```

*Metablock 1* is written at offset 0 during the collective open: layout
parameters (fs block size, chunk sizes, global ranks) plus, in physical
file 0, the task-to-file mapping.  Its ``metablock2_offset`` field is
patched during the collective close, when *metablock 2* — per-task block
counts and bytes actually written per chunk — is appended at the end.

All integers are little-endian.  Metablock 2 carries a CRC32 so truncation
and corruption are detectable (the recovery path, paper §6, reconstructs it
from per-chunk shadow headers).
"""

from __future__ import annotations

import itertools
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.backends.base import RawFile
from repro.errors import SionFormatError
from repro.sion.constants import (
    FORMAT_VERSION,
    MAGIC_MB1,
    MAGIC_MB2,
    MAGIC_SHADOW,
    MAPPING_BLOCKED,
    MAPPING_CUSTOM,
    MAPPING_ROUNDROBIN,
    SHADOW_HEADER_SIZE,
)

_MB1_HEAD = struct.Struct("<8sIIQIIIIQQ")
# magic, version, flags, fsblksize, ntasks_local, nfiles, filenum,
# ntasks_global, start_of_data, metablock2_offset
_MB2_HEAD = struct.Struct("<8sI")
_SHADOW = struct.Struct("<8sIIQQ")  # magic, ltask, block, written, crc


def _pack_array(values, dtype: str, what: str) -> bytes:
    """Little-endian array encoding in one C pass (no ``struct`` splat).

    Byte-for-byte identical to ``struct.pack(f"<{n}{fmt}", *values)`` for
    in-range values; out-of-range values raise :class:`SionFormatError`
    instead of ``struct.error``.
    """
    try:
        return np.asarray(values, dtype=dtype).tobytes()
    except (OverflowError, ValueError, TypeError) as exc:
        raise SionFormatError(f"cannot encode {what}: {exc}") from None


def _pack_flat_u64(nested, count: int, what: str) -> bytes:
    """Encode a ragged list-of-lists of u64 as one flat little-endian run."""
    try:
        flat = np.fromiter(
            itertools.chain.from_iterable(nested), dtype=np.uint64, count=count
        )
    except (OverflowError, ValueError, TypeError) as exc:
        raise SionFormatError(f"cannot encode {what}: {exc}") from None
    return flat.astype("<u8", copy=False).tobytes()


@dataclass
class Metablock1:
    """Layout metadata at the head of one physical file."""

    fsblksize: int
    ntasks_local: int
    nfiles: int
    filenum: int
    ntasks_global: int
    start_of_data: int
    metablock2_offset: int
    globalranks: list[int]
    chunksizes: list[int]  # requested (pre-alignment) chunk sizes, bytes
    flags: int = 0
    mapping_kind: int = MAPPING_BLOCKED
    # Only present in file 0 when mapping_kind == MAPPING_CUSTOM:
    mapping_table: list[tuple[int, int]] = field(default_factory=list)

    def validate(self) -> None:
        """Raise :class:`SionFormatError` on internally inconsistent values."""
        if self.fsblksize < 1:
            raise SionFormatError(f"fsblksize must be positive: {self.fsblksize}")
        if self.ntasks_local < 0 or self.ntasks_global < self.ntasks_local:
            raise SionFormatError(
                f"bad task counts: local={self.ntasks_local} "
                f"global={self.ntasks_global}"
            )
        if not 0 <= self.filenum < max(self.nfiles, 1):
            raise SionFormatError(
                f"filenum {self.filenum} out of range for nfiles {self.nfiles}"
            )
        if len(self.globalranks) != self.ntasks_local:
            raise SionFormatError("globalranks length mismatch")
        if len(self.chunksizes) != self.ntasks_local:
            raise SionFormatError("chunksizes length mismatch")
        if self.chunksizes and min(self.chunksizes) < 0:
            raise SionFormatError("negative chunk size")
        if self.mapping_kind not in (
            MAPPING_BLOCKED,
            MAPPING_ROUNDROBIN,
            MAPPING_CUSTOM,
        ):
            raise SionFormatError(f"unknown mapping kind {self.mapping_kind}")
        if self.mapping_kind == MAPPING_CUSTOM and self.filenum == 0:
            if len(self.mapping_table) != self.ntasks_global:
                raise SionFormatError("custom mapping table length mismatch")

    def encode(self) -> bytes:
        """Serialize; the result's length is the metablock-1 size on disk."""
        self.validate()
        head = _MB1_HEAD.pack(
            MAGIC_MB1,
            FORMAT_VERSION,
            self.flags,
            self.fsblksize,
            self.ntasks_local,
            self.nfiles,
            self.filenum,
            self.ntasks_global,
            self.start_of_data,
            self.metablock2_offset,
        )
        parts = [head]
        parts.append(_pack_array(self.globalranks, "<u8", "globalranks"))
        parts.append(_pack_array(self.chunksizes, "<u8", "chunksizes"))
        parts.append(struct.pack("<I", self.mapping_kind))
        if self.mapping_kind == MAPPING_CUSTOM and self.filenum == 0:
            # An (ntasks, 2) array serializes row-major: exactly the
            # flattened (file, local rank) pair stream of the format.
            parts.append(_pack_array(self.mapping_table, "<u4", "mapping table"))
        return b"".join(parts)

    @property
    def encoded_size(self) -> int:
        """Size of the encoded metablock without building it."""
        n = _MB1_HEAD.size + 16 * self.ntasks_local + 4
        if self.mapping_kind == MAPPING_CUSTOM and self.filenum == 0:
            n += 8 * self.ntasks_global
        return n

    @classmethod
    def decode_from(cls, f: RawFile) -> "Metablock1":
        """Read and parse metablock 1 from the start of ``f``."""
        f.seek(0)
        raw = f.read(_MB1_HEAD.size)
        if len(raw) != _MB1_HEAD.size:
            raise SionFormatError("file too short for a SION metablock 1")
        (
            magic,
            version,
            flags,
            fsblksize,
            ntasks_local,
            nfiles,
            filenum,
            ntasks_global,
            start_of_data,
            mb2_offset,
        ) = _MB1_HEAD.unpack(raw)
        if magic != MAGIC_MB1:
            raise SionFormatError(
                f"not a SION multifile (magic {magic!r} != {MAGIC_MB1!r})"
            )
        if version != FORMAT_VERSION:
            raise SionFormatError(f"unsupported format version {version}")
        granks = _read_array(f, "<u8", ntasks_local, "globalranks")
        chunks = _read_array(f, "<u8", ntasks_local, "chunksizes")
        (mapping_kind,) = struct.unpack("<I", _read_exact(f, 4, "mapping kind"))
        table: list[tuple[int, int]] = []
        if mapping_kind == MAPPING_CUSTOM and filenum == 0:
            # One frombuffer for the whole table; the strided views split
            # the (file, local rank) columns without a per-task loop.
            flat = _read_array(f, "<u4", 2 * ntasks_global, "mapping table")
            table = list(zip(flat[0::2].tolist(), flat[1::2].tolist()))
        mb1 = cls(
            fsblksize=fsblksize,
            ntasks_local=ntasks_local,
            nfiles=nfiles,
            filenum=filenum,
            ntasks_global=ntasks_global,
            start_of_data=start_of_data,
            metablock2_offset=mb2_offset,
            globalranks=granks.tolist(),
            chunksizes=chunks.tolist(),
            flags=flags,
            mapping_kind=mapping_kind,
            mapping_table=table,
        )
        mb1.validate()
        return mb1

    def patch_metablock2_offset(self, f: RawFile, offset: int) -> None:
        """Rewrite only the ``metablock2_offset`` field in place."""
        self.metablock2_offset = offset
        # Field position: after 8s I I Q I I I I Q = 8+4+4+8+4+4+4+4+8 = 48.
        f.seek(_MB1_HEAD.size - 8)
        f.write(struct.pack("<Q", offset))


@dataclass
class Metablock2:
    """Write-accounting metadata appended at close time.

    ``blocksizes[t][b]`` is the number of bytes task ``t`` (local index)
    actually wrote into its chunk of block ``b``.
    """

    blocksizes: list[list[int]]

    @property
    def ntasks_local(self) -> int:
        return len(self.blocksizes)

    @property
    def maxblocks(self) -> int:
        """Largest per-task block count (the multifile's block count)."""
        return max((len(b) for b in self.blocksizes), default=0)

    def validate(self) -> None:
        for t, blocks in enumerate(self.blocksizes):
            # min() is one C pass per task, vs. a Python loop per block.
            if blocks and min(blocks) < 0:
                raise SionFormatError(f"task {t}: negative block size")

    def encode(self) -> bytes:
        """Serialize with a trailing CRC32 over the payload.

        The per-task u64 runs concatenate into one flat little-endian
        array, encoded in a single pass — byte-identical to the former
        per-task ``struct.pack`` loop.
        """
        self.validate()
        nblocks = [len(b) for b in self.blocksizes]
        payload = b"".join(
            (
                _MB2_HEAD.pack(MAGIC_MB2, self.ntasks_local),
                _pack_array(nblocks, "<u4", "metablock 2 block counts"),
                _pack_flat_u64(self.blocksizes, sum(nblocks), "metablock 2 block sizes"),
            )
        )
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return payload + struct.pack("<I", crc)

    @classmethod
    def decode_from(cls, f: RawFile, offset: int) -> "Metablock2":
        """Read and verify metablock 2 at ``offset``.

        All per-task block-size runs are fetched as one read and decoded
        with a single ``frombuffer``; the rows are then sliced out of the
        decoded flat list (C-speed slicing, no per-entry unpacking).
        """
        if offset <= 0:
            raise SionFormatError(
                "metablock 2 offset not set (file was never closed cleanly)"
            )
        f.seek(offset)
        head = _read_exact(f, _MB2_HEAD.size, "metablock 2 header")
        magic, ntasks = _MB2_HEAD.unpack(head)
        if magic != MAGIC_MB2:
            raise SionFormatError(
                f"bad metablock 2 magic {magic!r} at offset {offset}"
            )
        nblocks_raw = _read_exact(f, 4 * ntasks, "metablock 2 block counts")
        nblocks = np.frombuffer(nblocks_raw, dtype="<u4")
        total = int(nblocks.sum())
        sizes_raw = _read_exact(f, 8 * total, "metablock 2 block sizes")
        payload = head + nblocks_raw + sizes_raw
        (stored_crc,) = struct.unpack("<I", _read_exact(f, 4, "metablock 2 crc"))
        if stored_crc != (zlib.crc32(payload) & 0xFFFFFFFF):
            raise SionFormatError("metablock 2 CRC mismatch (corrupt or truncated)")
        flat = np.frombuffer(sizes_raw, dtype="<u8").tolist()
        bounds = np.concatenate(([0], np.cumsum(nblocks, dtype=np.int64))).tolist()
        blocksizes = [flat[bounds[t] : bounds[t + 1]] for t in range(ntasks)]
        return cls(blocksizes=blocksizes)


@dataclass
class ShadowHeader:
    """Tiny per-chunk header enabling metablock-2 reconstruction (§6)."""

    ltask: int
    block: int
    written: int

    def encode(self) -> bytes:
        body = _SHADOW.pack(MAGIC_SHADOW, self.ltask, self.block, self.written, 0)
        crc = zlib.crc32(body[:-8]) & 0xFFFFFFFF
        out = _SHADOW.pack(MAGIC_SHADOW, self.ltask, self.block, self.written, crc)
        assert len(out) == SHADOW_HEADER_SIZE
        return out

    @classmethod
    def decode(cls, raw: bytes) -> "ShadowHeader | None":
        """Parse a shadow header; ``None`` if the bytes aren't one."""
        if len(raw) < SHADOW_HEADER_SIZE:
            return None
        magic, ltask, block, written, crc = _SHADOW.unpack(raw[:SHADOW_HEADER_SIZE])
        if magic != MAGIC_SHADOW:
            return None
        expect = zlib.crc32(_SHADOW.pack(magic, ltask, block, written, 0)[:-8])
        if crc != (expect & 0xFFFFFFFF):
            return None
        return cls(ltask=ltask, block=block, written=written)


def _read_exact(f: RawFile, n: int, what: str) -> bytes:
    raw = f.read(n)
    if len(raw) != n:
        raise SionFormatError(f"truncated multifile while reading {what}")
    return raw


def _read_array(f: RawFile, dtype: str, count: int, what: str) -> np.ndarray:
    """Read ``count`` little-endian integers as one ``frombuffer`` view."""
    width = np.dtype(dtype).itemsize
    raw = _read_exact(f, width * count, what)
    return np.frombuffer(raw, dtype=dtype, count=count)
