"""Chunk-aware task streams: the read/write engine of the SION layer.

A :class:`TaskStream` is one task's sequential view of its logical file,
implemented over the chunks that belong to it inside a physical multifile.
It provides the paper's API semantics:

* ``ensure_free_space(n)`` — advance to a fresh chunk if the current one
  cannot take ``n`` more bytes (Listing 1); requires **no communication**
  because every chunk address is computable locally.
* ``write(data)`` — ANSI-``fwrite``-style write that must fit the current
  chunk (the caller guards with ``ensure_free_space``).
* ``fwrite(data)`` — SIONlib's own write, splitting data across chunk
  boundaries internally.
* ``bytes_avail_in_chunk`` / ``feof`` / ``read`` / ``fread`` — the read-side
  mirror images (Listing 2), driven by the per-block byte counts recorded
  in metablock 2.

Byte movement is **zero-copy and vectored**: every write accepts any
buffer-protocol payload and forwards ``memoryview`` slices of it; every
call uses *positioned* backend I/O (chunk addresses are computable
locally, so the implicit file pointer is never consulted), and the
chunk-spanning ``fwrite``/``fread`` compute their complete fragment list
up front and hand it to the backend in a **single**
``scatter_write``/``gather_read`` call instead of one call per fragment.

With the *shadow* extension (paper §6 roadmap), the first 32 bytes of every
chunk hold a :class:`~repro.sion.format.ShadowHeader` so metablock 2 can be
reconstructed after a crash; usable chunk capacity shrinks accordingly.
Shadow headers of blocks completed inside an ``fwrite`` simply join its
fragment list — still one backend call.
"""

from __future__ import annotations

from repro.backends.base import RawFile
from repro.buffers import BufferLike, as_view, concat_views
from repro.errors import SionChunkOverflowError, SionUsageError
from repro.sion.constants import SHADOW_HEADER_SIZE
from repro.sion.format import ShadowHeader
from repro.sion.layout import ChunkLayout


class TaskStream:
    """Sequential cursor over one task's chunks in one physical file."""

    def __init__(
        self,
        raw: RawFile,
        layout: ChunkLayout,
        ltask: int,
        mode: str,
        blocksizes: list[int] | None = None,
        shadow: bool = False,
    ) -> None:
        if mode not in ("r", "w"):
            raise SionUsageError(f"TaskStream mode must be 'r' or 'w', got {mode!r}")
        if mode == "r" and blocksizes is None:
            raise SionUsageError("read mode requires the task's block sizes")
        self.raw = raw
        self.layout = layout
        self.ltask = ltask
        self.mode = mode
        self.shadow = shadow
        self._data_offset = SHADOW_HEADER_SIZE if shadow else 0
        self.capacity = layout.capacity(ltask) - self._data_offset
        if self.capacity <= 0:
            raise SionUsageError(
                "chunk too small to hold the shadow header; "
                "increase chunksize or fsblksize"
            )
        self.cur_block = 0
        self.pos = 0  # data bytes into the current chunk
        self._finished: list[int] = []  # bytes written per completed block
        self._blocksizes = list(blocksizes) if blocksizes is not None else None
        self._closed = False
        if mode == "r":
            self._skip_empty_blocks()

    # -- common ------------------------------------------------------------

    @property
    def nblocks_read(self) -> int:
        """Number of blocks recorded for this task (read mode)."""
        assert self._blocksizes is not None
        return len(self._blocksizes)

    def tell_logical(self) -> int:
        """Bytes consumed/produced so far across all blocks."""
        if self.mode == "w":
            return sum(self._finished) + self.pos
        assert self._blocksizes is not None
        return sum(self._blocksizes[: self.cur_block]) + self.pos

    def _abs(self, block: int, pos: int) -> int:
        """Absolute file offset of data byte ``pos`` in chunk ``block``."""
        return self.layout.chunk_start(self.ltask, block) + self._data_offset + pos

    def _check_open(self) -> None:
        if self._closed:
            raise SionUsageError("stream is closed")

    # -- write side ------------------------------------------------------------

    def bytes_left_in_chunk(self) -> int:
        """Write capacity remaining in the current chunk."""
        self._require("w")
        return self.capacity - self.pos

    def ensure_free_space(self, nbytes: int) -> bool:
        """Guarantee ``nbytes`` fit contiguously; may advance to a new chunk.

        Returns True if a new chunk (block) was allocated.  Raises
        :class:`SionUsageError` if ``nbytes`` can never fit a single chunk —
        use :meth:`fwrite` for such writes.
        """
        self._require("w")
        if nbytes < 0:
            raise SionUsageError("nbytes must be non-negative")
        if nbytes > self.capacity:
            raise SionUsageError(
                f"request of {nbytes} bytes exceeds the chunk capacity "
                f"({self.capacity}); use fwrite() to span chunks"
            )
        if self.pos + nbytes > self.capacity:
            self._advance_write_block()
            return True
        return False

    def write(self, data: BufferLike) -> int:
        """Write within the current chunk (ANSI-style); no spanning.

        The payload view goes straight to one positioned backend write —
        no intermediate copy, no seek.
        """
        self._require("w")
        view = as_view(data)
        n = view.nbytes
        if self.pos + n > self.capacity:
            raise SionChunkOverflowError(
                f"write of {n} bytes overflows chunk (pos={self.pos}, "
                f"capacity={self.capacity}); call ensure_free_space first"
            )
        if n:
            self.raw.pwrite(self._abs(self.cur_block, self.pos), view)
        self.pos += n
        return n

    def fwrite(self, data: BufferLike) -> int:
        """Chunk-spanning write: one vectored backend call for all fragments.

        Splits the payload at chunk boundaries *locally* (chunk addresses
        need no communication), collects ``(offset, view)`` fragments —
        including any shadow headers of blocks completed along the way —
        and issues a single ``scatter_write``.  Stream state commits only
        after the backend call returns, so a failed write never leaves
        block accounting claiming bytes that are not on disk.
        """
        self._require("w")
        view = as_view(data)
        total = view.nbytes
        if total == 0:
            return 0
        fragments: list[tuple[int, BufferLike]] = []
        completed: list[int] = []
        blk, pos = self.cur_block, self.pos
        done = 0
        while done < total:
            avail = self.capacity - pos
            if avail == 0:
                if self.shadow:
                    fragments.append(self._shadow_fragment(blk, pos))
                completed.append(pos)
                blk += 1
                pos = 0
                avail = self.capacity
            take = min(avail, total - done)
            fragments.append((self._abs(blk, pos), view[done : done + take]))
            pos += take
            done += take
        self.raw.scatter_write(fragments)
        self._finished.extend(completed)
        self.cur_block, self.pos = blk, pos
        return total

    def _advance_write_block(self) -> None:
        """Complete the current block and move the cursor to the next one."""
        if self.shadow:
            self.raw.pwrite(*self._shadow_fragment(self.cur_block, self.pos))
        self._finished.append(self.pos)
        self.cur_block += 1
        self.pos = 0

    def _shadow_fragment(self, block: int, written: int) -> tuple[int, bytes]:
        hdr = ShadowHeader(ltask=self.ltask, block=block, written=written)
        return self.layout.chunk_start(self.ltask, block), hdr.encode()

    def _flush_shadow(self) -> None:
        """Persist the current block's shadow header (if enabled)."""
        if not self.shadow:
            return
        self.raw.pwrite(*self._shadow_fragment(self.cur_block, self.pos))

    def flush_shadow(self) -> None:
        """Public hook: checkpoint the recovery metadata now (paper §6)."""
        self._require("w")
        self._flush_shadow()

    def finalize(self) -> list[int]:
        """Close the write stream; returns bytes written per block.

        Trailing empty blocks are trimmed; a task that wrote nothing
        reports a single zero-byte block.
        """
        self._require("w")
        self._flush_shadow()
        sizes = [*self._finished, self.pos]
        while len(sizes) > 1 and sizes[-1] == 0:
            sizes.pop()
        self._closed = True
        return sizes

    # -- read side -----------------------------------------------------------------

    def bytes_avail_in_chunk(self) -> int:
        """Data bytes left to read in the current chunk (Listing 2)."""
        self._require("r")
        assert self._blocksizes is not None
        self._skip_empty_blocks()
        if self.cur_block >= len(self._blocksizes):
            return 0
        return self._blocksizes[self.cur_block] - self.pos

    def feof(self) -> bool:
        """True once every recorded byte of this task has been read."""
        self._require("r")
        assert self._blocksizes is not None
        self._skip_empty_blocks()
        return self.cur_block >= len(self._blocksizes)

    def read(self, n: int) -> bytes:
        """Read up to ``n`` bytes from the current chunk only."""
        self._require("r")
        if n < 0:
            raise SionUsageError("read size must be non-negative")
        avail = self.bytes_avail_in_chunk()
        m = min(n, avail)
        if m == 0:
            return b""
        out = self.raw.pread(self._abs(self.cur_block, self.pos), m)
        self.pos += len(out)
        return out

    def _plan_read(self, n: int) -> tuple[list[tuple[int, int]], int, int]:
        """Request list for up to ``n`` logical bytes from the cursor.

        Returns ``(requests, end_block, end_pos)`` without touching the
        stream state — the gather plan is pure local arithmetic.
        """
        assert self._blocksizes is not None
        requests: list[tuple[int, int]] = []
        blk, pos = self.cur_block, self.pos
        remaining = n
        while remaining > 0:
            while blk < len(self._blocksizes) and pos >= self._blocksizes[blk]:
                blk += 1
                pos = 0
            if blk >= len(self._blocksizes):
                break
            take = min(remaining, self._blocksizes[blk] - pos)
            requests.append((self._abs(blk, pos), take))
            pos += take
            remaining -= take
        return requests, blk, pos

    def fread(self, n: int) -> bytes:
        """Chunk-spanning read of up to ``n`` bytes (stops at task EOF).

        The complete per-chunk request list is computed locally and
        fetched in a single vectored ``gather_read`` call.  If the store
        returns fewer bytes than metablock 2 records (a truncated or
        damaged file), the cursor advances only past what was actually
        read — so ``feof()`` stays False and tooling can tell the
        shortfall apart from a clean end of stream.
        """
        self._require("r")
        if n < 0:
            raise SionUsageError("read size must be non-negative")
        requests, blk, pos = self._plan_read(n)
        if not requests:
            self.cur_block, self.pos = blk, pos
            return b""
        pieces = self.raw.gather_read(requests)
        got = sum(len(p) for p in pieces)
        if got == sum(size for _, size in requests):
            self.cur_block, self.pos = blk, pos
        else:
            _, self.cur_block, self.pos = self._plan_read(got)
        return concat_views(pieces)

    def read_all(self) -> bytes:
        """Read this task's entire remaining logical stream."""
        self._require("r")
        assert self._blocksizes is not None
        remaining = sum(self._blocksizes[self.cur_block :]) - self.pos
        return self.fread(max(remaining, 0))

    def seek_logical(self, block: int, pos: int) -> None:
        """Reposition to ``pos`` within the data of chunk ``block`` (read mode)."""
        self._require("r")
        assert self._blocksizes is not None
        if block < 0 or pos < 0:
            raise SionUsageError("block and pos must be non-negative")
        if block >= len(self._blocksizes):
            raise SionUsageError(
                f"block {block} out of range ({len(self._blocksizes)} blocks)"
            )
        if pos > self._blocksizes[block]:
            raise SionUsageError(
                f"pos {pos} beyond data in block {block} "
                f"({self._blocksizes[block]} bytes)"
            )
        self.cur_block = block
        self.pos = pos

    def _skip_empty_blocks(self) -> None:
        assert self._blocksizes is not None
        while (
            self.cur_block < len(self._blocksizes)
            and self.pos >= self._blocksizes[self.cur_block]
        ):
            self.cur_block += 1
            self.pos = 0

    # -- internals ----------------------------------------------------------

    def _require(self, mode: str) -> None:
        self._check_open()
        if self.mode != mode:
            verb = "write" if mode == "w" else "read"
            raise SionUsageError(f"stream is not open for {verb} (mode={self.mode!r})")


class PartitionStream:
    """Multiplexed read cursor over several tasks' streams.

    A partitioned reader consumes a contiguous slice of writer task
    streams; this cursor presents their concatenation (in writer-rank
    order) with the same semantics a single :class:`TaskStream` offers.
    The chunk-spanning :meth:`fread` extends the single-stream plan one
    level up: it collects the *complete* fragment plan across writer
    streams, merges the requests of streams sharing a physical handle,
    and issues **one** vectored ``gather_read`` per distinct handle — so
    a reader draining its whole slice costs one physical call per
    touched file, not one per writer stream.

    Streams must be read-mode :class:`TaskStream` instances.  The cursor
    owns their advancement; do not interleave direct stream reads.
    """

    def __init__(self, streams: "list[TaskStream]") -> None:
        for s in streams:
            if s.mode != "r":
                raise SionUsageError("PartitionStream requires read-mode streams")
        self._streams = streams
        self._idx = 0

    # -- cursor state --------------------------------------------------------

    @property
    def nstreams(self) -> int:
        """Writer streams multiplexed by this cursor."""
        return len(self._streams)

    def _advance(self) -> None:
        while self._idx < len(self._streams) and self._streams[self._idx].feof():
            self._idx += 1

    def _current(self) -> "TaskStream | None":
        self._advance()
        if self._idx >= len(self._streams):
            return None
        return self._streams[self._idx]

    def feof(self) -> bool:
        """True once every multiplexed stream is exhausted."""
        return self._current() is None

    def tell_logical(self) -> int:
        """Bytes consumed so far across the whole slice."""
        return sum(s.tell_logical() for s in self._streams)

    # -- chunk-local operations (current stream) -----------------------------

    def bytes_avail_in_chunk(self) -> int:
        """Unread data bytes in the current stream's current chunk."""
        s = self._current()
        return s.bytes_avail_in_chunk() if s is not None else 0

    def read(self, n: int) -> bytes:
        """Read within the current chunk of the current stream."""
        s = self._current()
        return s.read(n) if s is not None else b""

    # -- slice-spanning operations -------------------------------------------

    def fread(self, n: int) -> bytes:
        """Read up to ``n`` bytes, crossing chunk and stream boundaries.

        The plan is pure local arithmetic (every stream's chunk
        addresses are computable without communication); the physical
        fetch is one ``gather_read`` per distinct handle.  On a short
        read (truncated or damaged file) only the bytes that actually
        arrived are consumed — later streams' cursors stay untouched, so
        ``feof()`` remains False and tooling can tell the shortfall from
        a clean end of slice.
        """
        if n < 0:
            raise SionUsageError("read size must be non-negative")
        self._advance()
        plans: list[tuple[TaskStream, list, int, int, int]] = []
        remaining = n
        i = self._idx
        while remaining > 0 and i < len(self._streams):
            s = self._streams[i]
            requests, blk, pos = s._plan_read(remaining)
            expected = sum(size for _, size in requests)
            if expected:
                plans.append((s, requests, blk, pos, expected))
                remaining -= expected
            i += 1
        if not plans:
            return b""
        # Merge per-handle: one vectored call per distinct raw handle,
        # remembering each plan's slice of its handle's piece list.
        buckets: dict[int, tuple[object, list]] = {}
        placements: list[tuple[int, int, int]] = []  # (raw id, start, count)
        for s, requests, _, _, _ in plans:
            key = id(s.raw)
            if key not in buckets:
                buckets[key] = (s.raw, [])
            reqs = buckets[key][1]
            placements.append((key, len(reqs), len(requests)))
            reqs.extend(requests)
        pieces_by_bucket = {
            key: raw.gather_read(reqs) for key, (raw, reqs) in buckets.items()
        }
        out: list[bytes] = []
        for (s, requests, blk, pos, expected), (key, start, count) in zip(
            plans, placements
        ):
            pieces = pieces_by_bucket[key][start : start + count]
            got = sum(len(p) for p in pieces)
            out.extend(pieces)
            if got == expected:
                s.cur_block, s.pos = blk, pos
            else:
                _, s.cur_block, s.pos = s._plan_read(got)
                break  # shortfall: later streams were not consumed
        self._advance()
        return concat_views(out)

    def read_all(self) -> bytes:
        """Everything that remains of the slice, in one vectored pass."""
        remaining = 0
        for s in self._streams[self._idx :]:
            assert s._blocksizes is not None
            remaining += sum(s._blocksizes[s.cur_block :]) - s.pos
        return self.fread(max(remaining, 0))
