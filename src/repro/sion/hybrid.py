"""Hybrid MPI+threads support (paper §6 roadmap).

The paper: *"with the currently still somewhat MPI-centric interface of
SIONlib, we plan to support the analysis of hybrid codes via a separate
multifile for every OpenMP thread identifier, resulting in at most four
multifiles on Jugene with its four cores per node."*

:func:`paropen_hybrid` implements exactly that scheme: thread ``t`` of
every rank writes to multifile ``<path>.tNN`` — so a hybrid job with
``nthreads`` threads per rank produces at most ``nthreads`` multifile sets
regardless of rank count.  Each rank calls it once (collectively) and gets
a :class:`HybridParallelFile` whose per-thread handles are independent
streams, safe to drive from concurrent threads (each owns its own file
descriptor and cursor).
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.errors import SionUsageError
from repro.simmpi.comm import Comm
from repro.sion.openspec import OpenSpec, open_access
from repro.sion.parallel import SionParallelFile
from repro.sion.serial import SionRankFile, open_rank


def thread_multifile_path(base: str, thread: int) -> str:
    """Multifile set written by thread ``thread`` of every rank."""
    if thread < 0:
        raise SionUsageError(f"thread id must be non-negative: {thread}")
    return f"{base}.t{thread:02d}"


def paropen_hybrid(
    path: str,
    mode: str,
    comm: Comm,
    nthreads: int,
    chunksize: int | list[int] | None = None,
    *,
    backend: Backend | None = None,
    **kwargs,
) -> "HybridParallelFile":
    """Collectively open one multifile per thread identifier.

    ``chunksize`` may be a single value (same for all threads) or one per
    thread.  All other keyword arguments become part of each thread's
    :class:`~repro.sion.openspec.OpenSpec` (``nfiles``, ``compress``,
    ``shadow``, ...), so every per-thread open goes through the same
    validated pipeline as :func:`~repro.sion.parallel.paropen` — and a
    contradictory option combination fails *before* thread 0's multifile
    is touched, not halfway through the set.

    Every rank must call this with the same ``nthreads``; the per-thread
    opens are ordinary collectives executed in thread order, so no extra
    synchronization machinery is needed.
    """
    if nthreads < 1:
        raise SionUsageError(f"nthreads must be >= 1, got {nthreads}")
    if mode == "w":
        if chunksize is None:
            raise SionUsageError("write mode requires chunksize")
        sizes = (
            list(chunksize)
            if isinstance(chunksize, (list, tuple))
            else [int(chunksize)] * nthreads
        )
        if len(sizes) != nthreads:
            raise SionUsageError(
                f"got {len(sizes)} chunk sizes for {nthreads} threads"
            )
    else:
        sizes = [None] * nthreads  # type: ignore[list-item]
    specs = [
        OpenSpec.for_paropen(
            path=thread_multifile_path(path, t),
            mode=mode,
            chunksize=sizes[t],
            **kwargs,
        )
        for t in range(nthreads)
    ]
    handles = [open_access(spec, comm, backend) for spec in specs]
    return HybridParallelFile(path, mode, comm, handles)


class HybridParallelFile:
    """Per-rank view of a hybrid job's thread multifiles."""

    def __init__(
        self, base_path: str, mode: str, comm: Comm, handles: list[SionParallelFile]
    ) -> None:
        self.base_path = base_path
        self.mode = mode
        self.comm = comm
        self._handles = handles
        self._closed = False

    @property
    def nthreads(self) -> int:
        """Thread streams available to this rank."""
        return len(self._handles)

    def stream(self, thread: int) -> SionParallelFile:
        """The multifile handle owned by ``thread`` on this rank.

        Handles are independent; concurrent threads may each use their own
        without locking (they never share a file cursor).
        """
        if self._closed:
            raise SionUsageError("hybrid multifile is closed")
        if not 0 <= thread < len(self._handles):
            raise SionUsageError(
                f"thread {thread} out of range ({len(self._handles)} threads)"
            )
        return self._handles[thread]

    def parclose(self) -> None:
        """Collectively close every thread multifile (thread order)."""
        if self._closed:
            raise SionUsageError("hybrid multifile already closed")
        for h in self._handles:
            h.parclose()
        self._closed = True

    def __enter__(self) -> "HybridParallelFile":
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._closed:
            self.parclose()


def open_rank_thread(
    path: str, rank: int, thread: int, backend: Backend | None = None
) -> SionRankFile:
    """Serial task-local view of one (rank, thread) logical file.

    This is what a hybrid-aware trace analyzer uses to load the stream of
    one OpenMP thread of one MPI rank.
    """
    return open_rank(thread_multifile_path(path, thread), rank, backend=backend)
