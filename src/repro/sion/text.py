"""Formatted-text I/O over task streams (paper §3 roadmap).

The paper: *"Versions for formatted text can be constructed in a similar
way and will be provided in future versions of our library."*  This module
provides them: line-oriented writers and readers layered on the
chunk-spanning ``fwrite``/``fread`` primitives, so log-file-style usage
("every task appends text lines to its own logical file") works without
the caller thinking about chunk boundaries or encodings.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.buffers import BufferLike
from repro.errors import SionUsageError


class _WritableStream(Protocol):
    def fwrite(self, data: BufferLike) -> int: ...


class _ReadableStream(Protocol):
    def fread(self, n: int) -> bytes: ...
    def feof(self) -> bool: ...


class TextWriter:
    """Line-oriented text writer over a SION handle (parallel or serial).

    >>> w = TextWriter(handle)           # doctest: +SKIP
    ... w.write_line("step=1 energy=-3.4")
    ... w.printf("step={} energy={:.2f}", 2, -3.1)
    """

    def __init__(
        self, stream: _WritableStream, encoding: str = "utf-8", newline: str = "\n"
    ) -> None:
        if not newline:
            raise SionUsageError("newline must be non-empty")
        self.stream = stream
        self.encoding = encoding
        self.newline = newline
        self.lines_written = 0
        self.bytes_written = 0

    def write_line(self, line: str) -> int:
        """Write one line (terminator appended); returns bytes written."""
        if self.newline in line:
            raise SionUsageError(
                "line already contains the newline terminator; "
                "use write_text for raw multi-line output"
            )
        data = (line + self.newline).encode(self.encoding)
        n = self.stream.fwrite(data)
        self.lines_written += 1
        self.bytes_written += n
        return n

    def write_text(self, text: str) -> int:
        """Write raw text as-is (may contain any number of newlines)."""
        data = text.encode(self.encoding)
        n = self.stream.fwrite(data)
        self.lines_written += text.count(self.newline)
        self.bytes_written += n
        return n

    def printf(self, fmt: str, *args, **kwargs) -> int:
        """``fprintf``-style convenience: format, then write as one line."""
        return self.write_line(fmt.format(*args, **kwargs))


class TextReader:
    """Line-oriented reader over a SION handle; iterable.

    Buffers across chunk boundaries internally, so lines split by the
    chunk layout are reassembled transparently.
    """

    _CHUNK = 64 * 1024

    def __init__(
        self, stream: _ReadableStream, encoding: str = "utf-8", newline: str = "\n"
    ) -> None:
        if not newline:
            raise SionUsageError("newline must be non-empty")
        self.stream = stream
        self.encoding = encoding
        self._sep = newline.encode(encoding)
        self._buf = bytearray()
        self._done = False

    def _fill(self) -> bool:
        if self._done:
            return False
        piece = self.stream.fread(self._CHUNK)
        if not piece:
            self._done = True
            return False
        self._buf.extend(piece)
        return True

    def read_line(self) -> str | None:
        """Next line without its terminator, or ``None`` at end of stream.

        A final unterminated fragment is returned as a line (like
        ``io.TextIOBase`` would).
        """
        while True:
            idx = self._buf.find(self._sep)
            if idx >= 0:
                line = bytes(self._buf[:idx])
                del self._buf[: idx + len(self._sep)]
                return line.decode(self.encoding)
            if not self._fill():
                if self._buf:
                    line = bytes(self._buf)
                    self._buf.clear()
                    return line.decode(self.encoding)
                return None

    def read_lines(self) -> list[str]:
        """Every remaining line."""
        return list(self)

    def __iter__(self) -> Iterator[str]:
        while True:
            line = self.read_line()
            if line is None:
                return
            yield line
