"""Collector-rank aggregation: decouple physical writers from task count.

The paper's multifile design removes file-count pressure, but every task
still issues its own physical I/O — at 64k+ tasks that is exactly the
small-request storm the paper warns about.  Later SIONlib releases grew a
*collective* mode where a few **collector** ranks aggregate chunk data on
behalf of their senders; this module reproduces it on top of the existing
layers:

* Each physical file's local communicator is partitioned into collector
  groups of ``collectsize`` ranks (``paropen(..., collectsize=K)``, or
  ``collectors=N`` as sugar for ``K = ceil(ntasks / N)``).  The lowest
  local rank of each group is its collector.
* **Write mode** — every task plans its chunk fragments locally with the
  ordinary :class:`~repro.sion.readwrite.TaskStream` arithmetic, but the
  stream writes into a :class:`FragmentRecorder` instead of the store.
  At each *collection wave* (:meth:`SionCollectiveFile.flush_collective`,
  and finally :meth:`~SionCollectiveFile.parclose`) the collector gathers
  its senders' ``(offset, bytes)`` fragments over the communicator
  (``gather`` of offsets + ``gatherv`` of payloads, PR 2's buffer-view
  discipline) and issues **one** ``scatter_write`` against the physical
  file.
* **Read mode** — each task computes its complete request list locally
  (:meth:`~repro.sion.layout.ChunkLayout.read_requests`), the collector
  fetches all of its senders' data in **one** ``gather_read`` and
  ``scatterv``-distributes the pieces; every subsequent ``fread`` is
  served from the prefetched :class:`PreloadedFragments` without touching
  the store.

Because the fragments are byte-for-byte what direct mode would have
written (same offsets, same payloads, same metablocks), the resulting
multifiles are **byte-identical** to direct-mode files — property-tested
in ``tests/sion/test_collective.py`` and gated by the ``collective``
benchmark suite, whose :class:`~repro.backends.instrument.CountingBackend`
counts prove that backend data calls scale with the number of collectors,
not the number of tasks.

Every backend interaction (open, wave write, prefetch read) is wrapped in
``Comm.exec_once``, so collective-mode backend telemetry is deterministic
even under the bulk engine's memoized replay — as is direct mode's, whose
handles are routed through
:class:`~repro.sion.openspec.ReplayGuardedFile` by the shared open
pipeline.
"""

from __future__ import annotations

import bisect
import math

from repro.backends.base import Backend, RawFile
from repro.buffers import BufferLike, as_view
from repro.errors import SionUsageError
from repro.sion.constants import SHADOW_HEADER_SIZE
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import TaskMapping
from repro.sion.parallel import SionParallelFile
from repro.sion.readwrite import TaskStream
from repro.simmpi.comm import Comm


def resolve_collectsize(
    collectsize: int | None, collectors: int | None, ntasks: int
) -> int | None:
    """Normalize the two spellings of the aggregation degree.

    ``collectsize`` is the number of tasks per collector group (SIONlib's
    ``collsize``); ``collectors`` asks for a total collector count and
    resolves to ``ceil(ntasks / collectors)``.  ``None`` (neither given)
    selects direct mode.
    """
    if collectsize is not None and collectors is not None:
        raise SionUsageError("pass either collectsize or collectors, not both")
    if collectors is not None:
        if collectors < 1:
            raise SionUsageError(f"collectors must be >= 1, got {collectors}")
        collectsize = math.ceil(ntasks / min(collectors, ntasks))
    if collectsize is not None and collectsize < 1:
        raise SionUsageError(f"collectsize must be >= 1, got {collectsize}")
    return collectsize


class _NoDataAccess:
    """Shared guards for the two pseudo-files below."""

    def _refuse(self, op: str) -> None:
        raise SionUsageError(
            f"{op} is not available on a collective-mode task stream; "
            "data moves only in collection waves via the collector rank"
        )


class FragmentRecorder(RawFile, _NoDataAccess):
    """Write-side sink: records ``(offset, bytes)`` instead of storing.

    Stands in for the physical file underneath a sender's
    :class:`~repro.sion.readwrite.TaskStream`: all of the stream's chunk
    arithmetic, shadow headers and block accounting run unchanged, but
    the resulting fragments accumulate here until the next collection
    wave ships them to the collector.  Payloads are snapshotted at write
    time (the caller may reuse its buffer immediately, mirroring the
    communicator's payload contract).
    """

    def __init__(self) -> None:
        self._fragments: list[tuple[int, bytes]] = []
        self._closed = False

    @property
    def pending(self) -> int:
        """Fragments recorded since the last :meth:`take`."""
        return len(self._fragments)

    def take(self) -> list[tuple[int, bytes]]:
        """Drain and return the recorded fragments (wave handoff)."""
        frags, self._fragments = self._fragments, []
        return frags

    # -- RawFile write surface used by TaskStream --------------------------
    # (the base class builds pwritev/scatter_write on pwrite, so recording
    # the primitive is enough)

    def pwrite(self, offset: int, data: BufferLike) -> int:
        view = as_view(data)
        if view.nbytes:
            self._fragments.append((offset, view.tobytes()))
        return view.nbytes

    def write(self, data: BufferLike) -> int:
        self._refuse("write at the implicit file pointer")
        raise AssertionError  # pragma: no cover - _refuse always raises

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self._closed = True

    # -- everything else is a usage error ----------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        self._refuse("seek")
        raise AssertionError  # pragma: no cover

    def tell(self) -> int:
        self._refuse("tell")
        raise AssertionError  # pragma: no cover

    def read(self, n: int = -1) -> bytes:
        self._refuse("read")
        raise AssertionError  # pragma: no cover

    def write_zeros(self, n: int) -> int:
        self._refuse("write_zeros")
        raise AssertionError  # pragma: no cover

    def truncate(self, size: int) -> None:
        self._refuse("truncate")


class PreloadedFragments(RawFile, _NoDataAccess):
    """Read-side source serving positioned reads from prefetched bytes.

    Holds the ``(offset, bytes)`` fragments a collector prefetched for
    one sender (one fragment per recorded block).  The sender's
    :class:`~repro.sion.readwrite.TaskStream` issues exactly the same
    positioned requests it would against the store, and every one falls
    inside a single prefetched fragment, so the whole read API (``fread``,
    ``read``, ``seek_logical``, ``feof``) works unchanged without further
    backend calls.  A fragment the store returned short (truncated file)
    simply serves short, preserving the shortfall-vs-EOF distinction.
    """

    def __init__(self, fragments: list[tuple[int, bytes]]) -> None:
        self._frags = sorted(fragments, key=lambda f: f[0])
        self._starts = [off for off, _ in self._frags]

    # preadv/gather_read come from the RawFile base class, built on this.
    def pread(self, offset: int, n: int) -> bytes:
        i = bisect.bisect_right(self._starts, offset) - 1
        if i < 0:
            return b""
        start, data = self._frags[i]
        rel = offset - start
        if rel >= len(data):
            return b""
        return data[rel : rel + n]

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    # -- everything else is a usage error ----------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        self._refuse("seek")
        raise AssertionError  # pragma: no cover

    def tell(self) -> int:
        self._refuse("tell")
        raise AssertionError  # pragma: no cover

    def read(self, n: int = -1) -> bytes:
        self._refuse("read")
        raise AssertionError  # pragma: no cover

    def write(self, data: BufferLike) -> int:
        self._refuse("write")
        raise AssertionError  # pragma: no cover

    def write_zeros(self, n: int) -> int:
        self._refuse("write_zeros")
        raise AssertionError  # pragma: no cover

    def truncate(self, size: int) -> None:
        self._refuse("truncate")


class SionCollectiveFile(SionParallelFile):
    """One task's handle on a multifile opened in collective mode.

    The write/read API is identical to :class:`SionParallelFile`; only
    the physical data movement differs (collection waves).  Additional
    surface: :attr:`is_collector`, :attr:`collectsize`,
    :attr:`collector_lrank` and the explicit :meth:`flush_collective`
    wave (collective over the whole world, like ``parclose``).
    """

    def __init__(
        self,
        *,
        ccom: Comm,
        collectsize: int,
        recorder: FragmentRecorder | None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.ccom = ccom
        self._collectsize = collectsize
        self._recorder = recorder

    # -- introspection ------------------------------------------------------

    @property
    def collectsize(self) -> int:
        """Number of tasks per collector group."""
        return self._collectsize

    @property
    def is_collector(self) -> bool:
        """True if this task performs physical I/O for its group."""
        return self.ccom.rank == 0

    @property
    def collector_lrank(self) -> int:
        """Local rank (within the physical file) of this task's collector."""
        return (self.local_rank // self._collectsize) * self._collectsize

    # -- collection waves ---------------------------------------------------

    def _wave(self) -> None:
        """One collection wave: gather fragments, one ``scatter_write``.

        Collective over the collector group.  Offsets travel as an
        immutable tuple through ``gather``; payload bytes travel through
        ``gatherv``.  The collector's single backend call is wrapped in
        ``exec_once`` so a bulk-engine replay never re-issues it.
        """
        assert self._recorder is not None
        frags = self._recorder.take()
        offsets = tuple(off for off, _ in frags)
        gathered_offsets = self.ccom.gather(offsets, root=0)
        gathered_data = self.ccom.gatherv([data for _, data in frags], root=0)
        if self.ccom.rank == 0:
            assert gathered_offsets is not None and gathered_data is not None
            wave: list[tuple[int, bytes]] = []
            for offs, pieces in zip(gathered_offsets, gathered_data):
                wave.extend(zip(offs, pieces))
            if wave:
                raw = self._raw
                assert raw is not None
                self.ccom.exec_once(lambda: raw.scatter_write(wave))

    def flush_collective(self) -> None:
        """Ship all buffered fragments to the collector now.

        Collective over the *whole* communicator (every task must call
        it, like ``parclose``): each collector group runs one wave.  Use
        it to bound sender-side buffering between waves; ``parclose``
        always runs a final wave.
        """
        self._check_mode("w")
        self._wave()

    # -- collective close (parclose hooks) ----------------------------------

    def _flush_data(self) -> None:
        """The final collection wave, before metablock 2 is persisted."""
        self._wave()

    def _close_raw(self) -> None:
        if self._raw is not None:
            # exec_once: the collector handle is shared across bulk-engine
            # replays (it was opened under exec_once), so it must close
            # exactly once even if the final barrier parks this rank.
            self.ccom.exec_once(self._raw.close)


def open_collective_write(
    comm: Comm,
    lcom: Comm,
    lrank: int,
    collectsize: int,
    backend: Backend,
    base_path: str,
    my_path: str,
    layout: ChunkLayout,
    mb1: Metablock1,
    tmap: TaskMapping,
    compress: bool,
    shadow: bool,
    replica_path: str | None = None,
) -> SionCollectiveFile:
    """Build the write-mode collective handle (metadata already agreed).

    With ``replica_path`` set (buddy mode), the collector's physical
    handle is a :class:`~repro.sion.buddy.MirrorRawFile`, so every
    collection wave's ``scatter_write`` — and the master's metablock-2
    persistence at close — lands on the buddy replica too.
    """
    from repro.sion.buddy import MirrorRawFile

    ccom = lcom.split(color=lrank // collectsize, key=lrank)
    assert ccom is not None
    raw: RawFile | None = None
    if ccom.rank == 0:
        if replica_path is not None:
            raw = ccom.exec_once(
                lambda: MirrorRawFile(
                    backend.open(my_path, "r+b"),
                    backend.open(replica_path, "r+b"),
                )
            )
        else:
            raw = ccom.exec_once(lambda: backend.open(my_path, "r+b"))
    recorder = FragmentRecorder()
    stream = TaskStream(recorder, layout, lrank, "w", shadow=shadow)
    return SionCollectiveFile(
        ccom=ccom,
        collectsize=collectsize,
        recorder=recorder,
        mode="w",
        comm=comm,
        lcom=lcom,
        backend=backend,
        base_path=base_path,
        my_path=my_path,
        raw=raw,
        stream=stream,
        layout=layout,
        mb1=mb1,
        mapping=tmap,
        compress=compress,
    )


def open_collective_read(
    comm: Comm,
    lcom: Comm,
    lrank: int,
    collectsize: int,
    backend: Backend,
    base_path: str,
    my_path: str,
    layout: ChunkLayout,
    mb1: Metablock1,
    mb2: Metablock2,
    tmap: TaskMapping,
    compress: bool,
    shadow: bool,
) -> SionCollectiveFile:
    """Build the read-mode collective handle: one prefetch wave at open.

    Each sender plans its complete request list locally; the collector
    fetches all of its senders' fragments in **one** ``gather_read``
    (``exec_once``: replay-safe and counted once) and ``scatterv``s the
    pieces back.  Subsequent reads never touch the store.
    """
    ccom = lcom.split(color=lrank // collectsize, key=lrank)
    assert ccom is not None
    blocksizes = list(mb2.blocksizes[lrank])
    data_offset = SHADOW_HEADER_SIZE if shadow else 0
    requests = tuple(layout.read_requests(lrank, blocksizes, data_offset))
    gathered = ccom.gather(requests, root=0)
    raw: RawFile | None = None
    if ccom.rank == 0:
        assert gathered is not None
        raw = ccom.exec_once(lambda: backend.open(my_path, "rb"))
        flat = [req for reqs in gathered for req in reqs]
        handle = raw
        pieces = ccom.exec_once(lambda: handle.gather_read(flat)) if flat else []
        per_sender: list[list[bytes]] = []
        start = 0
        for reqs in gathered:
            per_sender.append(pieces[start : start + len(reqs)])
            start += len(reqs)
        mine = ccom.scatterv(per_sender, root=0)
    else:
        mine = ccom.scatterv(None, root=0)
    preloaded = PreloadedFragments(
        list(zip([off for off, _ in requests], mine))
    )
    stream = TaskStream(
        preloaded, layout, lrank, "r", blocksizes=blocksizes, shadow=shadow
    )
    return SionCollectiveFile(
        ccom=ccom,
        collectsize=collectsize,
        recorder=None,
        mode="r",
        comm=comm,
        lcom=lcom,
        backend=backend,
        base_path=base_path,
        my_path=my_path,
        raw=raw,
        stream=stream,
        layout=layout,
        mb1=mb1,
        mapping=tmap,
        compress=compress,
    )
