"""SION multifile library — the paper's primary contribution.

Maps many logical task-local files onto one (or a few) physical *multifiles*
with internal metadata handling and file-system-block alignment.  The API
mirrors the paper's (Listings 1-5):

Parallel write (collective open/close, independent writes)::

    from repro import simmpi, sion

    def program(comm):
        f = sion.paropen("/data/out.sion", "w", comm, chunksize=1 << 16)
        f.ensure_free_space(len(payload))
        f.write(payload)            # ANSI-style write within the chunk
        f.fwrite(big_payload)       # or: chunk-spanning write
        f.parclose()

    simmpi.run_spmd(8, program)

Parallel read mirrors write (``sion.paropen(..., "r")``, ``fread``,
``feof``, ``bytes_avail_in_chunk``).  Serial tools use :func:`sion.open`
(global view, with ``get_locations`` and ``seek``) or
:func:`sion.open_rank` (task-local view).
"""

from repro.sion.constants import (
    BUDDY_SUFFIX,
    DEFAULT_FSBLKSIZE,
    FLAG_BUDDY,
    FLAG_COMPRESS,
    FLAG_SHADOW,
    MAGIC_MB1,
    MAGIC_MB2,
)
from repro.sion.buddy import MirrorRawFile, buddy_path
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout, align_up
from repro.sion.mapping import ReadPartition, TaskMapping
from repro.sion.buffering import CoalescingWriter
from repro.sion.collective import SionCollectiveFile, resolve_collectsize
from repro.sion.hybrid import HybridParallelFile, open_rank_thread, paropen_hybrid
from repro.sion.openspec import (
    AccessPlan,
    OpenSpec,
    SionPartitionedReadFile,
    compile_plan,
    open_access,
)
from repro.sion.parallel import SionParallelFile, paropen
from repro.sion.readwrite import PartitionStream, TaskStream
from repro.sion.serial import SionSerialFile, open, open_rank  # noqa: A004
from repro.sion.recovery import RecoveryReport, recover_multifile
from repro.sion.text import TextReader, TextWriter

__all__ = [
    "BUDDY_SUFFIX",
    "DEFAULT_FSBLKSIZE",
    "FLAG_BUDDY",
    "FLAG_COMPRESS",
    "FLAG_SHADOW",
    "MAGIC_MB1",
    "MAGIC_MB2",
    "MirrorRawFile",
    "buddy_path",
    "Metablock1",
    "Metablock2",
    "ChunkLayout",
    "align_up",
    "TaskMapping",
    "ReadPartition",
    "OpenSpec",
    "AccessPlan",
    "compile_plan",
    "open_access",
    "SionParallelFile",
    "SionCollectiveFile",
    "SionPartitionedReadFile",
    "PartitionStream",
    "TaskStream",
    "resolve_collectsize",
    "paropen",
    "HybridParallelFile",
    "paropen_hybrid",
    "open_rank_thread",
    "CoalescingWriter",
    "TextReader",
    "TextWriter",
    "SionSerialFile",
    "open",
    "open_rank",
    "RecoveryReport",
    "recover_multifile",
]
