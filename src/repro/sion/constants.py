"""Magic numbers and defaults of the SION multifile format."""

from __future__ import annotations

#: Magic bytes opening metablock 1 (start of every physical file).
MAGIC_MB1 = b"SIONPYv1"

#: Magic bytes opening metablock 2 (end of every physical file).
MAGIC_MB2 = b"SIONPYm2"

#: Magic bytes of a per-chunk shadow header (recovery extension, paper §6).
MAGIC_SHADOW = b"SIONPYsh"

#: Format version stored in metablock 1.
FORMAT_VERSION = 1

#: Fallback alignment granularity when the backend cannot report one.
DEFAULT_FSBLKSIZE = 64 * 1024

#: Flag bits stored in metablock 1.
FLAG_COMPRESS = 1 << 0  # chunks hold a zlib-compressed task stream
FLAG_SHADOW = 1 << 1  # chunks start with a shadow header for recovery
FLAG_BUDDY = 1 << 2  # every write was mirrored to a buddy replica file

#: Size in bytes of the per-chunk shadow header when FLAG_SHADOW is set.
SHADOW_HEADER_SIZE = 32

#: Suffix appended to physical files 1..n-1 of a multifile set.
MULTIFILE_SUFFIX = ".{:06d}"

#: Suffix of a buddy replica: the replica of physical file ``f`` lives at
#: ``physical_path(base, (f + 1) % nfiles) + BUDDY_SUFFIX`` — on the
#: *partner* group's name stem, so losing one stem loses one copy only.
BUDDY_SUFFIX = ".buddy"

#: Task-to-file mapping kinds (stored in metablock 1 of file 0).
MAPPING_BLOCKED = 0
MAPPING_ROUNDROBIN = 1
MAPPING_CUSTOM = 2
