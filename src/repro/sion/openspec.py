"""One open pipeline: ``OpenSpec`` -> ``AccessPlan`` -> access handles.

The paper's multifile is a *portable container*: all metadata lives in
the file, not in the job, so any consumer — parallel, serial, collective,
hybrid, or a differently sized reader world — can come back later.  This
module is the single pipeline behind every entry point:

* :class:`OpenSpec` — a validated, immutable description of *what* to
  open (path, mode, chunk geometry, mapping, aggregation, compression,
  shadow headers, partitioned-read opt-in).  It replaces the keyword
  soup that was duplicated across ``paropen``, the collective mode, the
  hybrid opener and the serial tools, and it rejects contradictory
  option combinations up front with :class:`~repro.errors.SionUsageError`
  (instead of silently ignoring half of them inside an SPMD program).
* :func:`compile_plan` — the planner.  Runs the collective metadata
  agreement (write) or the metadata probe/broadcast (read) and produces
  each rank's :class:`AccessPlan`: physical file(s), chunk layout,
  stream assignments, metablock duties, and the resolved aggregation
  degree.
* :func:`open_access` — compiles the plan and hands it to the matching
  executor.  ``paropen`` (direct and collective), ``paropen_hybrid``,
  and the serial ``open``/``open_rank`` are all thin shims over this
  function or over the shared metadata helpers below.

The planner's new capability is the **re-partitioned read**: a reader
world of any size ``m`` over an ``n``-writer multifile.  Each reader is
assigned a contiguous slice of writer task streams
(:class:`~repro.sion.mapping.ReadPartition`) and drives them through
multiplexed :class:`~repro.sion.readwrite.TaskStream` cursors
(:class:`~repro.sion.readwrite.PartitionStream`), in direct mode and in
collective-prefetch mode, on both SPMD engines — byte-identical to an
``n``-rank read of the same file.

Direct-mode backend interactions are routed through
:class:`ReplayGuardedFile`, so instrumented backend telemetry is
deterministic under the bulk engine's memoized replay (each physical
call executes exactly once per rank; replays return the logged result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.backends.base import Backend, RawFile
from repro.backends.localfs import LocalBackend
from repro.buffers import BufferLike
from repro.errors import SionUsageError
from repro.sion.compression import ZlibReader
from repro.sion.buddy import MirrorRawFile, buddy_path
from repro.sion.constants import (
    FLAG_BUDDY,
    FLAG_COMPRESS,
    FLAG_SHADOW,
    MAPPING_CUSTOM,
    SHADOW_HEADER_SIZE,
)
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import ReadPartition, TaskMapping, physical_path
from repro.sion.readwrite import PartitionStream, TaskStream


# ---------------------------------------------------------------------------
# OpenSpec: the validated, immutable description of an open request.


@dataclass(frozen=True)
class OpenSpec:
    """What to open, validated once, shared by every entry point.

    Write mode describes the geometry to create (``chunksize`` for the
    collective opens where every rank states its own size, or
    ``chunksizes`` for the serial creator that states all of them);
    read mode must *not* prescribe geometry — the multifile itself is
    authoritative — so any such option is rejected as contradictory.

    Every contradictory combination (both ``collectsize`` and
    ``collectors``, geometry options in read mode, ``partitioned`` in
    write mode, ...) raises :class:`~repro.errors.SionUsageError` at
    construction time — identically for every entry point, before any
    file is touched.

    Example::

        spec = OpenSpec.for_paropen(path="/out.sion", mode="r",
                                    partitioned=True)
        handle = open_access(spec, comm, backend)
    """

    path: str
    mode: str
    chunksize: int | None = None
    chunksizes: tuple[int, ...] | None = None
    fsblksize: int | None = None
    nfiles: int | None = None
    mapping: str | tuple[int, ...] | None = None
    compress: bool = False
    shadow: bool = False
    buddy: bool = False
    collectsize: int | None = None
    collectors: int | None = None
    partitioned: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("r", "w"):
            raise SionUsageError(f"mode must be 'r' or 'w', got {self.mode!r}")
        if self.collectsize is not None and self.collectors is not None:
            raise SionUsageError(
                "pass either collectsize or collectors, not both"
            )
        if self.collectsize is not None and self.collectsize < 1:
            raise SionUsageError(
                f"collectsize must be >= 1, got {self.collectsize}"
            )
        if self.collectors is not None and self.collectors < 1:
            raise SionUsageError(
                f"collectors must be >= 1, got {self.collectors}"
            )
        if self.fsblksize is not None and self.fsblksize < 1:
            raise SionUsageError(
                f"fsblksize must be positive: {self.fsblksize}"
            )
        if self.nfiles is not None and self.nfiles < 1:
            raise SionUsageError(f"nfiles must be >= 1, got {self.nfiles}")
        if self.mode == "w":
            self._validate_write()
        else:
            self._validate_read()

    def _validate_write(self) -> None:
        if self.partitioned:
            raise SionUsageError(
                "partitioned access applies to read mode only; a write "
                "world always owns one stream per task"
            )
        if self.chunksize is not None and self.chunksizes is not None:
            raise SionUsageError(
                "pass either chunksize (per-rank collective open) or "
                "chunksizes (serial creation), not both"
            )
        if self.chunksize is None and self.chunksizes is None:
            raise SionUsageError("write mode requires a non-negative chunksize")
        if self.chunksize is not None and self.chunksize < 0:
            raise SionUsageError("write mode requires a non-negative chunksize")
        if self.chunksizes is not None:
            if not self.chunksizes:
                raise SionUsageError(
                    "serial write requires the per-task chunk sizes"
                )
            if min(self.chunksizes) < 0:
                raise SionUsageError("chunk sizes must be non-negative")

    def _validate_read(self) -> None:
        geometry_opts = (
            ("chunksize", self.chunksize is not None),
            ("chunksizes", self.chunksizes is not None),
            ("fsblksize", self.fsblksize is not None),
            ("nfiles", self.nfiles is not None),
            ("mapping", self.mapping is not None),
            ("compress", self.compress),
            ("shadow", self.shadow),
            ("buddy", self.buddy),
        )
        for name, given in geometry_opts:
            if given:
                raise SionUsageError(
                    f"{name} contradicts read mode: the multifile's own "
                    "metadata is authoritative for its geometry and flags"
                )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def for_paropen(
        cls,
        path: str,
        mode: str,
        *,
        chunksize: int | None = None,
        fsblksize: int | None = None,
        nfiles: int = 1,
        mapping: "str | list[int] | tuple[int, ...]" = "blocked",
        compress: bool = False,
        shadow: bool = False,
        buddy: bool = False,
        collectsize: int | None = None,
        collectors: int | None = None,
        partitioned: bool = False,
    ) -> "OpenSpec":
        """Build a spec from ``paropen``'s legacy keyword surface.

        The legacy defaults (``nfiles=1``, ``mapping="blocked"``) are
        normalized away in read mode — they were never consulted there —
        while any *non-default* geometry option in read mode is a
        contradiction the validator rejects.
        """
        if mode == "r":
            if nfiles == 1:
                nfiles = None  # type: ignore[assignment]
            if mapping == "blocked":
                mapping = None  # type: ignore[assignment]
        if isinstance(mapping, list):
            mapping = tuple(mapping)
        return cls(
            path=path,
            mode=mode,
            chunksize=chunksize,
            fsblksize=fsblksize,
            nfiles=nfiles,
            mapping=mapping,
            compress=compress,
            shadow=shadow,
            buddy=buddy,
            collectsize=collectsize,
            collectors=collectors,
            partitioned=partitioned,
        )

    @classmethod
    def for_serial(
        cls,
        path: str,
        mode: str,
        *,
        chunksizes: "Sequence[int] | None" = None,
        fsblksize: int | None = None,
        nfiles: int = 1,
        mapping: "str | list[int] | tuple[int, ...]" = "blocked",
    ) -> "OpenSpec":
        """Build a spec from the serial ``open`` surface (Listing 3/5)."""
        if mode == "r":
            if nfiles == 1:
                nfiles = None  # type: ignore[assignment]
            if mapping == "blocked":
                mapping = None  # type: ignore[assignment]
        if mode == "w" and not chunksizes:
            raise SionUsageError("serial write requires the per-task chunk sizes")
        if isinstance(mapping, list):
            mapping = tuple(mapping)
        return cls(
            path=path,
            mode=mode,
            chunksizes=tuple(chunksizes) if chunksizes is not None else None,
            fsblksize=fsblksize,
            nfiles=nfiles,
            mapping=mapping,
        )

    # -- normalized views ------------------------------------------------------

    @property
    def effective_nfiles(self) -> int:
        """The physical file count with the default (1) applied."""
        return self.nfiles if self.nfiles is not None else 1

    @property
    def effective_mapping(self) -> "str | list[int]":
        """The task→file mapping with the default (``"blocked"``) applied."""
        if self.mapping is None:
            return "blocked"
        if isinstance(self.mapping, tuple):
            return list(self.mapping)
        return self.mapping

    def resolved_collectsize(self, ntasks: int) -> int | None:
        """The aggregation degree, normalized (``None`` = direct mode)."""
        from repro.sion.collective import resolve_collectsize

        return resolve_collectsize(self.collectsize, self.collectors, ntasks)


# ---------------------------------------------------------------------------
# Shared metadata helpers: one decode/build path for all four entry points.


def load_set_geometry(backend: Backend, path: str) -> tuple:
    """Decode file 0's metablock 1 into the set geometry.

    Returns ``(nfiles, ntasks_global, mapping_kind, mapping_table)`` —
    everything needed to rebuild the :class:`TaskMapping` of the whole
    set.  Used by the parallel probe, the serial openers, and the tools.
    """
    raw = backend.open(path, "rb")
    try:
        mb1 = Metablock1.decode_from(raw)
    finally:
        raw.close()
    return mb1.nfiles, mb1.ntasks_global, mb1.mapping_kind, mb1.mapping_table


def load_metablocks(raw: RawFile) -> tuple[Metablock1, Metablock2, ChunkLayout]:
    """Decode both metablocks (and the layout) from an open physical file."""
    mb1 = Metablock1.decode_from(raw)
    mb2 = Metablock2.decode_from(raw, mb1.metablock2_offset)
    return mb1, mb2, ChunkLayout.from_metablock1(mb1)


def load_file_metadata(
    backend: Backend, fpath: str
) -> tuple[Metablock1, Metablock2, ChunkLayout]:
    """Open one physical file, decode its metablocks, close it."""
    raw = backend.open(fpath, "rb")
    try:
        return load_metablocks(raw)
    finally:
        raw.close()


def build_file_metadata(
    tmap: TaskMapping,
    filenum: int,
    chunksizes: Sequence[int],
    globalranks: Sequence[int],
    fsblksize: int,
    flags: int,
) -> tuple[Metablock1, ChunkLayout]:
    """Metablock 1 + layout of one physical file about to be created.

    ``chunksizes``/``globalranks`` are the file's local arrays in
    local-rank order.  The custom mapping table rides on file 0 only.
    The serial creator and the parallel per-file masters both build
    their files through this one constructor, so the on-disk metadata
    of a multifile does not depend on which entry point created it.
    """
    mb1 = Metablock1(
        fsblksize=fsblksize,
        ntasks_local=len(chunksizes),
        nfiles=tmap.nfiles,
        filenum=filenum,
        ntasks_global=tmap.ntasks,
        start_of_data=0,
        metablock2_offset=0,
        globalranks=list(globalranks),
        chunksizes=list(chunksizes),
        flags=flags,
        mapping_kind=tmap.kind,
        mapping_table=(
            tmap.table_pairs()
            if filenum == 0 and tmap.kind == MAPPING_CUSTOM
            else []
        ),
    )
    layout = ChunkLayout(fsblksize, list(chunksizes), mb1.encoded_size)
    mb1.start_of_data = layout.start_of_data
    return mb1, layout


# ---------------------------------------------------------------------------
# Replay-guarded handles: deterministic backend telemetry under bulk replay.


def unwrap_raw(raw: RawFile) -> RawFile:
    """The physical handle underneath a replay guard (identity otherwise)."""
    return raw.unguarded if isinstance(raw, ReplayGuardedFile) else raw


class ReplayGuardedFile(RawFile):
    """Route every backend interaction of a handle through ``exec_once``.

    Direct-mode streams issue their positioned calls straight against
    the store.  Under the bulk engine's memoized replay a rank body may
    re-execute, and although re-issuing an idempotent positioned write
    leaves the bytes exact, it inflates instrumented call counts
    (``CountingBackend``, SimFS accounting).  Wrapping the handle makes
    each physical call an ``exec_once`` op: it executes exactly once per
    rank and replays its logged result, so direct-mode telemetry is as
    deterministic as collective mode's.

    Composite operations that must count as *one* backend call (e.g.
    ``persist_metablock2``'s seek/write/patch/flush sequence, itself
    wrapped in ``exec_once``) unwrap via :func:`unwrap_raw` — nesting
    ``exec_once`` inside ``exec_once`` is an op-log violation.
    """

    def __init__(self, raw: RawFile, comm: Any) -> None:
        """Guard ``raw`` with ``comm``'s ``exec_once`` replay log."""
        self._raw = raw
        self._comm = comm

    @property
    def unguarded(self) -> RawFile:
        """The wrapped physical handle (for composite exec_once blocks)."""
        return self._raw

    def _once(self, fn: Callable[[], Any]) -> Any:
        return self._comm.exec_once(fn)

    # -- streaming surface --------------------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """``seek`` as a replay-guarded op (executes once per rank)."""
        return self._once(lambda: self._raw.seek(offset, whence))

    def tell(self) -> int:
        """``tell`` as a replay-guarded op (executes once per rank)."""
        return self._once(self._raw.tell)

    def read(self, n: int = -1) -> bytes:
        """``read`` as a replay-guarded op (executes once per rank)."""
        return self._once(lambda: self._raw.read(n))

    def write(self, data: BufferLike) -> int:
        """``write`` as a replay-guarded op (executes once per rank)."""
        return self._once(lambda: self._raw.write(data))

    def write_zeros(self, n: int) -> int:
        """``write_zeros`` as a replay-guarded op (executes once per rank)."""
        return self._once(lambda: self._raw.write_zeros(n))

    def truncate(self, size: int) -> None:
        """``truncate`` as a replay-guarded op (executes once per rank)."""
        return self._once(lambda: self._raw.truncate(size))

    def flush(self) -> None:
        """``flush`` as a replay-guarded op (executes once per rank)."""
        return self._once(self._raw.flush)

    def close(self) -> None:
        """``close`` as a replay-guarded op (executes once per rank)."""
        return self._once(self._raw.close)

    # -- positioned / vectored surface --------------------------------------

    def pwrite(self, offset: int, data: BufferLike) -> int:
        """Positioned write as a replay-guarded op."""
        return self._once(lambda: self._raw.pwrite(offset, data))

    def pread(self, offset: int, n: int) -> bytes:
        """Positioned read as a replay-guarded op."""
        return self._once(lambda: self._raw.pread(offset, n))

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        """Contiguous gather-write as a replay-guarded op."""
        return self._once(lambda: self._raw.pwritev(offset, views))

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        """Contiguous scatter-read as a replay-guarded op."""
        return self._once(lambda: self._raw.preadv(offset, sizes))

    def scatter_write(self, fragments) -> int:
        """Vectored write as a replay-guarded op (fragments materialized)."""
        # Materialize the fragment list before the guard: the caller may
        # pass a generator, which must not be consumed twice (it is not —
        # exec_once runs the closure at most once — but a logged empty
        # result from an exhausted iterator would be silent corruption).
        frags = list(fragments)
        return self._once(lambda: self._raw.scatter_write(frags))

    def gather_read(self, requests: Sequence[tuple[int, int]]) -> list[bytes]:
        """Vectored read as a replay-guarded op (requests materialized)."""
        reqs = list(requests)
        return self._once(lambda: self._raw.gather_read(reqs))


def open_guarded(
    backend: Backend, path: str, mode: str, comm: Any
) -> ReplayGuardedFile:
    """Open a physical file once per rank and wrap it in a replay guard."""
    return ReplayGuardedFile(
        comm.exec_once(lambda: backend.open(path, mode)), comm
    )


def open_mirrored(
    backend: Backend, path: str, replica_path: str | None, comm: Any
) -> ReplayGuardedFile:
    """Open a write handle, mirrored onto its buddy replica when one exists.

    The direct-mode buddy integration point: with ``replica_path`` set,
    the replay-guarded handle wraps a
    :class:`~repro.sion.buddy.MirrorRawFile`, so every chunk write,
    shadow header, and metablock the stream (or ``persist_metablock2``,
    via :func:`unwrap_raw`) issues lands on both copies through the one
    existing code path.  Both opens happen inside a single ``exec_once``
    op — the mirror pair must be created exactly once per rank.
    """
    if replica_path is None:
        return open_guarded(backend, path, "r+b", comm)
    return ReplayGuardedFile(
        comm.exec_once(
            lambda: MirrorRawFile(
                backend.open(path, "r+b"), backend.open(replica_path, "r+b")
            )
        ),
        comm,
    )


# ---------------------------------------------------------------------------
# AccessPlan: what one rank physically does.


@dataclass(frozen=True)
class StreamAssignment:
    """One writer task stream a reader consumes (partitioned read)."""

    grank: int  # writer global rank
    filenum: int
    lrank: int  # writer's local rank within its physical file
    path: str
    blocksizes: tuple[int, ...]


@dataclass
class AccessPlan:
    """Per-rank physical access plan compiled from an :class:`OpenSpec`.

    Write mode / matched read: the single-stream fields (``filenum``,
    ``lrank``, ``my_path``, ``layout``, ``mb1``/``mb2``, ``lcom``)
    describe this rank's chunk schedule and its metablock duties (the
    per-file master — ``lcom.rank == 0`` — writes metablock 1 and later
    metablock 2).  Partitioned read: ``partition`` plus one
    :class:`StreamAssignment` per assigned writer stream, with the
    per-file metadata in ``file_layouts``.

    Produced by :func:`compile_plan` (collectively — read mode decodes
    the metablocks on one rank and broadcasts them); consumed by the
    executor, which turns the plan into an open handle.

    Example::

        plan = compile_plan(spec, comm, backend)
        assert plan.layout is not None or plan.partition is not None
    """

    spec: OpenSpec
    ntasks: int
    mapping: TaskMapping
    collectsize: int | None
    compress: bool = False
    shadow: bool = False
    # -- single-stream (write / matched read) --------------------------------
    filenum: int | None = None
    lrank: int | None = None
    my_path: str | None = None
    #: Buddy mode (write): where this rank's file is replicated, or None.
    replica_path: str | None = None
    layout: ChunkLayout | None = None
    mb1: Metablock1 | None = None
    mb2: Metablock2 | None = None
    lcom: Any = None
    # -- partitioned read ----------------------------------------------------
    partition: ReadPartition | None = None
    assignments: tuple[StreamAssignment, ...] = ()
    file_layouts: dict[int, ChunkLayout] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# The pipeline.


def open_access(spec: OpenSpec, comm: Any, backend: Backend | None = None):
    """Compile ``spec`` into this rank's plan and open the access handle.

    The one pipeline behind ``paropen`` (direct, collective, partitioned)
    and ``paropen_hybrid``.  Collective over ``comm``.
    """
    backend = backend if backend is not None else LocalBackend()
    if spec.mode == "w":
        plan = compile_write_plan(spec, comm, backend)
        return _execute_write(plan, comm, backend)
    plan = compile_read_plan(spec, comm, backend)
    if plan.partition is not None:
        return _execute_partitioned_read(plan, comm, backend)
    return _execute_matched_read(plan, comm, backend)


def compile_plan(spec: OpenSpec, comm: Any, backend: Backend) -> AccessPlan:
    """Compile an :class:`AccessPlan` without opening data handles."""
    if spec.mode == "w":
        return compile_write_plan(spec, comm, backend)
    return compile_read_plan(spec, comm, backend)


def compile_write_plan(spec: OpenSpec, comm: Any, backend: Backend) -> AccessPlan:
    """The collective write agreement (paper Listing 1, metadata half).

    Tasks agree on the task-to-file mapping and alignment granularity,
    per-file masters persist metablock 1, and every rank leaves with the
    shared layout of its physical file.
    """
    chunksize = spec.chunksize
    if chunksize is None or chunksize < 0:
        raise SionUsageError("write mode requires a non-negative chunksize")
    ntasks = comm.size
    collectsize = spec.resolved_collectsize(ntasks)
    tmap = TaskMapping.create(ntasks, spec.effective_nfiles, spec.effective_mapping)
    myfile = tmap.file_of(comm.rank)
    lrank = tmap.local_rank(comm.rank)
    mypath = physical_path(spec.path, myfile)

    # Rank 0 determines the alignment granularity for the whole set.
    fsblksize = spec.fsblksize
    if fsblksize is None:
        probed = backend.stat_blocksize(spec.path) if comm.rank == 0 else None
        fsblksize = comm.bcast(probed, root=0)
    assert fsblksize is not None
    if fsblksize < 1:
        raise SionUsageError(f"fsblksize must be positive: {fsblksize}")

    # Single-file containers need no sub-communicator: every rank is in
    # file 0 and ``split(color=0, key=rank)`` would reproduce ``comm``
    # rank for rank.  Reusing ``comm`` skips a whole collective wave —
    # at bulk-engine scale, one fewer park-and-replay cycle per rank.
    if tmap.nfiles == 1:
        lcom = comm
    else:
        lcom = comm.split(color=myfile, key=comm.rank)
    assert lcom is not None

    flags = (
        (FLAG_COMPRESS if spec.compress else 0)
        | (FLAG_SHADOW if spec.shadow else 0)
        | (FLAG_BUDDY if spec.buddy else 0)
    )
    replica = buddy_path(spec.path, myfile, tmap.nfiles) if spec.buddy else None
    # Per-file master gathers (global rank, chunksize) and writes metablock 1.
    gathered = lcom.gather((comm.rank, int(chunksize)), root=0)
    layout: ChunkLayout
    if lcom.rank == 0:
        assert gathered is not None
        granks = [g for g, _ in gathered]
        chunks = [c for _, c in gathered]
        mb1, layout = build_file_metadata(
            tmap, myfile, chunks, granks, fsblksize, flags
        )
        # exec_once: the truncating create must not repeat if the bulk
        # engine replays this rank body (thread engine: plain call).
        lcom.exec_once(lambda: _create_with_metablock1(backend, mypath, mb1))
        if replica is not None:
            # The replica opens with the *same* metablock 1 bytes, so the
            # mirrored chunk writes leave it byte-identical to the primary.
            lcom.exec_once(
                lambda: _create_with_metablock1(backend, replica, mb1)
            )
        # The root adopts the *broadcast* objects too: under bulk-engine
        # replay the locally rebuilt layout/mb1 would be fresh instances,
        # and parclose's metablock2_offset patch must land on the single
        # mb1 every rank of this file shares.
        layout, mb1 = lcom.bcast((layout, mb1), root=0)
    else:
        # bcast alone orders the create: a non-root rank cannot return
        # before the root deposited, and the root deposits only after the
        # exec_once above persisted metablock 1 — so the file exists for
        # everyone here without an extra barrier wave.
        layout, mb1 = lcom.bcast(None, root=0)
    return AccessPlan(
        spec=spec,
        ntasks=ntasks,
        mapping=tmap,
        collectsize=collectsize,
        compress=spec.compress,
        shadow=spec.shadow,
        filenum=myfile,
        lrank=lrank,
        my_path=mypath,
        replica_path=replica,
        layout=layout,
        mb1=mb1,
        lcom=lcom,
    )


def _create_with_metablock1(backend: Backend, path: str, mb1: Metablock1) -> None:
    """Create/truncate one physical file and persist its metablock 1."""
    raw = backend.open(path, "w+b")
    try:
        raw.write(mb1.encode())
        raw.flush()
    finally:
        raw.close()


def compile_read_plan(spec: OpenSpec, comm: Any, backend: Backend) -> AccessPlan:
    """The read-side metadata probe: set geometry, then per-rank duties.

    A matched world (``comm.size == ntasks`` recorded in the file, and
    ``partitioned`` unset) keeps the historical per-file broadcast plan;
    a partitioned world of any size gets a :class:`ReadPartition` over
    the writer task streams with one :class:`StreamAssignment` per
    stream in its contiguous slice.
    """
    # Rank 0 reads file 0's metablock 1 to learn the set geometry
    # (exec_once: decoding a 256k-task metablock is worth not replaying).
    info = (
        comm.exec_once(lambda: load_set_geometry(backend, spec.path))
        if comm.rank == 0
        else None
    )
    nfiles, ntasks_global, kind, table = comm.bcast(info, root=0)
    collectsize = spec.resolved_collectsize(comm.size)
    tmap = TaskMapping.from_kind_code(ntasks_global, nfiles, kind, table)
    if not spec.partitioned:
        if ntasks_global != comm.size:
            raise SionUsageError(
                f"multifile was written by {ntasks_global} tasks but the "
                f"communicator has {comm.size}; re-open with "
                "partitioned=True (any reader count) or use the serial API"
            )
        myfile = tmap.file_of(comm.rank)
        return AccessPlan(
            spec=spec,
            ntasks=ntasks_global,
            mapping=tmap,
            collectsize=collectsize,
            filenum=myfile,
            lrank=tmap.local_rank(comm.rank),
            my_path=physical_path(spec.path, myfile),
        )

    # Partitioned read: rank 0 loads every physical file's metadata once
    # and broadcasts it; readers whose slices span several files need no
    # further per-file choreography.
    partition = ReadPartition.balanced(ntasks_global, comm.size)
    if comm.rank == 0:
        metadata = comm.exec_once(
            lambda: [
                load_file_metadata(backend, physical_path(spec.path, f))
                for f in range(nfiles)
            ]
        )
        metadata = comm.bcast(metadata, root=0)
    else:
        metadata = comm.bcast(None, root=0)
    flags = metadata[0][0].flags
    file_layouts = {f: metadata[f][2] for f in range(nfiles)}
    assignments = []
    for grank in partition.writers_of(comm.rank):
        f = tmap.file_of(grank)
        lrank = tmap.local_rank(grank)
        assignments.append(
            StreamAssignment(
                grank=grank,
                filenum=f,
                lrank=lrank,
                path=physical_path(spec.path, f),
                blocksizes=tuple(metadata[f][1].blocksizes[lrank]),
            )
        )
    return AccessPlan(
        spec=spec,
        ntasks=ntasks_global,
        mapping=tmap,
        collectsize=collectsize,
        compress=bool(flags & FLAG_COMPRESS),
        shadow=bool(flags & FLAG_SHADOW),
        mb1=metadata[0][0],
        partition=partition,
        assignments=tuple(assignments),
        file_layouts=file_layouts,
    )


# ---------------------------------------------------------------------------
# Executors.


def _execute_write(plan: AccessPlan, comm: Any, backend: Backend):
    from repro.sion.parallel import SionParallelFile

    assert plan.layout is not None and plan.mb1 is not None
    assert plan.my_path is not None and plan.lrank is not None
    if plan.collectsize is not None:
        from repro.sion.collective import open_collective_write

        return open_collective_write(
            comm, plan.lcom, plan.lrank, plan.collectsize, backend,
            plan.spec.path, plan.my_path, plan.layout, plan.mb1,
            plan.mapping, plan.compress, plan.shadow,
            replica_path=plan.replica_path,
        )
    raw = open_mirrored(backend, plan.my_path, plan.replica_path, plan.lcom)
    stream = TaskStream(raw, plan.layout, plan.lrank, "w", shadow=plan.shadow)
    return SionParallelFile(
        mode="w",
        comm=comm,
        lcom=plan.lcom,
        backend=backend,
        base_path=plan.spec.path,
        my_path=plan.my_path,
        raw=raw,
        stream=stream,
        layout=plan.layout,
        mb1=plan.mb1,
        mapping=plan.mapping,
        compress=plan.compress,
    )


def _execute_matched_read(plan: AccessPlan, comm: Any, backend: Backend):
    from repro.sion.parallel import SionParallelFile

    assert plan.my_path is not None and plan.lrank is not None
    # Same single-file shortcut as ``compile_write_plan``: with one
    # physical file the per-file communicator is ``comm`` itself.
    if plan.mapping.nfiles == 1:
        lcom = comm
    else:
        lcom = comm.split(color=plan.filenum, key=comm.rank)
    assert lcom is not None
    my_path = plan.my_path

    if lcom.rank == 0:
        mb1, mb2, layout = lcom.exec_once(
            lambda: load_file_metadata(backend, my_path)
        )
        lcom.bcast((mb1, mb2, layout), root=0)
    else:
        mb1, mb2, layout = lcom.bcast(None, root=0)
    compress = bool(mb1.flags & FLAG_COMPRESS)
    shadow = bool(mb1.flags & FLAG_SHADOW)
    if plan.collectsize is not None:
        from repro.sion.collective import open_collective_read

        return open_collective_read(
            comm, lcom, plan.lrank, plan.collectsize, backend,
            plan.spec.path, my_path, layout, mb1, mb2, plan.mapping,
            compress=compress, shadow=shadow,
        )
    raw = open_guarded(backend, my_path, "rb", lcom)
    stream = TaskStream(
        raw,
        layout,
        plan.lrank,
        "r",
        blocksizes=mb2.blocksizes[plan.lrank],
        shadow=shadow,
    )
    return SionParallelFile(
        mode="r",
        comm=comm,
        lcom=lcom,
        backend=backend,
        base_path=plan.spec.path,
        my_path=my_path,
        raw=raw,
        stream=stream,
        layout=layout,
        mb1=mb1,
        mapping=plan.mapping,
        compress=compress,
    )


def _execute_partitioned_read(plan: AccessPlan, comm: Any, backend: Backend):
    if plan.collectsize is not None:
        return _open_partitioned_prefetch(plan, comm, backend)
    # Direct partitioned mode: each reader opens every physical file its
    # slice touches exactly once (replay-guarded), and the multiplexed
    # cursor batches the streams' fragment plans so a whole-slice read
    # costs one vectored call per touched file — O(readers) physical
    # data calls for the world, however many writer streams there are.
    raws: dict[int, RawFile] = {}
    streams: list[TaskStream] = []
    for a in plan.assignments:
        raw = raws.get(a.filenum)
        if raw is None:
            raw = raws[a.filenum] = open_guarded(backend, a.path, "rb", comm)
        streams.append(
            TaskStream(
                raw,
                plan.file_layouts[a.filenum],
                a.lrank,
                "r",
                blocksizes=list(a.blocksizes),
                shadow=plan.shadow,
            )
        )
    return SionPartitionedReadFile(
        comm=comm,
        backend=backend,
        base_path=plan.spec.path,
        plan=plan,
        streams=streams,
        own_raws=list(raws.values()),
        close_via=comm,
    )


def _open_partitioned_prefetch(plan: AccessPlan, comm: Any, backend: Backend):
    """Collective-prefetch partitioned read: one wave per collector group.

    Readers are grouped world-wide by the resolved ``collectsize``; each
    sender plans the complete request list of *every* writer stream in
    its slice, the group's collector fetches all of them in one
    ``gather_read`` per touched physical file, and ``scatterv`` hands
    each sender its per-stream fragments.  Later reads are served from
    :class:`~repro.sion.collective.PreloadedFragments` without touching
    the store — physical data calls scale with collectors x files, not
    with readers or writer streams.
    """
    from repro.sion.collective import PreloadedFragments

    assert plan.collectsize is not None
    ccom = comm.split(color=comm.rank // plan.collectsize, key=comm.rank)
    assert ccom is not None
    data_offset = SHADOW_HEADER_SIZE if plan.shadow else 0
    per_stream_requests = []
    for a in plan.assignments:
        layout = plan.file_layouts[a.filenum]
        per_stream_requests.append(
            (
                a.path,
                tuple(
                    layout.read_requests(a.lrank, list(a.blocksizes), data_offset)
                ),
            )
        )
    gathered = ccom.gather(tuple(per_stream_requests), root=0)
    collector_raws: list[RawFile] = []
    if ccom.rank == 0:
        assert gathered is not None
        # Bucket every (sender, stream) request list by physical path,
        # preserving order, and fetch each path's bucket in one call.
        order: list[str] = []
        buckets: dict[str, list[tuple[int, int]]] = {}
        slices: list[list[tuple[str, int, int]]] = []
        for sender_reqs in gathered:
            sender_slices = []
            for path, reqs in sender_reqs:
                if path not in buckets:
                    buckets[path] = []
                    order.append(path)
                start = len(buckets[path])
                buckets[path].extend(reqs)
                sender_slices.append((path, start, len(reqs)))
            slices.append(sender_slices)
        pieces_by_path: dict[str, list[bytes]] = {}
        for path in order:
            raw = ccom.exec_once(lambda p=path: backend.open(p, "rb"))
            collector_raws.append(raw)
            reqs = buckets[path]
            handle = raw
            pieces_by_path[path] = (
                ccom.exec_once(lambda h=handle, r=reqs: h.gather_read(r))
                if reqs
                else []
            )
        per_sender = [
            [
                tuple(pieces_by_path[path][start : start + count])
                for path, start, count in sender_slices
            ]
            for sender_slices in slices
        ]
        mine = ccom.scatterv(per_sender, root=0)
    else:
        mine = ccom.scatterv(None, root=0)
    streams: list[TaskStream] = []
    for (path, reqs), pieces, a in zip(per_stream_requests, mine, plan.assignments):
        preloaded = PreloadedFragments(
            list(zip([off for off, _ in reqs], pieces))
        )
        streams.append(
            TaskStream(
                preloaded,
                plan.file_layouts[a.filenum],
                a.lrank,
                "r",
                blocksizes=list(a.blocksizes),
                shadow=plan.shadow,
            )
        )
    return SionPartitionedReadFile(
        comm=comm,
        backend=backend,
        base_path=plan.spec.path,
        plan=plan,
        streams=streams,
        own_raws=collector_raws,
        close_via=ccom,
    )


# ---------------------------------------------------------------------------
# The partitioned read handle.


class SionPartitionedReadFile:
    """One reader's handle on a multifile opened with ``partitioned=True``.

    The reader owns a contiguous slice of writer task streams; its
    logical stream is their concatenation in writer-rank order, so the
    world's readers together reproduce an ``n``-rank read byte for byte.
    The read API mirrors :class:`~repro.sion.parallel.SionParallelFile`
    (``fread``/``read``/``read_all``/``feof``/``bytes_avail_in_chunk``),
    with the multiplexed cursor crossing writer-stream boundaries the
    way the single-stream cursor crosses chunk boundaries.
    """

    mode = "r"

    def __init__(
        self,
        comm: Any,
        backend: Backend,
        base_path: str,
        plan: AccessPlan,
        streams: list[TaskStream],
        own_raws: list[RawFile],
        close_via: Any,
    ) -> None:
        """Bind the reader's compiled slice (built by the executor)."""
        self.comm = comm
        self.backend = backend
        self.base_path = base_path
        self.plan = plan
        self.mapping = plan.mapping
        self.compress = plan.compress
        self._streams = streams
        self._own_raws = own_raws
        self._close_via = close_via
        self._mux = PartitionStream(streams)
        self._closed = False
        # Compressed sets: every writer stream is an independent zlib
        # stream, decompressed separately and concatenated.
        self._zrs = [ZlibReader() for _ in streams] if plan.compress else None
        self._zidx = 0

    # -- introspection ------------------------------------------------------

    @property
    def partition(self) -> ReadPartition:
        """The world's reader -> writer-slice assignment."""
        assert self.plan.partition is not None
        return self.plan.partition

    @property
    def writer_ranks(self) -> range:
        """Writer global ranks this reader consumes, in stream order."""
        return self.partition.writers_of(self.comm.rank)

    @property
    def nwriters(self) -> int:
        """Number of logical task streams recorded in the multifile."""
        return self.plan.ntasks

    @property
    def closed(self) -> bool:
        """True once :meth:`parclose` has run."""
        return self._closed

    def tell_logical(self) -> int:
        """Raw chunk-stream bytes consumed so far across the slice."""
        self._check_open()
        return self._mux.tell_logical()

    # -- read API -----------------------------------------------------------

    def feof(self) -> bool:
        """True once every assigned writer stream is exhausted."""
        self._check_open()
        if self._zrs is not None:
            return self._zcur() is None
        return self._mux.feof()

    def bytes_avail_in_chunk(self) -> int:
        """Unread data bytes in the current writer stream's chunk."""
        self._check_open()
        self._no_compress("bytes_avail_in_chunk")
        return self._mux.bytes_avail_in_chunk()

    def read(self, n: int) -> bytes:
        """Read within the current chunk of the current writer stream."""
        self._check_open()
        self._no_compress("read")
        return self._mux.read(n)

    def fread(self, n: int) -> bytes:
        """Read up to ``n`` logical bytes, crossing chunk *and* writer
        stream boundaries."""
        self._check_open()
        if n < 0:
            raise SionUsageError("read size must be non-negative")
        if self._zrs is None:
            return self._mux.fread(n)
        parts: list[bytes] = []
        want = n
        while want > 0:
            cur = self._zcur()
            if cur is None:
                break
            zr, stream = cur
            self._zpump(zr, stream, want)
            piece = zr.take(want)
            if not piece and zr.exhausted:
                self._zidx += 1
                continue
            if not piece:
                break
            parts.append(piece)
            want -= len(piece)
        return b"".join(parts)

    def read_all(self) -> bytes:
        """Everything that remains of this reader's slice."""
        self._check_open()
        if self._zrs is None:
            return self._mux.read_all()
        parts = []
        while True:
            piece = self.fread(1 << 20)
            if not piece:
                break
            parts.append(piece)
        return b"".join(parts)

    # -- collective close ---------------------------------------------------

    def parclose(self) -> None:
        """Collective close of the reader world."""
        if self._closed:
            raise SionUsageError("multifile already closed")
        for raw in self._own_raws:
            if isinstance(raw, ReplayGuardedFile):
                raw.close()
            else:
                # Prefetch-mode collector handles were opened under
                # exec_once and are shared across bulk-engine replays;
                # they must close exactly once.
                self._close_via.exec_once(raw.close)
        self._closed = True
        self.comm.barrier()

    def __enter__(self) -> "SionPartitionedReadFile":
        return self

    def __exit__(self, *exc: object) -> None:
        if not self._closed:
            self.parclose()

    # -- internals ----------------------------------------------------------

    def _zcur(self):
        assert self._zrs is not None
        while self._zidx < len(self._streams):
            zr = self._zrs[self._zidx]
            stream = self._streams[self._zidx]
            if not zr.exhausted or zr.available():
                return zr, stream
            self._zidx += 1
        return None

    def _zpump(self, zr: ZlibReader, stream: TaskStream, want: int) -> None:
        while zr.available() < want and not stream.feof():
            piece = stream.fread(64 * 1024)
            if not piece:
                break
            zr.feed(piece)
        if stream.feof():
            zr.source_exhausted()

    def _check_open(self) -> None:
        if self._closed:
            raise SionUsageError("multifile is closed")

    def _no_compress(self, op: str) -> None:
        if self.compress:
            raise SionUsageError(
                f"{op} is unavailable with transparent compression; "
                "use fread/read_all, which manage boundaries internally"
            )
