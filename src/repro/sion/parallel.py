"""Collective (parallel) multifile access — the paper's Listings 1 and 2.

:func:`paropen` is a collective operation over a communicator: tasks agree
on the task-to-file mapping, per-file masters write/read the metablocks,
layout information is distributed, and every task receives a
:class:`SionParallelFile` positioned at its first chunk.  In between open
and close, reads and writes are completely independent (no communication).
:meth:`SionParallelFile.parclose` is the matching collective close, where
masters collect per-task byte counts and append metablock 2.

The metadata agreement itself lives in :mod:`repro.sion.openspec`:
``paropen`` is a thin shim building an
:class:`~repro.sion.openspec.OpenSpec` and handing it to the shared
``OpenSpec -> AccessPlan`` pipeline, the same one behind the collective,
hybrid, serial, and partitioned entry points.
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend, RawFile
from repro.buffers import BufferLike, as_view
from repro.errors import SionUsageError
from repro.sion.compression import ZlibReader, ZlibWriter
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import TaskMapping
from repro.sion.openspec import OpenSpec, open_access, unwrap_raw
from repro.sion.readwrite import TaskStream
from repro.simmpi.comm import Comm


def paropen(
    path: str,
    mode: str,
    comm: Comm,
    chunksize: int | None = None,
    *,
    fsblksize: int | None = None,
    nfiles: int = 1,
    mapping: str | list[int] = "blocked",
    backend: Backend | None = None,
    compress: bool = False,
    shadow: bool = False,
    buddy: bool = False,
    collectsize: int | None = None,
    collectors: int | None = None,
    partitioned: bool = False,
) -> "SionParallelFile":
    """Collectively open a multifile for parallel access.

    Parameters mirror ``sion_paropen_mpi``:

    ``chunksize``
        Maximum bytes this task writes *in one piece* (write mode).  May
        differ per task.
    ``fsblksize``
        Alignment granularity.  Defaults to the file system's block size
        (determined via the backend's ``stat_blocksize``, the paper's
        ``fstat`` call).  Configuring a smaller value reintroduces block
        false-sharing — exactly the Table 1 experiment.
    ``nfiles`` / ``mapping``
        Number of physical files and the task distribution over them.
    ``compress``
        Transparent zlib compression of each task's stream (paper §6).
    ``shadow``
        Per-chunk recovery headers so metablock 2 can be rebuilt after a
        crash (paper §6).
    ``buddy``
        Buddy-replica checkpointing (write mode): every write is
        mirrored to a replica of this physical file hosted on the
        partner group's name stem
        (:func:`~repro.sion.buddy.buddy_path`), doubling the written
        bytes but letting :func:`~repro.sion.recovery.recover_multifile`
        rebuild a *lost or torn physical file* byte-identically.  Works
        in direct and collective mode; readers ignore replicas.
    ``collectsize`` / ``collectors``
        Collector-rank aggregation (collective mode, SIONlib's
        ``collsize``): groups of ``collectsize`` tasks funnel their chunk
        fragments through one collector rank per group, so physical data
        calls scale with the number of collectors instead of the number
        of tasks.  ``collectors=N`` is sugar for ``collectsize =
        ceil(ntasks / N)``.  Files are byte-identical to direct mode; see
        :mod:`repro.sion.collective`.
    ``partitioned``
        Read mode only: accept a reader world of **any** size over the
        multifile.  Each reader receives a contiguous slice of the
        recorded writer task streams
        (:class:`~repro.sion.mapping.ReadPartition`) and a
        :class:`~repro.sion.openspec.SionPartitionedReadFile` handle
        whose multiplexed cursor concatenates them — byte-identical to a
        matched-world read.  Works with ``collectsize``/``collectors``
        (collective-prefetch partitioned read).

    Write-mode geometry options are contradictory in read mode (the
    multifile's own metadata is authoritative) and rejected with
    :class:`~repro.errors.SionUsageError` by the
    :class:`~repro.sion.openspec.OpenSpec` validator.

    Returns each task's :class:`SionParallelFile` handle (a
    :class:`~repro.sion.collective.SionCollectiveFile` in collective
    mode, a partitioned read handle with ``partitioned=True``).

    Example — every rank writes one record, then reads it back::

        def program(comm):
            f = sion.paropen("/scratch/out.sion", "w", comm, chunksize=1 << 16)
            f.fwrite(payload_of(comm.rank))
            f.parclose()
            f = sion.paropen("/scratch/out.sion", "r", comm)
            assert f.read_all() == payload_of(comm.rank)
            f.parclose()

        simmpi.run_spmd(1024, program)
    """
    spec = OpenSpec.for_paropen(
        path=path,
        mode=mode,
        chunksize=chunksize,
        fsblksize=fsblksize,
        nfiles=nfiles,
        mapping=mapping,
        compress=compress,
        shadow=shadow,
        buddy=buddy,
        collectsize=collectsize,
        collectors=collectors,
        partitioned=partitioned,
    )
    return open_access(spec, comm, backend)


def persist_metablock2(
    lcom: Comm,
    raw: RawFile,
    layout: ChunkLayout,
    mb1: Metablock1,
    blocksizes: list[list[int]],
) -> None:
    """Append metablock 2 and patch its offset into metablock 1 (master).

    Shared by direct and collective parclose.  Wrapped in ``exec_once``:
    a bulk-engine replay of the close sequence must not re-write the
    metablock (the bytes would be identical, but instrumented backends
    would double-count the boundary crossing).  Callers pass the
    *unguarded* physical handle — the sequence is one composite op, and
    a replay-guarded handle would nest ``exec_once`` inside ``exec_once``.
    """
    mb2 = Metablock2(blocksizes=blocksizes)
    offset = layout.end_of_blocks(mb2.maxblocks)

    def _persist() -> None:
        raw.seek(offset)
        raw.write(mb2.encode())
        mb1.patch_metablock2_offset(raw, offset)
        raw.flush()

    lcom.exec_once(_persist)


class SionParallelFile:
    """One task's handle on a collectively opened multifile."""

    def __init__(
        self,
        mode: str,
        comm: Comm,
        lcom: Comm,
        backend: Backend,
        base_path: str,
        my_path: str,
        raw: RawFile | None,
        stream: TaskStream,
        layout: ChunkLayout,
        mb1: Metablock1,
        mapping: TaskMapping,
        compress: bool,
    ) -> None:
        self.mode = mode
        self.comm = comm
        self.lcom = lcom
        self.backend = backend
        self.base_path = base_path
        self.my_path = my_path
        self._raw = raw
        self._stream = stream
        self.layout = layout
        self.mb1 = mb1
        self.mapping = mapping
        self.compress = compress
        self._zw: ZlibWriter | None = ZlibWriter() if compress and mode == "w" else None
        self._zr: ZlibReader | None = ZlibReader() if compress and mode == "r" else None
        self._closed = False

    # -- introspection ------------------------------------------------------

    @property
    def filenum(self) -> int:
        """Index of the physical file this task writes to."""
        return self.mb1.filenum

    @property
    def local_rank(self) -> int:
        """This task's index within its physical file."""
        return self._stream.ltask

    @property
    def chunksize(self) -> int:
        """This task's usable chunk capacity in bytes."""
        return self._stream.capacity

    @property
    def fsblksize(self) -> int:
        """Alignment granularity of the multifile."""
        return self.mb1.fsblksize

    @property
    def closed(self) -> bool:
        return self._closed

    def get_current_location(self) -> tuple[int, int]:
        """``sion_get_current_location``: ``(block, pos_in_chunk)``.

        Positions refer to the raw chunk stream (compressed bytes when
        transparent compression is active).
        """
        return self._stream.cur_block, self._stream.pos

    def tell_logical(self) -> int:
        """Raw chunk-stream bytes consumed/produced so far by this task."""
        return self._stream.tell_logical()

    # -- write API (Listing 1) ------------------------------------------------

    def ensure_free_space(self, nbytes: int) -> bool:
        """Make room for an ``nbytes`` ANSI-style write; True if block grew."""
        self._check_plain("ensure_free_space")
        return self._stream.ensure_free_space(nbytes)

    def write(self, data: BufferLike) -> int:
        """ANSI-``fwrite`` equivalent: must fit in the current chunk."""
        self._check_plain("write")
        return self._stream.write(data)

    def fwrite(self, data: BufferLike) -> int:
        """SIONlib write: splits across chunks; returns *logical* bytes.

        The payload view is forwarded without intermediate copies; with
        transparent compression the deflate output is the only buffer
        materialized on the way down.
        """
        self._check_mode("w")
        if self._zw is not None:
            view = as_view(data)
            self._stream.fwrite(self._zw.compress(view))
            return view.nbytes
        return self._stream.fwrite(data)

    def bytes_left_in_chunk(self) -> int:
        """Writable bytes remaining in the current chunk."""
        self._check_plain("bytes_left_in_chunk")
        return self._stream.bytes_left_in_chunk()

    def flush_shadow(self) -> None:
        """Checkpoint recovery metadata for the current block (paper §6)."""
        self._check_mode("w")
        self._stream.flush_shadow()

    # -- read API (Listing 2) ----------------------------------------------------

    def feof(self) -> bool:
        """True after the task's entire logical stream has been read."""
        self._check_mode("r")
        if self._zr is not None:
            self._pump(1)
            return self._zr.exhausted
        return self._stream.feof()

    def bytes_avail_in_chunk(self) -> int:
        """Unread data bytes in the current chunk."""
        self._check_plain("bytes_avail_in_chunk")
        return self._stream.bytes_avail_in_chunk()

    def read(self, n: int) -> bytes:
        """ANSI-``fread`` equivalent: stays within the current chunk."""
        self._check_plain("read")
        return self._stream.read(n)

    def fread(self, n: int) -> bytes:
        """SIONlib read: crosses chunk boundaries; up to ``n`` logical bytes."""
        self._check_mode("r")
        if self._zr is not None:
            self._pump(n)
            return self._zr.take(n)
        return self._stream.fread(n)

    def read_all(self) -> bytes:
        """Entire remaining logical stream of this task."""
        self._check_mode("r")
        if self._zr is not None:
            parts = []
            while not self.feof():
                self._pump(1 << 20)
                parts.append(self._zr.take(self._zr.available()))
            return b"".join(parts)
        return self._stream.read_all()

    def _pump(self, want: int) -> None:
        """Feed the decompressor until ``want`` bytes are ready or EOF."""
        assert self._zr is not None
        while self._zr.available() < want and not self._stream.feof():
            raw_piece = self._stream.fread(64 * 1024)
            if not raw_piece:
                break
            self._zr.feed(raw_piece)
        if self._stream.feof():
            self._zr.source_exhausted()

    # -- collective close ------------------------------------------------------

    def parclose(self) -> None:
        """Collective close; masters append metablock 2 (write mode)."""
        if self._closed:
            raise SionUsageError("multifile already closed")
        if self.mode == "w":
            if self._zw is not None:
                tail = self._zw.finish()
                if tail:
                    self._stream.fwrite(tail)
            blocks = self._stream.finalize()
            self._flush_data()
            gathered = self.lcom.gather(blocks, root=0)
            if self.lcom.rank == 0:
                assert gathered is not None and self._raw is not None
                persist_metablock2(
                    self.lcom, unwrap_raw(self._raw), self.layout, self.mb1,
                    gathered,
                )
        self._close_raw()
        self._closed = True
        # The world barrier already makes every file's metablock 2 durable
        # before *any* rank returns: each per-file master enters it only
        # after its mb2 write above, so a separate lcom barrier per file
        # would only add a synchronization wave.
        self.comm.barrier()

    def _flush_data(self) -> None:
        """Hook: push any buffered stream data down before metablock 2.

        Direct mode writes through, so there is nothing to flush; the
        collective subclass runs its final collection wave here.
        """

    def _close_raw(self) -> None:
        """Hook: release the physical handle (collective mode: guarded)."""
        assert self._raw is not None
        self._raw.close()

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "SionParallelFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        if not self._closed:
            self.parclose()

    # -- internals -------------------------------------------------------------

    def _check_mode(self, mode: str) -> None:
        if self._closed:
            raise SionUsageError("multifile is closed")
        if self.mode != mode:
            raise SionUsageError(
                f"operation requires mode {mode!r}, file is open {self.mode!r}"
            )

    def _check_plain(self, op: str) -> None:
        self._check_mode("w" if op in ("ensure_free_space", "write", "bytes_left_in_chunk") else "r")
        if self.compress:
            raise SionUsageError(
                f"{op} is unavailable with transparent compression; "
                "use fwrite/fread, which manage chunk boundaries internally"
            )
