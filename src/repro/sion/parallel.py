"""Collective (parallel) multifile access — the paper's Listings 1 and 2.

:func:`paropen` is a collective operation over a communicator: tasks agree
on the task-to-file mapping, per-file masters write/read the metablocks,
layout information is distributed, and every task receives a
:class:`SionParallelFile` positioned at its first chunk.  In between open
and close, reads and writes are completely independent (no communication).
:meth:`SionParallelFile.parclose` is the matching collective close, where
masters collect per-task byte counts and append metablock 2.
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend, RawFile
from repro.backends.localfs import LocalBackend
from repro.buffers import BufferLike, as_view
from repro.errors import SionUsageError
from repro.sion.constants import FLAG_COMPRESS, FLAG_SHADOW, MAPPING_CUSTOM
from repro.sion.compression import ZlibReader, ZlibWriter
from repro.sion.format import Metablock1, Metablock2
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import TaskMapping, physical_path
from repro.sion.readwrite import TaskStream
from repro.simmpi.comm import Comm


def paropen(
    path: str,
    mode: str,
    comm: Comm,
    chunksize: int | None = None,
    *,
    fsblksize: int | None = None,
    nfiles: int = 1,
    mapping: str | list[int] = "blocked",
    backend: Backend | None = None,
    compress: bool = False,
    shadow: bool = False,
    collectsize: int | None = None,
    collectors: int | None = None,
) -> "SionParallelFile":
    """Collectively open a multifile for parallel access.

    Parameters mirror ``sion_paropen_mpi``:

    ``chunksize``
        Maximum bytes this task writes *in one piece* (write mode).  May
        differ per task.  Ignored when reading.
    ``fsblksize``
        Alignment granularity.  Defaults to the file system's block size
        (determined via the backend's ``stat_blocksize``, the paper's
        ``fstat`` call).  Configuring a smaller value reintroduces block
        false-sharing — exactly the Table 1 experiment.
    ``nfiles`` / ``mapping``
        Number of physical files and the task distribution over them.
    ``compress``
        Transparent zlib compression of each task's stream (paper §6).
    ``shadow``
        Per-chunk recovery headers so metablock 2 can be rebuilt after a
        crash (paper §6).
    ``collectsize`` / ``collectors``
        Collector-rank aggregation (collective mode, SIONlib's
        ``collsize``): groups of ``collectsize`` tasks funnel their chunk
        fragments through one collector rank per group, so physical data
        calls scale with the number of collectors instead of the number
        of tasks.  ``collectors=N`` is sugar for ``collectsize =
        ceil(ntasks / N)``.  Files are byte-identical to direct mode; see
        :mod:`repro.sion.collective`.

    Returns each task's :class:`SionParallelFile` handle (a
    :class:`~repro.sion.collective.SionCollectiveFile` in collective
    mode).
    """
    if mode not in ("r", "w"):
        raise SionUsageError(f"mode must be 'r' or 'w', got {mode!r}")
    backend = backend if backend is not None else LocalBackend()
    from repro.sion.collective import resolve_collectsize

    collectsize = resolve_collectsize(collectsize, collectors, comm.size)
    if mode == "w":
        return _paropen_write(
            path, comm, chunksize, fsblksize, nfiles, mapping, backend,
            compress, shadow, collectsize,
        )
    return _paropen_read(path, comm, backend, collectsize)


def _paropen_write(
    path: str,
    comm: Comm,
    chunksize: int | None,
    fsblksize: int | None,
    nfiles: int,
    mapping: str | list[int],
    backend: Backend,
    compress: bool,
    shadow: bool,
    collectsize: int | None = None,
) -> "SionParallelFile":
    if chunksize is None or chunksize < 0:
        raise SionUsageError("write mode requires a non-negative chunksize")
    ntasks = comm.size
    tmap = TaskMapping.create(ntasks, nfiles, mapping)
    myfile = tmap.file_of(comm.rank)
    lrank = tmap.local_rank(comm.rank)
    mypath = physical_path(path, myfile)

    # Rank 0 determines the alignment granularity for the whole set.
    if fsblksize is None:
        probed = backend.stat_blocksize(path) if comm.rank == 0 else None
        fsblksize = comm.bcast(probed, root=0)
    assert fsblksize is not None
    if fsblksize < 1:
        raise SionUsageError(f"fsblksize must be positive: {fsblksize}")

    lcom = comm.split(color=myfile, key=comm.rank)
    assert lcom is not None

    flags = (FLAG_COMPRESS if compress else 0) | (FLAG_SHADOW if shadow else 0)
    # Per-file master gathers (global rank, chunksize) and writes metablock 1.
    gathered = lcom.gather((comm.rank, int(chunksize)), root=0)
    layout: ChunkLayout
    if lcom.rank == 0:
        assert gathered is not None
        granks = [g for g, _ in gathered]
        chunks = [c for _, c in gathered]
        mb1 = Metablock1(
            fsblksize=fsblksize,
            ntasks_local=len(chunks),
            nfiles=tmap.nfiles,
            filenum=myfile,
            ntasks_global=ntasks,
            start_of_data=0,
            metablock2_offset=0,
            globalranks=granks,
            chunksizes=chunks,
            flags=flags,
            mapping_kind=tmap.kind,
            mapping_table=(
                tmap.table_pairs()
                if myfile == 0 and tmap.kind == MAPPING_CUSTOM
                else []
            ),
        )
        layout = ChunkLayout(fsblksize, chunks, mb1.encoded_size)
        mb1.start_of_data = layout.start_of_data
        # exec_once: the truncating create must not repeat if the bulk
        # engine replays this rank body (thread engine: plain call).
        lcom.exec_once(lambda: _create_with_metablock1(backend, mypath, mb1))
        # The root adopts the *broadcast* objects too: under bulk-engine
        # replay the locally rebuilt layout/mb1 would be fresh instances,
        # and parclose's metablock2_offset patch must land on the single
        # mb1 every rank of this file shares.
        layout, mb1 = lcom.bcast((layout, mb1), root=0)
    else:
        # bcast alone orders the create: a non-root rank cannot return
        # before the root deposited, and the root deposits only after the
        # exec_once above persisted metablock 1 — so the file exists for
        # everyone here without an extra barrier wave.
        layout, mb1 = lcom.bcast(None, root=0)
    if collectsize is not None:
        from repro.sion.collective import open_collective_write

        return open_collective_write(
            comm, lcom, lrank, collectsize, backend, path, mypath,
            layout, mb1, tmap, compress, shadow,
        )
    # Opened per execution on purpose: under bulk-engine replay the
    # direct-mode stream re-issues its (idempotent) positioned writes, so
    # the handle must be fresh each run.  Collective mode, whose data
    # moves only through exec_once-guarded waves, reuses one logged
    # handle instead (see repro.sion.collective).
    raw = backend.open(mypath, "r+b")
    stream = TaskStream(raw, layout, lrank, "w", shadow=shadow)
    return SionParallelFile(
        mode="w",
        comm=comm,
        lcom=lcom,
        backend=backend,
        base_path=path,
        my_path=mypath,
        raw=raw,
        stream=stream,
        layout=layout,
        mb1=mb1,
        mapping=tmap,
        compress=compress,
    )


def _create_with_metablock1(backend: Backend, path: str, mb1: Metablock1) -> None:
    """Create/truncate one physical file and persist its metablock 1."""
    raw = backend.open(path, "w+b")
    try:
        raw.write(mb1.encode())
        raw.flush()
    finally:
        raw.close()


def persist_metablock2(
    lcom: Comm,
    raw: RawFile,
    layout: ChunkLayout,
    mb1: Metablock1,
    blocksizes: list[list[int]],
) -> None:
    """Append metablock 2 and patch its offset into metablock 1 (master).

    Shared by direct and collective parclose.  Wrapped in ``exec_once``:
    a bulk-engine replay of the close sequence must not re-write the
    metablock (the bytes would be identical, but instrumented backends
    would double-count the boundary crossing).
    """
    mb2 = Metablock2(blocksizes=blocksizes)
    offset = layout.end_of_blocks(mb2.maxblocks)

    def _persist() -> None:
        raw.seek(offset)
        raw.write(mb2.encode())
        mb1.patch_metablock2_offset(raw, offset)
        raw.flush()

    lcom.exec_once(_persist)


def _paropen_read(
    path: str, comm: Comm, backend: Backend, collectsize: int | None = None
) -> "SionParallelFile":
    # Rank 0 reads file 0's metablock 1 to learn the set geometry
    # (exec_once: decoding a 256k-task metablock is worth not replaying).
    def _probe() -> tuple:
        probe = backend.open(path, "rb")
        try:
            mb1_0 = Metablock1.decode_from(probe)
        finally:
            probe.close()
        return (
            mb1_0.nfiles,
            mb1_0.ntasks_global,
            mb1_0.mapping_kind,
            mb1_0.mapping_table,
        )

    info = comm.exec_once(_probe) if comm.rank == 0 else None
    nfiles, ntasks_global, kind, table = comm.bcast(info, root=0)
    if ntasks_global != comm.size:
        raise SionUsageError(
            f"multifile was written by {ntasks_global} tasks but the "
            f"communicator has {comm.size}; use the serial API for other shapes"
        )
    tmap = TaskMapping.from_kind_code(ntasks_global, nfiles, kind, table)
    myfile = tmap.file_of(comm.rank)
    lrank = tmap.local_rank(comm.rank)
    mypath = physical_path(path, myfile)

    lcom = comm.split(color=myfile, key=comm.rank)
    assert lcom is not None

    def _load_metadata() -> tuple:
        raw0 = backend.open(mypath, "rb")
        try:
            mb1 = Metablock1.decode_from(raw0)
            mb2 = Metablock2.decode_from(raw0, mb1.metablock2_offset)
        finally:
            raw0.close()
        return mb1, mb2, ChunkLayout.from_metablock1(mb1)

    if lcom.rank == 0:
        mb1, mb2, layout = lcom.exec_once(_load_metadata)
        lcom.bcast((mb1, mb2, layout), root=0)
    else:
        mb1, mb2, layout = lcom.bcast(None, root=0)
    if collectsize is not None:
        from repro.sion.collective import open_collective_read

        return open_collective_read(
            comm, lcom, lrank, collectsize, backend, path, mypath,
            layout, mb1, mb2, tmap,
            compress=bool(mb1.flags & FLAG_COMPRESS),
            shadow=bool(mb1.flags & FLAG_SHADOW),
        )
    raw = backend.open(mypath, "rb")
    stream = TaskStream(
        raw,
        layout,
        lrank,
        "r",
        blocksizes=mb2.blocksizes[lrank],
        shadow=bool(mb1.flags & FLAG_SHADOW),
    )
    return SionParallelFile(
        mode="r",
        comm=comm,
        lcom=lcom,
        backend=backend,
        base_path=path,
        my_path=mypath,
        raw=raw,
        stream=stream,
        layout=layout,
        mb1=mb1,
        mapping=tmap,
        compress=bool(mb1.flags & FLAG_COMPRESS),
    )


class SionParallelFile:
    """One task's handle on a collectively opened multifile."""

    def __init__(
        self,
        mode: str,
        comm: Comm,
        lcom: Comm,
        backend: Backend,
        base_path: str,
        my_path: str,
        raw: RawFile | None,
        stream: TaskStream,
        layout: ChunkLayout,
        mb1: Metablock1,
        mapping: TaskMapping,
        compress: bool,
    ) -> None:
        self.mode = mode
        self.comm = comm
        self.lcom = lcom
        self.backend = backend
        self.base_path = base_path
        self.my_path = my_path
        self._raw = raw
        self._stream = stream
        self.layout = layout
        self.mb1 = mb1
        self.mapping = mapping
        self.compress = compress
        self._zw: ZlibWriter | None = ZlibWriter() if compress and mode == "w" else None
        self._zr: ZlibReader | None = ZlibReader() if compress and mode == "r" else None
        self._closed = False

    # -- introspection ------------------------------------------------------

    @property
    def filenum(self) -> int:
        """Index of the physical file this task writes to."""
        return self.mb1.filenum

    @property
    def local_rank(self) -> int:
        """This task's index within its physical file."""
        return self._stream.ltask

    @property
    def chunksize(self) -> int:
        """This task's usable chunk capacity in bytes."""
        return self._stream.capacity

    @property
    def fsblksize(self) -> int:
        """Alignment granularity of the multifile."""
        return self.mb1.fsblksize

    @property
    def closed(self) -> bool:
        return self._closed

    def get_current_location(self) -> tuple[int, int]:
        """``sion_get_current_location``: ``(block, pos_in_chunk)``.

        Positions refer to the raw chunk stream (compressed bytes when
        transparent compression is active).
        """
        return self._stream.cur_block, self._stream.pos

    def tell_logical(self) -> int:
        """Raw chunk-stream bytes consumed/produced so far by this task."""
        return self._stream.tell_logical()

    # -- write API (Listing 1) ------------------------------------------------

    def ensure_free_space(self, nbytes: int) -> bool:
        """Make room for an ``nbytes`` ANSI-style write; True if block grew."""
        self._check_plain("ensure_free_space")
        return self._stream.ensure_free_space(nbytes)

    def write(self, data: BufferLike) -> int:
        """ANSI-``fwrite`` equivalent: must fit in the current chunk."""
        self._check_plain("write")
        return self._stream.write(data)

    def fwrite(self, data: BufferLike) -> int:
        """SIONlib write: splits across chunks; returns *logical* bytes.

        The payload view is forwarded without intermediate copies; with
        transparent compression the deflate output is the only buffer
        materialized on the way down.
        """
        self._check_mode("w")
        if self._zw is not None:
            view = as_view(data)
            self._stream.fwrite(self._zw.compress(view))
            return view.nbytes
        return self._stream.fwrite(data)

    def bytes_left_in_chunk(self) -> int:
        """Writable bytes remaining in the current chunk."""
        self._check_plain("bytes_left_in_chunk")
        return self._stream.bytes_left_in_chunk()

    def flush_shadow(self) -> None:
        """Checkpoint recovery metadata for the current block (paper §6)."""
        self._check_mode("w")
        self._stream.flush_shadow()

    # -- read API (Listing 2) ----------------------------------------------------

    def feof(self) -> bool:
        """True after the task's entire logical stream has been read."""
        self._check_mode("r")
        if self._zr is not None:
            self._pump(1)
            return self._zr.exhausted
        return self._stream.feof()

    def bytes_avail_in_chunk(self) -> int:
        """Unread data bytes in the current chunk."""
        self._check_plain("bytes_avail_in_chunk")
        return self._stream.bytes_avail_in_chunk()

    def read(self, n: int) -> bytes:
        """ANSI-``fread`` equivalent: stays within the current chunk."""
        self._check_plain("read")
        return self._stream.read(n)

    def fread(self, n: int) -> bytes:
        """SIONlib read: crosses chunk boundaries; up to ``n`` logical bytes."""
        self._check_mode("r")
        if self._zr is not None:
            self._pump(n)
            return self._zr.take(n)
        return self._stream.fread(n)

    def read_all(self) -> bytes:
        """Entire remaining logical stream of this task."""
        self._check_mode("r")
        if self._zr is not None:
            parts = []
            while not self.feof():
                self._pump(1 << 20)
                parts.append(self._zr.take(self._zr.available()))
            return b"".join(parts)
        return self._stream.read_all()

    def _pump(self, want: int) -> None:
        """Feed the decompressor until ``want`` bytes are ready or EOF."""
        assert self._zr is not None
        while self._zr.available() < want and not self._stream.feof():
            raw_piece = self._stream.fread(64 * 1024)
            if not raw_piece:
                break
            self._zr.feed(raw_piece)
        if self._stream.feof():
            self._zr.source_exhausted()

    # -- collective close ------------------------------------------------------

    def parclose(self) -> None:
        """Collective close; masters append metablock 2 (write mode)."""
        if self._closed:
            raise SionUsageError("multifile already closed")
        if self.mode == "w":
            if self._zw is not None:
                tail = self._zw.finish()
                if tail:
                    self._stream.fwrite(tail)
            blocks = self._stream.finalize()
            self._flush_data()
            gathered = self.lcom.gather(blocks, root=0)
            if self.lcom.rank == 0:
                assert gathered is not None and self._raw is not None
                persist_metablock2(
                    self.lcom, self._raw, self.layout, self.mb1, gathered
                )
        self._close_raw()
        self._closed = True
        # The world barrier already makes every file's metablock 2 durable
        # before *any* rank returns: each per-file master enters it only
        # after its mb2 write above, so a separate lcom barrier per file
        # would only add a synchronization wave.
        self.comm.barrier()

    def _flush_data(self) -> None:
        """Hook: push any buffered stream data down before metablock 2.

        Direct mode writes through, so there is nothing to flush; the
        collective subclass runs its final collection wave here.
        """

    def _close_raw(self) -> None:
        """Hook: release the physical handle (collective mode: guarded)."""
        assert self._raw is not None
        self._raw.close()

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "SionParallelFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        if not self._closed:
            self.parclose()

    # -- internals -------------------------------------------------------------

    def _check_mode(self, mode: str) -> None:
        if self._closed:
            raise SionUsageError("multifile is closed")
        if self.mode != mode:
            raise SionUsageError(
                f"operation requires mode {mode!r}, file is open {self.mode!r}"
            )

    def _check_plain(self, op: str) -> None:
        self._check_mode("w" if op in ("ensure_free_space", "write", "bytes_left_in_chunk") else "r")
        if self.compress:
            raise SionUsageError(
                f"{op} is unavailable with transparent compression; "
                "use fwrite/fread, which manage chunk boundaries internally"
            )
