"""Buddy-replica checkpointing: mirror every write to a partner file.

SIONlib's buddy checkpointing trades storage for survivability: each
physical file of a multifile set is written twice — once at its own
path, once as a *replica* hosted on the partner group's name stem — so
the loss of one entire physical file (node-local storage gone, stripe
corrupted, file deleted) costs nothing but a
:func:`~repro.sion.recovery.recover_multifile` run.

The placement rule is :func:`buddy_path`: the replica of physical file
``f`` lives at ``physical_path(base, (f + 1) % nfiles) + ".buddy"``.
Hosting the replica on the *partner's* stem matters — if a failure takes
out everything sharing file ``f``'s name stem (e.g. one OST, one
node-local disk), file ``f``'s replica survives on stem ``f + 1``.  With
``nfiles == 1`` the rule degenerates to ``base + ".buddy"``, which still
survives deletion of the primary.

Mechanically the mode is one wrapper: :class:`MirrorRawFile` duplicates
the write-side ``RawFile`` surface onto two physical handles.  The open
pipeline (:mod:`repro.sion.openspec`) hands the write executors a mirror
instead of a plain handle, so chunk writes, shadow headers, and both
metablocks reach primary and replica through the *same* code path — the
replica is byte-identical to the primary by construction, not by a
separate copy pass.  Readers never consult replicas; metablock 1 merely
records :data:`~repro.sion.constants.FLAG_BUDDY` so tools and recovery
know replicas exist.
"""

from __future__ import annotations

from typing import Sequence

from repro.backends.base import RawFile
from repro.buffers import BufferLike
from repro.sion.constants import BUDDY_SUFFIX
from repro.sion.mapping import physical_path


def buddy_path(base: str, filenum: int, nfiles: int) -> str:
    """Path hosting the replica of physical file ``filenum``.

    The replica rides on the next file's name stem (wrapping around), so
    a whole-stem loss never takes both copies of any file.
    """
    return physical_path(base, (filenum + 1) % nfiles) + BUDDY_SUFFIX


class MirrorRawFile(RawFile):
    """Duplicate every mutation onto a primary and a replica handle.

    Write-side operations (``write``, ``pwrite``, ``pwritev``,
    ``scatter_write``, ``write_zeros``, ``truncate``, ``seek``,
    ``flush``, ``close``) are forwarded to both handles; read-side
    operations are served by the primary alone.  Return values are the
    primary's.  Every method forwards explicitly rather than relying on
    the :class:`~repro.backends.base.RawFile` defaults, so a mirrored
    ``scatter_write`` costs exactly one ``scatter_write`` per copy —
    instrumented counts stay interpretable (replica overhead is a clean
    2x of every write-side counter).
    """

    def __init__(self, primary: RawFile, replica: RawFile) -> None:
        """Bind the two physical handles (both already open for writing)."""
        self.primary = primary
        self.replica = replica

    # -- streaming surface (mirrored) ---------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """Seek both handles; returns the primary's position."""
        pos = self.primary.seek(offset, whence)
        self.replica.seek(offset, whence)
        return pos

    def write(self, data: BufferLike) -> int:
        """Write ``data`` at both file pointers."""
        n = self.primary.write(data)
        self.replica.write(data)
        return n

    def write_zeros(self, n: int) -> int:
        """Write ``n`` zero bytes to both handles."""
        out = self.primary.write_zeros(n)
        self.replica.write_zeros(n)
        return out

    def truncate(self, size: int) -> None:
        """Truncate both copies to ``size``."""
        self.primary.truncate(size)
        self.replica.truncate(size)

    def flush(self) -> None:
        """Flush both copies."""
        self.primary.flush()
        self.replica.flush()

    def close(self) -> None:
        """Close both handles (replica first; primary close wins errors)."""
        self.replica.close()
        self.primary.close()

    # -- read-side surface (primary only) -----------------------------------

    def tell(self) -> int:
        """The primary's file-pointer position."""
        return self.primary.tell()

    def read(self, n: int = -1) -> bytes:
        """Read from the primary (the replica is write-only in this mode)."""
        return self.primary.read(n)

    def pread(self, offset: int, n: int) -> bytes:
        """Positioned read from the primary."""
        return self.primary.pread(offset, n)

    def preadv(self, offset: int, sizes: Sequence[int]) -> list[bytes]:
        """Contiguous scatter-read from the primary."""
        return self.primary.preadv(offset, sizes)

    def gather_read(self, requests: Sequence[tuple[int, int]]) -> list[bytes]:
        """Vectored read from the primary."""
        return self.primary.gather_read(requests)

    # -- positioned / vectored writes (mirrored) ----------------------------

    def pwrite(self, offset: int, data: BufferLike) -> int:
        """Positioned write to both copies."""
        n = self.primary.pwrite(offset, data)
        self.replica.pwrite(offset, data)
        return n

    def pwritev(self, offset: int, views: Sequence[BufferLike]) -> int:
        """Contiguous gather-write to both copies."""
        views = list(views)
        n = self.primary.pwritev(offset, views)
        self.replica.pwritev(offset, views)
        return n

    def scatter_write(self, fragments) -> int:
        """Vectored write to both copies (one call per copy)."""
        frags = list(fragments)
        n = self.primary.scatter_write(frags)
        self.replica.scatter_write(frags)
        return n
