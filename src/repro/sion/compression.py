"""Transparent per-task zlib compression (paper §6 roadmap).

The paper's Scalasca case study had to keep compression in the application
because SIONlib lacked it; §6 proposes integrating zlib transparently.
This module does exactly that: each task's logical stream is deflate-
compressed on the way into its chunks and inflated on the way out, with
sync-flush points after every ``fwrite`` so readers can decompress
incrementally without seeing the whole stream.
"""

from __future__ import annotations

import zlib

from repro.buffers import BufferLike, as_view
from repro.errors import SionUsageError


class ZlibWriter:
    """Streaming compressor for one task's writes.

    Accepts any buffer-protocol payload and feeds the view straight into
    zlib — the deflate output is the first (and only) new buffer the
    write path materializes on this route.
    """

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise SionUsageError(f"zlib level must be 0..9, got {level}")
        self._c = zlib.compressobj(level)
        self.raw_in = 0
        self.raw_out = 0
        self._finished = False

    def compress(self, data: BufferLike) -> bytes:
        """Compress one write; the result is immediately decodable."""
        if self._finished:
            raise SionUsageError("compressor already finalized")
        view = as_view(data)
        out = self._c.compress(view) + self._c.flush(zlib.Z_SYNC_FLUSH)
        self.raw_in += view.nbytes
        self.raw_out += len(out)
        return out

    def finish(self) -> bytes:
        """Emit the stream trailer; the writer is unusable afterwards."""
        if self._finished:
            return b""
        self._finished = True
        out = self._c.flush(zlib.Z_FINISH)
        self.raw_out += len(out)
        return out

    @property
    def ratio(self) -> float:
        """Compressed/uncompressed size so far (1.0 when nothing written)."""
        return self.raw_out / self.raw_in if self.raw_in else 1.0


class ZlibReader:
    """Streaming decompressor for one task's reads."""

    def __init__(self) -> None:
        self._d = zlib.decompressobj()
        self._buf = bytearray()
        self._source_done = False

    def feed(self, compressed: bytes) -> None:
        """Push compressed bytes from the chunk stream."""
        if compressed:
            self._buf.extend(self._d.decompress(compressed))

    def source_exhausted(self) -> None:
        """Signal that the chunk stream has no more bytes."""
        if not self._source_done:
            self._source_done = True
            self._buf.extend(self._d.flush())

    def available(self) -> int:
        """Decompressed bytes ready to be taken."""
        return len(self._buf)

    def take(self, n: int) -> bytes:
        """Pop up to ``n`` decompressed bytes."""
        if n < 0:
            raise SionUsageError("n must be non-negative")
        out = bytes(self._buf[:n])
        del self._buf[: len(out)]
        return out

    @property
    def exhausted(self) -> bool:
        """True when no more decompressed bytes can ever appear."""
        return self._source_done and not self._buf
