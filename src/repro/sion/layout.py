"""Chunk/block offset arithmetic with file-system block alignment.

This is the heart of the file organization (paper §3.1 and Fig. 2):

* every task owns one *chunk* per *block*;
* chunk allocations are rounded up to a multiple of the FS block size so no
  two tasks ever share an FS block (avoids write-lock false sharing);
* block ``b``'s chunk for task ``t`` starts at
  ``start_of_data + b * block_capacity + chunk_prefix[t]``;
* tasks can compute any chunk's address locally — growing into a new block
  needs **no communication**, only metadata accounting at close.

The same :class:`ChunkLayout` drives the real library, the serial tools,
and the simulated experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SionUsageError

#: Use the vectorized geometry computation from this many tasks upward;
#: below it the scalar reference implementation is both faster (no array
#: round-trip) and exercised by every small-world test.
_VECTOR_MIN_TASKS = 64

#: Per-value bound for the vectorized path (1 TiB per chunk / block): with
#: at most ``_VECTOR_MAX_TASKS`` tasks the round-up, the multiply back and
#: the whole-file cumsum all stay comfortably inside int64.  Larger values
#: (only seen in adversarial property tests) take the scalar big-int path.
_INT64_SAFE_MAX = 2**40
_VECTOR_MAX_TASKS = 2**20


def align_up(value: int, granularity: int) -> int:
    """Smallest multiple of ``granularity`` that is >= ``value``."""
    if granularity < 1:
        raise SionUsageError(f"alignment granularity must be positive: {granularity}")
    if value < 0:
        raise SionUsageError(f"cannot align a negative size: {value}")
    return ((value + granularity - 1) // granularity) * granularity


def scalar_chunk_geometry(
    chunksizes: list[int], fsblksize: int
) -> tuple[list[int], list[int], int]:
    """Reference implementation of the chunk geometry, one task at a time.

    Returns ``(aligned_sizes, chunk_prefix, block_capacity)``.  This is the
    paper's per-task arithmetic kept verbatim; the vectorized path in
    :class:`ChunkLayout` must match it element for element (property-tested
    in ``tests/sion/test_vectorized_equivalence.py``).
    """
    aligned = [max(align_up(c, fsblksize), fsblksize) for c in chunksizes]
    prefix: list[int] = []
    acc = 0
    for size in aligned:
        prefix.append(acc)
        acc += size
    return aligned, prefix, acc


def _vector_chunk_geometry(
    chunksizes: list[int], fsblksize: int
) -> tuple[list[int], list[int], int]:
    """ndarray fast path: whole-array round-up, max and prefix sum."""
    arr = np.asarray(chunksizes, dtype=np.int64)
    aligned = np.maximum((arr + (fsblksize - 1)) // fsblksize, 1) * fsblksize
    ends = np.cumsum(aligned)
    prefix = ends - aligned
    return aligned.tolist(), prefix.tolist(), int(ends[-1])


@dataclass
class ChunkLayout:
    """Resolved on-disk geometry of one physical file's chunk array.

    Parameters
    ----------
    fsblksize:
        Alignment granularity (the FS block size, or the user's override —
        using a value smaller than the true block size reintroduces the
        false sharing that Table 1 quantifies).
    chunksizes:
        Requested chunk size per local task, in bytes.  Each is rounded up
        to a whole number of FS blocks, with a minimum of one block (the
        paper notes SIONlib "writes at least one file-system block per
        task").
    metablock1_size:
        Bytes occupied by metablock 1; data starts at the next FS block
        boundary after it.
    """

    fsblksize: int
    chunksizes: list[int]
    metablock1_size: int
    aligned_sizes: list[int] = field(init=False)
    chunk_prefix: list[int] = field(init=False)
    block_capacity: int = field(init=False)
    start_of_data: int = field(init=False)

    def __post_init__(self) -> None:
        if self.fsblksize < 1:
            raise SionUsageError(f"fsblksize must be positive: {self.fsblksize}")
        if self.metablock1_size < 0:
            raise SionUsageError("metablock1_size must be non-negative")
        n = len(self.chunksizes)
        # min() is a single C pass; the generator-expression any() it
        # replaces dominated __post_init__ at large task counts.
        if n and min(self.chunksizes) < 0:
            raise SionUsageError("chunk sizes must be non-negative")
        if (
            _VECTOR_MIN_TASKS <= n <= _VECTOR_MAX_TASKS
            and self.fsblksize <= _INT64_SAFE_MAX
            and max(self.chunksizes) <= _INT64_SAFE_MAX
        ):
            geometry = _vector_chunk_geometry(self.chunksizes, self.fsblksize)
        else:
            geometry = scalar_chunk_geometry(self.chunksizes, self.fsblksize)
        self.aligned_sizes, self.chunk_prefix, self.block_capacity = geometry
        self.start_of_data = align_up(self.metablock1_size, self.fsblksize)

    @classmethod
    def from_metablock1(cls, mb1) -> "ChunkLayout":
        """Rebuild the layout of an existing file from its metablock 1.

        Uses the *stored* ``start_of_data`` (authoritative) rather than
        recomputing it, so readers stay correct even if a future writer
        changes the metablock encoding size.
        """
        lay = cls(mb1.fsblksize, list(mb1.chunksizes), 0)
        lay.start_of_data = mb1.start_of_data
        return lay

    # -- geometry -----------------------------------------------------------

    @property
    def ntasks(self) -> int:
        """Number of local tasks laid out in this file."""
        return len(self.chunksizes)

    def capacity(self, task: int) -> int:
        """Writable bytes in each of ``task``'s chunks (the aligned size).

        The usable capacity is the *allocated* (aligned) size: SIONlib
        allocates whole FS blocks, so writes may use the padding.
        """
        self._check_task(task)
        return self.aligned_sizes[task]

    def chunk_start(self, task: int, block: int) -> int:
        """Absolute file offset of ``task``'s chunk in ``block``."""
        self._check_task(task)
        if block < 0:
            raise SionUsageError(f"block must be non-negative: {block}")
        return (
            self.start_of_data
            + block * self.block_capacity
            + self.chunk_prefix[task]
        )

    def chunk_end(self, task: int, block: int) -> int:
        """Exclusive end offset of the chunk's allocation."""
        return self.chunk_start(task, block) + self.aligned_sizes[task]

    def block_start(self, block: int) -> int:
        """Absolute offset where ``block`` begins."""
        if block < 0:
            raise SionUsageError(f"block must be non-negative: {block}")
        return self.start_of_data + block * self.block_capacity

    def end_of_blocks(self, nblocks: int) -> int:
        """Offset one past the last allocated block (metablock 2 goes here)."""
        if nblocks < 0:
            raise SionUsageError("nblocks must be non-negative")
        return self.start_of_data + nblocks * self.block_capacity

    def locate(self, offset: int) -> tuple[int, int, int] | None:
        """Inverse mapping: file offset -> ``(task, block, pos_in_chunk)``.

        Returns ``None`` for offsets outside chunk data (metablock area).
        Used by the recovery scanner and by tests as the inverse of
        :meth:`chunk_start`.
        """
        if offset < self.start_of_data or self.block_capacity == 0:
            return None
        rel = offset - self.start_of_data
        block, in_block = divmod(rel, self.block_capacity)
        # Binary search over the prefix array.
        lo, hi = 0, self.ntasks - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.chunk_prefix[mid] <= in_block:
                lo = mid
            else:
                hi = mid - 1
        task = lo
        pos = in_block - self.chunk_prefix[task]
        if pos >= self.aligned_sizes[task]:  # pragma: no cover - padding gap
            return None
        return task, block, pos

    def read_requests(
        self, task: int, blocksizes: list[int], data_offset: int = 0
    ) -> list[tuple[int, int]]:
        """Complete ``(offset, size)`` request list of one task's stream.

        The fragment plan of collector-rank aggregation (ISSUE 4): a
        sender computes — purely locally, no communication — every
        positioned read that covers its recorded ``blocksizes``, so a
        collector can fetch all of its senders' data in **one**
        ``gather_read``.  ``data_offset`` skips per-chunk shadow headers.
        Empty blocks produce no request, matching the read-side
        :class:`~repro.sion.readwrite.TaskStream` plan exactly.
        """
        self._check_task(task)
        if data_offset < 0:
            raise SionUsageError("data_offset must be non-negative")
        return [
            (self.chunk_start(task, block) + data_offset, size)
            for block, size in enumerate(blocksizes)
            if size > 0
        ]

    def is_aligned(self, true_fsblksize: int) -> bool:
        """True when every chunk boundary falls on a ``true_fsblksize`` edge."""
        if true_fsblksize < 1:
            raise SionUsageError("true_fsblksize must be positive")
        if self.start_of_data % true_fsblksize:
            return False
        return all(
            (self.chunk_start(t, 0)) % true_fsblksize == 0 for t in range(self.ntasks)
        )

    # -- internals ------------------------------------------------------------

    def _check_task(self, task: int) -> None:
        if not 0 <= task < self.ntasks:
            raise SionUsageError(
                f"task {task} out of range for {self.ntasks} local tasks"
            )
