"""Rebuilding damaged multifiles: shadow headers and buddy replicas.

If an application dies before the collective close — premature
termination, quota violation, a lost node — metablock 2 is never
written and the multifile cannot be read.  Worse, a whole physical file
of the set may be gone (node-local storage, a corrupted stripe).  Two
write-time options fund two recovery paths:

* **Shadow headers** (``paropen(..., shadow=True)``, paper §6): every
  chunk starts with a 32-byte :class:`~repro.sion.format.ShadowHeader`
  recording how many bytes of that chunk were written as of the last
  shadow flush (automatic at every block boundary, at close, and
  whenever the application calls ``flush_shadow``).
  :func:`recover_multifile` scans those headers, rebuilds metablock 2
  *in place*, and patches the file back to a readable state.  Cheap
  (32 bytes per chunk), but it needs the file itself to survive.
* **Buddy replicas** (``paropen(..., buddy=True)``): every write was
  mirrored to a replica hosted on the partner group's name stem
  (:func:`~repro.sion.buddy.buddy_path`).  :func:`recover_multifile`
  rebuilds a **lost or torn physical file byte-identically** by copying
  its replica back.  Costs 2x the written bytes, survives the loss of
  an entire physical file.

The decision per physical file (also rendered as a table in
``docs/RESILIENCE.md``):

========================  =======================  =========================
primary file state        buddy replica intact     action
========================  =======================  =========================
metablock 2 intact        (any)                    nothing to do
missing / metablock 1     yes                      byte-copy from replica
unreadable
missing / metablock 1     no                       unrecoverable
unreadable
metablock 2 torn          yes                      byte-copy from replica
metablock 2 torn          no, shadow headers       in-place shadow rebuild
metablock 2 torn          no, no shadow headers    unrecoverable
========================  =======================  =========================

A fully intact replica is preferred over a shadow rebuild because the
copy is byte-identical to the unfaulted write, whereas a shadow rebuild
can only vouch for bytes up to each chunk's last shadow flush.
Unrecoverable states raise :class:`~repro.errors.SionMetadataLostError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import SionFormatError, SionMetadataLostError
from repro.sion.buddy import buddy_path
from repro.sion.constants import (
    BUDDY_SUFFIX,
    FLAG_BUDDY,
    FLAG_SHADOW,
    SHADOW_HEADER_SIZE,
)
from repro.sion.format import Metablock1, Metablock2, ShadowHeader
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import physical_path

#: Chunked-copy granularity of a buddy restore (bounds peak memory).
_COPY_CHUNK = 1 << 20


@dataclass
class RecoveryReport:
    """Outcome of scanning (and repairing) one multifile set.

    One report covers every physical file of the set.  ``files_intact``
    counts files that needed nothing; ``files_recovered`` counts files
    repaired by *either* path, of which ``files_rebuilt_from_buddy``
    were restored by byte-copying their buddy replica.  The task/block/
    byte counters aggregate what the repairs brought back:
    ``bytes_recovered`` counts **logical data bytes** (recorded chunk
    payload, excluding metablocks and shadow headers) — the number the
    ``resilience`` benchmark suite pins against the written volume.
    ``details`` holds one human-readable line per action taken.
    """

    nfiles: int = 0
    files_intact: int = 0
    files_recovered: int = 0
    files_rebuilt_from_buddy: int = 0
    tasks_recovered: int = 0
    blocks_recovered: int = 0
    bytes_recovered: int = 0
    details: list[str] = field(default_factory=list)

    def add(self, line: str) -> None:
        """Append one detail line to the report."""
        self.details.append(line)


def recover_multifile(
    path: str, backend: Backend | None = None, force: bool = False
) -> RecoveryReport:
    """Repair every damaged physical file of the multifile set at ``path``.

    Walks all physical files and applies the cheapest sufficient repair
    per file (see the module docstring's decision table): nothing, a
    byte-identical restore from the file's buddy replica, or an in-place
    metablock-2 reconstruction from shadow headers.

    Parameters
    ----------
    path:
        Path of physical file 0.  If that file itself is lost, the set
        geometry is bootstrapped from the buddy replica hosted at
        ``path + ".buddy"`` (buddy-mode sets keep file ``nfiles - 1``'s
        replica there, and every file's metablock 1 carries the set-wide
        geometry fields).
    backend:
        Storage backend (default: local POSIX files).
    force:
        Re-derive metablock 2 from the shadow headers even for files
        whose metablock 2 looks intact — a way to validate the shadow
        chain end to end.

    Returns
    -------
    RecoveryReport
        What was intact, what was repaired, and how.

    Raises
    ------
    SionMetadataLostError
        A damaged file has neither a usable shadow chain nor an intact
        buddy replica (see the decision table).
    """
    backend = backend if backend is not None else LocalBackend()
    report = RecoveryReport()

    mb1_0 = _bootstrap_geometry(path, backend, report)
    report.nfiles = mb1_0.nfiles

    for filenum in range(mb1_0.nfiles):
        fpath = physical_path(path, filenum)
        _recover_one(path, fpath, filenum, mb1_0.nfiles, backend, report, force)
    return report


def _bootstrap_geometry(
    path: str, backend: Backend, report: RecoveryReport
) -> Metablock1:
    """Learn the set geometry, surviving the loss of physical file 0.

    Every physical file (and every replica) carries the set-wide
    ``nfiles``/flags fields in its metablock 1, so any readable copy
    suffices.  File 0 is tried first; a buddy-mode set falls back to the
    replica hosted on file 0's stem (``path + ".buddy"`` — the replica
    of file ``nfiles - 1``, but geometry-wise interchangeable).
    """
    try:
        raw0 = backend.open(path, "rb")
        try:
            return Metablock1.decode_from(raw0)
        finally:
            raw0.close()
    except Exception as primary_exc:  # noqa: BLE001 - any unreadable state
        fallback = path + BUDDY_SUFFIX
        if not backend.exists(fallback):
            raise primary_exc
        raw = backend.open(fallback, "rb")
        try:
            mb1 = Metablock1.decode_from(raw)
        finally:
            raw.close()
        report.add(
            f"{path}: unreadable; set geometry bootstrapped from the "
            f"buddy replica {fallback}"
        )
        return mb1


def _recover_one(
    base: str,
    fpath: str,
    filenum: int,
    nfiles: int,
    backend: Backend,
    report: RecoveryReport,
    force: bool,
) -> None:
    """Inspect one physical file and apply the decision table to it."""
    mb1: Metablock1 | None = None
    if backend.exists(fpath):
        raw = backend.open(fpath, "rb")
        try:
            mb1 = Metablock1.decode_from(raw)
        except SionFormatError:
            mb1 = None
        finally:
            raw.close()

    if mb1 is None:
        # Missing file (or unreadable metablock 1): only a replica helps.
        if not _restore_from_buddy(base, fpath, filenum, nfiles, backend, report):
            raise SionMetadataLostError(
                f"{fpath}: physical file is missing or unreadable and no "
                "intact buddy replica exists; data is unrecoverable"
            )
        return

    intact = False
    if mb1.metablock2_offset > 0:
        raw = backend.open(fpath, "rb")
        try:
            Metablock2.decode_from(raw, mb1.metablock2_offset)
            intact = True
        except SionFormatError:
            intact = False
        finally:
            raw.close()
    if intact and not force:
        report.files_intact += 1
        report.add(f"{fpath}: metablock 2 intact, nothing to do")
        return

    # Torn close: prefer the byte-identical replica, then the shadow
    # chain.  ``force`` is a shadow-chain validation request, so it
    # skips the replica shortcut on purpose.
    if mb1.flags & FLAG_BUDDY and not force:
        if _restore_from_buddy(base, fpath, filenum, nfiles, backend, report):
            return
    if not mb1.flags & FLAG_SHADOW:
        raise SionMetadataLostError(
            f"{fpath}: metablock 2 missing and the file was written "
            "without shadow headers; data is unrecoverable"
        )
    _rebuild_from_shadows(fpath, mb1, backend, report)


def _restore_from_buddy(
    base: str,
    fpath: str,
    filenum: int,
    nfiles: int,
    backend: Backend,
    report: RecoveryReport,
) -> bool:
    """Byte-copy ``fpath`` back from its buddy replica, if fully intact.

    The replica qualifies only when both of its metablocks decode and it
    describes the right file — restoring a half-written replica would
    trade one damaged copy for another.  Returns True on success, False
    when no qualifying replica exists (callers then fall back or raise).
    """
    rpath = buddy_path(base, filenum, nfiles)
    if not backend.exists(rpath):
        return False
    raw = backend.open(rpath, "rb")
    try:
        try:
            mb1 = Metablock1.decode_from(raw)
            mb2 = Metablock2.decode_from(raw, mb1.metablock2_offset)
        except SionFormatError:
            return False
    finally:
        raw.close()
    if mb1.filenum != filenum or mb1.nfiles != nfiles:
        return False

    copied = _copy_file(backend, rpath, fpath)
    report.files_recovered += 1
    report.files_rebuilt_from_buddy += 1
    data_bytes = 0
    blocks = 0
    tasks = 0
    for sizes in mb2.blocksizes:
        nonzero = [s for s in sizes if s]
        data_bytes += sum(nonzero)
        blocks += len(nonzero)
        if nonzero:
            tasks += 1
    report.tasks_recovered += tasks
    report.blocks_recovered += blocks
    report.bytes_recovered += data_bytes
    report.add(
        f"{fpath}: restored byte-identically from buddy replica {rpath} "
        f"({copied} bytes on store, {data_bytes} logical data bytes)"
    )
    return True


def _copy_file(backend: Backend, src: str, dst: str) -> int:
    """Copy ``src`` over ``dst`` in bounded chunks; returns bytes copied."""
    size = backend.file_size(src)
    rsrc = backend.open(src, "rb")
    try:
        rdst = backend.open(dst, "w+b")
        try:
            off = 0
            while off < size:
                piece = rsrc.pread(off, min(_COPY_CHUNK, size - off))
                if not piece:
                    break
                rdst.pwrite(off, piece)
                off += len(piece)
            rdst.flush()
        finally:
            rdst.close()
    finally:
        rsrc.close()
    return size


def _rebuild_from_shadows(
    fpath: str, mb1: Metablock1, backend: Backend, report: RecoveryReport
) -> None:
    """Reconstruct metablock 2 in place from the per-chunk shadow chain."""
    raw = backend.open(fpath, "r+b")
    try:
        layout = ChunkLayout.from_metablock1(mb1)
        file_size = backend.file_size(fpath)
        blocksizes: list[list[int]] = []
        blocks_before = report.blocks_recovered
        for ltask in range(mb1.ntasks_local):
            sizes = _scan_task(raw, layout, ltask, file_size)
            blocksizes.append(sizes if sizes else [0])
            if sizes:
                report.tasks_recovered += 1
                report.blocks_recovered += len(sizes)
                report.bytes_recovered += sum(sizes)
        mb2 = Metablock2(blocksizes=blocksizes)
        offset = layout.end_of_blocks(mb2.maxblocks)
        raw.seek(offset)
        raw.write(mb2.encode())
        mb1.patch_metablock2_offset(raw, offset)
        raw.flush()
        report.files_recovered += 1
        report.add(
            f"{fpath}: rebuilt metablock 2 for {mb1.ntasks_local} tasks "
            f"({report.blocks_recovered - blocks_before} blocks)"
        )
    finally:
        raw.close()


def _scan_task(raw, layout: ChunkLayout, ltask: int, file_size: int) -> list[int]:
    """Walk a task's chunk chain, reading shadow headers until they stop.

    Header addresses are computable locally, so each probe is one
    positioned read — the scan never touches the file pointer.  The walk
    ends at the first missing, undecodable, or misattributed header
    (torn chain), and trailing zero-byte blocks — the open-but-unused
    current chunk — are trimmed.
    """
    sizes: list[int] = []
    block = 0
    while True:
        start = layout.chunk_start(ltask, block)
        if start + SHADOW_HEADER_SIZE > file_size:
            break
        hdr = ShadowHeader.decode(raw.pread(start, SHADOW_HEADER_SIZE))
        if hdr is None or hdr.ltask != ltask or hdr.block != block:
            break
        sizes.append(hdr.written)
        block += 1
    # A trailing zero-byte block is just the open-but-unused current chunk.
    while len(sizes) > 1 and sizes[-1] == 0:
        sizes.pop()
    return sizes
