"""Metablock-2 reconstruction after failures (paper §6 roadmap).

If an application dies before the collective close — premature termination,
quota violation — metablock 2 is never written and the multifile cannot be
read.  When the file was opened with ``shadow=True``, every chunk starts
with a 32-byte :class:`~repro.sion.format.ShadowHeader` recording how many
bytes of that chunk were written as of the last shadow flush (automatic at
every block boundary, at close, and whenever the application calls
``flush_shadow``).  :func:`recover_multifile` scans those headers, rebuilds
metablock 2, and patches the file back to a readable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.base import Backend
from repro.backends.localfs import LocalBackend
from repro.errors import SionFormatError, SionMetadataLostError
from repro.sion.constants import FLAG_SHADOW, SHADOW_HEADER_SIZE
from repro.sion.format import Metablock1, Metablock2, ShadowHeader
from repro.sion.layout import ChunkLayout
from repro.sion.mapping import physical_path


@dataclass
class RecoveryReport:
    """Outcome of scanning one multifile set."""

    nfiles: int = 0
    files_intact: int = 0
    files_recovered: int = 0
    tasks_recovered: int = 0
    blocks_recovered: int = 0
    bytes_recovered: int = 0
    details: list[str] = field(default_factory=list)

    def add(self, line: str) -> None:
        self.details.append(line)


def recover_multifile(
    path: str, backend: Backend | None = None, force: bool = False
) -> RecoveryReport:
    """Rebuild missing metablock 2 data for every physical file of a set.

    ``force=True`` re-derives metablock 2 from the shadow headers even when
    an intact one exists (useful to validate the shadow chain).  Raises
    :class:`SionMetadataLostError` if a damaged file lacks shadow headers.
    """
    backend = backend if backend is not None else LocalBackend()
    report = RecoveryReport()

    raw0 = backend.open(path, "rb")
    mb1_0 = Metablock1.decode_from(raw0)
    raw0.close()
    report.nfiles = mb1_0.nfiles

    for filenum in range(mb1_0.nfiles):
        fpath = physical_path(path, filenum)
        _recover_one(fpath, backend, report, force)
    return report


def _recover_one(
    fpath: str, backend: Backend, report: RecoveryReport, force: bool
) -> None:
    raw = backend.open(fpath, "r+b")
    try:
        mb1 = Metablock1.decode_from(raw)
        intact = False
        if mb1.metablock2_offset > 0:
            try:
                Metablock2.decode_from(raw, mb1.metablock2_offset)
                intact = True
            except SionFormatError:
                intact = False
        if intact and not force:
            report.files_intact += 1
            report.add(f"{fpath}: metablock 2 intact, nothing to do")
            return
        if not mb1.flags & FLAG_SHADOW:
            raise SionMetadataLostError(
                f"{fpath}: metablock 2 missing and the file was written "
                "without shadow headers; data is unrecoverable"
            )
        layout = ChunkLayout.from_metablock1(mb1)
        file_size = backend.file_size(fpath)
        blocksizes: list[list[int]] = []
        for ltask in range(mb1.ntasks_local):
            sizes = _scan_task(raw, layout, ltask, file_size)
            blocksizes.append(sizes if sizes else [0])
            if sizes:
                report.tasks_recovered += 1
                report.blocks_recovered += len(sizes)
                report.bytes_recovered += sum(sizes)
        mb2 = Metablock2(blocksizes=blocksizes)
        offset = layout.end_of_blocks(mb2.maxblocks)
        raw.seek(offset)
        raw.write(mb2.encode())
        mb1.patch_metablock2_offset(raw, offset)
        raw.flush()
        report.files_recovered += 1
        report.add(
            f"{fpath}: rebuilt metablock 2 for {mb1.ntasks_local} tasks "
            f"({report.blocks_recovered} blocks)"
        )
    finally:
        raw.close()


def _scan_task(raw, layout: ChunkLayout, ltask: int, file_size: int) -> list[int]:
    """Walk a task's chunk chain, reading shadow headers until they stop.

    Header addresses are computable locally, so each probe is one
    positioned read — the scan never touches the file pointer.
    """
    sizes: list[int] = []
    block = 0
    while True:
        start = layout.chunk_start(ltask, block)
        if start + SHADOW_HEADER_SIZE > file_size:
            break
        hdr = ShadowHeader.decode(raw.pread(start, SHADOW_HEADER_SIZE))
        if hdr is None or hdr.ltask != ltask or hdr.block != block:
            break
        sizes.append(hdr.written)
        block += 1
    # A trailing zero-byte block is just the open-but-unused current chunk.
    while len(sizes) > 1 and sizes[-1] == 0:
        sizes.pop()
    return sizes
