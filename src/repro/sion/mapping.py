"""Task-to-physical-file mapping (paper §3.1, Fig. 2d).

A multifile may be backed by several physical files; every task lives in
exactly one.  The default *blocked* mapping keeps ranks contiguous (e.g.
one physical file per Blue Gene I/O node, as the paper suggests); a
*round-robin* mapping interleaves, and a *custom* mapping accepts an
explicit rank -> file table.

The assignment is stored as two flat per-rank arrays (``files`` and
``lranks``) built with whole-array operations, so constructing or
reconstructing the mapping of a 256k-task world costs milliseconds rather
than the seconds the former tuple-of-pairs table needed.  The standard
kinds are cached: in an in-process SPMD world every rank asks for the same
mapping, and recomputing it per rank made the collective open O(n²).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np

from repro.errors import SionUsageError
from repro.sion.constants import (
    MAPPING_BLOCKED,
    MAPPING_CUSTOM,
    MAPPING_ROUNDROBIN,
    MULTIFILE_SUFFIX,
)


@dataclass(frozen=True)
class TaskMapping:
    """Immutable assignment of ``ntasks`` global ranks to ``nfiles`` files.

    ``files[rank]`` is the physical file index and ``lranks[rank]`` the
    rank's index within that file's chunk array.
    """

    ntasks: int
    nfiles: int
    kind: int
    files: tuple[int, ...]  # global rank -> file
    lranks: tuple[int, ...]  # global rank -> local rank

    # -- constructors ---------------------------------------------------------

    @classmethod
    def blocked(cls, ntasks: int, nfiles: int) -> "TaskMapping":
        """Contiguous rank ranges per file, sizes balanced within one."""
        _check_counts(ntasks, nfiles)
        return _blocked_cached(ntasks, nfiles)

    @classmethod
    def roundrobin(cls, ntasks: int, nfiles: int) -> "TaskMapping":
        """Rank ``r`` goes to file ``r % nfiles``."""
        _check_counts(ntasks, nfiles)
        return _roundrobin_cached(ntasks, nfiles)

    @classmethod
    def custom(cls, file_of_task: list[int]) -> "TaskMapping":
        """Explicit file index per global rank; local ranks follow rank order."""
        if not len(file_of_task):
            raise SionUsageError("custom mapping needs at least one task")
        files = np.asarray(file_of_task, dtype=np.int64)
        if int(files.min()) < 0:
            raise SionUsageError("file indices must be non-negative")
        ntasks = int(files.size)
        nfiles = int(files.max()) + 1
        counts = np.bincount(files, minlength=nfiles)
        if not counts.all():
            missing = np.flatnonzero(counts == 0).tolist()
            raise SionUsageError(f"custom mapping leaves files empty: {missing}")
        # Local ranks follow global-rank order within each file: group the
        # ranks by file (stable), then number each group from its offset.
        order = np.argsort(files, kind="stable")
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        lranks = np.empty(ntasks, dtype=np.int64)
        lranks[order] = np.arange(ntasks) - np.repeat(offsets, counts)
        return cls(
            ntasks,
            nfiles,
            MAPPING_CUSTOM,
            tuple(files.tolist()),
            tuple(lranks.tolist()),
        )

    @classmethod
    def create(
        cls, ntasks: int, nfiles: int, kind: "str | list[int]" = "blocked"
    ) -> "TaskMapping":
        """Factory from a kind name or an explicit file-per-task list."""
        if isinstance(kind, list):
            m = cls.custom(kind)
            if m.ntasks != ntasks or m.nfiles != nfiles:
                raise SionUsageError(
                    f"custom mapping shape ({m.ntasks} tasks, {m.nfiles} files) "
                    f"does not match requested ({ntasks}, {nfiles})"
                )
            return m
        if kind == "blocked":
            return cls.blocked(ntasks, nfiles)
        if kind == "roundrobin":
            return cls.roundrobin(ntasks, nfiles)
        raise SionUsageError(
            f"unknown mapping kind {kind!r}; use 'blocked', 'roundrobin' or a list"
        )

    @classmethod
    def from_kind_code(
        cls,
        ntasks: int,
        nfiles: int,
        kind_code: int,
        table: list[tuple[int, int]] | None = None,
    ) -> "TaskMapping":
        """Rebuild from metablock-1 fields (standard kinds need no table)."""
        if kind_code == MAPPING_BLOCKED:
            return cls.blocked(ntasks, nfiles)
        if kind_code == MAPPING_ROUNDROBIN:
            return cls.roundrobin(ntasks, nfiles)
        if kind_code == MAPPING_CUSTOM:
            if not table:
                raise SionUsageError("custom mapping requires the stored table")
            files, lranks = zip(*table)
            return cls(ntasks, nfiles, MAPPING_CUSTOM, tuple(files), tuple(lranks))
        raise SionUsageError(f"unknown mapping kind code {kind_code}")

    # -- queries -----------------------------------------------------------------

    @cached_property
    def table(self) -> tuple[tuple[int, int], ...]:
        """Global rank -> ``(file, local rank)`` pairs (compatibility view)."""
        return tuple(zip(self.files, self.lranks))

    def table_pairs(self) -> list[tuple[int, int]]:
        """The mapping table as the list of pairs metablock 1 encodes."""
        return list(self.table)

    def file_of(self, rank: int) -> int:
        """Physical file index holding ``rank``'s chunks."""
        self._check_rank(rank)
        return self.files[rank]

    def local_rank(self, rank: int) -> int:
        """Rank's index within its physical file's chunk array."""
        self._check_rank(rank)
        return self.lranks[rank]

    def tasks_of_file(self, filenum: int) -> list[int]:
        """Global ranks stored in file ``filenum``, in local-rank order."""
        if not 0 <= filenum < self.nfiles:
            raise SionUsageError(f"file {filenum} out of range ({self.nfiles})")
        # Ranks ascend with local rank by construction, so the positional
        # scan is already local-rank ordered.
        return np.flatnonzero(self._files_array == filenum).tolist()

    def ntasks_of_file(self, filenum: int) -> int:
        """Number of tasks mapped to ``filenum``."""
        return len(self.tasks_of_file(filenum))

    # -- internals ----------------------------------------------------------------

    @cached_property
    def _files_array(self) -> np.ndarray:
        return np.asarray(self.files, dtype=np.int64)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.ntasks:
            raise SionUsageError(f"rank {rank} out of range ({self.ntasks} tasks)")


@lru_cache(maxsize=128)
def _blocked_cached(ntasks: int, nfiles: int) -> TaskMapping:
    base, extra = divmod(ntasks, nfiles)
    counts = np.full(nfiles, base, dtype=np.int64)
    counts[:extra] += 1
    files = np.repeat(np.arange(nfiles), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    lranks = np.arange(ntasks) - offsets[files]
    return TaskMapping(
        ntasks,
        nfiles,
        MAPPING_BLOCKED,
        tuple(files.tolist()),
        tuple(lranks.tolist()),
    )


@lru_cache(maxsize=128)
def _roundrobin_cached(ntasks: int, nfiles: int) -> TaskMapping:
    ranks = np.arange(ntasks)
    return TaskMapping(
        ntasks,
        nfiles,
        MAPPING_ROUNDROBIN,
        tuple((ranks % nfiles).tolist()),
        tuple((ranks // nfiles).tolist()),
    )


@dataclass(frozen=True)
class ReadPartition:
    """Contiguous assignment of ``nwriters`` task streams to ``nreaders``.

    The multifile is a portable container: its metadata lives in the file,
    not in the job, so a reader world of *any* size may come back later.
    A partition gives reader ``r`` the contiguous writer-rank range
    ``[starts[r], starts[r] + counts[r])``; concatenating every reader's
    logical stream in reader order reproduces the writer-order
    concatenation byte for byte.  Like :class:`TaskMapping` the partition
    is stored as flat per-reader arrays built with whole-array operations
    and the balanced kind is cached, so re-deriving the partition of a
    256k-stream multifile per rank costs microseconds.

    More readers than writers is legal: the surplus readers own empty
    ranges (an oversized analysis job must not crash on a small file).

    :meth:`balanced` raises :class:`~repro.errors.SionUsageError` when
    either count is below one.

    Example::

        part = ReadPartition.balanced(nwriters=4096, nreaders=32)
        part.writers_of(0)      # range(0, 128)
        part.reader_of(4095)    # 31
    """

    nwriters: int
    nreaders: int
    starts: tuple[int, ...]  # reader -> first writer task of its slice
    counts: tuple[int, ...]  # reader -> number of writer tasks

    @classmethod
    def balanced(cls, nwriters: int, nreaders: int) -> "ReadPartition":
        """Balanced contiguous slices (earlier readers take the remainder)."""
        if nwriters < 1:
            raise SionUsageError(f"nwriters must be >= 1, got {nwriters}")
        if nreaders < 1:
            raise SionUsageError(f"nreaders must be >= 1, got {nreaders}")
        return _balanced_partition_cached(nwriters, nreaders)

    # -- queries -------------------------------------------------------------

    def writers_of(self, reader: int) -> range:
        """Writer global ranks consumed by ``reader``, in stream order."""
        self._check_reader(reader)
        start = self.starts[reader]
        return range(start, start + self.counts[reader])

    def reader_of(self, writer: int) -> int:
        """The reader whose slice contains writer task ``writer``."""
        if not 0 <= writer < self.nwriters:
            raise SionUsageError(
                f"writer {writer} out of range ({self.nwriters} writers)"
            )
        return int(
            np.searchsorted(self._starts_array, writer, side="right") - 1
        )

    def count_of(self, reader: int) -> int:
        """Number of writer streams assigned to ``reader``."""
        self._check_reader(reader)
        return self.counts[reader]

    # -- internals -----------------------------------------------------------

    @cached_property
    def _starts_array(self) -> np.ndarray:
        return np.asarray(self.starts, dtype=np.int64)

    def _check_reader(self, reader: int) -> None:
        if not 0 <= reader < self.nreaders:
            raise SionUsageError(
                f"reader {reader} out of range ({self.nreaders} readers)"
            )


@lru_cache(maxsize=128)
def _balanced_partition_cached(nwriters: int, nreaders: int) -> ReadPartition:
    base, extra = divmod(nwriters, nreaders)
    counts = np.full(nreaders, base, dtype=np.int64)
    counts[:extra] += 1
    ends = np.cumsum(counts)
    starts = ends - counts
    return ReadPartition(
        nwriters,
        nreaders,
        tuple(starts.tolist()),
        tuple(counts.tolist()),
    )


def physical_path(base: str, filenum: int) -> str:
    """Path of physical file ``filenum`` in a multifile set.

    File 0 keeps the user's path; siblings get a numeric suffix
    (``out.sion``, ``out.sion.000001``, ...).
    """
    if filenum < 0:
        raise SionUsageError(f"filenum must be non-negative: {filenum}")
    if filenum == 0:
        return base
    return base + MULTIFILE_SUFFIX.format(filenum)


def _check_counts(ntasks: int, nfiles: int) -> None:
    if ntasks < 1:
        raise SionUsageError(f"ntasks must be >= 1, got {ntasks}")
    if nfiles < 1:
        raise SionUsageError(f"nfiles must be >= 1, got {nfiles}")
    if nfiles > ntasks:
        raise SionUsageError(
            f"cannot use more physical files ({nfiles}) than tasks ({ntasks})"
        )
