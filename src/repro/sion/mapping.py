"""Task-to-physical-file mapping (paper §3.1, Fig. 2d).

A multifile may be backed by several physical files; every task lives in
exactly one.  The default *blocked* mapping keeps ranks contiguous (e.g.
one physical file per Blue Gene I/O node, as the paper suggests); a
*round-robin* mapping interleaves, and a *custom* mapping accepts an
explicit rank -> file table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SionUsageError
from repro.sion.constants import (
    MAPPING_BLOCKED,
    MAPPING_CUSTOM,
    MAPPING_ROUNDROBIN,
    MULTIFILE_SUFFIX,
)


@dataclass(frozen=True)
class TaskMapping:
    """Immutable assignment of ``ntasks`` global ranks to ``nfiles`` files."""

    ntasks: int
    nfiles: int
    kind: int
    table: tuple[tuple[int, int], ...]  # global rank -> (file, local rank)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def blocked(cls, ntasks: int, nfiles: int) -> "TaskMapping":
        """Contiguous rank ranges per file, sizes balanced within one."""
        _check_counts(ntasks, nfiles)
        base, extra = divmod(ntasks, nfiles)
        table: list[tuple[int, int]] = []
        rank = 0
        for f in range(nfiles):
            span = base + (1 if f < extra else 0)
            for lrank in range(span):
                table.append((f, lrank))
                rank += 1
        return cls(ntasks, nfiles, MAPPING_BLOCKED, tuple(table))

    @classmethod
    def roundrobin(cls, ntasks: int, nfiles: int) -> "TaskMapping":
        """Rank ``r`` goes to file ``r % nfiles``."""
        _check_counts(ntasks, nfiles)
        counters = [0] * nfiles
        table: list[tuple[int, int]] = []
        for r in range(ntasks):
            f = r % nfiles
            table.append((f, counters[f]))
            counters[f] += 1
        return cls(ntasks, nfiles, MAPPING_ROUNDROBIN, tuple(table))

    @classmethod
    def custom(cls, file_of_task: list[int]) -> "TaskMapping":
        """Explicit file index per global rank; local ranks follow rank order."""
        if not file_of_task:
            raise SionUsageError("custom mapping needs at least one task")
        nfiles = max(file_of_task) + 1
        if min(file_of_task) < 0:
            raise SionUsageError("file indices must be non-negative")
        used = set(file_of_task)
        if used != set(range(nfiles)):
            missing = sorted(set(range(nfiles)) - used)
            raise SionUsageError(f"custom mapping leaves files empty: {missing}")
        counters = [0] * nfiles
        table: list[tuple[int, int]] = []
        for f in file_of_task:
            table.append((f, counters[f]))
            counters[f] += 1
        return cls(len(file_of_task), nfiles, MAPPING_CUSTOM, tuple(table))

    @classmethod
    def create(
        cls, ntasks: int, nfiles: int, kind: "str | list[int]" = "blocked"
    ) -> "TaskMapping":
        """Factory from a kind name or an explicit file-per-task list."""
        if isinstance(kind, list):
            m = cls.custom(kind)
            if m.ntasks != ntasks or m.nfiles != nfiles:
                raise SionUsageError(
                    f"custom mapping shape ({m.ntasks} tasks, {m.nfiles} files) "
                    f"does not match requested ({ntasks}, {nfiles})"
                )
            return m
        if kind == "blocked":
            return cls.blocked(ntasks, nfiles)
        if kind == "roundrobin":
            return cls.roundrobin(ntasks, nfiles)
        raise SionUsageError(
            f"unknown mapping kind {kind!r}; use 'blocked', 'roundrobin' or a list"
        )

    @classmethod
    def from_kind_code(
        cls,
        ntasks: int,
        nfiles: int,
        kind_code: int,
        table: list[tuple[int, int]] | None = None,
    ) -> "TaskMapping":
        """Rebuild from metablock-1 fields (standard kinds need no table)."""
        if kind_code == MAPPING_BLOCKED:
            return cls.blocked(ntasks, nfiles)
        if kind_code == MAPPING_ROUNDROBIN:
            return cls.roundrobin(ntasks, nfiles)
        if kind_code == MAPPING_CUSTOM:
            if not table:
                raise SionUsageError("custom mapping requires the stored table")
            return cls(ntasks, nfiles, MAPPING_CUSTOM, tuple(table))
        raise SionUsageError(f"unknown mapping kind code {kind_code}")

    # -- queries -----------------------------------------------------------------

    def file_of(self, rank: int) -> int:
        """Physical file index holding ``rank``'s chunks."""
        self._check_rank(rank)
        return self.table[rank][0]

    def local_rank(self, rank: int) -> int:
        """Rank's index within its physical file's chunk array."""
        self._check_rank(rank)
        return self.table[rank][1]

    def tasks_of_file(self, filenum: int) -> list[int]:
        """Global ranks stored in file ``filenum``, in local-rank order."""
        if not 0 <= filenum < self.nfiles:
            raise SionUsageError(f"file {filenum} out of range ({self.nfiles})")
        members = [(lr, r) for r, (f, lr) in enumerate(self.table) if f == filenum]
        return [r for _, r in sorted(members)]

    def ntasks_of_file(self, filenum: int) -> int:
        """Number of tasks mapped to ``filenum``."""
        return len(self.tasks_of_file(filenum))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.ntasks:
            raise SionUsageError(f"rank {rank} out of range ({self.ntasks} tasks)")


def physical_path(base: str, filenum: int) -> str:
    """Path of physical file ``filenum`` in a multifile set.

    File 0 keeps the user's path; siblings get a numeric suffix
    (``out.sion``, ``out.sion.000001``, ...).
    """
    if filenum < 0:
        raise SionUsageError(f"filenum must be non-negative: {filenum}")
    if filenum == 0:
        return base
    return base + MULTIFILE_SUFFIX.format(filenum)


def _check_counts(ntasks: int, nfiles: int) -> None:
    if ntasks < 1:
        raise SionUsageError(f"ntasks must be >= 1, got {ntasks}")
    if nfiles < 1:
        raise SionUsageError(f"nfiles must be >= 1, got {nfiles}")
    if nfiles > ntasks:
        raise SionUsageError(
            f"cannot use more physical files ({nfiles}) than tasks ({ntasks})"
        )
