"""Metadata-contention models.

The paper's Figure 3 shows that creating tens of thousands of files in one
directory serializes: on GPFS the file-system blocks holding the directory
i-node are lock-protected, so concurrent creates queue on the directory
lock; on Lustre all namespace operations queue on the dedicated metadata
server (MDS).  Both reduce to a FIFO service station whose per-operation
service time may grow with the number of entries already in the directory
(hash-chain and journal effects).

:class:`FifoMetadataService` integrates with the event engine: submit an
operation, receive a completion callback at its virtual finish time.
:func:`batch_completion_time` gives the closed form used by property tests.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Callable, Deque

from repro.fs.events import Engine


@dataclass(frozen=True)
class MetadataOp:
    """One namespace operation issued by a client task."""

    kind: str  # "create" | "open" | "stat" | "close" | "unlink" | "mkdir"
    path: str
    task: int = 0


@dataclass
class MetadataCosts:
    """Per-operation service times (seconds) for one metadata domain.

    ``load_factor`` adds ``load_factor * queue_depth`` seconds to each
    operation, modelling journal pressure when thousands of operations
    arrive at once (visible as super-linear growth on Jaguar's MDS).
    ``dirsize_factor`` adds ``dirsize_factor * current_directory_entries``,
    modelling hash-chain lookup growth in huge directories.
    """

    create: float = 1e-3
    open: float = 1e-4
    stat: float = 5e-5
    close: float = 2e-5
    unlink: float = 5e-4
    mkdir: float = 1e-3
    load_factor: float = 0.0
    dirsize_factor: float = 0.0

    def base_time(self, kind: str) -> float:
        try:
            return float(getattr(self, kind))
        except AttributeError:
            raise ValueError(f"unknown metadata op kind: {kind!r}") from None


@dataclass
class _Pending:
    op: MetadataOp
    callback: Callable[[float, MetadataOp], None] | None
    enqueue_time: float


@dataclass
class FifoMetadataService:
    """A serialized metadata domain (directory lock or MDS queue).

    Operations are served one at a time in arrival order.  ``dir_entries``
    tracks how many files the domain's directory holds so the
    ``dirsize_factor`` term can grow lookup costs as the directory fills.
    """

    engine: Engine
    costs: MetadataCosts
    name: str = "meta"
    dir_entries: int = 0
    _queue: Deque[_Pending] = field(default_factory=collections.deque)
    _busy: bool = False
    ops_served: int = 0
    busy_time: float = 0.0

    def submit(
        self,
        op: MetadataOp,
        callback: Callable[[float, MetadataOp], None] | None = None,
    ) -> None:
        """Enqueue ``op``; ``callback(finish_time, op)`` fires at completion."""
        self._queue.append(_Pending(op, callback, self.engine.now))
        if not self._busy:
            self._busy = True
            self.engine.schedule_in(0.0, self._serve_next)

    def service_time(self, kind: str) -> float:
        """Virtual seconds the next ``kind`` operation will occupy the server."""
        t = self.costs.base_time(kind)
        t += self.costs.load_factor * len(self._queue)
        t += self.costs.dirsize_factor * self.dir_entries
        return t

    # -- internals ----------------------------------------------------------

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        pending = self._queue.popleft()
        dt = self.service_time(pending.op.kind)
        self.engine.schedule_in(dt, self._finish, pending, dt)

    def _finish(self, pending: _Pending, dt: float) -> None:
        self.ops_served += 1
        self.busy_time += dt
        if pending.op.kind == "create":
            self.dir_entries += 1
        elif pending.op.kind == "unlink" and self.dir_entries > 0:
            self.dir_entries -= 1
        if pending.callback is not None:
            pending.callback(self.engine.now, pending.op)
        self._serve_next()


def batch_completion_time(
    n_ops: int, costs: MetadataCosts, kind: str = "create", initial_entries: int = 0
) -> float:
    """Closed-form finish time of ``n_ops`` simultaneous operations.

    Matches :class:`FifoMetadataService` when all operations arrive at t=0:
    the i-th served operation (0-based) sees ``n_ops - 1 - i`` queued behind
    it and ``initial_entries + created_so_far`` directory entries.
    """
    if n_ops < 0:
        raise ValueError("n_ops must be non-negative")
    base = costs.base_time(kind)
    total = 0.0
    entries = initial_entries
    for i in range(n_ops):
        queued = n_ops - 1 - i
        total += base + costs.load_factor * queued + costs.dirsize_factor * entries
        if kind == "create":
            entries += 1
    return total


def batch_completion_time_fast(
    n_ops: int, costs: MetadataCosts, kind: str = "create", initial_entries: int = 0
) -> float:
    """O(1) version of :func:`batch_completion_time` (arithmetic series)."""
    if n_ops < 0:
        raise ValueError("n_ops must be non-negative")
    base = costs.base_time(kind)
    total = n_ops * base
    # sum of queue depths: (n-1) + (n-2) + ... + 0
    total += costs.load_factor * (n_ops * (n_ops - 1) / 2)
    if kind == "create":
        # entries grow 0,1,2,... on top of the initial count
        total += costs.dirsize_factor * (
            n_ops * initial_entries + n_ops * (n_ops - 1) / 2
        )
    else:
        total += costs.dirsize_factor * n_ops * initial_entries
    return total
