"""Client-side read caching: the analytic model and the real shared cache.

On Jaguar the paper observed read bandwidths *above* the file system's
40 GB/s peak for large task counts (Fig. 5b) and attributed them to caching:
when the working set was recently written by the same nodes, part of each
read is served from client page caches at memory speed.

Two layers live here:

* :class:`ClientCacheModel` — the original analytic model: the fraction
  of a dataset still resident is ``hit_efficiency * min(1,
  aggregate_cache / data_bytes)``; the effective bandwidth is the
  harmonic combination of the cache path and the disk path.
* :class:`ChunkCache` — a *real* shared LRU chunk cache with a
  configurable byte budget, per-entry generation tags keyed on
  metablock identity (the read gateway in :mod:`repro.serve` assigns
  one generation per opened container and drops it when the container
  is re-sealed), and hit/miss/eviction/bytes-served telemetry.  The
  block-granular read-through adapter over backend file handles lives
  in :class:`~repro.backends.caching.CachingRawFile`, so a warm
  working set never reaches the store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class ClientCacheModel:
    """Aggregate page-cache of the participating compute nodes."""

    bytes_per_node: float
    cache_bw_per_node: float  # MB/s of local page-cache reads
    hit_efficiency: float = 1.0  # fraction of resident data actually re-read

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_efficiency <= 1.0:
            raise ValueError("hit_efficiency must be in [0, 1]")
        if self.bytes_per_node < 0 or self.cache_bw_per_node < 0:
            raise ValueError("cache sizes/bandwidths must be non-negative")

    def aggregate_cache_bytes(self, n_nodes: int) -> float:
        """Total cache capacity across ``n_nodes``."""
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        return self.bytes_per_node * n_nodes

    def hit_fraction(self, data_bytes: float, n_nodes: int) -> float:
        """Fraction of a read served from cache right after writing it."""
        if data_bytes <= 0:
            return self.hit_efficiency if n_nodes > 0 else 0.0
        resident = min(1.0, self.aggregate_cache_bytes(n_nodes) / data_bytes)
        return self.hit_efficiency * resident

    def effective_read_bandwidth(
        self, disk_bw: float, data_bytes: float, n_nodes: int
    ) -> float:
        """Observed read bandwidth mixing cache hits and disk misses.

        Time to read D bytes = hit*D / cache_bw + (1-hit)*D / disk_bw, so the
        apparent bandwidth is the weighted harmonic mean.  With a warm cache
        this exceeds ``disk_bw`` — the paper's >peak artifact.
        """
        if disk_bw <= 0:
            raise ValueError("disk_bw must be positive")
        hit = self.hit_fraction(data_bytes, n_nodes)
        cache_bw = self.cache_bw_per_node * max(n_nodes, 1)
        if cache_bw <= 0:
            return disk_bw
        denom = hit / cache_bw + (1.0 - hit) / disk_bw
        if denom <= 0:
            return cache_bw
        return 1.0 / denom


#: A cache that never hits — used for the GPFS profile, where the paper
#: sized datasets (1 TB) specifically to defeat caching.
NO_CACHE = ClientCacheModel(bytes_per_node=0.0, cache_bw_per_node=0.0, hit_efficiency=0.0)


# ---------------------------------------------------------------------------
# The real shared chunk cache.

#: Default cache-block granularity: small enough that a ranged record
#: read does not drag whole chunks in, large enough to batch fragments.
DEFAULT_CACHE_BLOCK = 64 * 1024

#: Sentinel distinguishing "entry absent" from a cached empty block
#: (a block at EOF legitimately caches as ``b""``).
_MISSING = object()


@dataclass
class CacheStats:
    """Telemetry of one :class:`ChunkCache` (mutated under the cache lock).

    ``bytes_served`` counts payload delivered from cached entries (the
    Fig. 5b above-peak path); ``bytes_fetched`` counts payload that had
    to come from the store to fill misses.  ``invalidations`` counts
    entries dropped by generation (container re-sealed), ``evictions``
    entries dropped by LRU pressure against the byte budget.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0  # single entries larger than the whole budget
    bytes_served: int = 0
    bytes_fetched: int = 0
    bytes_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view for metrics, stats endpoints, and assertions."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejected": self.rejected,
            "bytes_served": self.bytes_served,
            "bytes_fetched": self.bytes_fetched,
            "bytes_evicted": self.bytes_evicted,
            "hit_rate": self.hit_rate,
        }


class ChunkCache:
    """Shared LRU chunk/metadata cache with a byte budget.

    Entries are keyed ``(generation, path, block_index)``: the *generation*
    is an opaque tag the owner derives from metablock identity (see
    :meth:`repro.serve.ReadGateway.open_container`), so a re-sealed
    container gets a fresh generation and its stale blocks can be dropped
    wholesale with :meth:`drop_generation` — cached bytes of an old seal
    are unreachable the moment the generation retires.

    Thread-safe: one lock guards the entry table and the statistics, so
    the cache may be shared by the asyncio gateway and by SPMD rank
    threads simultaneously.
    """

    def __init__(self, capacity_bytes: int, block_size: int = DEFAULT_CACHE_BLOCK) -> None:
        """Create a cache holding at most ``capacity_bytes`` of payload.

        ``block_size`` is the granularity
        :class:`~repro.backends.caching.CachingRawFile` splits reads
        at; the cache itself only stores whatever values it is
        handed.  ``capacity_bytes=0`` disables caching (every lookup
        misses, nothing is retained) without changing any code path.
        """
        if capacity_bytes < 0:
            raise ReproError(f"capacity_bytes must be >= 0, got {capacity_bytes}")
        if block_size < 1:
            raise ReproError(f"block_size must be >= 1, got {block_size}")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._used = 0
        self._lock = threading.RLock()

    # -- capacity ------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Payload bytes currently resident."""
        with self._lock:
            return self._used

    @property
    def entry_count(self) -> int:
        """Number of resident entries."""
        with self._lock:
            return len(self._entries)

    # -- the cache protocol ----------------------------------------------------

    def get(self, key: tuple) -> "bytes | None":
        """Look up ``key``; a hit refreshes its LRU position.

        Returns the cached payload (possibly ``b""`` for a block at EOF)
        or ``None`` on a miss.
        """
        with self._lock:
            self.stats.lookups += 1
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.bytes_served += len(value)  # type: ignore[arg-type]
            return value  # type: ignore[return-value]

    def put(self, key: tuple, data: bytes) -> None:
        """Insert ``data`` under ``key``, evicting LRU entries to fit.

        An entry larger than the entire budget is rejected (counted in
        ``stats.rejected``) instead of flushing the whole cache for one
        unreusable value.  Re-inserting an existing key replaces it.
        """
        size = len(data)
        with self._lock:
            if size > self.capacity_bytes:
                self.stats.rejected += 1
                return
            old = self._entries.pop(key, _MISSING)
            if old is not _MISSING:
                self._used -= len(old)  # type: ignore[arg-type]
            self._entries[key] = bytes(data)
            self._used += size
            self.stats.insertions += 1
            self.stats.bytes_fetched += size
            while self._used > self.capacity_bytes:
                _, victim = self._entries.popitem(last=False)
                self._used -= len(victim)
                self.stats.evictions += 1
                self.stats.bytes_evicted += len(victim)

    def drop_generation(self, generation: object) -> int:
        """Invalidate every entry tagged ``generation``; returns the count.

        Called by the gateway when a container's metablock identity
        changes (the file was re-sealed): the retired generation's blocks
        must never be served again.
        """
        with self._lock:
            stale = [k for k in self._entries if k[0] == generation]
            for k in stale:
                self._used -= len(self._entries.pop(k))
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._used = 0
            self.stats.invalidations += n
            return n

    def snapshot(self) -> dict[str, float]:
        """Statistics plus current occupancy, atomically."""
        with self._lock:
            snap = self.stats.snapshot()
            snap["used_bytes"] = self._used
            snap["entry_count"] = len(self._entries)
            snap["capacity_bytes"] = self.capacity_bytes
            return snap
