"""Client-side read-cache model.

On Jaguar the paper observed read bandwidths *above* the file system's
40 GB/s peak for large task counts (Fig. 5b) and attributed them to caching:
when the working set was recently written by the same nodes, part of each
read is served from client page caches at memory speed.

The model keeps it simple and explicit: the fraction of a dataset still
resident is ``hit_efficiency * min(1, aggregate_cache / data_bytes)``; the
effective bandwidth is the harmonic combination of the cache path and the
disk path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClientCacheModel:
    """Aggregate page-cache of the participating compute nodes."""

    bytes_per_node: float
    cache_bw_per_node: float  # MB/s of local page-cache reads
    hit_efficiency: float = 1.0  # fraction of resident data actually re-read

    def __post_init__(self) -> None:
        if not 0.0 <= self.hit_efficiency <= 1.0:
            raise ValueError("hit_efficiency must be in [0, 1]")
        if self.bytes_per_node < 0 or self.cache_bw_per_node < 0:
            raise ValueError("cache sizes/bandwidths must be non-negative")

    def aggregate_cache_bytes(self, n_nodes: int) -> float:
        """Total cache capacity across ``n_nodes``."""
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        return self.bytes_per_node * n_nodes

    def hit_fraction(self, data_bytes: float, n_nodes: int) -> float:
        """Fraction of a read served from cache right after writing it."""
        if data_bytes <= 0:
            return self.hit_efficiency if n_nodes > 0 else 0.0
        resident = min(1.0, self.aggregate_cache_bytes(n_nodes) / data_bytes)
        return self.hit_efficiency * resident

    def effective_read_bandwidth(
        self, disk_bw: float, data_bytes: float, n_nodes: int
    ) -> float:
        """Observed read bandwidth mixing cache hits and disk misses.

        Time to read D bytes = hit*D / cache_bw + (1-hit)*D / disk_bw, so the
        apparent bandwidth is the weighted harmonic mean.  With a warm cache
        this exceeds ``disk_bw`` — the paper's >peak artifact.
        """
        if disk_bw <= 0:
            raise ValueError("disk_bw must be positive")
        hit = self.hit_fraction(data_bytes, n_nodes)
        cache_bw = self.cache_bw_per_node * max(n_nodes, 1)
        if cache_bw <= 0:
            return disk_bw
        denom = hit / cache_bw + (1.0 - hit) / disk_bw
        if denom <= 0:
            return cache_bw
        return 1.0 / denom


#: A cache that never hits — used for the GPFS profile, where the paper
#: sized datasets (1 TB) specifically to defeat caching.
NO_CACHE = ClientCacheModel(bytes_per_node=0.0, cache_bw_per_node=0.0, hit_efficiency=0.0)
