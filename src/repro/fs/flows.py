"""Fluid-flow bandwidth model with max-min fair sharing.

Data transfers are modelled as *flows* that traverse a set of shared
:class:`Resource` objects (client links, object storage targets, the file
server backplane) and may additionally carry a private rate cap (e.g. a
per-file token-manager limit).  At any instant, rates are the max-min fair
allocation computed by progressive filling; the scheduler integrates rates
over virtual time and fires a completion callback when a flow's bytes drain.

Resources can be used *fractionally*: a file striped over 4 OSTs charges
each OST one quarter of the flow's rate (``weight=0.25``).  Flows sharing
the same weighted resource set and cap are grouped into *profiles*; rates
are computed per profile and completions inside a profile are tracked with
a virtual-service accumulator, so symmetric workloads with tens of
thousands of flows need only a handful of rate recomputations.  Use
:meth:`FlowScheduler.batch` when submitting many flows at once.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
import math
from typing import Any, Callable, Iterator, Sequence, Union

from repro.fs.events import Engine

_EPS = 1e-9

#: A path element: a plain resource (weight 1) or ``(resource, weight)``.
ResourceSpec = Union["Resource", tuple["Resource", float]]


class Resource:
    """A shared capacity (MB/s) that concurrent flows divide fairly."""

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"resource {name!r}: negative capacity {capacity}")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name!r}, {self.capacity} MB/s)"


def _normalize(resources: Sequence[ResourceSpec]) -> tuple[tuple["Resource", float], ...]:
    out: list[tuple[Resource, float]] = []
    for spec in resources:
        if isinstance(spec, Resource):
            out.append((spec, 1.0))
        else:
            res, w = spec
            if w <= 0:
                raise ValueError(f"resource weight must be positive, got {w}")
            out.append((res, float(w)))
    return tuple(out)


class Flow:
    """One transfer: ``size_mb`` across weighted resources, at most ``rate_cap``."""

    __slots__ = (
        "flow_id",
        "size_mb",
        "resources",
        "rate_cap",
        "on_complete",
        "start_time",
        "finish_time",
        "tag",
    )

    def __init__(
        self,
        flow_id: int,
        size_mb: float,
        resources: tuple[tuple[Resource, float], ...],
        rate_cap: float,
        on_complete: Callable[[float, "Flow"], None] | None,
        tag: Any,
    ) -> None:
        self.flow_id = flow_id
        self.size_mb = size_mb
        self.resources = resources
        self.rate_cap = rate_cap
        self.on_complete = on_complete
        self.start_time: float = math.nan
        self.finish_time: float = math.nan
        self.tag = tag

    @property
    def duration(self) -> float:
        """Transfer time (valid after completion)."""
        return self.finish_time - self.start_time


class _Profile:
    """Flows with identical weighted paths and caps share one fair rate."""

    __slots__ = ("resources", "rate_cap", "rate", "service", "heap", "count")

    def __init__(
        self, resources: tuple[tuple[Resource, float], ...], rate_cap: float
    ) -> None:
        self.resources = resources
        self.rate_cap = rate_cap
        self.rate = 0.0
        # Cumulative MB served to each member flow since profile creation.
        self.service = 0.0
        # Heap of (service level at which the flow completes, id, flow).
        self.heap: list[tuple[float, int, Flow]] = []
        self.count = 0


class FlowScheduler:
    """Engine-integrated fluid-flow simulator.

    >>> eng = Engine()
    >>> sched = FlowScheduler(eng)
    >>> disk = Resource("disk", 100.0)
    >>> f1 = sched.submit(100.0, (disk,))
    >>> f2 = sched.submit(100.0, (disk,))
    >>> eng.run()
    >>> round(f1.finish_time, 6), round(f2.finish_time, 6)
    (2.0, 2.0)
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._profiles: dict[tuple, _Profile] = {}
        self._ids = itertools.count()
        self._completion_event = None
        self._last_update = engine.now
        self._deferred = False
        self.completed: list[Flow] = []

    # -- public API ---------------------------------------------------------

    def submit(
        self,
        size_mb: float,
        resources: Sequence[ResourceSpec],
        rate_cap: float = math.inf,
        on_complete: Callable[[float, Flow], None] | None = None,
        tag: Any = None,
    ) -> Flow:
        """Start a flow at the current virtual time."""
        if size_mb < 0:
            raise ValueError(f"negative flow size: {size_mb}")
        if rate_cap <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap}")
        weighted = _normalize(resources)
        flow = Flow(next(self._ids), float(size_mb), weighted, rate_cap, on_complete, tag)
        flow.start_time = self.engine.now
        if size_mb <= _EPS:
            # Zero-byte transfer: completes instantly, no bandwidth involved.
            flow.finish_time = self.engine.now
            self.completed.append(flow)
            self.engine.schedule_in(0.0, self._fire_callback, flow)
            return flow
        self._advance_service()
        prof = self._get_profile(weighted, flow.rate_cap)
        heapq.heappush(prof.heap, (prof.service + flow.size_mb, flow.flow_id, flow))
        prof.count += 1
        if not self._deferred:
            self._recompute_and_reschedule()
        return flow

    @contextlib.contextmanager
    def batch(self) -> Iterator[None]:
        """Defer rate recomputation while submitting many flows at once."""
        self._deferred = True
        try:
            yield
        finally:
            self._deferred = False
            self._recompute_and_reschedule()

    @property
    def active_flows(self) -> int:
        """Number of flows still transferring."""
        return sum(p.count for p in self._profiles.values())

    # -- internals ------------------------------------------------------------

    def _get_profile(
        self, resources: tuple[tuple[Resource, float], ...], cap: float
    ) -> _Profile:
        key = (tuple((id(r), w) for r, w in resources), cap)
        prof = self._profiles.get(key)
        if prof is None:
            prof = _Profile(resources, cap)
            self._profiles[key] = prof
        return prof

    def _advance_service(self) -> None:
        """Integrate rates from the last update to now."""
        dt = self.engine.now - self._last_update
        if dt > 0:
            for prof in self._profiles.values():
                if prof.count and prof.rate > 0 and math.isfinite(prof.rate):
                    prof.service += prof.rate * dt
        self._last_update = self.engine.now

    def _recompute_rates(self) -> None:
        """Progressive-filling max-min fair allocation over profiles."""
        active = [p for p in self._profiles.values() if p.count > 0]
        for p in active:
            p.rate = 0.0
        if not active:
            return
        residual: dict[int, float] = {}
        load: dict[int, float] = {}  # sum of (count * weight) of unfrozen users
        for p in active:
            for r, w in p.resources:
                rid = id(r)
                residual.setdefault(rid, r.capacity)
                load[rid] = load.get(rid, 0.0) + p.count * w
        unfrozen = set(range(len(active)))
        guard = 0
        while unfrozen:
            guard += 1
            if guard > len(active) + len(residual) + 2:  # pragma: no cover
                raise RuntimeError("progressive filling failed to converge")
            # Smallest per-flow headroom across resources and caps.
            delta = math.inf
            bottleneck_res: int | None = None
            for rid, cap_left in residual.items():
                users = load[rid]
                if users <= _EPS:
                    continue
                head = cap_left / users
                if head < delta - _EPS:
                    delta = head
                    bottleneck_res = rid
            cap_limited: list[int] = []
            for i in unfrozen:
                head = active[i].rate_cap - active[i].rate
                if head < delta - _EPS:
                    delta = head
                    bottleneck_res = None
                    cap_limited = [i]
            if not math.isfinite(delta):
                # No shared resources and no caps: unconstrained flows.
                for i in unfrozen:
                    active[i].rate = math.inf
                break
            delta = max(delta, 0.0)
            for i in unfrozen:
                active[i].rate += delta
            for rid in residual:
                residual[rid] -= delta * load[rid]
            newly_frozen: set[int] = set()
            if bottleneck_res is not None:
                for i in unfrozen:
                    if any(id(r) == bottleneck_res for r, _ in active[i].resources):
                        newly_frozen.add(i)
            else:
                newly_frozen.update(cap_limited)
            # Also freeze any profile that reached its cap exactly.
            for i in unfrozen:
                if active[i].rate >= active[i].rate_cap - _EPS:
                    newly_frozen.add(i)
            if not newly_frozen:  # pragma: no cover - numeric safety
                newly_frozen = set(unfrozen)
            for i in newly_frozen:
                unfrozen.discard(i)
                for r, w in active[i].resources:
                    load[id(r)] -= active[i].count * w
        for rid in load:
            if load[rid] < 0:
                load[rid] = 0.0

    def _next_completion(self) -> tuple[float, _Profile] | None:
        best: tuple[float, _Profile] | None = None
        for prof in self._profiles.values():
            if prof.count == 0 or prof.rate <= 0:
                continue
            target, _, _ = prof.heap[0]
            if math.isinf(prof.rate):
                t = self.engine.now
            else:
                t = self.engine.now + max(target - prof.service, 0.0) / prof.rate
            if best is None or t < best[0]:
                best = (t, prof)
        return best

    def _recompute_and_reschedule(self) -> None:
        self._recompute_rates()
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        nxt = self._next_completion()
        if nxt is not None:
            self._completion_event = self.engine.schedule_at(
                nxt[0], self._complete_head, nxt[1]
            )

    def _complete_head(self, prof: _Profile) -> None:
        self._completion_event = None
        self._advance_service()
        # Pop every flow of this profile whose service target is reached
        # (symmetric workloads complete whole batches at one instant).
        finished: list[Flow] = []
        if math.isinf(prof.rate):
            # Unconstrained profile: every member completes instantly.
            prof.service = max((t for t, _, _ in prof.heap), default=prof.service)
        while prof.heap and prof.heap[0][0] <= prof.service + _EPS * max(1.0, prof.service):
            _, _, flow = heapq.heappop(prof.heap)
            prof.count -= 1
            flow.finish_time = self.engine.now
            finished.append(flow)
        self._recompute_and_reschedule()
        for flow in finished:
            self.completed.append(flow)
            self._fire_callback(flow)

    def _fire_callback(self, flow: Flow) -> None:
        if flow.on_complete is not None:
            flow.on_complete(self.engine.now, flow)


def simulate_transfer_batch(
    sizes_mb: list[float],
    shared_resources: Sequence[ResourceSpec],
    rate_caps: list[float] | None = None,
) -> float:
    """Convenience: run one batch of flows starting at t=0; return makespan.

    ``rate_caps[i]`` limits flow *i* individually (defaults to unlimited).
    """
    eng = Engine()
    sched = FlowScheduler(eng)
    caps = rate_caps if rate_caps is not None else [math.inf] * len(sizes_mb)
    if len(caps) != len(sizes_mb):
        raise ValueError("rate_caps must match sizes_mb in length")
    with sched.batch():
        flows = [
            sched.submit(size, tuple(shared_resources), cap)
            for size, cap in zip(sizes_mb, caps)
        ]
    eng.run()
    if sched.active_flows:
        raise RuntimeError("flows stalled: zero-capacity path")
    return max((f.finish_time for f in flows), default=0.0)
