"""Tape-archive model for the paper's file-management motivation (§1).

The paper's second scalability problem is operational: *"copying files to a
tape archive (e.g., during backup) may be significantly slowed down.
Especially when archival requests from different users are executed in an
interleaved fashion, different files of the same directory may end up on
different tapes, making their later retrieval challenging or even
impractical if the tape cartridge must be exchanged too often."*

This model quantifies that claim.  Archiving pays a fixed per-file cost
(catalogue entry, header, stream restart) plus streaming time; interleaved
users scatter a directory's files across tapes, and retrieval pays a mount
+ seek penalty per tape touched, plus a per-file positioning cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TapeLibrary:
    """One tape archive's cost parameters (HPSS-class defaults)."""

    mount_time_s: float = 90.0  # robot fetch + load + thread
    seek_time_s: float = 40.0  # average position-to-file on a tape
    per_file_overhead_s: float = 0.5  # catalogue + header + stream restart
    stream_bw_mb_s: float = 160.0  # LTO-class streaming rate
    tape_capacity_bytes: float = 800e9

    def __post_init__(self) -> None:
        if min(
            self.mount_time_s,
            self.seek_time_s,
            self.per_file_overhead_s,
            self.stream_bw_mb_s,
            self.tape_capacity_bytes,
        ) <= 0 and self.per_file_overhead_s != 0:
            raise ValueError("tape parameters must be positive")

    # -- archiving -----------------------------------------------------------

    def tapes_needed(self, total_bytes: float) -> int:
        """Minimum cartridges for ``total_bytes``."""
        if total_bytes < 0:
            raise ValueError("negative data size")
        return max(1, math.ceil(total_bytes / self.tape_capacity_bytes))

    def archive_time(self, nfiles: int, total_bytes: float) -> float:
        """Seconds to write ``nfiles`` files of ``total_bytes`` to tape.

        One mount per cartridge, a per-file overhead (the term that
        explodes with 64K task-local files), and streaming.
        """
        if nfiles < 0:
            raise ValueError("negative file count")
        if nfiles == 0:
            return 0.0
        tapes = self.tapes_needed(total_bytes)
        return (
            tapes * self.mount_time_s
            + nfiles * self.per_file_overhead_s
            + (total_bytes / 1e6) / self.stream_bw_mb_s
        )

    # -- retrieval ---------------------------------------------------------------

    def tapes_touched(
        self, nfiles: int, total_bytes: float, interleaved_users: int = 1
    ) -> int:
        """Cartridges a directory's files landed on.

        With a single archival stream, files pack onto the minimum number
        of tapes.  Each additional concurrent user interleaves its own
        data, scattering the directory over up to ``users x`` as many
        cartridges (bounded by the file count — a file is on one tape).
        """
        if interleaved_users < 1:
            raise ValueError("interleaved_users must be >= 1")
        packed = self.tapes_needed(total_bytes)
        return min(max(nfiles, 1), packed * interleaved_users)

    def retrieval_time(
        self, nfiles: int, total_bytes: float, interleaved_users: int = 1
    ) -> float:
        """Seconds to fetch the whole collection back.

        Every touched cartridge costs a mount + seek; every file costs a
        positioning overhead; the data streams at tape speed.
        """
        if nfiles == 0:
            return 0.0
        tapes = self.tapes_touched(nfiles, total_bytes, interleaved_users)
        return (
            tapes * (self.mount_time_s + self.seek_time_s)
            + nfiles * self.per_file_overhead_s
            + (total_bytes / 1e6) / self.stream_bw_mb_s
        )


@dataclass
class ArchiveComparison:
    """Task-local files vs. multifile, through the same tape library."""

    ntasks: int
    total_bytes: float
    nfiles_multifile: int
    interleaved_users: int
    tasklocal_archive_s: float
    multifile_archive_s: float
    tasklocal_retrieve_s: float
    multifile_retrieve_s: float

    @property
    def archive_speedup(self) -> float:
        return self.tasklocal_archive_s / self.multifile_archive_s

    @property
    def retrieve_speedup(self) -> float:
        return self.tasklocal_retrieve_s / self.multifile_retrieve_s


def compare_archival(
    library: TapeLibrary,
    ntasks: int,
    total_bytes: float,
    nfiles_multifile: int = 1,
    interleaved_users: int = 4,
) -> ArchiveComparison:
    """Price the paper's §1 scenario both ways."""
    return ArchiveComparison(
        ntasks=ntasks,
        total_bytes=total_bytes,
        nfiles_multifile=nfiles_multifile,
        interleaved_users=interleaved_users,
        tasklocal_archive_s=library.archive_time(ntasks, total_bytes),
        multifile_archive_s=library.archive_time(nfiles_multifile, total_bytes),
        tasklocal_retrieve_s=library.retrieval_time(
            ntasks, total_bytes, interleaved_users
        ),
        multifile_retrieve_s=library.retrieval_time(
            nfiles_multifile, total_bytes, interleaved_users
        ),
    )
