"""Minimal discrete-event engine with a virtual clock.

Events are ``(time, sequence, callback)`` triples on a heap; ties in time
break by scheduling order, which keeps runs deterministic.  The engine never
sleeps — simulating hours of I/O takes milliseconds of real time.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Engine:
    """Virtual-time event loop.

    >>> eng = Engine()
    >>> order = []
    >>> _ = eng.schedule_at(2.0, order.append, "b")
    >>> _ = eng.schedule_at(1.0, order.append, "a")
    >>> eng.run()
    >>> order, eng.now
    (['a', 'b'], 2.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past: {time} < now {self.now}")
        ev = Event(max(time, self.now), next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def run(self, until: float | None = None) -> None:
        """Process events in time order until the queue drains (or ``until``)."""
        while self._heap:
            ev = self._heap[0]
            if until is not None and ev.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            self._events_processed += 1
            ev.fn(*ev.args)
        if until is not None:
            self.now = max(self.now, until)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_processed(self) -> int:
        """Total callbacks executed so far (diagnostics)."""
        return self._events_processed
