"""Block-granularity write-lock (false sharing) model.

GPFS grants write tokens at file-system-block granularity.  When the chunks
of two tasks share one FS block — which happens whenever SIONlib is
configured with a block size smaller than the real one — each write forces a
token revocation round-trip, serializing the writers of that block.  The
paper's Table 1 measures a 2.53x write and 1.78x read penalty for 16 KB
chunks on a 2 MB-block GPFS.

The model: with ``k`` writers sharing each FS block, effective bandwidth is
divided by ``1 + c * (1 - 1/k)`` where ``c`` is a file-system-specific
contention coefficient (``c = 0`` for Lustre, whose extent locks the paper
found unaffected).  ``k = 1`` (perfect alignment) gives penalty 1.0; the
penalty saturates as ``k`` grows, matching the measured factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LockContentionModel:
    """Contention coefficients of one file system's token manager."""

    write_coeff: float
    read_coeff: float

    def sharers_per_block(self, chunk_align_bytes: int, fs_block_bytes: int) -> float:
        """Average number of tasks whose chunks touch one FS block.

        Chunks are contiguous and aligned to ``chunk_align_bytes``.  If that
        is a multiple of the true FS block size there is no sharing (k=1);
        otherwise ``fs_block / align`` distinct chunks fit into (and
        contend for) each block, plus boundary effects we fold into the
        ratio.
        """
        if chunk_align_bytes < 1 or fs_block_bytes < 1:
            raise ValueError("sizes must be positive")
        if chunk_align_bytes % fs_block_bytes == 0:
            return 1.0
        if fs_block_bytes % chunk_align_bytes == 0:
            return fs_block_bytes / chunk_align_bytes
        # Misaligned, non-divisible: every boundary is shared by 2 writers.
        return max(2.0, fs_block_bytes / chunk_align_bytes)

    def write_penalty(self, sharers: float) -> float:
        """Bandwidth division factor for writes with ``sharers`` per block."""
        return self._penalty(sharers, self.write_coeff)

    def read_penalty(self, sharers: float) -> float:
        """Bandwidth division factor for reads with ``sharers`` per block."""
        return self._penalty(sharers, self.read_coeff)

    @staticmethod
    def _penalty(sharers: float, coeff: float) -> float:
        if sharers < 1.0:
            raise ValueError(f"sharers must be >= 1, got {sharers}")
        return 1.0 + coeff * (1.0 - 1.0 / sharers)

    def effective_bandwidth(
        self,
        raw_bw: float,
        chunk_align_bytes: int,
        fs_block_bytes: int,
        op: str = "write",
    ) -> float:
        """Bandwidth after the false-sharing penalty for this alignment."""
        k = self.sharers_per_block(chunk_align_bytes, fs_block_bytes)
        if op == "write":
            return raw_bw / self.write_penalty(k)
        if op == "read":
            return raw_bw / self.read_penalty(k)
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")


def blocks_shared_by_layout(
    chunk_starts: list[int], chunk_ends: list[int], fs_block_bytes: int
) -> dict[int, int]:
    """Map FS block index -> number of distinct chunks touching it.

    Exact layout-level sharing count, used to validate the analytic
    ``sharers_per_block`` approximation in tests.  ``chunk_ends`` are
    exclusive.
    """
    if len(chunk_starts) != len(chunk_ends):
        raise ValueError("starts and ends must have the same length")
    counts: dict[int, int] = {}
    for s, e in zip(chunk_starts, chunk_ends):
        if e <= s:
            continue
        first = s // fs_block_bytes
        last = (e - 1) // fs_block_bytes
        for b in range(first, last + 1):
            counts[b] = counts.get(b, 0) + 1
    return counts


def mean_sharers(shared: dict[int, int]) -> float:
    """Average writers per touched block (1.0 when nothing is shared)."""
    if not shared:
        return 1.0
    return sum(shared.values()) / len(shared)


def worst_case_sharers(shared: dict[int, int]) -> int:
    """Maximum writers on any one block."""
    return max(shared.values(), default=1)


def alignment_speedup(
    model: LockContentionModel,
    aligned_bytes: int,
    unaligned_bytes: int,
    fs_block_bytes: int,
    op: str = "write",
) -> float:
    """Ratio of aligned to unaligned bandwidth (paper Table 1 rightmost column)."""
    hi = model.effective_bandwidth(1.0, aligned_bytes, fs_block_bytes, op)
    lo = model.effective_bandwidth(1.0, unaligned_bytes, fs_block_bytes, op)
    if lo == 0:
        return math.inf
    return hi / lo
