"""Functional in-memory file system with sparse files and a virtual clock.

:class:`SimFS` gives the SION layer a real (if simulated) place to put
bytes: hierarchical directories, POSIX-ish open modes, seek/read/write, and
*sparse* storage — extents of zeros occupy no memory, so a 1 TB virtual
write is cheap.  Every operation advances a virtual clock using the machine
profile's metadata costs and single-stream bandwidth, which lets functional
tests assert timing properties (e.g. "creating one multifile is cheaper
than creating N files") without the full discrete-event machinery.

The massively parallel experiments do *not* route every byte through this
class; they use the flow/queue models directly (see :mod:`repro.workloads`).
"""

from __future__ import annotations

import posixpath
import threading
from bisect import bisect_left, bisect_right
import itertools
from dataclasses import dataclass
from functools import lru_cache

from repro.buffers import as_view
from repro.errors import (
    FileExistsSimError,
    FileNotFoundSimError,
    InvalidOperationError,
    NotADirectorySimError,
)
from repro.fs.systems import SystemProfile

_DEFAULT_BLKSIZE = 2 * (1 << 20)

#: Process-wide mutation clock backing :attr:`SparseFile.version`.
_version_clock = itertools.count(1)


class SparseFile:
    """Byte store holding only materialized extents; holes read as zeros."""

    __slots__ = ("size", "version", "_starts", "_chunks")

    def __init__(self) -> None:
        self.size = 0
        # Monotonic change token: every mutation takes the next tick of a
        # process-wide clock, so (any two states of) any two files never
        # share a version — the stat-based revalidation signal caches use.
        self.version = next(_version_clock)
        self._starts: list[int] = []
        self._chunks: list[bytearray] = []

    # -- queries -------------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        """Bytes actually materialized (the paper's 'physical' footprint)."""
        return sum(len(c) for c in self._chunks)

    def extents(self) -> list[tuple[int, int]]:
        """Materialized ``(offset, length)`` runs, ascending and disjoint."""
        return [(s, len(c)) for s, c in zip(self._starts, self._chunks)]

    # -- mutation ------------------------------------------------------------

    def write(self, offset: int, data: bytes | bytearray | memoryview) -> int:
        """Overlay ``data`` at ``offset``; grows the file as needed.

        Accepts any buffer-protocol object and splices it straight into
        the extent store: the single copy happens here, into the extent
        ``bytearray`` — no intermediate ``bytes`` materialization.
        """
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        view = as_view(data)
        n = view.nbytes
        if n == 0:
            return 0
        self.version = next(_version_clock)
        lo, hi = offset, offset + n
        first, last = self._overlap_range(lo, hi)
        if first == last:
            # No overlap with existing extents: insert fresh.
            self._starts.insert(first, lo)
            self._chunks.insert(first, bytearray(view))
        elif last == first + 1 and (
            self._starts[first] <= lo
            and hi <= self._starts[first] + len(self._chunks[first])
        ):
            # Overwrite fully inside one extent: splice in place.  The
            # general path below would rebuild the extent and shift the
            # whole extent list — O(extents) per write, which turns a
            # rewrite pass over a large file quadratic.
            s = self._starts[first]
            self._chunks[first][lo - s : hi - s] = view
            return n
        else:
            new_lo = min(lo, self._starts[first])
            new_hi = max(hi, self._starts[last - 1] + len(self._chunks[last - 1]))
            merged = bytearray(new_hi - new_lo)
            for i in range(first, last):
                s = self._starts[i]
                merged[s - new_lo : s - new_lo + len(self._chunks[i])] = self._chunks[i]
            merged[lo - new_lo : lo - new_lo + n] = view
            del self._starts[first:last]
            del self._chunks[first:last]
            self._starts.insert(first, new_lo)
            self._chunks.insert(first, merged)
        self._coalesce_around(first)
        self.size = max(self.size, hi)
        return n

    def write_zeros(self, offset: int, n: int) -> int:
        """Write ``n`` zero bytes without materializing them (a hole)."""
        if offset < 0 or n < 0:
            raise ValueError("offset and n must be non-negative")
        if n == 0:
            return 0
        self.version = next(_version_clock)
        lo, hi = offset, offset + n
        first, last = self._overlap_range(lo, hi)
        # Punch the range out of any overlapping extents.
        keep_starts: list[int] = []
        keep_chunks: list[bytearray] = []
        for i in range(first, last):
            s = self._starts[i]
            c = self._chunks[i]
            e = s + len(c)
            if s < lo:
                keep_starts.append(s)
                keep_chunks.append(c[: lo - s])
            if e > hi:
                keep_starts.append(hi)
                keep_chunks.append(c[hi - s :])
        self._starts[first:last] = keep_starts
        self._chunks[first:last] = keep_chunks
        self.size = max(self.size, hi)
        return n

    def truncate(self, size: int) -> None:
        """Cut or extend (with a hole) to exactly ``size`` bytes."""
        if size < 0:
            raise ValueError("negative size")
        if size != self.size:
            self.version = next(_version_clock)
        if size < self.size:
            first, last = self._overlap_range(size, self.size)
            keep_starts: list[int] = []
            keep_chunks: list[bytearray] = []
            for i in range(first, last):
                s = self._starts[i]
                if s < size:
                    keep_starts.append(s)
                    keep_chunks.append(self._chunks[i][: size - s])
            self._starts[first:] = keep_starts
            self._chunks[first:] = keep_chunks
        self.size = size

    def read(self, offset: int, n: int) -> bytes:
        """Read up to ``n`` bytes at ``offset``; holes come back as zeros."""
        if offset < 0 or n < 0:
            raise ValueError("offset and n must be non-negative")
        n = max(0, min(n, self.size - offset))
        if n == 0:
            return b""
        out = bytearray(n)
        lo, hi = offset, offset + n
        first, last = self._overlap_range(lo, hi)
        for i in range(first, last):
            s = self._starts[i]
            c = self._chunks[i]
            cs = max(s, lo)
            ce = min(s + len(c), hi)
            out[cs - lo : ce - lo] = c[cs - s : ce - s]
        return bytes(out)

    # -- internals -------------------------------------------------------------

    def _overlap_range(self, lo: int, hi: int) -> tuple[int, int]:
        """Indices [first, last) of extents intersecting [lo, hi)."""
        first = bisect_right(self._starts, lo) - 1
        if first >= 0:
            s = self._starts[first]
            if s + len(self._chunks[first]) <= lo:
                first += 1
        else:
            first = 0
        last = bisect_left(self._starts, hi, lo=first)
        return first, last

    def _coalesce_around(self, idx: int) -> None:
        """Merge extent ``idx`` with physically adjacent neighbours."""
        # Merge with next while touching.
        while idx + 1 < len(self._starts):
            end = self._starts[idx] + len(self._chunks[idx])
            if self._starts[idx + 1] == end:
                self._chunks[idx] += self._chunks[idx + 1]
                del self._starts[idx + 1]
                del self._chunks[idx + 1]
            else:
                break
        # Merge with previous while touching.
        while idx > 0:
            end = self._starts[idx - 1] + len(self._chunks[idx - 1])
            if self._starts[idx] == end:
                self._chunks[idx - 1] += self._chunks[idx]
                del self._starts[idx]
                del self._chunks[idx]
                idx -= 1
            else:
                break


@dataclass
class SimStat:
    """Subset of ``os.stat_result`` the SION layer needs."""

    st_size: int
    st_blksize: int
    allocated_bytes: int
    is_dir: bool
    version: int = 0


class _Inode:
    __slots__ = ("kind", "entries", "data")

    def __init__(self, kind: str) -> None:
        self.kind = kind  # "dir" | "file"
        self.entries: dict[str, _Inode] = {} if kind == "dir" else None  # type: ignore
        self.data: SparseFile | None = SparseFile() if kind == "file" else None


class SimFileHandle:
    """Open-file handle with POSIX-like positioning semantics."""

    def __init__(self, fs: "SimFS", inode: _Inode, path: str, mode: str) -> None:
        self._fs = fs
        self._inode = inode
        self.path = path
        self.mode = mode
        self._pos = 0
        self._closed = False
        self.readable = "r" in mode or "+" in mode
        self.writable = "w" in mode or "a" in mode or "+" in mode

    # -- positioning ----------------------------------------------------------

    def seek(self, offset: int, whence: int = 0) -> int:
        """Like ``io.IOBase.seek``: whence 0=set, 1=cur, 2=end."""
        self._check_open()
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self._pos + offset
        elif whence == 2:
            new = self._data.size + offset
        else:
            raise ValueError(f"bad whence: {whence}")
        if new < 0:
            raise ValueError("negative seek position")
        self._pos = new
        return new

    def tell(self) -> int:
        """Current file position."""
        self._check_open()
        return self._pos

    # -- data -------------------------------------------------------------------

    def write(self, data: bytes | bytearray | memoryview) -> int:
        """Write at the current position; advances it."""
        self._check_open()
        self._check_writable()
        with self._fs._lock:
            n = self._data.write(self._pos, data)
            self._pos += n
            self._fs._account_data("write", n)
        return n

    def write_zeros(self, n: int) -> int:
        """Sparse write of ``n`` zeros at the current position."""
        self._check_open()
        self._check_writable()
        with self._fs._lock:
            self._data.write_zeros(self._pos, n)
            self._pos += n
            self._fs._account_data("write", n)
        return n

    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` bytes (all remaining if negative)."""
        self._check_open()
        if not self.readable:
            raise InvalidOperationError(f"{self.path}: not open for reading")
        with self._fs._lock:
            if n < 0:
                n = max(0, self._data.size - self._pos)
            out = self._data.read(self._pos, n)
            self._pos += len(out)
            self._fs._account_data("read", len(out))
        return out

    def pwrite(self, offset: int, data: bytes | bytearray | memoryview) -> int:
        """Positional write; does not move the file pointer."""
        self._check_open()
        self._check_writable()
        with self._fs._lock:
            n = self._data.write(offset, data)
            self._fs._account_data("write", n)
        return n

    def pread(self, offset: int, n: int) -> bytes:
        """Positional read; does not move the file pointer."""
        self._check_open()
        if not self.readable:
            raise InvalidOperationError(f"{self.path}: not open for reading")
        with self._fs._lock:
            out = self._data.read(offset, n)
            self._fs._account_data("read", len(out))
        return out

    def pwritev(self, offset: int, views) -> int:
        """Vectored positional write: views land back to back at ``offset``.

        Each view is spliced directly into the sparse store; the whole
        call is accounted as one data operation of the summed size.
        """
        self._check_open()
        self._check_writable()
        with self._fs._lock:
            total = 0
            for v in views:
                total += self._data.write(offset + total, v)
            self._fs._account_data("write", total)
        return total

    def preadv(self, offset: int, sizes) -> list[bytes]:
        """Vectored positional read of consecutive ``sizes`` at ``offset``."""
        self._check_open()
        if not self.readable:
            raise InvalidOperationError(f"{self.path}: not open for reading")
        with self._fs._lock:
            out: list[bytes] = []
            pos = offset
            for size in sizes:
                if size < 0:
                    raise ValueError(f"negative read size: {size}")
                out.append(self._data.read(pos, size))
                pos += size
            self._fs._account_data("read", sum(len(p) for p in out))
        return out

    def truncate(self, size: int | None = None) -> int:
        """Truncate/extend to ``size`` (default: current position)."""
        self._check_open()
        self._check_writable()
        with self._fs._lock:
            size = self._pos if size is None else size
            self._data.truncate(size)
        return size

    def flush(self) -> None:
        """No-op (everything is already 'durable' in memory)."""
        self._check_open()

    def close(self) -> None:
        """Close the handle; further operations raise."""
        if not self._closed:
            self._closed = True
            self._fs._account_meta("close")

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SimFileHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ----------------------------------------------------------------

    @property
    def _data(self) -> SparseFile:
        assert self._inode.data is not None
        return self._inode.data

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidOperationError(f"{self.path}: handle is closed")

    def _check_writable(self) -> None:
        if not self.writable:
            raise InvalidOperationError(f"{self.path}: not open for writing")


class SimFS:
    """In-memory hierarchical file system with virtual-time accounting."""

    def __init__(
        self,
        profile: SystemProfile | None = None,
        serial_bw_mb_s: float | None = None,
        blocksize_override: int | None = None,
    ) -> None:
        if blocksize_override is not None and blocksize_override < 1:
            raise InvalidOperationError("blocksize_override must be positive")
        self.profile = profile
        self.blocksize_override = blocksize_override
        self._root = _Inode("dir")
        self.clock = 0.0
        self.op_counts: dict[str, int] = {}
        # SPMD workloads drive many rank threads (or bulk-engine workers)
        # into one SimFS concurrently; extent-list surgery and the clock
        # accounting are multi-step and must not interleave.  Reentrant:
        # data ops account inside the same critical section.
        self._lock = threading.RLock()
        if serial_bw_mb_s is not None:
            self._serial_bw = serial_bw_mb_s
        elif profile is not None:
            self._serial_bw = profile.per_file_bw("write")
        else:
            self._serial_bw = None  # timing disabled for data

    # -- namespace -----------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create a directory (optionally with intermediate ones)."""
        parts = self._split(path)
        with self._lock:
            node = self._root
            for i, part in enumerate(parts):
                if node.kind != "dir":
                    raise NotADirectorySimError("/" + "/".join(parts[:i]))
                child = node.entries.get(part)
                last = i == len(parts) - 1
                if child is None:
                    if last or parents:
                        child = _Inode("dir")
                        node.entries[part] = child
                        self._account_meta("mkdir")
                    else:
                        raise FileNotFoundSimError("/" + "/".join(parts[: i + 1]))
                elif last:
                    raise FileExistsSimError(path)
                node = child

    def open(self, path: str, mode: str = "rb") -> SimFileHandle:
        """Open a file; 'w' creates/truncates, 'r' requires existence.

        Supported modes: ``rb``, ``wb``, ``ab``, ``r+b``, ``w+b``.
        """
        if "b" not in mode:
            raise InvalidOperationError("SimFS is binary-only; use a 'b' mode")
        parts = self._split(path)
        if not parts:
            raise InvalidOperationError("cannot open the root directory")
        # Namespace check-then-insert (and the truncating data swap) must
        # be atomic against concurrent rank threads: without the lock two
        # creating opens could each install their own inode and one
        # handle's writes would land in an orphan.
        with self._lock:
            parent = self._walk_dir(parts[:-1], path)
            name = parts[-1]
            inode = parent.entries.get(name)
            creating = "w" in mode or "a" in mode
            if inode is None:
                if not creating:
                    raise FileNotFoundSimError(path)
                inode = _Inode("file")
                parent.entries[name] = inode
                self._account_meta("create")
            else:
                if inode.kind != "file":
                    raise InvalidOperationError(f"{path}: is a directory")
                self._account_meta("open")
                if mode.startswith("w"):
                    inode.data = SparseFile()
        handle = SimFileHandle(self, inode, self._norm(path), mode)
        if "a" in mode:
            handle.seek(0, 2)
        return handle

    def exists(self, path: str) -> bool:
        """True if ``path`` names a file or directory."""
        try:
            self._lookup(path)
            return True
        except (FileNotFoundSimError, NotADirectorySimError):
            return False

    def stat(self, path: str) -> SimStat:
        """Stat; ``st_blksize`` comes from the machine profile."""
        inode = self._lookup(path)
        self._account_meta("stat")
        if self.blocksize_override is not None:
            blk = self.blocksize_override
        elif self.profile is not None:
            blk = self.profile.fs_block_size
        else:
            blk = _DEFAULT_BLKSIZE
        if inode.kind == "dir":
            return SimStat(0, blk, 0, True)
        assert inode.data is not None
        return SimStat(
            inode.data.size, blk, inode.data.allocated_bytes, False,
            inode.data.version,
        )

    def extents_of(self, path: str) -> tuple[int, list[tuple[int, int]]]:
        """``(size, materialized extents)`` of a file, without accounting.

        The extents are ascending, disjoint ``(offset, length)`` runs; holes
        between them read as zeros.  Together with the bytes under each run
        this determines the file content exactly, which is what content
        fingerprints (e.g. the scale suite's multifile hash pin) are built
        from — a free-of-charge introspection, so no op accounting happens.
        """
        inode = self._lookup(path)
        if inode.kind != "file":
            raise InvalidOperationError(f"{path}: is a directory")
        assert inode.data is not None
        with self._lock:
            return inode.data.size, inode.data.extents()

    def unlink(self, path: str) -> None:
        """Remove a file."""
        parts = self._split(path)
        with self._lock:
            parent = self._walk_dir(parts[:-1], path)
            inode = parent.entries.get(parts[-1])
            if inode is None:
                raise FileNotFoundSimError(path)
            if inode.kind != "file":
                raise InvalidOperationError(f"{path}: is a directory; cannot unlink")
            del parent.entries[parts[-1]]
            self._account_meta("unlink")

    def listdir(self, path: str = "/") -> list[str]:
        """Sorted entry names of a directory."""
        inode = self._lookup(path)
        if inode.kind != "dir":
            raise NotADirectorySimError(path)
        return sorted(inode.entries)

    def rename(self, old: str, new: str) -> None:
        """Move a file or directory (new parent must exist)."""
        oparts = self._split(old)
        nparts = self._split(new)
        with self._lock:
            oparent = self._walk_dir(oparts[:-1], old)
            inode = oparent.entries.get(oparts[-1])
            if inode is None:
                raise FileNotFoundSimError(old)
            nparent = self._walk_dir(nparts[:-1], new)
            if nparts[-1] in nparent.entries:
                raise FileExistsSimError(new)
            del oparent.entries[oparts[-1]]
            nparent.entries[nparts[-1]] = inode

    # -- accounting -----------------------------------------------------------------

    def _account_meta(self, kind: str) -> None:
        with self._lock:
            self.op_counts[kind] = self.op_counts.get(kind, 0) + 1
            if self.profile is not None:
                self.clock += self.profile.metadata_costs.base_time(kind)

    def _account_data(self, op: str, nbytes: int) -> None:
        with self._lock:
            key = f"{op}_bytes"
            self.op_counts[key] = self.op_counts.get(key, 0) + nbytes
            if self._serial_bw:
                self.clock += nbytes / (self._serial_bw * 1e6)

    # -- path helpers ------------------------------------------------------------------

    @staticmethod
    @lru_cache(maxsize=4096)
    def _norm(path: str) -> str:
        # Memoized: SPMD workloads normalize the same handful of path
        # strings hundreds of thousands of times.
        norm = posixpath.normpath("/" + path.strip())
        # POSIX preserves a leading double slash; collapse it for our use.
        return "/" + norm.lstrip("/")

    def _split(self, path: str) -> list[str]:
        norm = self._norm(path)
        if norm == "/":
            return []
        return norm.lstrip("/").split("/")

    def _walk_dir(self, parts: list[str], full_path: str) -> _Inode:
        node = self._root
        for i, part in enumerate(parts):
            if node.kind != "dir":
                raise NotADirectorySimError("/" + "/".join(parts[:i]))
            nxt = node.entries.get(part)
            if nxt is None:
                raise FileNotFoundSimError("/" + "/".join(parts[: i + 1]))
            node = nxt
        if node.kind != "dir":
            raise NotADirectorySimError(full_path)
        return node

    def _lookup(self, path: str) -> _Inode:
        parts = self._split(path)
        if not parts:
            return self._root
        parent = self._walk_dir(parts[:-1], path)
        inode = parent.entries.get(parts[-1])
        if inode is None:
            raise FileNotFoundSimError(path)
        return inode
