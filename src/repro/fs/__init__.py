"""Discrete-event simulated parallel file system.

This package provides the substrate on which the paper's scalability
experiments run.  It models the two mechanisms the paper measures:

* **metadata contention** — file creates/opens in a shared directory
  serialize on directory metadata (GPFS directory-block locking) or on a
  dedicated metadata server (Lustre MDS) — see :mod:`repro.fs.metadata`;
* **bandwidth sharing** — data transfers compete for client links, object
  storage targets, and the file-server backplane under max-min fairness —
  see :mod:`repro.fs.flows`.

Machine profiles calibrated to the paper's two systems (Jugene/GPFS and
Jaguar/Lustre) live in :mod:`repro.fs.systems`.  :class:`repro.fs.simfs.SimFS`
is a functional in-memory file system (sparse files, directories, virtual
clock) that the SION layer can run on unmodified via
:class:`repro.backends.simfs_backend.SimBackend`.
"""

from repro.fs.archive import TapeLibrary, compare_archival
from repro.fs.events import Engine
from repro.fs.flows import FlowScheduler, Resource
from repro.fs.interference import DegradingMetadataService, bystander_latency
from repro.fs.metadata import FifoMetadataService, MetadataOp
from repro.fs.simfs import SimFS
from repro.fs.systems import SystemProfile, jaguar, jugene

__all__ = [
    "TapeLibrary",
    "compare_archival",
    "DegradingMetadataService",
    "bystander_latency",
    "Engine",
    "FlowScheduler",
    "Resource",
    "FifoMetadataService",
    "MetadataOp",
    "SimFS",
    "SystemProfile",
    "jugene",
    "jaguar",
]
