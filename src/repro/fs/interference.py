"""Metadata-service brownout: create storms hurt *other* users (paper §1).

The paper: *"our experiences suggest that large-scale file operations can
cause side effects including temporary service disruptions noticeable by
arbitrary users that can jeopardize the stability of the overall system."*

Model: the metadata service serves a FIFO queue; when its backlog exceeds
``brownout_threshold`` outstanding operations, every operation (including
an innocent bystander's ``ls`` or ``stat``) is slowed by
``brownout_factor`` until the backlog drains below the threshold again.
:func:`bystander_latency` measures the collateral damage: the latency an
unrelated user's single metadata operation experiences at the height of a
create storm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fs.events import Engine
from repro.fs.metadata import FifoMetadataService, MetadataCosts, MetadataOp


@dataclass
class DegradingMetadataService(FifoMetadataService):
    """FIFO metadata service whose rate collapses under deep backlogs."""

    brownout_threshold: int = 1024
    brownout_factor: float = 4.0
    brownouts_entered: int = 0

    def service_time(self, kind: str) -> float:
        base = super().service_time(kind)
        if len(self._queue) >= self.brownout_threshold:
            self.brownouts_entered += 1
            return base * self.brownout_factor
        return base


@dataclass
class BystanderResult:
    """Collateral damage a create storm inflicts on an unrelated user."""

    storm_ops: int
    quiet_latency_s: float
    storm_latency_s: float

    @property
    def slowdown(self) -> float:
        if self.quiet_latency_s <= 0:
            return 1.0
        return self.storm_latency_s / self.quiet_latency_s


def bystander_latency(
    costs: MetadataCosts,
    storm_ops: int,
    bystander_kind: str = "stat",
    brownout_threshold: int = 1024,
    brownout_factor: float = 4.0,
) -> BystanderResult:
    """Latency of one innocent ``stat`` issued mid-storm vs. on a quiet system.

    The bystander's op arrives when half the storm has been submitted —
    the worst of the backlog — and must wait for everything ahead of it.
    """
    if storm_ops < 0:
        raise ValueError("storm_ops must be non-negative")

    # Quiet system: the op is served immediately at base cost.
    quiet = costs.base_time(bystander_kind)

    engine = Engine()
    svc = DegradingMetadataService(
        engine,
        costs,
        name="dir",
        brownout_threshold=brownout_threshold,
        brownout_factor=brownout_factor,
    )
    half = storm_ops // 2
    done: dict[str, float] = {}
    for i in range(half):
        svc.submit(MetadataOp("create", f"/run/task{i:06d}", task=i))
    submit_time_holder: list[float] = []

    def _submit_bystander() -> None:
        submit_time_holder.append(engine.now)
        svc.submit(
            MetadataOp(bystander_kind, "/home/other-user/file", task=-1),
            callback=lambda ts, op: done.__setitem__("t", ts),
        )
        for i in range(half, storm_ops):
            svc.submit(MetadataOp("create", f"/run/task{i:06d}", task=i))

    # The bystander op arrives one service-quantum into the storm (the
    # queue is already fully formed — everyone called create at t=0).
    engine.schedule_at(0.0, _submit_bystander)
    engine.run()
    storm_latency = done["t"] - submit_time_holder[0] if storm_ops else quiet
    return BystanderResult(
        storm_ops=storm_ops,
        quiet_latency_s=quiet,
        storm_latency_s=storm_latency,
    )
