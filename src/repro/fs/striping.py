"""File-striping policies and object-storage-target (OST) selection.

Lustre stripes every file across ``stripe_count`` OSTs with a configurable
``stripe_depth``; the OSTs for each new file are drawn round-robin from a
random starting offset, so files may collide on the same targets.  The
number of *distinct* targets actually covered by a set of files governs the
aggregate bandwidth available to them (paper Fig. 4b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class StripingPolicy:
    """Per-file striping parameters.

    ``stripe_count``: number of OSTs a file is spread across.
    ``stripe_depth_bytes``: contiguous bytes per OST before moving on.
    """

    stripe_count: int
    stripe_depth_bytes: int

    def __post_init__(self) -> None:
        if self.stripe_count < 1:
            raise ValueError(f"stripe_count must be >= 1, got {self.stripe_count}")
        if self.stripe_depth_bytes < 1:
            raise ValueError(
                f"stripe_depth_bytes must be >= 1, got {self.stripe_depth_bytes}"
            )

    def depth_efficiency(self, per_request_overhead_bytes: int = 262144) -> float:
        """Fraction of an OST's bandwidth a client realizes at this depth.

        Small stripe depths pay a fixed per-RPC cost each time the client
        switches targets; 8 MB stripes amortize it almost completely while
        1 MB stripes lose ~20% (calibrated to the paper's default-vs-
        optimized gap on Jaguar).
        """
        return self.stripe_depth_bytes / (
            self.stripe_depth_bytes + per_request_overhead_bytes
        )


def assign_osts_roundrobin(
    n_files: int, stripe_count: int, n_targets: int, start: int = 0
) -> list[list[int]]:
    """Deterministic round-robin OST assignment for ``n_files`` files.

    File *i* gets targets ``start + i*stripe_count .. (mod n_targets)``.
    Used when reproducibility of the exact target sets matters (tests).
    """
    if n_targets < 1:
        raise ValueError("need at least one target")
    out: list[list[int]] = []
    cursor = start % n_targets
    for _ in range(n_files):
        targets = [(cursor + k) % n_targets for k in range(min(stripe_count, n_targets))]
        out.append(targets)
        cursor = (cursor + stripe_count) % n_targets
    return out


def expected_coverage(n_files: int, stripe_count: int, n_targets: int) -> float:
    """Expected number of distinct OSTs hit by ``n_files`` random files.

    Each file independently lands on ``stripe_count`` targets starting at a
    uniformly random offset (the Lustre allocator under load behaves close
    to random).  The expected coverage is
    ``T * (1 - (1 - s/T)^n)`` for ``s <= T``.
    """
    if n_targets < 1:
        raise ValueError("need at least one target")
    s = min(stripe_count, n_targets)
    miss = (1.0 - s / n_targets) ** n_files
    return n_targets * (1.0 - miss)


def aggregate_stripe_bandwidth(
    n_files: int,
    policy: StripingPolicy,
    n_targets: int,
    per_target_bw: float,
    system_peak: float = math.inf,
) -> float:
    """Aggregate bandwidth (MB/s) of ``n_files`` files under ``policy``.

    Combines expected OST coverage, stripe-depth efficiency, and the system
    backplane cap.  This closed form mirrors what the flow scheduler
    produces for a symmetric all-tasks-write workload and is used for quick
    parameter exploration and property tests.
    """
    coverage = expected_coverage(n_files, policy.stripe_count, n_targets)
    eff = policy.depth_efficiency()
    return min(coverage * per_target_bw * eff, system_peak)
